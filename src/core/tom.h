// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The traditional outsourcing model (TOM, paper §I and Fig. 1), implemented
// as the experimental baseline: the DO builds and maintains an MB-Tree ADS
// locally and signs its root; the SP mirrors the ADS, answers range queries
// with result + VO; the client reconstructs the root digest from the VO and
// checks the DO's signature.

#ifndef SAE_CORE_TOM_H_
#define SAE_CORE_TOM_H_

#include <map>
#include <memory>
#include <vector>

#include "core/answer_cache.h"
#include "crypto/rsa.h"
#include "dbms/query.h"
#include "mbtree/mb_tree.h"
#include "sim/channel.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

struct TomDataOwnerOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t rsa_modulus_bits = 1024;
  uint64_t rsa_seed = 0x5AE2009;
  size_t pool_pages = 1024;
  mbtree::MbTreeOptions mb_options;
};

/// TOM's data owner: maintains a *local* copy of the ADS (the drawback SAE
/// removes) and, after every change, bumps its epoch and signs the
/// epoch-stamped root commitment EpochStampedDigest(root, epoch).
class TomDataOwner {
 public:
  using Options = TomDataOwnerOptions;

  explicit TomDataOwner(const Options& options = {});

  /// Builds the local ADS over the (key-sorted) dataset and signs its root
  /// at epoch 1.
  Status LoadDataset(const std::vector<Record>& sorted);

  Status InsertRecord(const Record& record);
  Status DeleteRecord(RecordId id);

  crypto::RsaPublicKey public_key() const { return key_.PublicKey(); }
  const crypto::RsaSignature& signature() const { return signature_; }

  /// The latest published epoch (1 at load, +1 per update) — the client's
  /// freshness reference. Guarded by the owning system's reader-writer
  /// lock under concurrency.
  uint64_t epoch() const { return epoch_; }

  /// Whether `id` is in the master-copy view — the write-ahead path
  /// pre-validates updates with this before logging them.
  bool HasRecord(RecordId id) const { return key_of_id_.count(id) > 0; }

  /// Recovery: rewinds the epoch to `epoch` (the snapshot's) after a
  /// fresh LoadDataset of the snapshot records, and re-signs the root
  /// under it. The caller cross-checks the new signature against the
  /// snapshot's persisted one — equality proves the recovered ADS is
  /// byte-identical to the checkpointed state.
  Status RestoreEpoch(uint64_t epoch);

  /// Local ADS footprint — the DO-side burden TOM imposes.
  size_t AdsStorageBytes() const { return mb_->SizeBytes(); }
  const mbtree::MbTree& ads() const { return *mb_; }

 private:
  Status Resign();

  Options options_;
  RecordCodec codec_;
  crypto::RsaPrivateKey key_;
  storage::InMemoryPageStore store_;
  storage::BufferPool pool_;
  std::unique_ptr<mbtree::MbTree> mb_;
  std::map<RecordId, Key> key_of_id_;  // master-copy view for deletions
  crypto::RsaSignature signature_;
  uint64_t epoch_ = 0;
};

struct TomServiceProviderOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t index_pool_pages = 1024;
  size_t heap_pool_pages = 1024;
  mbtree::MbTreeOptions mb_options;
  /// Epoch-keyed cache of serialized (answer, VO) responses; invalidated
  /// wholesale whenever a new signature/epoch is installed. Never trusted —
  /// clients verify hits like misses.
  AnswerCacheOptions answer_cache;
};

/// TOM's service provider: ADS-augmented DBMS answering queries with VOs.
class TomServiceProvider {
 public:
  using Options = TomServiceProviderOptions;

  explicit TomServiceProvider(const Options& options = {});

  /// Ingests the dataset plus the DO's root signature and its epoch.
  Status LoadDataset(const std::vector<Record>& sorted,
                     crypto::RsaSignature signature, uint64_t epoch = 0);

  Status ApplyInsert(const Record& record, crypto::RsaSignature new_sig,
                     uint64_t new_epoch);
  Status ApplyDelete(RecordId id, crypto::RsaSignature new_sig,
                     uint64_t new_epoch);

  /// Installs a fresh root signature + epoch from the DO (e.g. after
  /// out-of-band re-signing); normally they arrive with ApplyInsert/
  /// ApplyDelete.
  void SetSignature(crypto::RsaSignature sig, uint64_t epoch) {
    signature_ = std::move(sig);
    epoch_ = epoch;
    answer_cache_.InvalidateAll();
  }

  /// The epoch the mirrored ADS reflects.
  uint64_t epoch() const { return epoch_; }

  const RecordCodec& codec() const { return codec_; }

  struct QueryResponse {
    std::vector<Record> results;          // key order
    mbtree::VerificationObject vo;        // epoch-stamped, signed root
  };

  /// Executes the range query and constructs the VO (paper §I). Safe to
  /// call from many threads concurrently (no concurrent updates).
  Result<QueryResponse> ExecuteRange(Key lo, Key hi) const;

  /// An executed query plan: claimed answer, witness records (what the VO
  /// authenticates), and the VO over the underlying range.
  struct PlanResponse {
    dbms::QueryAnswer answer;
    std::vector<Record> witness;
    mbtree::VerificationObject vo;
  };

  /// Executes any verified-plan operator: range scan + VO as in
  /// ExecuteRange, answer derived with the shared rule
  /// (dbms::EvaluateAnswer). With the answer cache enabled, a repeat of
  /// (request, epoch) replays the serialized answer + VO bit-for-bit.
  /// Thread-safety matches ExecuteRange.
  Result<PlanResponse> ExecutePlan(const dbms::QueryRequest& request) const;

  /// Adversary hook (security tests): computes the honest plan, tampers a
  /// witness record, poisons the answer cache with the tampered bytes, and
  /// returns the tampered plan — so the lie both ships now and persists in
  /// the cache for later queries (until a signature install flushes it).
  Result<PlanResponse> ExecutePoisonedPlan(const dbms::QueryRequest& request,
                                           uint64_t seed) const;

  const mbtree::MbTree& ads() const { return *mb_; }

  AnswerCacheStats answer_cache_stats() const { return answer_cache_.stats(); }

  /// Snapshots of the pools' global counters; diff two snapshots to measure
  /// the work in between (replaces the racy reset-then-read pattern).
  storage::BufferPool::Stats index_pool_stats() const {
    return index_pool_.stats();
  }
  storage::BufferPool::Stats heap_pool_stats() const {
    return heap_pool_.stats();
  }

  /// Calling-thread-only counters for exact per-query attribution.
  storage::BufferPool::Stats index_pool_thread_stats() const {
    return index_pool_.ThreadStats();
  }
  storage::BufferPool::Stats heap_pool_thread_stats() const {
    return heap_pool_.ThreadStats();
  }

  size_t IndexStorageBytes() const { return mb_->SizeBytes(); }
  size_t HeapStorageBytes() const { return heap_.SizeBytes(); }
  size_t StorageBytes() const {
    return IndexStorageBytes() + HeapStorageBytes();
  }

 private:
  /// Computes the plan without consulting the cache (the control path the
  /// parity harness compares against).
  Result<PlanResponse> ComputePlan(const dbms::QueryRequest& request) const;

  Options options_;
  RecordCodec codec_;
  storage::InMemoryPageStore index_store_;
  storage::InMemoryPageStore heap_store_;
  // The pools lock internally; const reads fetch pages via stored pointers.
  storage::BufferPool index_pool_;
  storage::BufferPool heap_pool_;
  storage::HeapFile heap_;
  std::unique_ptr<mbtree::MbTree> mb_;
  std::map<RecordId, storage::Rid> rid_of_id_;
  crypto::RsaSignature signature_;
  uint64_t epoch_ = 0;
  // mutable: const queries fill the cache; AnswerCache locks internally.
  mutable AnswerCache answer_cache_;
};

/// TOM's client-side verifier.
class TomClient {
 public:
  /// Verifies result+VO against the DO's public key (paper §I): freshness
  /// via the epoch gate (kStaleEpoch when the VO lags `current_epoch`),
  /// soundness via the signed epoch-stamped root digest, completeness via
  /// the boundary records.
  static Status Verify(Key lo, Key hi, const std::vector<Record>& results,
                       const mbtree::VerificationObject& vo,
                       const crypto::RsaPublicKey& owner_key,
                       const RecordCodec& codec,
                       crypto::HashScheme scheme = crypto::HashScheme::kSha1,
                       uint64_t current_epoch = 0);

  /// Operator-typed verification: first the full range check above over
  /// the *witness* (freshness, soundness, boundary completeness), then the
  /// derived answer is recomputed from the now-authenticated witness and
  /// compared with the SP's claim (dbms::CheckAnswer) — a wrong aggregate
  /// or truncated top-k fails even when every witness byte is genuine.
  static Status VerifyAnswer(const dbms::QueryRequest& request,
                             const dbms::QueryAnswer& claimed,
                             const std::vector<Record>& witness,
                             const mbtree::VerificationObject& vo,
                             const crypto::RsaPublicKey& owner_key,
                             const RecordCodec& codec,
                             crypto::HashScheme scheme = crypto::HashScheme::kSha1,
                             uint64_t current_epoch = 0);
};

}  // namespace sae::core

#endif  // SAE_CORE_TOM_H_
