// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Multi-threaded batched query engine over the thread-safe read path. The
// paper argues SAE lets the SP run "as fast as in conventional database
// systems"; a conventional DBMS serves many clients at once, so this engine
// accepts a batch of [lo, hi] range queries (optionally each behind a
// compromised SP), fans them out across a worker-thread pool against the
// shared SP + TE, verifies each result on the worker that produced it, and
// reports per-query outcomes plus aggregated costs and throughput.
//
// Per-query cost attribution under concurrency uses the buffer pools'
// per-thread counters (BufferPool::ThreadStats) and per-query channel
// sessions (sim::Channel::Session): each query runs entirely on one worker
// thread, so its deltas are exact and the aggregated batch costs equal the
// sum of the per-query costs.

#ifndef SAE_CORE_QUERY_ENGINE_H_
#define SAE_CORE_QUERY_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/system.h"

namespace sae::core {

/// One range query in a batch, optionally executed behind a malicious SP.
struct BatchQuery {
  Key lo = 0;
  Key hi = 0;
  AttackMode attack = AttackMode::kNone;
};

/// One operation of a mixed read/write batch: a query, an insert, or a
/// delete. Updates ride the systems' writer lock, so a mixed batch
/// exercises genuine reader/writer interleaving on the shared system.
struct BatchOp {
  enum class Kind { kQuery, kInsert, kDelete };

  Kind kind = Kind::kQuery;
  BatchQuery query;     // kQuery
  Record record;        // kInsert
  RecordId id = 0;      // kDelete

  static BatchOp MakeQuery(Key lo, Key hi,
                           AttackMode attack = AttackMode::kNone) {
    BatchOp op;
    op.kind = Kind::kQuery;
    op.query = BatchQuery{lo, hi, attack};
    return op;
  }
  static BatchOp MakeInsert(Record record) {
    BatchOp op;
    op.kind = Kind::kInsert;
    op.record = std::move(record);
    return op;
  }
  static BatchOp MakeDelete(RecordId id) {
    BatchOp op;
    op.kind = Kind::kDelete;
    op.id = id;
    return op;
  }
};

/// Aggregate measurements over one batch run.
struct BatchStats {
  size_t queries = 0;    ///< batch size
  size_t accepted = 0;   ///< outcomes the client verified successfully
  size_t rejected = 0;   ///< outcomes the client rejected
  size_t failed = 0;     ///< queries that errored before verification
  QueryCosts total;      ///< sum of the per-query costs
  double wall_ms = 0.0;  ///< wall-clock time for the whole batch

  double QueriesPerSecond() const {
    return wall_ms > 0.0 ? double(queries) * 1000.0 / wall_ms : 0.0;
  }
};

/// Aggregate measurements over one mixed read/write batch run.
struct MixedStats {
  size_t queries = 0;
  size_t updates = 0;
  size_t accepted = 0;        ///< queries the client verified successfully
  size_t rejected = 0;        ///< queries the client rejected
  size_t failed = 0;          ///< queries that errored before verification
  size_t update_failures = 0; ///< updates rejected (duplicate id, ...)
  QueryCosts query_total;     ///< summed costs of the query ops
  double update_latency_ms = 0.0;      ///< summed per-update wall time
  double max_update_latency_ms = 0.0;  ///< worst single update
  double wall_ms = 0.0;

  double QueriesPerSecond() const {
    return wall_ms > 0.0 ? double(queries) * 1000.0 / wall_ms : 0.0;
  }
  double MeanUpdateLatencyMs() const {
    return updates > 0 ? update_latency_ms / double(updates) : 0.0;
  }
};

struct QueryEngineOptions {
  /// Worker threads owned by the engine. 0 = run batches inline on the
  /// calling thread (no threads are spawned) — what the single-query
  /// SaeSystem::Query / TomSystem::Query wrappers use.
  size_t worker_threads = 0;
};

/// Fans batches of range queries out across a worker pool. The engine is
/// reusable across batches and systems, but Run() itself is not re-entrant:
/// issue one batch at a time per engine. The systems' shared-mutex
/// discipline makes queries and updates safely interleavable, so a batch
/// may run while other threads mutate the system — and RunMixed schedules
/// queries and updates through the same worker pool deliberately.
class QueryEngine {
 public:
  using Options = QueryEngineOptions;

  explicit QueryEngine(const Options& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  struct SaeBatch {
    /// One outcome per input query, in input order.
    std::vector<Result<SaeSystem::QueryOutcome>> outcomes;
    BatchStats stats;
  };
  struct TomBatch {
    std::vector<Result<TomSystem::QueryOutcome>> outcomes;
    BatchStats stats;
  };

  /// Runs the batch to completion against the shared system.
  SaeBatch Run(SaeSystem* system, const std::vector<BatchQuery>& queries);
  TomBatch Run(TomSystem* system, const std::vector<BatchQuery>& queries);

  /// Runs a mixed read/write batch: workers claim ops in order, queries
  /// take the system's reader lock and updates its writer lock, so the
  /// schedule interleaves genuinely. Returns aggregate stats (q/s and
  /// per-update latency — what bench_ablation_updates reports).
  MixedStats RunMixed(SaeSystem* system, const std::vector<BatchOp>& ops);
  MixedStats RunMixed(TomSystem* system, const std::vector<BatchOp>& ops);

  size_t worker_threads() const { return workers_.size(); }

 private:
  template <typename BatchT, typename System>
  BatchT RunBatch(System* system, const std::vector<BatchQuery>& queries);

  template <typename System>
  MixedStats RunMixedBatch(System* system, const std::vector<BatchOp>& ops);

  /// Executes task(0) .. task(count - 1) across the pool (inline when the
  /// engine owns no workers) and returns when all have completed.
  void Dispatch(size_t count, const std::function<void(size_t)>& task);
  void WorkerLoop();

  std::vector<std::thread> workers_;

  // Job state, guarded by mu_. Workers claim indices under the lock and run
  // tasks outside it; generation_ distinguishes successive batches.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_size_ = 0;
  size_t job_next_ = 0;
  size_t job_done_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace sae::core

#endif  // SAE_CORE_QUERY_ENGINE_H_
