// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Multi-threaded batched query engine over the thread-safe read path. The
// paper argues SAE lets the SP run "as fast as in conventional database
// systems"; a conventional DBMS serves many clients at once, so this engine
// accepts a batch of [lo, hi] range queries (optionally each behind a
// compromised SP), fans them out across a worker-thread pool against the
// shared SP + TE, verifies each result on the worker that produced it, and
// reports per-query outcomes plus aggregated costs and throughput.
//
// Per-query cost attribution under concurrency uses the buffer pools'
// per-thread counters (BufferPool::ThreadStats) and per-query channel
// sessions (sim::Channel::Session): each query runs entirely on one worker
// thread, so its deltas are exact and the aggregated batch costs equal the
// sum of the per-query costs.

#ifndef SAE_CORE_QUERY_ENGINE_H_
#define SAE_CORE_QUERY_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/system.h"

namespace sae::core {

/// One range query in a batch, optionally executed behind a malicious SP.
struct BatchQuery {
  Key lo = 0;
  Key hi = 0;
  AttackMode attack = AttackMode::kNone;
};

/// Aggregate measurements over one batch run.
struct BatchStats {
  size_t queries = 0;    ///< batch size
  size_t accepted = 0;   ///< outcomes the client verified successfully
  size_t rejected = 0;   ///< outcomes the client rejected
  size_t failed = 0;     ///< queries that errored before verification
  QueryCosts total;      ///< sum of the per-query costs
  double wall_ms = 0.0;  ///< wall-clock time for the whole batch

  double QueriesPerSecond() const {
    return wall_ms > 0.0 ? double(queries) * 1000.0 / wall_ms : 0.0;
  }
};

struct QueryEngineOptions {
  /// Worker threads owned by the engine. 0 = run batches inline on the
  /// calling thread (no threads are spawned) — what the single-query
  /// SaeSystem::Query / TomSystem::Query wrappers use.
  size_t worker_threads = 0;
};

/// Fans batches of range queries out across a worker pool. The engine is
/// reusable across batches and systems, but Run() itself is not re-entrant:
/// issue one batch at a time per engine. The target system must not be
/// mutated (Insert/Delete/Load) while a batch is in flight.
class QueryEngine {
 public:
  using Options = QueryEngineOptions;

  explicit QueryEngine(const Options& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  struct SaeBatch {
    /// One outcome per input query, in input order.
    std::vector<Result<SaeSystem::QueryOutcome>> outcomes;
    BatchStats stats;
  };
  struct TomBatch {
    std::vector<Result<TomSystem::QueryOutcome>> outcomes;
    BatchStats stats;
  };

  /// Runs the batch to completion against the shared system.
  SaeBatch Run(SaeSystem* system, const std::vector<BatchQuery>& queries);
  TomBatch Run(TomSystem* system, const std::vector<BatchQuery>& queries);

  size_t worker_threads() const { return workers_.size(); }

 private:
  template <typename BatchT, typename System>
  BatchT RunBatch(System* system, const std::vector<BatchQuery>& queries);

  /// Executes task(0) .. task(count - 1) across the pool (inline when the
  /// engine owns no workers) and returns when all have completed.
  void Dispatch(size_t count, const std::function<void(size_t)>& task);
  void WorkerLoop();

  std::vector<std::thread> workers_;

  // Job state, guarded by mu_. Workers claim indices under the lock and run
  // tasks outside it; generation_ distinguishes successive batches.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_size_ = 0;
  size_t job_next_ = 0;
  size_t job_done_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace sae::core

#endif  // SAE_CORE_QUERY_ENGINE_H_
