// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Multi-threaded batched query engine over the thread-safe read path. The
// paper argues SAE lets the SP run "as fast as in conventional database
// systems"; a conventional DBMS serves many clients at once, so this engine
// accepts a batch of [lo, hi] range queries (optionally each behind a
// compromised SP), fans them out across a worker-thread pool against the
// shared SP + TE, verifies each result on the worker that produced it, and
// reports per-query outcomes plus aggregated costs and throughput.
//
// Per-query cost attribution under concurrency uses the buffer pools'
// per-thread counters (BufferPool::ThreadStats) and per-query channel
// sessions (sim::Channel::Session): each query runs entirely on one worker
// thread, so its deltas are exact and the aggregated batch costs equal the
// sum of the per-query costs.

#ifndef SAE_CORE_QUERY_ENGINE_H_
#define SAE_CORE_QUERY_ENGINE_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/system.h"
#include "sim/cost_model.h"

namespace sae::core {

/// One query of a batch — any verified-plan operator, optionally executed
/// behind a malicious SP. The (lo, hi) constructor keeps the historical
/// range-scan call sites compiling unchanged.
struct BatchQuery {
  dbms::QueryRequest request;
  AttackMode attack = AttackMode::kNone;

  BatchQuery() = default;
  BatchQuery(Key lo, Key hi, AttackMode attack = AttackMode::kNone)
      : request(dbms::QueryRequest::Scan(lo, hi)), attack(attack) {}
  BatchQuery(const dbms::QueryRequest& request,
             AttackMode attack = AttackMode::kNone)
      : request(request), attack(attack) {}
};

/// One operation of a mixed read/write batch: a query, an insert, or a
/// delete. Updates ride the systems' writer lock, so a mixed batch
/// exercises genuine reader/writer interleaving on the shared system.
struct BatchOp {
  enum class Kind { kQuery, kInsert, kDelete };

  Kind kind = Kind::kQuery;
  BatchQuery query;     // kQuery
  Record record;        // kInsert
  RecordId id = 0;      // kDelete

  static BatchOp MakeQuery(Key lo, Key hi,
                           AttackMode attack = AttackMode::kNone) {
    BatchOp op;
    op.kind = Kind::kQuery;
    op.query = BatchQuery{lo, hi, attack};
    return op;
  }
  static BatchOp MakeQuery(const dbms::QueryRequest& request,
                           AttackMode attack = AttackMode::kNone) {
    BatchOp op;
    op.kind = Kind::kQuery;
    op.query = BatchQuery{request, attack};
    return op;
  }
  static BatchOp MakeInsert(Record record) {
    BatchOp op;
    op.kind = Kind::kInsert;
    op.record = std::move(record);
    return op;
  }
  static BatchOp MakeDelete(RecordId id) {
    BatchOp op;
    op.kind = Kind::kDelete;
    op.id = id;
    return op;
  }
};

/// Aggregate measurements over one batch run.
struct BatchStats {
  size_t queries = 0;    ///< batch size
  size_t accepted = 0;   ///< outcomes the client verified successfully
  size_t rejected = 0;   ///< outcomes the client rejected
  size_t failed = 0;     ///< queries that errored before verification
  QueryCosts total;      ///< sum of the per-query costs
  double wall_ms = 0.0;  ///< wall-clock time for the whole batch

  double QueriesPerSecond() const {
    return wall_ms > 0.0 ? double(queries) * 1000.0 / wall_ms : 0.0;
  }
};

/// Aggregate measurements over one mixed read/write batch run.
struct MixedStats {
  size_t queries = 0;
  size_t updates = 0;
  size_t accepted = 0;        ///< queries the client verified successfully
  size_t rejected = 0;        ///< queries the client rejected
  size_t failed = 0;          ///< queries that errored before verification
  size_t update_failures = 0; ///< updates rejected (duplicate id, ...)
  QueryCosts query_total;     ///< summed costs of the query ops
  double update_latency_ms = 0.0;      ///< summed per-update wall time
  double max_update_latency_ms = 0.0;  ///< worst single update
  double wall_ms = 0.0;

  double QueriesPerSecond() const {
    return wall_ms > 0.0 ? double(queries) * 1000.0 / wall_ms : 0.0;
  }
  double MeanUpdateLatencyMs() const {
    return updates > 0 ? update_latency_ms / double(updates) : 0.0;
  }
};

struct QueryEngineOptions {
  /// Worker threads owned by the engine. 0 = run batches inline on the
  /// calling thread (no threads are spawned) — what the single-query
  /// SaeSystem::Query / TomSystem::Query wrappers use.
  size_t worker_threads = 0;
};

/// Fans batches of range queries out across a worker pool. The engine is
/// reusable across batches and systems, but Run() itself is not re-entrant:
/// issue one batch at a time per engine. The systems' shared-mutex
/// discipline makes queries and updates safely interleavable, so a batch
/// may run while other threads mutate the system — and RunMixed schedules
/// queries and updates through the same worker pool deliberately.
class QueryEngine {
 public:
  using Options = QueryEngineOptions;

  explicit QueryEngine(const Options& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Batch result over any system type exposing
  /// ExecuteQuery(lo, hi, attack) -> Result<QueryOutcome> with the
  /// QueryOutcome carrying `verification` and `costs` members — the
  /// unsharded SaeSystem/TomSystem and their sharded counterparts alike.
  template <typename System>
  struct Batch {
    /// One outcome per input query, in input order.
    std::vector<Result<typename System::QueryOutcome>> outcomes;
    BatchStats stats;
  };
  using SaeBatch = Batch<SaeSystem>;
  using TomBatch = Batch<TomSystem>;

  /// Runs the batch to completion against the shared system. The generic
  /// template serves any conforming system (the sharded systems route
  /// their batches through it); the named overloads keep call sites terse.
  template <typename System>
  Batch<System> RunBatch(System* system,
                         const std::vector<BatchQuery>& queries);
  SaeBatch Run(SaeSystem* system, const std::vector<BatchQuery>& queries);
  TomBatch Run(TomSystem* system, const std::vector<BatchQuery>& queries);

  /// Bare fan-out primitive: executes task(0) .. task(count - 1) across the
  /// worker pool (inline when the engine owns no workers) and returns when
  /// all have completed. Not re-entrant — a task must never call back into
  /// the engine that is running it (nested fan-out needs a second engine,
  /// which is exactly what the sharded systems own for per-query
  /// multi-shard dispatch).
  void RunTasks(size_t count, const std::function<void(size_t)>& task) {
    Dispatch(count, task);
  }

  /// Runs a mixed read/write batch: workers claim ops in order, queries
  /// take the system's reader lock and updates its writer lock, so the
  /// schedule interleaves genuinely. Returns aggregate stats (q/s and
  /// per-update latency — what bench_ablation_updates reports). Generic
  /// for the same reason as RunBatch: sharded systems qualify.
  template <typename System>
  MixedStats RunMixedBatch(System* system, const std::vector<BatchOp>& ops);
  MixedStats RunMixed(SaeSystem* system, const std::vector<BatchOp>& ops);
  MixedStats RunMixed(TomSystem* system, const std::vector<BatchOp>& ops);

  size_t worker_threads() const { return workers_.size(); }

 private:
  /// Executes task(0) .. task(count - 1) across the pool (inline when the
  /// engine owns no workers) and returns when all have completed.
  void Dispatch(size_t count, const std::function<void(size_t)>& task);
  void WorkerLoop();

  std::vector<std::thread> workers_;

  // Job state, guarded by mu_. Workers claim indices under the lock and run
  // tasks outside it; generation_ distinguishes successive batches.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_size_ = 0;
  size_t job_next_ = 0;
  size_t job_done_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

// --- template definitions ---------------------------------------------------

template <typename System>
QueryEngine::Batch<System> QueryEngine::RunBatch(
    System* system, const std::vector<BatchQuery>& queries) {
  using Outcome = typename System::QueryOutcome;
  Batch<System> batch;
  batch.stats.queries = queries.size();

  // Workers fill disjoint slots; Result<> has no default constructor, so
  // the slots are optionals that are move-unwrapped after the barrier.
  std::vector<std::optional<Result<Outcome>>> slots(queries.size());
  std::function<void(size_t)> task = [&](size_t i) {
    const BatchQuery& q = queries[i];
    slots[i].emplace(system->ExecuteQuery(q.request, q.attack));
  };

  sim::Stopwatch watch;
  Dispatch(queries.size(), task);
  batch.stats.wall_ms = watch.ElapsedMs();

  batch.outcomes.reserve(slots.size());
  for (std::optional<Result<Outcome>>& slot : slots) {
    Result<Outcome>& result = *slot;
    if (result.ok()) {
      const Outcome& outcome = result.value();
      if (outcome.verification.ok()) {
        ++batch.stats.accepted;
      } else {
        ++batch.stats.rejected;
      }
      batch.stats.total += outcome.costs;
    } else {
      ++batch.stats.failed;
    }
    batch.outcomes.push_back(std::move(result));
  }
  return batch;
}

template <typename System>
MixedStats QueryEngine::RunMixedBatch(System* system,
                                      const std::vector<BatchOp>& ops) {
  MixedStats stats;

  // Per-op slots filled by disjoint workers, reduced after the barrier.
  struct OpResult {
    bool is_query = false;
    bool ok = false;        // op-level success
    bool accepted = false;  // query verification verdict
    QueryCosts costs;
    double update_ms = 0.0;
  };
  std::vector<OpResult> slots(ops.size());
  std::function<void(size_t)> task = [&](size_t i) {
    const BatchOp& op = ops[i];
    OpResult& slot = slots[i];
    switch (op.kind) {
      case BatchOp::Kind::kQuery: {
        slot.is_query = true;
        auto outcome =
            system->ExecuteQuery(op.query.request, op.query.attack);
        if (outcome.ok()) {
          slot.ok = true;
          slot.accepted = outcome.value().verification.ok();
          slot.costs = outcome.value().costs;
        }
        break;
      }
      case BatchOp::Kind::kInsert: {
        sim::Stopwatch watch;
        slot.ok = system->Insert(op.record).ok();
        slot.update_ms = watch.ElapsedMs();
        break;
      }
      case BatchOp::Kind::kDelete: {
        sim::Stopwatch watch;
        slot.ok = system->Delete(op.id).ok();
        slot.update_ms = watch.ElapsedMs();
        break;
      }
    }
  };

  sim::Stopwatch watch;
  Dispatch(ops.size(), task);
  stats.wall_ms = watch.ElapsedMs();

  for (const OpResult& slot : slots) {
    if (slot.is_query) {
      ++stats.queries;
      if (!slot.ok) {
        ++stats.failed;
      } else if (slot.accepted) {
        ++stats.accepted;
      } else {
        ++stats.rejected;
      }
      stats.query_total += slot.costs;
    } else {
      ++stats.updates;
      if (!slot.ok) ++stats.update_failures;
      stats.update_latency_ms += slot.update_ms;
      stats.max_update_latency_ms =
          std::max(stats.max_update_latency_ms, slot.update_ms);
    }
  }
  return stats;
}

}  // namespace sae::core

#endif  // SAE_CORE_QUERY_ENGINE_H_
