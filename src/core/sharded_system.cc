// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the sharded execution tier (core/sharded_system.h): dataset
// partitioning, parallel multi-shard query fan-out with composite
// verification, and shard-routed updates that bump only the owning
// shard's epoch. Explicitly instantiated for SaeSystem and TomSystem.

#include "core/sharded_system.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "util/macros.h"

namespace sae::core {

namespace {

/// Per-shard durability directory: one WAL + snapshot lineage per shard.
std::string ShardDurabilityDir(const std::string& dir, size_t shard) {
  return dir + "/shard-" + std::to_string(shard);
}

/// `options.base` with the durability directory rebased for shard `s` (a
/// no-op when durability is off).
template <typename Base>
typename Base::Options ShardOptions(
    const typename ShardedSystem<Base>::Options& options, size_t s) {
  typename Base::Options base = options.base;
  if (base.durability.enabled) {
    base.durability.dir = ShardDurabilityDir(base.durability.dir, s);
  }
  return base;
}

/// The recovered dataset of one shard, for rebuilding the id -> key
/// routing directory.
std::vector<Record> RecoveredRecords(SaeSystem* shard) {
  return shard->owner().SortedDataset();
}
Result<std::vector<Record>> RecoveredRecords(TomSystem* shard) {
  SAE_ASSIGN_OR_RETURN(TomServiceProvider::QueryResponse response,
                       shard->sp().ExecuteRange(
                           std::numeric_limits<Key>::min(),
                           std::numeric_limits<Key>::max()));
  return std::move(response.results);
}

}  // namespace

template <typename Base>
ShardedSystem<Base>::ShardedSystem(ShardRouter router, const Options& options)
    : router_(std::move(router)),
      options_(options),
      fanout_(QueryEngineOptions{options.fanout_workers}) {
  shards_.reserve(router_.num_shards());
  for (size_t s = 0; s < router_.num_shards(); ++s) {
    shards_.push_back(
        std::make_unique<Base>(ShardOptions<Base>(options_, s)));
  }
}

template <typename Base>
Result<std::unique_ptr<ShardedSystem<Base>>> ShardedSystem<Base>::Recover(
    ShardRouter router, const Options& options) {
  if (!options.base.durability.enabled) {
    return Status::InvalidArgument("recovery needs durability enabled");
  }
  auto system =
      std::make_unique<ShardedSystem<Base>>(std::move(router), options);
  std::lock_guard<std::mutex> lock(system->directory_mu_);
  for (size_t s = 0; s < system->shards_.size(); ++s) {
    SAE_ASSIGN_OR_RETURN(system->shards_[s],
                         Base::Recover(ShardOptions<Base>(options, s)));
    SAE_ASSIGN_OR_RETURN(std::vector<Record> records,
                         Result<std::vector<Record>>(
                             RecoveredRecords(system->shards_[s].get())));
    for (const Record& record : records) {
      if (!system->directory_.emplace(record.id, record.key).second) {
        return Status::Corruption(
            "record id recovered on more than one shard");
      }
      if (system->router_.ShardOf(record.key) != s) {
        return Status::Corruption("recovered record violates the fences");
      }
    }
  }
  return system;
}

template <typename Base>
Status ShardedSystem<Base>::Load(const std::vector<Record>& records) {
  std::vector<std::vector<Record>> partitions(shards_.size());
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    directory_.clear();
    for (const Record& record : records) {
      if (!directory_.emplace(record.id, record.key).second) {
        return Status::InvalidArgument("duplicate record id");
      }
      partitions[router_.ShardOf(record.key)].push_back(record);
    }
  }
  // Every shard loads — an empty partition still publishes epoch 1, so a
  // shard whose key range holds no data is queryable and fresh from the
  // start (the empty-shard edge case in tests/sharding_test.cc).
  for (size_t s = 0; s < shards_.size(); ++s) {
    SAE_RETURN_NOT_OK(shards_[s]->Load(partitions[s]));
  }
  return Status::OK();
}

template <typename Base>
Result<typename ShardedSystem<Base>::QueryOutcome>
ShardedSystem<Base>::ExecuteQuery(const dbms::QueryRequest& request,
                                  ShardAttack attack) {
  if (request.lo > request.hi) return Status::InvalidArgument("lo > hi");
  std::vector<ShardRouter::Slice> plan =
      router_.Partition(request.lo, request.hi);

  // Fan the per-shard sub-queries out — the same operator, range-clipped
  // to each shard's slice. Each shard's ExecuteQuery takes that shard's
  // own reader lock and verifies its slice (witness proof + partial-answer
  // recomputation) against that shard's published epoch on the thread that
  // ran it; a compromised shard corrupts only its own slice.
  using BaseOutcome = typename Base::QueryOutcome;
  std::vector<std::optional<Result<BaseOutcome>>> slots(plan.size());
  std::function<void(size_t)> sub_query = [&](size_t i) {
    AttackMode mode = attack.AppliesTo(plan[i].shard) ? attack.mode
                                                      : AttackMode::kNone;
    dbms::QueryRequest sub = request;
    sub.lo = plan[i].lo;
    sub.hi = plan[i].hi;
    slots[i].emplace(shards_[plan[i].shard]->ExecuteQuery(sub, mode));
  };
  // The worker pool runs one job at a time (QueryEngine::Dispatch is
  // single-caller), so the first concurrent query in takes it via the
  // try-lock and the rest fan out inline on their own threads — never
  // blocking on, or racing over, the shared job state.
  std::unique_lock<std::mutex> fan_lock(fanout_mu_, std::try_to_lock);
  if (fan_lock.owns_lock() && fanout_.worker_threads() > 0) {
    fanout_.RunTasks(plan.size(), sub_query);
  } else {
    for (size_t i = 0; i < plan.size(); ++i) sub_query(i);
  }

  // Stitch witness slices and fold the partial answers. An execution error
  // (as opposed to a verification verdict) on any shard fails the whole
  // query, mirroring the unsharded systems.
  QueryOutcome outcome;
  outcome.request = request;
  outcome.slices.reserve(plan.size());
  std::vector<std::pair<size_t, Status>> verdicts;
  verdicts.reserve(plan.size());
  std::vector<dbms::QueryAnswer> parts;
  parts.reserve(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    Result<BaseOutcome>& slot = *slots[i];
    if (!slot.ok()) return slot.status();
    Slice slice;
    slice.shard = plan[i].shard;
    slice.lo = plan[i].lo;
    slice.hi = plan[i].hi;
    slice.outcome = std::move(slot.value());
    outcome.results.insert(outcome.results.end(),
                           slice.outcome.results.begin(),
                           slice.outcome.results.end());
    outcome.costs += slice.outcome.costs;
    verdicts.emplace_back(slice.shard, slice.outcome.verification);
    parts.push_back(slice.outcome.answer);
    outcome.slices.push_back(std::move(slice));
  }
  outcome.answer = dbms::MergeAnswers(request, parts);

  // Composite verification: fence-key tiling first (defense in depth — the
  // slices come from our own router here, but a deserialized answer goes
  // through the same check), then the cross-shard epoch fold over the
  // per-slice verdicts (each already covers its witness AND its partial
  // answer, so one aggregate-lying shard surfaces here with attribution).
  Status cover = router_.VerifyCover(request.lo, request.hi, plan);
  outcome.verification =
      cover.ok() ? CombineShardStatuses(verdicts) : std::move(cover);
  return outcome;
}

template <typename Base>
Result<ShardUpdate> ShardedSystem<Base>::InsertVersioned(
    const Record& record) {
  {
    // The directory is the cross-shard id-uniqueness authority; the
    // critical section is one map op so writers to different shards stay
    // parallel.
    std::lock_guard<std::mutex> lock(directory_mu_);
    if (!directory_.emplace(record.id, record.key).second) {
      return Status::AlreadyExists("record id already present");
    }
  }
  size_t shard = router_.ShardOf(record.key);
  Result<uint64_t> epoch = shards_[shard]->InsertVersioned(record);
  if (!epoch.ok()) {
    std::lock_guard<std::mutex> lock(directory_mu_);
    directory_.erase(record.id);
    return epoch.status();
  }
  return ShardUpdate{shard, epoch.value()};
}

template <typename Base>
Result<ShardUpdate> ShardedSystem<Base>::DeleteVersioned(RecordId id) {
  Key key;
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      return Status::NotFound("no record with this id");
    }
    key = it->second;
    directory_.erase(it);
  }
  size_t shard = router_.ShardOf(key);
  Result<uint64_t> epoch = shards_[shard]->DeleteVersioned(id);
  if (!epoch.ok()) {
    std::lock_guard<std::mutex> lock(directory_mu_);
    directory_.emplace(id, key);
    return epoch.status();
  }
  return ShardUpdate{shard, epoch.value()};
}

template <typename Base>
std::vector<uint64_t> ShardedSystem<Base>::ShardEpochs() const {
  std::vector<uint64_t> epochs;
  epochs.reserve(shards_.size());
  for (const auto& shard : shards_) epochs.push_back(shard->epoch());
  return epochs;
}

template <typename Base>
UpdateStats ShardedSystem<Base>::update_stats() const {
  UpdateStats total;
  for (const auto& shard : shards_) {
    UpdateStats stats = shard->update_stats();
    total.inserts += stats.inserts;
    total.deletes += stats.deletes;
    total.failed += stats.failed;
    total.shipment_bytes += stats.shipment_bytes;
    total.auth_bytes += stats.auth_bytes;
    total.latency_ms += stats.latency_ms;
  }
  return total;
}

template <typename Base>
DurabilityStats ShardedSystem<Base>::durability_stats() const {
  DurabilityStats total;
  for (const auto& shard : shards_) {
    DurabilityStats s = shard->durability_stats();
    total.wal_bytes += s.wal_bytes;
    total.wal_records += s.wal_records;
    total.wal_syncs += s.wal_syncs;
    total.checkpoints_full += s.checkpoints_full;
    total.checkpoints_delta += s.checkpoints_delta;
    total.delta_chain_length =
        std::max(total.delta_chain_length, s.delta_chain_length);
    total.updates_since_checkpoint += s.updates_since_checkpoint;
    total.pending_checkpoints += s.pending_checkpoints;
    total.checkpoint_bytes_total += s.checkpoint_bytes_total;
    total.last_checkpoint_bytes =
        std::max(total.last_checkpoint_bytes, s.last_checkpoint_bytes);
    total.last_checkpoint_ms =
        std::max(total.last_checkpoint_ms, s.last_checkpoint_ms);
  }
  total.avg_group_records =
      total.wal_syncs > 0
          ? double(total.wal_records) / double(total.wal_syncs)
          : 0.0;
  return total;
}

template <typename Base>
Status ShardedSystem<Base>::WaitForCheckpoints() {
  Status first = Status::OK();
  for (const auto& shard : shards_) {
    Status st = shard->WaitForCheckpoints();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

template class ShardedSystem<SaeSystem>;
template class ShardedSystem<TomSystem>;

mbtree::CompositeVo BuildCompositeVo(
    const ShardedTomSystem::QueryOutcome& outcome) {
  mbtree::CompositeVo cvo;
  cvo.parts.reserve(outcome.slices.size());
  for (const ShardedTomSystem::Slice& slice : outcome.slices) {
    mbtree::CompositeVoPart part;
    part.shard = uint32_t(slice.shard);
    part.lo = slice.lo;
    part.hi = slice.hi;
    part.vo = slice.outcome.vo;
    cvo.parts.push_back(std::move(part));
  }
  return cvo;
}

}  // namespace sae::core
