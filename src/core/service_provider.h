// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The service provider (SP) of SAE (paper §II): a *conventional* DBMS with
// no authentication machinery whatsoever — heap file + plain B+-tree. This
// is the point of the model: "query processing is as fast as in conventional
// database systems".

#ifndef SAE_CORE_SERVICE_PROVIDER_H_
#define SAE_CORE_SERVICE_PROVIDER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/answer_cache.h"
#include "dbms/query.h"
#include "dbms/table.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordId;

struct ServiceProviderOptions {
  size_t record_size = storage::kDefaultRecordSize;
  size_t index_pool_pages = 1024;
  size_t heap_pool_pages = 1024;
  /// Epoch-keyed cache of serialized answers; invalidated wholesale on
  /// every epoch bump. Never trusted — clients verify hits like misses.
  AnswerCacheOptions answer_cache;
};

/// SAE's service provider. Owns its (simulated-disk) storage; index and
/// dataset pages are pooled separately for per-component access accounting.
class ServiceProvider {
 public:
  using Options = ServiceProviderOptions;

  explicit ServiceProvider(const Options& options = {});

  /// Ingests the initial dataset (sorted by key; stored clustered).
  Status LoadDataset(const std::vector<Record>& sorted);

  Status InsertRecord(const Record& record);
  Status DeleteRecord(RecordId id);

  /// Executes the range query and returns the result records in key order.
  /// Safe to call from many threads concurrently (no concurrent updates).
  Result<std::vector<Record>> ExecuteRange(Key lo, Key hi) const;

  /// An executed query plan: the derived answer plus the witness — the
  /// range record set the client's proof (VT) authenticates and from which
  /// it recomputes the answer.
  struct PlanResult {
    dbms::QueryAnswer answer;
    std::vector<Record> witness;
  };

  /// Executes any verified-plan operator: runs the underlying range scan
  /// and derives the answer with the shared rule (dbms::EvaluateAnswer).
  /// With the answer cache enabled, a repeat of (request, epoch) replays
  /// the serialized response bit-for-bit instead of re-scanning.
  /// Thread-safety matches ExecuteRange.
  Result<PlanResult> ExecutePlan(const dbms::QueryRequest& request) const;

  /// Adversary hook (security tests): computes the honest plan, tampers a
  /// witness record, poisons the answer cache with the tampered bytes, and
  /// returns the tampered plan — so the lie both ships now and persists in
  /// the cache for later queries (until an epoch bump flushes it).
  Result<PlanResult> ExecutePoisonedPlan(const dbms::QueryRequest& request,
                                         uint64_t seed) const;

  const dbms::Table& table() const { return *table_; }

  /// The epoch the SP's data reflects — the DO publishes it with every
  /// update shipment. A conventional SP has no authentication machinery,
  /// but it does stamp its answers with this claimed epoch so clients can
  /// tell "stale snapshot" apart from "corrupt result".
  void SetEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
    answer_cache_.InvalidateAll();
  }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  AnswerCacheStats answer_cache_stats() const { return answer_cache_.stats(); }

  /// Snapshots of the pools' global counters; diff two snapshots to measure
  /// the work in between (replaces the racy reset-then-read pattern).
  storage::BufferPool::Stats index_pool_stats() const {
    return index_pool_.stats();
  }
  storage::BufferPool::Stats heap_pool_stats() const {
    return heap_pool_.stats();
  }

  /// Calling-thread-only counters for exact per-query attribution.
  storage::BufferPool::Stats index_pool_thread_stats() const {
    return index_pool_.ThreadStats();
  }
  storage::BufferPool::Stats heap_pool_thread_stats() const {
    return heap_pool_.ThreadStats();
  }

  size_t IndexStorageBytes() const { return table_->IndexSizeBytes(); }
  size_t HeapStorageBytes() const { return table_->HeapSizeBytes(); }
  size_t StorageBytes() const {
    return IndexStorageBytes() + HeapStorageBytes();
  }

 private:
  storage::InMemoryPageStore index_store_;
  storage::InMemoryPageStore heap_store_;
  // mutable: const reads fetch pages; the pools lock internally.
  mutable storage::BufferPool index_pool_;
  mutable storage::BufferPool heap_pool_;
  /// Computes the plan without consulting the cache (the control path the
  /// parity harness compares against).
  Result<PlanResult> ComputePlan(const dbms::QueryRequest& request) const;

  std::unique_ptr<dbms::Table> table_;
  std::atomic<uint64_t> epoch_{0};
  // mutable: const queries fill the cache; AnswerCache locks internally.
  mutable AnswerCache answer_cache_;
};

}  // namespace sae::core

#endif  // SAE_CORE_SERVICE_PROVIDER_H_
