// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Extension: multi-attribute verification. The paper treats 1D range
// queries on a single query attribute; tables are usually queried on
// several columns. Since the TE's tuple is <id, a, h> with h independent of
// the attribute, the natural extension is one XB-Tree per queryable
// attribute, all sharing the per-record digests: a query on any indexed
// attribute gets a VT from that attribute's tree, and the client-side check
// is unchanged. Storage grows by ~36 bytes per record per extra attribute;
// updates cost one O(log n) maintenance per attribute.

#ifndef SAE_CORE_MULTI_ATTR_H_
#define SAE_CORE_MULTI_ATTR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/digest.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "util/status.h"
#include "xbtree/xb_tree.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

/// Derives an attribute's 4-byte key from a record. `record.key` itself is
/// attribute 0; further attributes are decoded from the payload by the
/// application schema.
using AttributeExtractor = std::function<Key(const Record&)>;

/// A queryable attribute registered with the TE.
struct AttributeSpec {
  std::string name;
  AttributeExtractor extractor;
};

struct MultiAttrTrustedEntityOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t pool_pages = 1024;
};

/// Trusted entity indexing several query attributes of the same table.
class MultiAttrTrustedEntity {
 public:
  using Options = MultiAttrTrustedEntityOptions;

  MultiAttrTrustedEntity(std::vector<AttributeSpec> attributes,
                         const Options& options = {});

  /// Ingests the initial dataset (any order).
  Status LoadDataset(const std::vector<Record>& records);

  Status InsertRecord(const Record& record);

  /// The DO ships the full record on deletion so every attribute tree can
  /// locate its entry.
  Status DeleteRecord(const Record& record);

  /// Token for a range query on the named attribute.
  Result<crypto::Digest> GenerateVt(const std::string& attribute, Key lo,
                                    Key hi) const;

  /// Registered attribute names, in registration order.
  std::vector<std::string> AttributeNames() const;

  size_t StorageBytes() const;
  storage::BufferPool::Stats pool_stats() const { return pool_.stats(); }
  void ResetStats() { pool_.ResetStats(); }

 private:
  struct AttrIndex {
    AttributeSpec spec;
    std::unique_ptr<xbtree::XbTree> tree;
  };

  crypto::Digest RecordDigest(const Record& record) const;

  Options options_;
  RecordCodec codec_;
  storage::InMemoryPageStore store_;
  mutable storage::BufferPool pool_;
  std::vector<AttrIndex> indexes_;
};

}  // namespace sae::core

#endif  // SAE_CORE_MULTI_ATTR_H_
