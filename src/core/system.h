// Copyright (c) saedb authors. Licensed under the MIT license.
//
// End-to-end harnesses wiring the entities of each outsourcing model with
// byte-metered channels. These are the top-level public API used by the
// examples and the figure benches: load a dataset, run authenticated
// queries over the verified plan layer (range/point scans and
// COUNT/SUM/MIN/MAX/top-k aggregates, dbms::QueryRequest) AND
// epoch-versioned updates — concurrently, from any number of threads —
// optionally under an attacking SP, and read back per-party costs.
//
// Concurrency discipline (reader-writer + epoch snapshot): each system owns
// a std::shared_mutex. ExecuteQuery holds it shared for the whole query
// (SP execution, TE token / VO, client verification), so a query observes
// one frozen epoch end to end; Insert/Delete hold it unique, bump the DO's
// epoch, and re-publish the authentication state. Queries and updates may
// therefore interleave freely on the same system — no exclusive-access
// phase is required.

#ifndef SAE_CORE_SYSTEM_H_
#define SAE_CORE_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/client_memo.h"
#include "core/data_owner.h"
#include "core/durability.h"
#include "core/epoch.h"
#include "core/malicious_sp.h"
#include "core/service_provider.h"
#include "core/tom.h"
#include "core/trusted_entity.h"
#include "sim/channel.h"
#include "util/status.h"

namespace sae::core {

/// Per-query measurements shared by both models.
struct QueryCosts {
  uint64_t sp_index_accesses = 0;  ///< index node accesses at the SP
  uint64_t sp_heap_accesses = 0;   ///< dataset-page accesses at the SP
  uint64_t te_accesses = 0;        ///< node accesses at the TE (SAE only)
  size_t auth_bytes = 0;     ///< authentication traffic (VT or VO message)
  size_t result_bytes = 0;   ///< result traffic (excluded from Fig. 5)
  double client_verify_ms = 0.0;  ///< wall-clock client verification time
};

/// Component-wise accumulation — per-query costs compose into batch totals.
inline QueryCosts& operator+=(QueryCosts& a, const QueryCosts& b) {
  a.sp_index_accesses += b.sp_index_accesses;
  a.sp_heap_accesses += b.sp_heap_accesses;
  a.te_accesses += b.te_accesses;
  a.auth_bytes += b.auth_bytes;
  a.result_bytes += b.result_bytes;
  a.client_verify_ms += b.client_verify_ms;
  return a;
}

/// Aggregate cost of the update pipeline (DO -> parties), accumulated per
/// system across all Insert/Delete calls. `shipment_bytes` is the record /
/// deletion-notice traffic; `auth_bytes` is the epoch-notice (SAE) or
/// root-signature (TOM) traffic riding along with it.
struct UpdateStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t failed = 0;          ///< rejected updates (duplicate id, ...)
  size_t shipment_bytes = 0;
  size_t auth_bytes = 0;
  double latency_ms = 0.0;      ///< summed wall time in the writer section
};

struct SaeSystemOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t sp_index_pool_pages = 1024;
  size_t sp_heap_pool_pages = 1024;
  size_t te_pool_pages = 1024;
  /// TE tree fanout + hot-level digest cache knobs.
  xbtree::XbTreeOptions xb_options;
  /// SP answer cache and TE token memo (both epoch-keyed, never trusted).
  AnswerCacheOptions sp_answer_cache;
  AnswerCacheOptions te_vt_cache;
  /// Client-side verification memo (the client's own pure work, replayed
  /// on byte-identical responses; freshness gates still run every query).
  AnswerCacheOptions client_memo;
  /// Crash safety: epoch snapshots + WAL (core/durability.h). Off by
  /// default — the simulation harness runs purely in memory.
  DurabilityOptions durability;

  /// The uncached control configuration the parity harness compares
  /// against: every verified-path cache off, everything else identical.
  SaeSystemOptions& DisableCaches() {
    xb_options.hot_cache_levels = 0;
    sp_answer_cache.enabled = false;
    te_vt_cache.enabled = false;
    client_memo.enabled = false;
    return *this;
  }
};

/// Cache counters of one SaeSystem; snapshot by value, diff components to
/// measure a span.
struct SaeCacheStats {
  AnswerCacheStats sp_answer;         ///< SP answer cache (hit = no scan)
  AnswerCacheStats te_vt;             ///< TE token memo (hit = no traversal)
  storage::NodeCacheStats te_digest;  ///< XB-tree hot-level node cache
  AnswerCacheStats client_memo;       ///< client verification memo
};

/// SAE: DO + conventional SP + TE + verifying client.
class SaeSystem {
 public:
  using Options = SaeSystemOptions;

  explicit SaeSystem(const Options& options = {});

  /// Installs and outsources the dataset (DO -> SP, DO -> TE), publishing
  /// epoch 1. With durability enabled, also opens the WAL and writes the
  /// epoch-1 baseline snapshot before returning.
  Status Load(const std::vector<Record>& records);

  /// Rebuilds a system from its durability directory after a crash: loads
  /// the newest valid snapshot, replays the WAL tail past the snapshot
  /// epoch through the normal owner paths, truncates any garbage, and
  /// republishes the recovered epoch. kNotFound when no valid snapshot
  /// exists (the crash predates the first durable checkpoint);
  /// kCorruption when the WAL contradicts the snapshot.
  static Result<std::unique_ptr<SaeSystem>> Recover(const Options& options);

  struct QueryOutcome {
    dbms::QueryRequest request;   ///< the executed plan
    dbms::QueryAnswer answer;     ///< the SP's claimed (possibly tampered)
                                  ///< derived answer, as received
    std::vector<Record> results;  ///< witness records the SP sent (for
                                  ///< scans these ARE the answer rows)
    uint64_t claimed_epoch = 0;   ///< the epoch the SP stamped its answer
    VerificationToken vt;         ///< the TE's epoch-stamped token
    Status verification;          ///< OK iff the client accepted the result
    QueryCosts costs;
  };

  /// Client issues the plan to SP and TE simultaneously and verifies.
  /// Routed through a batch-of-one QueryEngine; for multi-query load build
  /// a core::QueryEngine with worker threads and pass it a batch.
  Result<QueryOutcome> Query(const dbms::QueryRequest& request,
                             AttackMode attack = AttackMode::kNone);
  /// Range-scan compatibility wrapper.
  Result<QueryOutcome> Query(Key lo, Key hi,
                             AttackMode attack = AttackMode::kNone) {
    return Query(dbms::QueryRequest::Scan(lo, hi), attack);
  }

  /// The thread-safe single-query operation QueryEngine workers invoke:
  /// runs SP execution, TE token generation, and client verification
  /// entirely on the calling thread under a shared (reader) lock,
  /// attributing costs via per-thread pool counters and per-query channel
  /// sessions. Any number of threads may call this concurrently, and
  /// Insert/Delete may interleave with it — writers simply serialize
  /// against in-flight queries through the lock.
  Result<QueryOutcome> ExecuteQuery(const dbms::QueryRequest& request,
                                    AttackMode attack = AttackMode::kNone);
  /// Range-scan compatibility wrapper.
  Result<QueryOutcome> ExecuteQuery(Key lo, Key hi,
                                    AttackMode attack = AttackMode::kNone) {
    return ExecuteQuery(dbms::QueryRequest::Scan(lo, hi), attack);
  }

  /// DO-side updates, propagated to SP and TE under the writer (unique)
  /// lock with a fresh epoch. Safe to call concurrently with queries and
  /// other updates. The Versioned variants return the epoch the update
  /// published — the serialization point of the update, which the
  /// interleaved stress suite replays against a serial oracle.
  Result<uint64_t> InsertVersioned(const Record& record);
  Result<uint64_t> DeleteVersioned(RecordId id);
  Status Insert(const Record& record) {
    return InsertVersioned(record).status();
  }
  Status Delete(RecordId id) { return DeleteVersioned(id).status(); }

  /// Latest published epoch (the client's freshness reference).
  uint64_t epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Accumulated update-pipeline costs (snapshot by value).
  UpdateStats update_stats() const;

  /// Cache counters across all three verified-path caches.
  SaeCacheStats cache_stats() const {
    return SaeCacheStats{sp_.answer_cache_stats(), te_.vt_cache_stats(),
                         te_.xb_tree().digest_cache_stats(),
                         client_memo_.stats()};
  }

  DataOwner& owner() { return owner_; }
  ServiceProvider& sp() { return sp_; }
  TrustedEntity& te() { return te_; }
  sim::Channel& do_sp_channel() { return do_sp_; }
  sim::Channel& do_te_channel() { return do_te_; }
  sim::Channel& sp_client_channel() { return sp_client_; }
  sim::Channel& te_client_channel() { return te_client_; }
  const RecordCodec& codec() const { return owner_.codec(); }

  /// Attached durability manager; nullptr when durability is off.
  DurabilityManager* durability() { return durability_.get(); }

  /// Durability counters (zeroed struct when durability is off).
  DurabilityStats durability_stats() const {
    return durability_ != nullptr ? durability_->stats() : DurabilityStats{};
  }

  /// Blocks until every captured checkpoint is durable; returns the first
  /// checkpoint failure since the last wait. Call without holding a query
  /// open on this thread.
  Status WaitForCheckpoints() {
    return durability_ != nullptr ? durability_->WaitForCheckpoints()
                                  : Status::OK();
  }

 private:
  /// Snapshots the pre-update SP state the first time a writer runs, so
  /// kReplayStaleRoot has a genuine stale database to answer from.
  void CaptureStaleSnapshotLocked();
  /// Lazily materializes the stale SP from the captured records (readers
  /// race through std::call_once). nullptr when no snapshot exists yet.
  const ServiceProvider* StaleSp();

  /// The write-ahead update pipeline: validate against the master copy,
  /// log durable (when durability is on), then apply in memory. With group
  /// commit the durable step runs OUTSIDE the writer lock (one fsync per
  /// concurrent group); applies are sequenced back into epoch order.
  template <typename Validate, typename Fn>
  Result<uint64_t> RunUpdate(uint64_t* op_counter, WalUpdate wal_update,
                             Validate&& validate, Fn&& apply);
  /// Record presence as the update being validated will observe it: the
  /// owner state plus every staged-but-not-yet-applied change (group
  /// commit stages ahead of applying). Caller holds the unique lock.
  bool EffectiveHasRecord(RecordId id) const;
  /// Load body shared with Recover (caller holds the unique lock).
  Status LoadLocked(const std::vector<Record>& records);
  /// Synchronous full checkpoint — the Load baseline (unique lock held).
  Status WriteSnapshotLocked();
  /// Cadence checkpoint: full or delta per the compaction schedule (unique
  /// lock held at a quiescent point).
  Status CheckpointLocked();

  Options options_;
  DataOwner owner_;
  ServiceProvider sp_;
  TrustedEntity te_;
  // mutable: const-shaped query paths feed it; the memo locks internally.
  mutable SaeClientMemo client_memo_;
  sim::Channel do_sp_{"DO->SP"};
  sim::Channel do_te_{"DO->TE"};
  sim::Channel sp_client_{"SP->Client"};
  sim::Channel te_client_{"TE->Client"};
  std::atomic<uint64_t> attack_seed_{0xBADC0DE};

  // Reader-writer coordination: queries shared, updates unique.
  mutable std::shared_mutex rw_mu_;
  // Mirror of owner_.epoch() readable without any lock (benches, stats).
  std::atomic<uint64_t> published_epoch_{0};

  // Update accounting, written under the unique lock.
  UpdateStats update_stats_;

  // Pre-update snapshot for the replay adversary.
  bool stale_captured_ = false;          // written under unique lock
  uint64_t stale_epoch_ = 0;
  std::vector<Record> stale_records_;
  std::once_flag stale_build_once_;
  std::unique_ptr<ServiceProvider> stale_sp_;

  // Group-commit pipeline state, written under the unique lock. An update
  // stages at epoch staged_epoch_+1, commits durable outside the lock,
  // then waits on apply_cv_ for its turn to apply (owner epoch order). A
  // synced record therefore still precedes every in-memory apply it
  // covers. staged_presence_ lets validation see staged-but-unapplied
  // changes. When a group fsync or a mid-pipeline apply fails, the
  // unpublishable staged suffix is durably RETRACTED (a WAL kAbort marker)
  // and wal_generation_ bumps: waiters from the old generation fail
  // without applying, and the pipeline re-arms for new updates. Only if
  // the retraction itself cannot be made durable does wal_dead_ set — the
  // suffix's post-crash outcome is then unknown, so the process fails
  // stop (every later update is refused until restart).
  uint64_t staged_epoch_ = 0;
  uint64_t wal_generation_ = 0;
  std::unordered_map<RecordId, std::pair<bool, uint64_t>> staged_presence_;
  std::condition_variable_any apply_cv_;
  bool wal_dead_ = false;

  // Crash safety (nullptr when options_.durability.enabled is false);
  // written under the unique lock.
  std::unique_ptr<DurabilityManager> durability_;
};

struct TomSystemOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t rsa_modulus_bits = 1024;
  uint64_t rsa_seed = 0x5AE2009;
  size_t do_pool_pages = 1024;
  size_t sp_index_pool_pages = 1024;
  size_t sp_heap_pool_pages = 1024;
  /// ADS fanout + hot-level digest cache knobs (owner and SP mirrors).
  mbtree::MbTreeOptions mb_options;
  /// SP answer cache (epoch-keyed, never trusted).
  AnswerCacheOptions sp_answer_cache;
  /// Client-side verification memo (the client's own pure work, replayed
  /// on byte-identical responses; the VO epoch gate still runs every
  /// query).
  AnswerCacheOptions client_memo;
  /// Crash safety: epoch snapshots + WAL (core/durability.h). Off by
  /// default.
  DurabilityOptions durability;

  /// The uncached control configuration the parity harness compares
  /// against: every verified-path cache off, everything else identical.
  TomSystemOptions& DisableCaches() {
    mb_options.hot_cache_levels = 0;
    sp_answer_cache.enabled = false;
    client_memo.enabled = false;
    return *this;
  }
};

/// Cache counters of one TomSystem; snapshot by value, diff components to
/// measure a span.
struct TomCacheStats {
  AnswerCacheStats sp_answer;            ///< SP answer + VO cache
  storage::NodeCacheStats sp_digest;     ///< SP MB-tree hot-level cache
  storage::NodeCacheStats owner_digest;  ///< DO's local ADS hot-level cache
  AnswerCacheStats client_memo;          ///< client verification memo
};

/// TOM: ADS-building DO + ADS-mirroring SP + VO-verifying client.
class TomSystem {
 public:
  using Options = TomSystemOptions;

  explicit TomSystem(const Options& options = {});

  /// With durability enabled, also opens the WAL and writes the epoch-1
  /// baseline snapshot before returning.
  Status Load(const std::vector<Record>& records);

  /// Rebuilds a system from its durability directory after a crash (see
  /// SaeSystem::Recover). Additionally proves the recovered ADS equals the
  /// checkpointed one: the owner re-signs the recovered root at the
  /// snapshot epoch and the signature must byte-match the persisted one.
  static Result<std::unique_ptr<TomSystem>> Recover(const Options& options);

  struct QueryOutcome {
    dbms::QueryRequest request;     ///< the executed plan
    dbms::QueryAnswer answer;       ///< the SP's claimed derived answer
    std::vector<Record> results;    ///< witness records the SP sent
    mbtree::VerificationObject vo;  ///< epoch-stamped, root-signed
    Status verification;
    QueryCosts costs;
  };

  /// Routed through a batch-of-one QueryEngine, like SaeSystem::Query.
  Result<QueryOutcome> Query(const dbms::QueryRequest& request,
                             AttackMode attack = AttackMode::kNone);
  /// Range-scan compatibility wrapper.
  Result<QueryOutcome> Query(Key lo, Key hi,
                             AttackMode attack = AttackMode::kNone) {
    return Query(dbms::QueryRequest::Scan(lo, hi), attack);
  }

  /// Thread-safe single-query operation (see SaeSystem::ExecuteQuery):
  /// shared lock for the whole query; interleaves with updates.
  Result<QueryOutcome> ExecuteQuery(const dbms::QueryRequest& request,
                                    AttackMode attack = AttackMode::kNone);
  /// Range-scan compatibility wrapper.
  Result<QueryOutcome> ExecuteQuery(Key lo, Key hi,
                                    AttackMode attack = AttackMode::kNone) {
    return ExecuteQuery(dbms::QueryRequest::Scan(lo, hi), attack);
  }

  /// Updates flow DO -> SP together with a fresh epoch-stamped root
  /// signature, under the writer lock; safe to interleave with queries.
  Result<uint64_t> InsertVersioned(const Record& record);
  Result<uint64_t> DeleteVersioned(RecordId id);
  Status Insert(const Record& record) {
    return InsertVersioned(record).status();
  }
  Status Delete(RecordId id) { return DeleteVersioned(id).status(); }

  uint64_t epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  UpdateStats update_stats() const;

  /// Cache counters across the SP answer cache and both ADS node caches.
  TomCacheStats cache_stats() const {
    return TomCacheStats{sp_.answer_cache_stats(),
                         sp_.ads().digest_cache_stats(),
                         owner_.ads().digest_cache_stats(),
                         client_memo_.stats()};
  }

  TomDataOwner& owner() { return owner_; }
  TomServiceProvider& sp() { return sp_; }
  sim::Channel& do_sp_channel() { return do_sp_; }
  sim::Channel& sp_client_channel() { return sp_client_; }
  const RecordCodec& codec() const { return codec_; }

  /// Attached durability manager; nullptr when durability is off.
  DurabilityManager* durability() { return durability_.get(); }

  /// Durability counters (zeroed struct when durability is off).
  DurabilityStats durability_stats() const {
    return durability_ != nullptr ? durability_->stats() : DurabilityStats{};
  }

  /// Blocks until every captured checkpoint is durable; returns the first
  /// checkpoint failure since the last wait.
  Status WaitForCheckpoints() {
    return durability_ != nullptr ? durability_->WaitForCheckpoints()
                                  : Status::OK();
  }

 private:
  void CaptureStaleSnapshotLocked();
  const TomServiceProvider* StaleSp();

  /// Write-ahead update pipeline (see SaeSystem::RunUpdate); `apply` takes
  /// the auth-bytes out-param.
  template <typename Validate, typename Fn>
  Result<uint64_t> RunUpdate(uint64_t* op_counter, WalUpdate wal_update,
                             Validate&& validate, Fn&& apply);
  /// See SaeSystem::EffectiveHasRecord.
  bool EffectiveHasRecord(RecordId id) const;
  /// Load body shared with Recover; `ship` meters the DO->SP channel
  /// (recovery reads local disk, nothing crosses the network).
  Status LoadLocked(const std::vector<Record>& records, bool ship);
  /// Synchronous full checkpoint — the Load baseline (unique lock held).
  Status WriteSnapshotLocked();
  /// Cadence checkpoint: full or delta per the compaction schedule.
  Status CheckpointLocked();

  Options options_;
  RecordCodec codec_;
  TomDataOwner owner_;
  TomServiceProvider sp_;
  // mutable: const-shaped query paths feed it; the memo locks internally.
  mutable TomClientMemo client_memo_;
  sim::Channel do_sp_{"DO->SP"};
  sim::Channel sp_client_{"SP->Client"};
  std::atomic<uint64_t> attack_seed_{0xBADC0DE};

  mutable std::shared_mutex rw_mu_;
  std::atomic<uint64_t> published_epoch_{0};
  UpdateStats update_stats_;

  bool stale_captured_ = false;
  uint64_t stale_epoch_ = 0;
  crypto::RsaSignature stale_signature_;
  std::vector<Record> stale_records_;
  std::once_flag stale_build_once_;
  std::unique_ptr<TomServiceProvider> stale_sp_;

  // Group-commit pipeline state (see SaeSystem).
  uint64_t staged_epoch_ = 0;
  uint64_t wal_generation_ = 0;
  std::unordered_map<RecordId, std::pair<bool, uint64_t>> staged_presence_;
  std::condition_variable_any apply_cv_;
  bool wal_dead_ = false;

  // Crash safety (nullptr when options_.durability.enabled is false);
  // written under the unique lock.
  std::unique_ptr<DurabilityManager> durability_;
};

}  // namespace sae::core

#endif  // SAE_CORE_SYSTEM_H_
