// Copyright (c) saedb authors. Licensed under the MIT license.
//
// End-to-end harnesses wiring the entities of each outsourcing model with
// byte-metered channels. These are the top-level public API used by the
// examples and the figure benches: load a dataset, run authenticated range
// queries, optionally under an attacking SP, and read back per-party costs.

#ifndef SAE_CORE_SYSTEM_H_
#define SAE_CORE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/data_owner.h"
#include "core/malicious_sp.h"
#include "core/service_provider.h"
#include "core/tom.h"
#include "core/trusted_entity.h"
#include "sim/channel.h"
#include "util/status.h"

namespace sae::core {

/// Per-query measurements shared by both models.
struct QueryCosts {
  uint64_t sp_index_accesses = 0;  ///< index node accesses at the SP
  uint64_t sp_heap_accesses = 0;   ///< dataset-page accesses at the SP
  uint64_t te_accesses = 0;        ///< node accesses at the TE (SAE only)
  size_t auth_bytes = 0;     ///< authentication traffic (VT or VO message)
  size_t result_bytes = 0;   ///< result traffic (excluded from Fig. 5)
  double client_verify_ms = 0.0;  ///< wall-clock client verification time
};

/// Component-wise accumulation — per-query costs compose into batch totals.
inline QueryCosts& operator+=(QueryCosts& a, const QueryCosts& b) {
  a.sp_index_accesses += b.sp_index_accesses;
  a.sp_heap_accesses += b.sp_heap_accesses;
  a.te_accesses += b.te_accesses;
  a.auth_bytes += b.auth_bytes;
  a.result_bytes += b.result_bytes;
  a.client_verify_ms += b.client_verify_ms;
  return a;
}

struct SaeSystemOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t sp_index_pool_pages = 1024;
  size_t sp_heap_pool_pages = 1024;
  size_t te_pool_pages = 1024;
};

/// SAE: DO + conventional SP + TE + verifying client.
class SaeSystem {
 public:
  using Options = SaeSystemOptions;

  explicit SaeSystem(const Options& options = {});

  /// Installs and outsources the dataset (DO -> SP, DO -> TE).
  Status Load(const std::vector<Record>& records);

  struct QueryOutcome {
    std::vector<Record> results;  ///< what the (possibly malicious) SP sent
    crypto::Digest vt;            ///< the TE's token
    Status verification;          ///< OK iff the client accepted the result
    QueryCosts costs;
  };

  /// Client issues [lo, hi] to SP and TE simultaneously and verifies.
  /// Routed through a batch-of-one QueryEngine; for multi-query load build
  /// a core::QueryEngine with worker threads and pass it a batch.
  Result<QueryOutcome> Query(Key lo, Key hi,
                             AttackMode attack = AttackMode::kNone);

  /// The thread-safe single-query operation QueryEngine workers invoke:
  /// runs SP execution, TE token generation, and client verification
  /// entirely on the calling thread, attributing costs via per-thread pool
  /// counters and per-query channel sessions. Many threads may call this
  /// concurrently; updates (Insert/Delete/Load) require exclusive access.
  Result<QueryOutcome> ExecuteQuery(Key lo, Key hi,
                                    AttackMode attack = AttackMode::kNone);

  /// DO-side updates, propagated to SP and TE. Exclusive: do not run
  /// concurrently with queries.
  Status Insert(const Record& record);
  Status Delete(RecordId id);

  DataOwner& owner() { return owner_; }
  ServiceProvider& sp() { return sp_; }
  TrustedEntity& te() { return te_; }
  sim::Channel& do_sp_channel() { return do_sp_; }
  sim::Channel& do_te_channel() { return do_te_; }
  sim::Channel& sp_client_channel() { return sp_client_; }
  sim::Channel& te_client_channel() { return te_client_; }
  const RecordCodec& codec() const { return owner_.codec(); }

 private:
  Options options_;
  DataOwner owner_;
  ServiceProvider sp_;
  TrustedEntity te_;
  sim::Channel do_sp_{"DO->SP"};
  sim::Channel do_te_{"DO->TE"};
  sim::Channel sp_client_{"SP->Client"};
  sim::Channel te_client_{"TE->Client"};
  std::atomic<uint64_t> attack_seed_{0xBADC0DE};
};

struct TomSystemOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t rsa_modulus_bits = 1024;
  uint64_t rsa_seed = 0x5AE2009;
  size_t do_pool_pages = 1024;
  size_t sp_index_pool_pages = 1024;
  size_t sp_heap_pool_pages = 1024;
};

/// TOM: ADS-building DO + ADS-mirroring SP + VO-verifying client.
class TomSystem {
 public:
  using Options = TomSystemOptions;

  explicit TomSystem(const Options& options = {});

  Status Load(const std::vector<Record>& records);

  struct QueryOutcome {
    std::vector<Record> results;
    mbtree::VerificationObject vo;
    Status verification;
    QueryCosts costs;
  };

  /// Routed through a batch-of-one QueryEngine, like SaeSystem::Query.
  Result<QueryOutcome> Query(Key lo, Key hi,
                             AttackMode attack = AttackMode::kNone);

  /// Thread-safe single-query operation (see SaeSystem::ExecuteQuery).
  Result<QueryOutcome> ExecuteQuery(Key lo, Key hi,
                                    AttackMode attack = AttackMode::kNone);

  /// Updates flow DO -> SP together with a fresh root signature.
  /// Exclusive: do not run concurrently with queries.
  Status Insert(const Record& record);
  Status Delete(RecordId id);

  TomDataOwner& owner() { return owner_; }
  TomServiceProvider& sp() { return sp_; }
  sim::Channel& do_sp_channel() { return do_sp_; }
  sim::Channel& sp_client_channel() { return sp_client_; }
  const RecordCodec& codec() const { return codec_; }

 private:
  Options options_;
  RecordCodec codec_;
  TomDataOwner owner_;
  TomServiceProvider sp_;
  sim::Channel do_sp_{"DO->SP"};
  sim::Channel sp_client_{"SP->Client"};
  std::atomic<uint64_t> attack_seed_{0xBADC0DE};
};

}  // namespace sae::core

#endif  // SAE_CORE_SYSTEM_H_
