// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The trusted entity (TE) of SAE (paper §II-III). Holds, per outsourced
// record, the tuple t = <id, key, H(record)> organized in an XB-Tree, and
// answers verification requests with the 20-byte token
// VT = XOR of the digests of the true result.

#ifndef SAE_CORE_TRUSTED_ENTITY_H_
#define SAE_CORE_TRUSTED_ENTITY_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/answer_cache.h"
#include "core/epoch.h"
#include "crypto/digest.h"
#include "dbms/query.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "util/status.h"
#include "xbtree/xb_tree.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

struct TrustedEntityOptions {
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  size_t pool_pages = 1024;
  xbtree::XbTreeOptions xb_options;
  /// Epoch-keyed memo of generated tokens: a repeat of (range, epoch) skips
  /// the two tree traversals. The TE is trusted, so this is purely a perf
  /// knob — but the parity harness still proves hits bit-identical.
  AnswerCacheOptions vt_cache;
};

/// SAE's trusted entity. Owns its (simulated-disk) storage.
class TrustedEntity {
 public:
  using Options = TrustedEntityOptions;

  explicit TrustedEntity(const Options& options = {});

  /// Ingests the initial dataset: computes each record's digest and bulk
  /// loads the XB-Tree. Records must be sorted by key.
  Status LoadDataset(const std::vector<Record>& sorted);

  /// Registers a newly inserted record (DO update path).
  Status InsertRecord(const Record& record);

  /// Unregisters a record. The DO supplies key and id; the digest is found
  /// in (and removed from) the XB-Tree's duplicate chain.
  Status DeleteRecord(Key key, RecordId id);

  /// Produces the verification token for [lo, hi] — two O(log n) tree
  /// traversals, independent of the result size, stamped with the TE's
  /// current epoch. Safe to call from many threads concurrently (writers
  /// are fenced out by the owning system's reader-writer lock).
  Result<VerificationToken> GenerateVt(Key lo, Key hi) const;

  /// Operator-typed convenience: every plan operator is authenticated by
  /// the token over its underlying range — the TE needs no knowledge of
  /// the operator (the client recomputes aggregates from the witness).
  Result<VerificationToken> GenerateVt(const dbms::QueryRequest& request) const {
    return GenerateVt(request.lo, request.hi);
  }

  /// Epoch bookkeeping: the DO publishes a new epoch with every update
  /// shipment (DataOwner bumps, the TE records). Standalone TEs built
  /// without a DataOwner stay at epoch 0 and their tokens carry that.
  void SetEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
    vt_cache_.InvalidateAll();
  }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  const xbtree::XbTree& xb_tree() const { return *xb_; }

  AnswerCacheStats vt_cache_stats() const { return vt_cache_.stats(); }

  /// Snapshot of the pool's global counters; diff two snapshots to measure
  /// the work in between (replaces the racy reset-then-read pattern).
  storage::BufferPool::Stats pool_stats() const { return pool_.stats(); }

  /// Counters for fetches made by the calling thread only — exact per-query
  /// attribution when each query runs on one worker thread.
  storage::BufferPool::Stats pool_thread_stats() const {
    return pool_.ThreadStats();
  }

  /// Total storage footprint (XB-Tree nodes + duplicate pages).
  size_t StorageBytes() const { return xb_->SizeBytes(); }

  const RecordCodec& codec() const { return codec_; }

 private:
  Options options_;
  RecordCodec codec_;
  storage::InMemoryPageStore store_;
  // mutable: const reads fetch pages; the pool locks internally.
  mutable storage::BufferPool pool_;
  std::unique_ptr<xbtree::XbTree> xb_;
  std::atomic<uint64_t> epoch_{0};
  // mutable: const token generation fills the memo; it locks internally.
  mutable AnswerCache vt_cache_;
};

}  // namespace sae::core

#endif  // SAE_CORE_TRUSTED_ENTITY_H_
