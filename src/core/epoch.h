// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Epoch versioning for the update pipeline. The DO owns a monotonically
// increasing epoch counter: 0 before any data exists, 1 at the initial
// outsourcing, +1 per insert/delete. Every piece of authentication state a
// client consumes — the TE's verification token, the TOM root signature,
// the sigchain epoch token — is stamped with the epoch it speaks for, and
// verification rejects anything lagging the latest published epoch with
// StatusCode::kStaleEpoch. This is what defeats replay: a pre-update
// snapshot, however internally consistent, carries its old epoch.

#ifndef SAE_CORE_EPOCH_H_
#define SAE_CORE_EPOCH_H_

#include <cstdint>

#include "crypto/digest.h"

namespace sae::core {

/// The TE's reply to a verification request (paper §II, extended with the
/// epoch stamp): the XOR token plus the epoch of the TE state it reflects.
struct VerificationToken {
  uint64_t epoch = 0;
  crypto::Digest digest;

  friend bool operator==(const VerificationToken& a,
                         const VerificationToken& b) {
    return a.epoch == b.epoch && a.digest == b.digest;
  }
  friend bool operator!=(const VerificationToken& a,
                         const VerificationToken& b) {
    return !(a == b);
  }
};

}  // namespace sae::core

#endif  // SAE_CORE_EPOCH_H_
