// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements multi-attribute SAE (core/multi_attr.h): one XB-tree per
// indexed column sharing the per-record digests.

#include "core/multi_attr.h"

#include <algorithm>

#include "util/macros.h"

namespace sae::core {

MultiAttrTrustedEntity::MultiAttrTrustedEntity(
    std::vector<AttributeSpec> attributes, const Options& options)
    : options_(options),
      codec_(options.record_size),
      pool_(&store_, options.pool_pages) {
  SAE_CHECK(!attributes.empty());
  for (auto& spec : attributes) {
    AttrIndex index;
    index.spec = std::move(spec);
    auto tree = xbtree::XbTree::Create(&pool_);
    SAE_CHECK(tree.ok());
    index.tree = std::move(tree).ValueOrDie();
    indexes_.push_back(std::move(index));
  }
}

crypto::Digest MultiAttrTrustedEntity::RecordDigest(
    const Record& record) const {
  std::vector<uint8_t> bytes = codec_.Serialize(record);
  return crypto::ComputeDigest(bytes.data(), bytes.size(), options_.scheme);
}

Status MultiAttrTrustedEntity::LoadDataset(
    const std::vector<Record>& records) {
  // One batched digest pass over the dataset, shared by every attribute
  // index — the digest is attribute-independent, and record-at-a-time
  // hashing here bypassed the multi-buffer kernels entirely.
  std::vector<crypto::Digest> digests =
      storage::DigestRecords(records, codec_, options_.scheme);
  for (AttrIndex& index : indexes_) {
    std::vector<xbtree::XbTuple> tuples;
    tuples.reserve(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      tuples.push_back(xbtree::XbTuple{index.spec.extractor(records[i]),
                                       records[i].id, digests[i]});
    }
    std::sort(tuples.begin(), tuples.end(),
              [](const xbtree::XbTuple& a, const xbtree::XbTuple& b) {
                return a.key != b.key ? a.key < b.key : a.id < b.id;
              });
    SAE_RETURN_NOT_OK(index.tree->BulkLoad(tuples));
  }
  return Status::OK();
}

Status MultiAttrTrustedEntity::InsertRecord(const Record& record) {
  crypto::Digest digest = RecordDigest(record);
  for (AttrIndex& index : indexes_) {
    SAE_RETURN_NOT_OK(
        index.tree->Insert(index.spec.extractor(record), record.id, digest));
  }
  return Status::OK();
}

Status MultiAttrTrustedEntity::DeleteRecord(const Record& record) {
  for (AttrIndex& index : indexes_) {
    SAE_RETURN_NOT_OK(
        index.tree->Delete(index.spec.extractor(record), record.id));
  }
  return Status::OK();
}

Result<crypto::Digest> MultiAttrTrustedEntity::GenerateVt(
    const std::string& attribute, Key lo, Key hi) const {
  for (const AttrIndex& index : indexes_) {
    if (index.spec.name == attribute) {
      return index.tree->GenerateVT(lo, hi);
    }
  }
  return Status::NotFound("no such attribute: " + attribute);
}

std::vector<std::string> MultiAttrTrustedEntity::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const AttrIndex& index : indexes_) names.push_back(index.spec.name);
  return names;
}

size_t MultiAttrTrustedEntity::StorageBytes() const {
  size_t total = 0;
  for (const AttrIndex& index : indexes_) total += index.tree->SizeBytes();
  return total;
}

}  // namespace sae::core
