// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the service provider (core/service_provider.h): a plain
// dbms::Table answering range queries with no authentication machinery.

#include "core/service_provider.h"

#include "core/malicious_sp.h"
#include "core/messages.h"
#include "util/macros.h"

namespace sae::core {

ServiceProvider::ServiceProvider(const Options& options)
    : index_pool_(&index_store_, options.index_pool_pages),
      heap_pool_(&heap_store_, options.heap_pool_pages),
      answer_cache_(options.answer_cache) {
  auto table =
      dbms::Table::Create(&index_pool_, &heap_pool_, options.record_size);
  SAE_CHECK(table.ok());
  table_ = std::move(table).ValueOrDie();
}

Status ServiceProvider::LoadDataset(const std::vector<Record>& sorted) {
  answer_cache_.InvalidateAll();
  return table_->BulkLoad(sorted);
}

Status ServiceProvider::InsertRecord(const Record& record) {
  answer_cache_.InvalidateAll();
  return table_->Insert(record);
}

Status ServiceProvider::DeleteRecord(RecordId id) {
  answer_cache_.InvalidateAll();
  return table_->Delete(id);
}

Result<std::vector<Record>> ServiceProvider::ExecuteRange(Key lo,
                                                          Key hi) const {
  std::vector<Record> out;
  SAE_RETURN_NOT_OK(table_->RangeQuery(lo, hi, &out));
  return out;
}

Result<ServiceProvider::PlanResult> ServiceProvider::ComputePlan(
    const dbms::QueryRequest& request) const {
  PlanResult plan;
  SAE_ASSIGN_OR_RETURN(plan.witness, ExecuteRange(request.lo, request.hi));
  plan.answer = dbms::EvaluateAnswer(request, plan.witness);
  return plan;
}

Result<ServiceProvider::PlanResult> ServiceProvider::ExecutePlan(
    const dbms::QueryRequest& request) const {
  if (!answer_cache_.enabled()) return ComputePlan(request);
  AnswerCache::Key key = AnswerCache::Key::For(request, epoch());
  if (auto hit = answer_cache_.Lookup(key)) {
    SAE_ASSIGN_OR_RETURN(
        QueryAnswerMessage msg,
        DeserializeQueryAnswer(hit->answer_msg, table_->codec()));
    return PlanResult{std::move(msg.answer), std::move(msg.witness)};
  }
  SAE_ASSIGN_OR_RETURN(PlanResult plan, ComputePlan(request));
  CachedAnswer entry;
  entry.answer_msg = SerializeQueryAnswer(plan.answer, plan.witness,
                                          key.epoch, table_->codec());
  answer_cache_.Insert(key, std::move(entry));
  return plan;
}

Result<ServiceProvider::PlanResult> ServiceProvider::ExecutePoisonedPlan(
    const dbms::QueryRequest& request, uint64_t seed) const {
  SAE_ASSIGN_OR_RETURN(PlanResult plan, ComputePlan(request));
  plan.witness = ApplyAttack(plan.witness, AttackMode::kTamperPayload,
                             table_->codec(), seed);
  plan.answer = dbms::EvaluateAnswer(request, plan.witness);
  if (answer_cache_.enabled()) {
    AnswerCache::Key key = AnswerCache::Key::For(request, epoch());
    CachedAnswer entry;
    entry.answer_msg = SerializeQueryAnswer(plan.answer, plan.witness,
                                            key.epoch, table_->codec());
    answer_cache_.Insert(key, std::move(entry));
  }
  return plan;
}

}  // namespace sae::core
