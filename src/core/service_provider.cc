// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the service provider (core/service_provider.h): a plain
// dbms::Table answering range queries with no authentication machinery.

#include "core/service_provider.h"

#include "util/macros.h"

namespace sae::core {

ServiceProvider::ServiceProvider(const Options& options)
    : index_pool_(&index_store_, options.index_pool_pages),
      heap_pool_(&heap_store_, options.heap_pool_pages) {
  auto table =
      dbms::Table::Create(&index_pool_, &heap_pool_, options.record_size);
  SAE_CHECK(table.ok());
  table_ = std::move(table).ValueOrDie();
}

Status ServiceProvider::LoadDataset(const std::vector<Record>& sorted) {
  return table_->BulkLoad(sorted);
}

Status ServiceProvider::InsertRecord(const Record& record) {
  return table_->Insert(record);
}

Status ServiceProvider::DeleteRecord(RecordId id) {
  return table_->Delete(id);
}

Result<std::vector<Record>> ServiceProvider::ExecuteRange(Key lo,
                                                          Key hi) const {
  std::vector<Record> out;
  SAE_RETURN_NOT_OK(table_->RangeQuery(lo, hi, &out));
  return out;
}

Result<ServiceProvider::PlanResult> ServiceProvider::ExecutePlan(
    const dbms::QueryRequest& request) const {
  PlanResult plan;
  SAE_ASSIGN_OR_RETURN(plan.witness, ExecuteRange(request.lo, request.hi));
  plan.answer = dbms::EvaluateAnswer(request, plan.witness);
  return plan;
}

}  // namespace sae::core
