// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Wire formats for the messages exchanged between DO, SP, TE and clients.
// Everything that crosses an entity boundary is serialized so the metered
// channel sizes (sim::Channel) reflect genuine transmission overhead.

#ifndef SAE_CORE_MESSAGES_H_
#define SAE_CORE_MESSAGES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/epoch.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "dbms/query.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordCodec;

/// Dataset shipment (DO -> SP, DO -> TE): count + fixed-size record images.
std::vector<uint8_t> SerializeRecords(const std::vector<Record>& records,
                                      const RecordCodec& codec);
Result<std::vector<Record>> DeserializeRecords(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec);

/// Range query (client -> SP and client -> TE).
std::vector<uint8_t> SerializeQuery(Key lo, Key hi);
Result<std::pair<Key, Key>> DeserializeQuery(
    const std::vector<uint8_t>& bytes);

/// Verified query plan (client -> SP and client -> TE): operator + range +
/// top-k limit — the operator-aware successor of SerializeQuery.
/// tag(1) + op(1) + lo(4 LE) + hi(4 LE) + limit(4 LE) = 14 bytes.
std::vector<uint8_t> SerializeQueryRequest(const dbms::QueryRequest& request);
Result<dbms::QueryRequest> DeserializeQueryRequest(
    const std::vector<uint8_t>& bytes);

/// A decoded operator answer shipment (see SerializeQueryAnswer).
struct QueryAnswerMessage {
  dbms::QueryAnswer answer;       ///< the SP's claimed derived answer
  std::vector<Record> witness;    ///< the range record set the proof covers
  uint64_t epoch = 0;             ///< the epoch the SP claims to answer from
};

/// Operator answer shipment (SP -> client), the operator-aware successor of
/// SerializeResults: the claimed epoch, the derived answer fields, the
/// answer rows (top-k only — scan/point rows ARE the witness and ship/live
/// exactly once, as the witness), and the witness records the range proof
/// authenticates.
std::vector<uint8_t> SerializeQueryAnswer(const dbms::QueryAnswer& answer,
                                          const std::vector<Record>& witness,
                                          uint64_t epoch,
                                          const RecordCodec& codec);
Result<QueryAnswerMessage> DeserializeQueryAnswer(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec);

/// Verification token (TE -> client): epoch stamp + one digest —
/// tag(1) + epoch(8 LE) + digest(20) = 29 bytes, still constant size.
std::vector<uint8_t> SerializeVt(const VerificationToken& vt);
Result<VerificationToken> DeserializeVt(const std::vector<uint8_t>& bytes);

/// Result shipment (SP -> client): the SP's claimed epoch ("my answer is as
/// of epoch e") followed by the result records. An SP serving from a stale
/// snapshot honestly stamps the snapshot's epoch and is caught by the
/// freshness check; lying about the stamp degrades it to an ordinary
/// soundness failure against the fresh VT/VO.
std::vector<uint8_t> SerializeResults(const std::vector<Record>& records,
                                      uint64_t epoch,
                                      const RecordCodec& codec);
Result<std::pair<std::vector<Record>, uint64_t>> DeserializeResults(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec);

/// Epoch publication (DO -> SP, DO -> TE in SAE): announces that the update
/// just shipped advances the database to `epoch`.
std::vector<uint8_t> SerializeEpochNotice(uint64_t epoch);
Result<uint64_t> DeserializeEpochNotice(const std::vector<uint8_t>& bytes);

/// Deletion notice (DO -> SP, DO -> TE): which record disappears and under
/// which key it was indexed.
std::vector<uint8_t> SerializeDelete(storage::RecordId id, Key key);
Result<std::pair<storage::RecordId, Key>> DeserializeDelete(
    const std::vector<uint8_t>& bytes);

/// Shard epoch vector (DO -> client in a sharded deployment): the latest
/// published epoch of every shard, indexed by shard id — the client's
/// freshness reference for composite verification. A fresh answer matches
/// this vector shard-for-shard; a slice lagging its entry is stale, and a
/// mix of fresh and lagging slices in one answer is shard epoch skew.
std::vector<uint8_t> SerializeShardEpochs(const std::vector<uint64_t>& epochs);
Result<std::vector<uint64_t>> DeserializeShardEpochs(
    const std::vector<uint8_t>& bytes);

/// Root signature shipment (DO -> SP in TOM): the signature over the
/// epoch-stamped root commitment plus the epoch it speaks for.
std::vector<uint8_t> SerializeSignature(const crypto::RsaSignature& sig,
                                        uint64_t epoch);
Result<std::pair<crypto::RsaSignature, uint64_t>> DeserializeSignature(
    const std::vector<uint8_t>& bytes);

}  // namespace sae::core

#endif  // SAE_CORE_MESSAGES_H_
