// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Wire formats for the messages exchanged between DO, SP, TE and clients.
// Everything that crosses an entity boundary is serialized so the metered
// channel sizes (sim::Channel) reflect genuine transmission overhead.

#ifndef SAE_CORE_MESSAGES_H_
#define SAE_CORE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordCodec;

/// Dataset shipment (DO -> SP, DO -> TE): count + fixed-size record images.
std::vector<uint8_t> SerializeRecords(const std::vector<Record>& records,
                                      const RecordCodec& codec);
Result<std::vector<Record>> DeserializeRecords(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec);

/// Range query (client -> SP and client -> TE).
std::vector<uint8_t> SerializeQuery(Key lo, Key hi);
Result<std::pair<Key, Key>> DeserializeQuery(
    const std::vector<uint8_t>& bytes);

/// Verification token (TE -> client): exactly one digest, 20 bytes + tag.
std::vector<uint8_t> SerializeVt(const crypto::Digest& vt);
Result<crypto::Digest> DeserializeVt(const std::vector<uint8_t>& bytes);

/// Deletion notice (DO -> SP, DO -> TE): which record disappears and under
/// which key it was indexed.
std::vector<uint8_t> SerializeDelete(storage::RecordId id, Key key);
Result<std::pair<storage::RecordId, Key>> DeserializeDelete(
    const std::vector<uint8_t>& bytes);

/// Root signature shipment (DO -> SP in TOM).
std::vector<uint8_t> SerializeSignature(const crypto::RsaSignature& sig);
Result<crypto::RsaSignature> DeserializeSignature(
    const std::vector<uint8_t>& bytes);

}  // namespace sae::core

#endif  // SAE_CORE_MESSAGES_H_
