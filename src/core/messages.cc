// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the wire formats (core/messages.h) serialized across the
// byte-metered entity channels.

#include "core/messages.h"

#include "util/codec.h"

namespace sae::core {

namespace {
constexpr uint8_t kTagRecords = 0x01;
constexpr uint8_t kTagQuery = 0x02;
constexpr uint8_t kTagVt = 0x03;
constexpr uint8_t kTagSignature = 0x04;
constexpr uint8_t kTagDelete = 0x05;
constexpr uint8_t kTagEpochNotice = 0x06;
constexpr uint8_t kTagResults = 0x07;
constexpr uint8_t kTagShardEpochs = 0x08;
constexpr uint8_t kTagQueryRequest = 0x09;
constexpr uint8_t kTagQueryAnswer = 0x0A;

void PutRecords(ByteWriter* w, const std::vector<Record>& records,
                const RecordCodec& codec) {
  w->PutU64(records.size());
  std::vector<uint8_t> scratch(codec.record_size());
  for (const Record& record : records) {
    codec.Serialize(record, scratch.data());
    w->PutBytes(scratch.data(), scratch.size());
  }
}

// Reads `count` fixed-size records; false on truncation.
bool GetRecords(ByteReader* r, uint64_t count, const RecordCodec& codec,
                std::vector<Record>* out) {
  if (count > r->remaining() / codec.record_size()) return false;
  out->reserve(size_t(count));
  std::vector<uint8_t> scratch(codec.record_size());
  for (uint64_t i = 0; i < count; ++i) {
    if (!r->GetBytes(scratch.data(), scratch.size())) return false;
    out->push_back(codec.Deserialize(scratch.data()));
  }
  return true;
}
}  // namespace

std::vector<uint8_t> SerializeQueryRequest(
    const dbms::QueryRequest& request) {
  ByteWriter w;
  w.PutU8(kTagQueryRequest);
  w.PutU8(uint8_t(request.op));
  w.PutU32(request.lo);
  w.PutU32(request.hi);
  w.PutU32(request.limit);
  return w.Release();
}

Result<dbms::QueryRequest> DeserializeQueryRequest(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagQueryRequest) {
    return Status::Corruption("not a query request message");
  }
  uint8_t op = r.GetU8();
  if (op > uint8_t(dbms::QueryOp::kTopK)) {
    return Status::Corruption("unknown query operator");
  }
  dbms::QueryRequest request;
  request.op = dbms::QueryOp(op);
  request.lo = r.GetU32();
  request.hi = r.GetU32();
  request.limit = r.GetU32();
  if (r.failed() || r.remaining() != 0) {
    return Status::Corruption("query request message truncated");
  }
  return request;
}

std::vector<uint8_t> SerializeQueryAnswer(const dbms::QueryAnswer& answer,
                                          const std::vector<Record>& witness,
                                          uint64_t epoch,
                                          const RecordCodec& codec) {
  ByteWriter w;
  w.PutU8(kTagQueryAnswer);
  w.PutU8(uint8_t(answer.op));
  w.PutU64(epoch);
  w.PutU64(answer.count);
  w.PutU64(answer.sum);
  w.PutU8(answer.has_extrema ? 1 : 0);
  w.PutU32(answer.min_key);
  w.PutU32(answer.max_key);
  w.PutU32(uint32_t(codec.record_size()));
  // Scan/point answer rows are the witness itself; ship them once. Only
  // top-k carries a distinct (ranked, truncated) row set of its own.
  if (answer.op == dbms::QueryOp::kTopK) {
    PutRecords(&w, answer.records, codec);
  } else {
    w.PutU64(0);
  }
  PutRecords(&w, witness, codec);
  return w.Release();
}

Result<QueryAnswerMessage> DeserializeQueryAnswer(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagQueryAnswer) {
    return Status::Corruption("not a query answer message");
  }
  uint8_t op = r.GetU8();
  if (op > uint8_t(dbms::QueryOp::kTopK)) {
    return Status::Corruption("unknown query operator");
  }
  QueryAnswerMessage msg;
  msg.answer.op = dbms::QueryOp(op);
  msg.epoch = r.GetU64();
  msg.answer.count = r.GetU64();
  msg.answer.sum = r.GetU64();
  msg.answer.has_extrema = r.GetU8() != 0;
  msg.answer.min_key = r.GetU32();
  msg.answer.max_key = r.GetU32();
  if (r.failed() || r.GetU32() != codec.record_size()) {
    return Status::Corruption("record size mismatch");
  }
  uint64_t n_answer = r.GetU64();
  if (r.failed() || !GetRecords(&r, n_answer, codec, &msg.answer.records)) {
    return Status::Corruption("query answer rows truncated");
  }
  uint64_t n_witness = r.GetU64();
  // Overflow-safe cardinality check, as in DeserializeRecords: the witness
  // must consume the remainder of the message exactly.
  if (r.failed() || r.remaining() % codec.record_size() != 0 ||
      n_witness != r.remaining() / codec.record_size() ||
      !GetRecords(&r, n_witness, codec, &msg.witness)) {
    return Status::Corruption("query answer witness truncated");
  }
  if (msg.answer.op != dbms::QueryOp::kTopK && n_answer != 0) {
    // Only top-k ships answer rows of its own; scan/point rows are the
    // witness (held once in `witness`, see dbms::OpReturnsRecords).
    return Status::Corruption("non-top-k answer carries its own rows");
  }
  return msg;
}

std::vector<uint8_t> SerializeShardEpochs(
    const std::vector<uint64_t>& epochs) {
  ByteWriter w;
  w.PutU8(kTagShardEpochs);
  w.PutU32(uint32_t(epochs.size()));
  for (uint64_t epoch : epochs) w.PutU64(epoch);
  return w.Release();
}

Result<std::vector<uint64_t>> DeserializeShardEpochs(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagShardEpochs) {
    return Status::Corruption("not a shard epoch vector message");
  }
  uint32_t count = r.GetU32();
  if (r.failed() || r.remaining() != size_t(count) * 8) {
    return Status::Corruption("shard epoch vector truncated");
  }
  std::vector<uint64_t> epochs;
  epochs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) epochs.push_back(r.GetU64());
  return epochs;
}

std::vector<uint8_t> SerializeRecords(const std::vector<Record>& records,
                                      const RecordCodec& codec) {
  ByteWriter w;
  w.PutU8(kTagRecords);
  w.PutU32(uint32_t(codec.record_size()));
  w.PutU64(records.size());
  std::vector<uint8_t> scratch(codec.record_size());
  for (const Record& record : records) {
    codec.Serialize(record, scratch.data());
    w.PutBytes(scratch.data(), scratch.size());
  }
  return w.Release();
}

Result<std::vector<Record>> DeserializeRecords(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagRecords) {
    return Status::Corruption("not a records message");
  }
  if (r.GetU32() != codec.record_size()) {
    return Status::Corruption("record size mismatch");
  }
  uint64_t count = r.GetU64();
  // Overflow-safe cardinality check: count * record_size could wrap.
  if (r.failed() || r.remaining() % codec.record_size() != 0 ||
      count != r.remaining() / codec.record_size()) {
    return Status::Corruption("records message truncated");
  }
  std::vector<Record> records;
  records.reserve(count);
  std::vector<uint8_t> scratch(codec.record_size());
  for (uint64_t i = 0; i < count; ++i) {
    if (!r.GetBytes(scratch.data(), scratch.size())) {
      return Status::Corruption("records message truncated");
    }
    records.push_back(codec.Deserialize(scratch.data()));
  }
  return records;
}

std::vector<uint8_t> SerializeQuery(Key lo, Key hi) {
  ByteWriter w;
  w.PutU8(kTagQuery);
  w.PutU32(lo);
  w.PutU32(hi);
  return w.Release();
}

Result<std::pair<Key, Key>> DeserializeQuery(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagQuery) {
    return Status::Corruption("not a query message");
  }
  Key lo = r.GetU32();
  Key hi = r.GetU32();
  if (r.failed()) return Status::Corruption("query message truncated");
  return std::make_pair(lo, hi);
}

std::vector<uint8_t> SerializeVt(const VerificationToken& vt) {
  ByteWriter w;
  w.PutU8(kTagVt);
  w.PutU64(vt.epoch);
  w.PutBytes(vt.digest.bytes.data(), vt.digest.bytes.size());
  return w.Release();
}

Result<VerificationToken> DeserializeVt(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagVt) {
    return Status::Corruption("not a VT message");
  }
  VerificationToken vt;
  vt.epoch = r.GetU64();
  if (!r.GetBytes(vt.digest.bytes.data(), vt.digest.bytes.size()) ||
      r.failed()) {
    return Status::Corruption("VT message truncated");
  }
  return vt;
}

std::vector<uint8_t> SerializeResults(const std::vector<Record>& records,
                                      uint64_t epoch,
                                      const RecordCodec& codec) {
  ByteWriter w;
  w.PutU8(kTagResults);
  w.PutU64(epoch);
  w.PutU32(uint32_t(codec.record_size()));
  w.PutU64(records.size());
  std::vector<uint8_t> scratch(codec.record_size());
  for (const Record& record : records) {
    codec.Serialize(record, scratch.data());
    w.PutBytes(scratch.data(), scratch.size());
  }
  return w.Release();
}

Result<std::pair<std::vector<Record>, uint64_t>> DeserializeResults(
    const std::vector<uint8_t>& bytes, const RecordCodec& codec) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagResults) {
    return Status::Corruption("not a results message");
  }
  uint64_t epoch = r.GetU64();
  if (r.GetU32() != codec.record_size()) {
    return Status::Corruption("record size mismatch");
  }
  uint64_t count = r.GetU64();
  // Overflow-safe cardinality check: count * record_size could wrap.
  if (r.failed() || r.remaining() % codec.record_size() != 0 ||
      count != r.remaining() / codec.record_size()) {
    return Status::Corruption("results message truncated");
  }
  std::vector<Record> records;
  records.reserve(count);
  std::vector<uint8_t> scratch(codec.record_size());
  for (uint64_t i = 0; i < count; ++i) {
    if (!r.GetBytes(scratch.data(), scratch.size())) {
      return Status::Corruption("results message truncated");
    }
    records.push_back(codec.Deserialize(scratch.data()));
  }
  return std::make_pair(std::move(records), epoch);
}

std::vector<uint8_t> SerializeEpochNotice(uint64_t epoch) {
  ByteWriter w;
  w.PutU8(kTagEpochNotice);
  w.PutU64(epoch);
  return w.Release();
}

Result<uint64_t> DeserializeEpochNotice(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagEpochNotice) {
    return Status::Corruption("not an epoch notice");
  }
  uint64_t epoch = r.GetU64();
  if (r.failed()) return Status::Corruption("epoch notice truncated");
  return epoch;
}

std::vector<uint8_t> SerializeDelete(storage::RecordId id, Key key) {
  ByteWriter w;
  w.PutU8(kTagDelete);
  w.PutU64(id);
  w.PutU32(key);
  return w.Release();
}

Result<std::pair<storage::RecordId, Key>> DeserializeDelete(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagDelete) {
    return Status::Corruption("not a delete message");
  }
  storage::RecordId id = r.GetU64();
  Key key = r.GetU32();
  if (r.failed()) return Status::Corruption("delete message truncated");
  return std::make_pair(id, key);
}

std::vector<uint8_t> SerializeSignature(const crypto::RsaSignature& sig,
                                        uint64_t epoch) {
  ByteWriter w;
  w.PutU8(kTagSignature);
  w.PutU64(epoch);
  w.PutU16(uint16_t(sig.size()));
  w.PutBytes(sig.data(), sig.size());
  return w.Release();
}

Result<std::pair<crypto::RsaSignature, uint64_t>> DeserializeSignature(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagSignature) {
    return Status::Corruption("not a signature message");
  }
  uint64_t epoch = r.GetU64();
  uint16_t len = r.GetU16();
  crypto::RsaSignature sig(len);
  if (!r.GetBytes(sig.data(), len) || r.failed()) {
    return Status::Corruption("signature message truncated");
  }
  return std::make_pair(std::move(sig), epoch);
}

}  // namespace sae::core
