// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the epoch-keyed answer cache (core/answer_cache.h).

#include "core/answer_cache.h"

namespace sae::core {

AnswerCache::Key AnswerCache::Key::For(const dbms::QueryRequest& request,
                                       uint64_t epoch) {
  Key key;
  key.op = request.op;
  key.lo = request.lo;
  key.hi = request.hi;
  key.limit = request.limit;
  key.epoch = epoch;
  return key;
}

size_t AnswerCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the key fields; cheap and stable.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(uint64_t(k.op));
  mix(uint64_t(k.lo));
  mix(uint64_t(k.hi));
  mix(uint64_t(k.limit));
  mix(k.epoch);
  return size_t(h);
}

AnswerCache::AnswerCache(const AnswerCacheOptions& options)
    : options_(options) {}

std::shared_ptr<const CachedAnswer> AnswerCache::Lookup(const Key& key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.value;
}

void AnswerCache::Insert(const Key& key, CachedAnswer value) {
  if (!enabled()) return;
  auto holder = std::make_shared<const CachedAnswer>(std::move(value));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent readers may race to fill the same miss; last writer wins
    // (both computed the same honest bytes).
    it->second.value = std::move(holder);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (map_.size() >= options_.max_entries) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_[key] = Entry{std::move(holder), lru_.begin()};
  ++stats_.insertions;
}

void AnswerCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += map_.size();
  map_.clear();
  lru_.clear();
}

AnswerCacheStats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void AnswerCache::MutateEntries(
    const std::function<void(CachedAnswer*)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : map_) {
    CachedAnswer mutated = *entry.value;
    fn(&mutated);
    entry.value = std::make_shared<const CachedAnswer>(std::move(mutated));
  }
}

}  // namespace sae::core
