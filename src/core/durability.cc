// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the durability subsystem (core/durability.h): WAL-record,
// snapshot and delta codecs, the chain-composing open/recovery path, the
// stage/commit write path, and the background checkpoint pipeline.

#include "core/durability.h"

#include <algorithm>
#include <chrono>

#include "util/codec.h"

namespace sae::core {

namespace {

void PutRecord(ByteWriter* w, const Record& record) {
  w->PutU64(record.id);
  w->PutU32(record.key);
  w->PutU32(uint32_t(record.payload.size()));
  w->PutBytes(record.payload.data(), record.payload.size());
}

bool GetRecord(ByteReader* r, Record* out) {
  out->id = r->GetU64();
  out->key = r->GetU32();
  uint32_t len = r->GetU32();
  if (r->failed() || len > r->remaining()) return false;
  out->payload.resize(len);
  return len == 0 || r->GetBytes(out->payload.data(), len);
}

std::vector<Record> SortedByKey(std::map<RecordId, Record> by_id) {
  std::vector<Record> records;
  records.reserve(by_id.size());
  for (auto& [id, record] : by_id) records.push_back(std::move(record));
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  return records;
}

}  // namespace

std::vector<uint8_t> EncodeWalUpdate(const WalUpdate& update) {
  ByteWriter w;
  w.PutU8(update.op);
  w.PutU64(update.epoch);
  if (update.op == WalUpdate::kInsert) {
    PutRecord(&w, update.record);
  } else if (update.op == WalUpdate::kDelete) {
    w.PutU64(update.id);
  }  // kAbort carries op + epoch only
  return w.Release();
}

Result<WalUpdate> DecodeWalUpdate(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  WalUpdate update;
  update.op = r.GetU8();
  update.epoch = r.GetU64();
  if (update.op == WalUpdate::kInsert) {
    if (!GetRecord(&r, &update.record)) {
      return Status::Corruption("wal insert record does not decode");
    }
  } else if (update.op == WalUpdate::kDelete) {
    update.id = r.GetU64();
  } else if (update.op != WalUpdate::kAbort) {
    return Status::Corruption("wal record has unknown op");
  }
  if (r.failed() || r.remaining() != 0 || update.epoch == 0) {
    return Status::Corruption("wal record does not decode");
  }
  return update;
}

std::vector<uint8_t> EncodeSnapshotState(const SnapshotState& state) {
  ByteWriter w;
  w.PutU8(state.model);
  w.PutU32(state.record_size);
  w.PutU8(uint8_t(state.scheme));
  w.PutU32(uint32_t(state.records.size()));
  for (const Record& record : state.records) PutRecord(&w, record);
  w.PutU32(uint32_t(state.signature.size()));
  w.PutBytes(state.signature.data(), state.signature.size());
  return w.Release();
}

Result<SnapshotState> DecodeSnapshotState(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  SnapshotState state;
  state.model = r.GetU8();
  state.record_size = r.GetU32();
  uint8_t scheme = r.GetU8();
  uint32_t count = r.GetU32();
  if (state.model != SnapshotState::kSae && state.model != SnapshotState::kTom) {
    return Status::Corruption("snapshot has unknown model tag");
  }
  if (scheme > uint8_t(crypto::HashScheme::kSha256Trunc)) {
    return Status::Corruption("snapshot has unknown hash scheme");
  }
  state.scheme = crypto::HashScheme(scheme);
  state.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Record record;
    if (!GetRecord(&r, &record)) {
      return Status::Corruption("snapshot record does not decode");
    }
    state.records.push_back(std::move(record));
  }
  uint32_t sig_len = r.GetU32();
  if (r.failed() || sig_len > r.remaining()) {
    return Status::Corruption("snapshot signature does not decode");
  }
  state.signature.resize(sig_len);
  if (sig_len > 0 && !r.GetBytes(state.signature.data(), sig_len)) {
    return Status::Corruption("snapshot signature does not decode");
  }
  if (r.remaining() != 0) {
    return Status::Corruption("snapshot payload has trailing bytes");
  }
  return state;
}

std::vector<uint8_t> EncodeDeltaState(const DeltaState& state) {
  ByteWriter w;
  w.PutU8(state.model);
  w.PutU32(state.record_size);
  w.PutU8(uint8_t(state.scheme));
  w.PutU32(uint32_t(state.upserts.size()));
  for (const Record& record : state.upserts) PutRecord(&w, record);
  w.PutU32(uint32_t(state.removes.size()));
  for (RecordId id : state.removes) w.PutU64(id);
  w.PutU32(uint32_t(state.signature.size()));
  w.PutBytes(state.signature.data(), state.signature.size());
  return w.Release();
}

Result<DeltaState> DecodeDeltaState(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  DeltaState state;
  state.model = r.GetU8();
  state.record_size = r.GetU32();
  uint8_t scheme = r.GetU8();
  uint32_t upserts = r.GetU32();
  if (state.model != SnapshotState::kSae && state.model != SnapshotState::kTom) {
    return Status::Corruption("delta has unknown model tag");
  }
  if (scheme > uint8_t(crypto::HashScheme::kSha256Trunc)) {
    return Status::Corruption("delta has unknown hash scheme");
  }
  state.scheme = crypto::HashScheme(scheme);
  state.upserts.reserve(upserts);
  for (uint32_t i = 0; i < upserts; ++i) {
    Record record;
    if (!GetRecord(&r, &record)) {
      return Status::Corruption("delta upsert record does not decode");
    }
    state.upserts.push_back(std::move(record));
  }
  uint32_t removes = r.GetU32();
  if (r.failed() || uint64_t(removes) * 8 > r.remaining()) {
    return Status::Corruption("delta remove list does not decode");
  }
  state.removes.reserve(removes);
  for (uint32_t i = 0; i < removes; ++i) state.removes.push_back(r.GetU64());
  uint32_t sig_len = r.GetU32();
  if (r.failed() || sig_len > r.remaining()) {
    return Status::Corruption("delta signature does not decode");
  }
  state.signature.resize(sig_len);
  if (sig_len > 0 && !r.GetBytes(state.signature.data(), sig_len)) {
    return Status::Corruption("delta signature does not decode");
  }
  if (r.remaining() != 0) {
    return Status::Corruption("delta payload has trailing bytes");
  }
  return state;
}

DurabilityManager::DurabilityManager(const DurabilityOptions& options,
                                     storage::Vfs* vfs)
    : options_(options),
      vfs_(vfs),
      snapshots_(vfs, options.dir, options.keep_snapshots) {}

DurabilityManager::~DurabilityManager() {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_stop_ = true;
    ckpt_cv_.notify_all();
  }
  if (ckpt_thread_.joinable()) ckpt_thread_.join();
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options) {
  if (!options.enabled || options.dir.empty()) {
    return Status::InvalidArgument("durability needs enabled=true and a dir");
  }
  storage::Vfs* vfs =
      options.vfs != nullptr ? options.vfs : storage::Vfs::Default();
  SAE_RETURN_NOT_OK(vfs->MkDir(options.dir));
  auto mgr = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(options, vfs));

  // Compose the newest intact chain: the base full snapshot, then every
  // delta that validly links onto it. Each link's removes-then-upserts
  // replays the net changes of its checkpoint window; the tail's signature
  // speaks for the composed state.
  auto chain = mgr->snapshots_.LoadChain();
  if (chain.ok()) {
    SAE_ASSIGN_OR_RETURN(SnapshotState base,
                         DecodeSnapshotState(chain.value().base_payload));
    std::map<RecordId, Record> by_id;
    for (Record& record : base.records) {
      RecordId id = record.id;
      by_id[id] = std::move(record);
    }
    uint64_t tail_epoch = chain.value().base_epoch;
    std::vector<uint8_t> signature = std::move(base.signature);
    for (storage::SnapshotStore::ChainLink& link : chain.value().deltas) {
      SAE_ASSIGN_OR_RETURN(DeltaState delta, DecodeDeltaState(link.payload));
      if (delta.model != base.model ||
          delta.record_size != base.record_size ||
          delta.scheme != base.scheme) {
        return Status::Corruption(
            "delta configuration does not match its chain base");
      }
      for (RecordId id : delta.removes) by_id.erase(id);
      for (Record& record : delta.upserts) {
        RecordId id = record.id;
        by_id[id] = std::move(record);
      }
      signature = std::move(delta.signature);
      tail_epoch = link.epoch;
    }
    SnapshotState composed;
    composed.model = base.model;
    composed.record_size = base.record_size;
    composed.scheme = base.scheme;
    composed.records = SortedByKey(std::move(by_id));
    composed.signature = std::move(signature);
    mgr->recovered_.has_snapshot = true;
    mgr->recovered_.snapshot_epoch = tail_epoch;
    mgr->recovered_.snapshot_fell_back = chain.value().fell_back;
    mgr->recovered_.chain_deltas = chain.value().deltas.size();
    mgr->recovered_.snapshot = std::move(composed);
    mgr->have_chain_ = true;
    mgr->chain_tail_epoch_ = tail_epoch;
    mgr->chain_length_ = chain.value().deltas.size();
    mgr->meta_model_ = base.model;
    mgr->meta_record_size_ = base.record_size;
    mgr->meta_scheme_ = base.scheme;
  } else if (chain.status().code() != StatusCode::kNotFound) {
    return chain.status();
  }

  // Open the WAL: the checksum scan already cut any torn tail; a crc-valid
  // record that fails to DECODE also ends the replayable prefix (it cannot
  // have been written by the stage path), and so does a record whose epoch
  // neither precedes the composed chain tail (redundant, skipped by the
  // system) nor chains contiguously out of it (an orphan of a newer chain
  // this recovery fell back behind) — truncate there, never crash on
  // garbage, never replay past it.
  storage::WalContents contents;
  SAE_ASSIGN_OR_RETURN(mgr->wal_, storage::WriteAheadLog::Open(
                                      vfs, options.dir, &contents));
  mgr->recovered_.wal_truncated = contents.torn_tail;
  size_t keep = 0;
  bool cut = false;
  uint64_t expected = mgr->recovered_.snapshot_epoch + 1;
  for (const std::vector<uint8_t>& payload : contents.records) {
    auto update = DecodeWalUpdate(payload);
    if (!update.ok()) {
      cut = true;
      break;
    }
    if (update.value().op == WalUpdate::kAbort) {
      // A durable retraction: every record logged before it with epoch >=
      // the abort's epoch was acknowledged as FAILED. Those records form a
      // suffix of the tail (staged epochs only grow between aborts) — drop
      // them, and rewind the contiguity cursor so re-staged epochs chain
      // on. The cursor only ever rewinds here: a corrupt forward abort
      // cannot smuggle an epoch gap past the scan.
      uint64_t first = update.value().epoch;
      std::vector<WalUpdate>& tail = mgr->recovered_.wal_tail;
      while (!tail.empty() && tail.back().epoch >= first) tail.pop_back();
      if (first < expected) {
        expected = std::max(first, mgr->recovered_.snapshot_epoch + 1);
      }
      ++keep;
      continue;
    }
    if (mgr->recovered_.has_snapshot) {
      uint64_t epoch = update.value().epoch;
      if (epoch > mgr->recovered_.snapshot_epoch) {
        if (epoch != expected) {
          cut = true;
          break;
        }
        ++expected;
      }
    }
    mgr->recovered_.wal_tail.push_back(std::move(update.value()));
    ++keep;
  }
  if (cut) {
    mgr->recovered_.wal_truncated = true;
    SAE_RETURN_NOT_OK(mgr->wal_->TruncateAfterRecord(keep));
  }
  return mgr;
}

Result<uint64_t> DurabilityManager::StageUpdate(const WalUpdate& update) {
  SAE_ASSIGN_OR_RETURN(uint64_t seq, wal_->Stage(EncodeWalUpdate(update)));
  std::lock_guard<std::mutex> lock(state_mu_);
  RecordId id = update.op == WalUpdate::kInsert ? update.record.id : update.id;
  auto it = pending_.find(id);
  last_staged_id_ = id;
  last_staged_had_prev_ = it != pending_.end();
  if (last_staged_had_prev_) last_staged_prev_ = it->second;
  undo_armed_ = true;
  PendingChange change;
  change.present = update.op == WalUpdate::kInsert;
  if (change.present) change.record = update.record;
  pending_[id] = std::move(change);
  return seq;
}

Status DurabilityManager::CommitStaged(uint64_t seq) {
  return wal_->Commit(
      seq, options_.wal_group_commit ? options_.max_group_delay_us : 0);
}

Status DurabilityManager::LogUpdate(const WalUpdate& update) {
  SAE_ASSIGN_OR_RETURN(uint64_t seq, StageUpdate(update));
  return wal_->Commit(seq, 0);
}

Status DurabilityManager::UndoFailedUpdate() {
  SAE_RETURN_NOT_OK(wal_->UndoLastStaged());
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!undo_armed_) return Status::OK();
  // The retracted update's net change must not leak into the next delta
  // checkpoint, and (having never applied) it must not advance the
  // cadence either — ShouldSnapshot only counts applied updates.
  if (last_staged_had_prev_) {
    pending_[last_staged_id_] = last_staged_prev_;
  } else {
    pending_.erase(last_staged_id_);
  }
  undo_armed_ = false;
  return Status::OK();
}

Status DurabilityManager::RetractStagedFrom(uint64_t first_epoch) {
  WalUpdate abort;
  abort.op = WalUpdate::kAbort;
  abort.epoch = first_epoch;
  SAE_ASSIGN_OR_RETURN(uint64_t seq, wal_->Stage(EncodeWalUpdate(abort)));
  // Sync immediately (no group delay): the retraction must be durable
  // before the caller acknowledges the failure, or a crash in between
  // would resurrect the suffix the caller just reported as failed.
  SAE_RETURN_NOT_OK(wal_->Commit(seq, 0));
  std::lock_guard<std::mutex> lock(state_mu_);
  // The pending-change set has one level of undo; a retracted multi-record
  // suffix cannot be selectively unwound from it. Drop it wholesale and
  // force the next checkpoint FULL, so no delta claims to account for
  // changes the map no longer carries.
  pending_.clear();
  undo_armed_ = false;
  pending_incomplete_ = true;
  return Status::OK();
}

bool DurabilityManager::ShouldSnapshot() {
  if (options_.snapshot_interval == 0) return false;
  std::lock_guard<std::mutex> lock(state_mu_);
  return ++updates_since_checkpoint_ >= options_.snapshot_interval;
}

bool DurabilityManager::NextCheckpointIsFull() const {
  if (!options_.delta_snapshots) return true;
  if (options_.full_snapshot_every <= 1) return true;
  // A failed checkpoint write broke the on-disk chain: only a full
  // snapshot can re-cover the retained WAL windows and resume segment GC.
  if (chain_broken_.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!have_chain_ || pending_incomplete_) return true;
  return chain_length_ + 1 >= options_.full_snapshot_every;
}

Status DurabilityManager::CaptureLocked(CheckpointJob job, bool force_sync) {
  // Seal the WAL at the capture point: everything logged so far is covered
  // by this checkpoint, everything after it belongs to the next window.
  // The sealed segments stay on disk until the checkpoint is DURABLE — a
  // crash mid-checkpoint recovers from the previous chain plus these
  // segments, losing nothing.
  SAE_ASSIGN_OR_RETURN(job.sealed_wal_seq, wal_->Rotate());
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    pending_.clear();
    updates_since_checkpoint_ = 0;
    undo_armed_ = false;
    have_chain_ = true;
    chain_tail_epoch_ = job.epoch;
    chain_length_ = job.full ? 0 : chain_length_ + 1;
    // A full capture carries complete state, so a pending set dropped by a
    // retraction no longer owes anything to the next delta.
    if (job.full) pending_incomplete_ = false;
  }
  if (options_.background_checkpoint && !force_sync) {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (!ckpt_thread_started_) {
      ckpt_thread_started_ = true;
      ckpt_thread_ = std::thread([this] { CheckpointThreadMain(); });
    }
    ckpt_queue_.push_back(std::move(job));
    ckpt_cv_.notify_all();
    return Status::OK();
  }
  return RunCheckpointJob(job);
}

Status DurabilityManager::CheckpointFull(uint64_t epoch, SnapshotState state) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    meta_model_ = state.model;
    meta_record_size_ = state.record_size;
    meta_scheme_ = state.scheme;
  }
  CheckpointJob job;
  job.full = true;
  job.epoch = epoch;
  job.full_state = std::move(state);
  return CaptureLocked(std::move(job), /*force_sync=*/false);
}

Status DurabilityManager::CheckpointDelta(uint64_t epoch,
                                          std::vector<uint8_t> signature) {
  CheckpointJob job;
  job.full = false;
  job.epoch = epoch;
  DeltaState& delta = job.delta_state;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    delta.model = meta_model_;
    delta.record_size = meta_record_size_;
    delta.scheme = meta_scheme_;
    for (auto& [id, change] : pending_) {
      if (change.present) {
        delta.upserts.push_back(std::move(change.record));
      } else {
        delta.removes.push_back(id);
      }
    }
    job.base_epoch = chain_tail_epoch_;
  }
  delta.signature = std::move(signature);
  return CaptureLocked(std::move(job), /*force_sync=*/false);
}

Status DurabilityManager::WriteSnapshot(uint64_t epoch,
                                        const SnapshotState& state) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    meta_model_ = state.model;
    meta_record_size_ = state.record_size;
    meta_scheme_ = state.scheme;
  }
  CheckpointJob job;
  job.full = true;
  job.epoch = epoch;
  job.full_state = state;
  return CaptureLocked(std::move(job), /*force_sync=*/true);
}

Status DurabilityManager::RunCheckpointJob(const CheckpointJob& job) {
  if (!job.full && chain_broken_.load(std::memory_order_acquire)) {
    // An earlier checkpoint write failed, so this delta's base never
    // reached the disk: writing it would chain onto a missing link, and
    // dropping its sealed segments would delete records covered by no
    // durable checkpoint. Skip the job and KEEP the segments — recovery
    // composes the old chain plus the retained WAL, losing nothing — until
    // the forced full snapshot re-covers everything and resumes GC.
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ++checkpoints_skipped_;
    return Status::IoError("delta checkpoint skipped: chain broken upstream");
  }
  auto start = std::chrono::steady_clock::now();
  std::vector<uint8_t> payload = job.full
                                     ? EncodeSnapshotState(job.full_state)
                                     : EncodeDeltaState(job.delta_state);
  Status st = job.full ? snapshots_.Write(job.epoch, payload)
                       : snapshots_.WriteDelta(job.base_epoch, job.epoch,
                                               payload);
  if (st.ok()) {
    if (job.full) {
      // A durable full snapshot carries complete state: the chain is whole
      // again, and every sealed segment is redundant — including those
      // retained across failed or skipped checkpoints (seals are
      // monotonic, so this job's seal covers all of them).
      chain_broken_.store(false, std::memory_order_release);
    }
    if (job.sealed_wal_seq > 0) {
      // The checkpoint is durable under its final name; the sealed
      // segments' records are now redundant. A crash between the rename
      // and this drop replays records with epoch <= checkpoint epoch,
      // which recovery skips.
      st = wal_->DropSegmentsThrough(job.sealed_wal_seq);
    }
  } else {
    // The checkpoint never reached its final name: the sealed segments are
    // now the ONLY durable copy of this window's changes (the pending set
    // was recycled at capture). Gate WAL GC — and, via
    // NextCheckpointIsFull, force the next checkpoint full — until a
    // durable full snapshot re-covers them.
    chain_broken_.store(true, std::memory_order_release);
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (st.ok()) {
      ++(job.full ? checkpoints_full_ : checkpoints_delta_);
      checkpoint_bytes_total_ += payload.size();
      last_checkpoint_bytes_ = payload.size();
      last_checkpoint_ms_ = ms;
    } else if (ckpt_status_.ok()) {
      ckpt_status_ = st;
    }
  }
  return st;
}

void DurabilityManager::CheckpointThreadMain() {
  std::unique_lock<std::mutex> lock(ckpt_mu_);
  for (;;) {
    ckpt_cv_.wait(lock,
                  [this] { return ckpt_stop_ || !ckpt_queue_.empty(); });
    if (ckpt_queue_.empty()) {
      if (ckpt_stop_) return;  // drained; pending captures never abandoned
      continue;
    }
    CheckpointJob job = std::move(ckpt_queue_.front());
    ckpt_queue_.pop_front();
    ckpt_running_ = true;
    lock.unlock();
    Status st = RunCheckpointJob(job);  // failure is sticky in ckpt_status_
    (void)st;
    lock.lock();
    ckpt_running_ = false;
    ckpt_cv_.notify_all();
  }
}

Status DurabilityManager::WaitForCheckpoints() {
  std::unique_lock<std::mutex> lock(ckpt_mu_);
  ckpt_cv_.wait(lock,
                [this] { return ckpt_queue_.empty() && !ckpt_running_; });
  Status st = ckpt_status_;
  ckpt_status_ = Status::OK();
  return st;
}

DurabilityStats DurabilityManager::stats() const {
  DurabilityStats s;
  storage::WriteAheadLog::Stats w = wal_->stats();
  s.wal_bytes = wal_->size_bytes();
  s.wal_records = w.staged_records;
  s.wal_syncs = w.syncs;
  s.avg_group_records =
      w.syncs > 0 ? double(w.synced_records) / double(w.syncs) : 0.0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    s.delta_chain_length = chain_length_;
    s.updates_since_checkpoint = updates_since_checkpoint_;
  }
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    s.checkpoints_full = checkpoints_full_;
    s.checkpoints_delta = checkpoints_delta_;
    s.checkpoints_skipped = checkpoints_skipped_;
    s.pending_checkpoints = ckpt_queue_.size() + (ckpt_running_ ? 1 : 0);
    s.checkpoint_bytes_total = checkpoint_bytes_total_;
    s.last_checkpoint_bytes = last_checkpoint_bytes_;
    s.last_checkpoint_ms = last_checkpoint_ms_;
  }
  return s;
}

}  // namespace sae::core
