// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the durability subsystem (core/durability.h): WAL-record and
// snapshot-payload codecs plus the DurabilityManager open/log/checkpoint
// life cycle.

#include "core/durability.h"

#include "util/codec.h"

namespace sae::core {

namespace {

constexpr const char* kWalName = "wal";

void PutRecord(ByteWriter* w, const Record& record) {
  w->PutU64(record.id);
  w->PutU32(record.key);
  w->PutU32(uint32_t(record.payload.size()));
  w->PutBytes(record.payload.data(), record.payload.size());
}

bool GetRecord(ByteReader* r, Record* out) {
  out->id = r->GetU64();
  out->key = r->GetU32();
  uint32_t len = r->GetU32();
  if (r->failed() || len > r->remaining()) return false;
  out->payload.resize(len);
  return len == 0 || r->GetBytes(out->payload.data(), len);
}

}  // namespace

std::vector<uint8_t> EncodeWalUpdate(const WalUpdate& update) {
  ByteWriter w;
  w.PutU8(update.op);
  w.PutU64(update.epoch);
  if (update.op == WalUpdate::kInsert) {
    PutRecord(&w, update.record);
  } else {
    w.PutU64(update.id);
  }
  return w.Release();
}

Result<WalUpdate> DecodeWalUpdate(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  WalUpdate update;
  update.op = r.GetU8();
  update.epoch = r.GetU64();
  if (update.op == WalUpdate::kInsert) {
    if (!GetRecord(&r, &update.record)) {
      return Status::Corruption("wal insert record does not decode");
    }
  } else if (update.op == WalUpdate::kDelete) {
    update.id = r.GetU64();
  } else {
    return Status::Corruption("wal record has unknown op");
  }
  if (r.failed() || r.remaining() != 0 || update.epoch == 0) {
    return Status::Corruption("wal record does not decode");
  }
  return update;
}

std::vector<uint8_t> EncodeSnapshotState(const SnapshotState& state) {
  ByteWriter w;
  w.PutU8(state.model);
  w.PutU32(state.record_size);
  w.PutU8(uint8_t(state.scheme));
  w.PutU32(uint32_t(state.records.size()));
  for (const Record& record : state.records) PutRecord(&w, record);
  w.PutU32(uint32_t(state.signature.size()));
  w.PutBytes(state.signature.data(), state.signature.size());
  return w.Release();
}

Result<SnapshotState> DecodeSnapshotState(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  SnapshotState state;
  state.model = r.GetU8();
  state.record_size = r.GetU32();
  uint8_t scheme = r.GetU8();
  uint32_t count = r.GetU32();
  if (state.model != SnapshotState::kSae && state.model != SnapshotState::kTom) {
    return Status::Corruption("snapshot has unknown model tag");
  }
  if (scheme > uint8_t(crypto::HashScheme::kSha256Trunc)) {
    return Status::Corruption("snapshot has unknown hash scheme");
  }
  state.scheme = crypto::HashScheme(scheme);
  state.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Record record;
    if (!GetRecord(&r, &record)) {
      return Status::Corruption("snapshot record does not decode");
    }
    state.records.push_back(std::move(record));
  }
  uint32_t sig_len = r.GetU32();
  if (r.failed() || sig_len > r.remaining()) {
    return Status::Corruption("snapshot signature does not decode");
  }
  state.signature.resize(sig_len);
  if (sig_len > 0 && !r.GetBytes(state.signature.data(), sig_len)) {
    return Status::Corruption("snapshot signature does not decode");
  }
  if (r.remaining() != 0) {
    return Status::Corruption("snapshot payload has trailing bytes");
  }
  return state;
}

DurabilityManager::DurabilityManager(const DurabilityOptions& options,
                                     storage::Vfs* vfs)
    : options_(options),
      vfs_(vfs),
      snapshots_(vfs, options.dir, options.keep_snapshots) {}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options) {
  if (!options.enabled || options.dir.empty()) {
    return Status::InvalidArgument("durability needs enabled=true and a dir");
  }
  storage::Vfs* vfs =
      options.vfs != nullptr ? options.vfs : storage::Vfs::Default();
  SAE_RETURN_NOT_OK(vfs->MkDir(options.dir));
  auto mgr = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(options, vfs));

  auto latest = mgr->snapshots_.LoadLatest();
  if (latest.ok()) {
    SAE_ASSIGN_OR_RETURN(SnapshotState state,
                         DecodeSnapshotState(latest.value().payload));
    mgr->recovered_.has_snapshot = true;
    mgr->recovered_.snapshot_epoch = latest.value().epoch;
    mgr->recovered_.snapshot_fell_back = latest.value().fell_back;
    mgr->recovered_.snapshot = std::move(state);
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return latest.status();
  }

  // Open the WAL: the checksum scan already cut any torn tail; a crc-valid
  // record that fails to DECODE also ends the replayable prefix (it cannot
  // have been written by LogUpdate), so truncate there too — never crash
  // on garbage, never replay past it.
  storage::WalContents contents;
  SAE_ASSIGN_OR_RETURN(
      mgr->wal_,
      storage::WriteAheadLog::Open(vfs, options.dir + "/" + kWalName,
                                   &contents));
  mgr->recovered_.wal_truncated = contents.torn_tail;
  uint64_t valid_offset = 0;
  for (const std::vector<uint8_t>& payload : contents.records) {
    auto update = DecodeWalUpdate(payload);
    if (!update.ok()) {
      mgr->recovered_.wal_truncated = true;
      SAE_RETURN_NOT_OK(mgr->wal_->TruncateTo(valid_offset));
      break;
    }
    mgr->recovered_.wal_tail.push_back(std::move(update.value()));
    valid_offset += storage::kWalRecordHeader + payload.size();
  }
  return mgr;
}

Status DurabilityManager::LogUpdate(const WalUpdate& update) {
  last_append_offset_ = wal_->size_bytes();
  return wal_->Append(EncodeWalUpdate(update));
}

Status DurabilityManager::UndoFailedUpdate() {
  return wal_->TruncateTo(last_append_offset_);
}

bool DurabilityManager::ShouldSnapshot() {
  if (options_.snapshot_interval == 0) return false;
  return ++updates_since_snapshot_ >= options_.snapshot_interval;
}

Status DurabilityManager::WriteSnapshot(uint64_t epoch,
                                        const SnapshotState& state) {
  SAE_RETURN_NOT_OK(snapshots_.Write(epoch, EncodeSnapshotState(state)));
  // The snapshot is durable under its final name; every logged update is
  // now redundant. A crash between the rename and this reset replays
  // records with epoch <= snapshot epoch, which recovery skips.
  SAE_RETURN_NOT_OK(wal_->Reset());
  updates_since_snapshot_ = 0;
  return Status::OK();
}

}  // namespace sae::core
