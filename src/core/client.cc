// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements SAE client verification (core/client.h): hash the SP's
// result, XOR, compare with the TE's token.

#include "core/client.h"

#include "util/macros.h"

namespace sae::core {

crypto::Digest Client::ResultXor(const std::vector<Record>& results,
                                 const RecordCodec& codec,
                                 crypto::HashScheme scheme) {
  // The witness re-hash is the SAE client's dominant cost on cold queries;
  // DigestRecords batches it through the multi-buffer hash kernels.
  crypto::Digest acc;
  for (const crypto::Digest& d :
       storage::DigestRecords(results, codec, scheme)) {
    acc ^= d;
  }
  return acc;
}

Status Client::CompareXor(const crypto::Digest& computed,
                          const crypto::Digest& token_digest) {
  if (computed != token_digest) {
    return Status::VerificationFailure(
        "result XOR does not match the TE's verification token");
  }
  return Status::OK();
}

Status Client::VerifyResult(const std::vector<Record>& results,
                            const crypto::Digest& vt,
                            const RecordCodec& codec,
                            crypto::HashScheme scheme) {
  return CompareXor(ResultXor(results, codec, scheme), vt);
}

Status Client::VerifyShardedResult(
    storage::Key lo, storage::Key hi, const std::vector<ShardSlice>& slices,
    const std::vector<storage::Key>& fences,
    const std::vector<uint64_t>& published_epochs, const RecordCodec& codec,
    crypto::HashScheme scheme,
    std::vector<std::pair<size_t, Status>>* per_shard) {
  std::vector<storage::KeySlice> cover;
  cover.reserve(slices.size());
  for (const ShardSlice& slice : slices) {
    cover.push_back(storage::KeySlice{slice.shard, slice.lo, slice.hi});
  }
  return storage::VerifyCompositeSlices(
      fences, lo, hi, cover, published_epochs,
      [&](size_t i, const storage::KeySlice&, uint64_t published) {
        return VerifyResult(slices[i].results, slices[i].vt,
                            slices[i].claimed_epoch, published, codec,
                            scheme);
      },
      per_shard);
}

Status Client::VerifyAnswer(const dbms::QueryRequest& request,
                            const dbms::QueryAnswer& claimed,
                            const std::vector<Record>& witness,
                            const VerificationToken& vt,
                            uint64_t claimed_epoch, uint64_t published_epoch,
                            const RecordCodec& codec,
                            crypto::HashScheme scheme) {
  SAE_RETURN_NOT_OK(VerifyResult(witness, vt, claimed_epoch, published_epoch,
                                 codec, scheme));
  return dbms::CheckAnswer(request, witness, claimed);
}

Status Client::VerifyShardedAnswer(
    const dbms::QueryRequest& request, const dbms::QueryAnswer& composite,
    const std::vector<ShardSlice>& slices,
    const std::vector<storage::Key>& fences,
    const std::vector<uint64_t>& published_epochs, const RecordCodec& codec,
    crypto::HashScheme scheme,
    std::vector<std::pair<size_t, Status>>* per_shard) {
  std::vector<storage::KeySlice> cover;
  cover.reserve(slices.size());
  for (const ShardSlice& slice : slices) {
    cover.push_back(storage::KeySlice{slice.shard, slice.lo, slice.hi});
  }
  SAE_RETURN_NOT_OK(storage::VerifyCompositeSlices(
      fences, request.lo, request.hi, cover, published_epochs,
      [&](size_t i, const storage::KeySlice&, uint64_t published) {
        dbms::QueryRequest sub = request;
        sub.lo = slices[i].lo;
        sub.hi = slices[i].hi;
        return VerifyAnswer(sub, slices[i].answer, slices[i].results,
                            slices[i].vt, slices[i].claimed_epoch, published,
                            codec, scheme);
      },
      per_shard));
  // Every slice answer is now individually authenticated; the composite
  // must be exactly their fold.
  std::vector<dbms::QueryAnswer> parts;
  parts.reserve(slices.size());
  for (const ShardSlice& slice : slices) parts.push_back(slice.answer);
  if (composite != dbms::MergeAnswers(request, parts)) {
    return Status::VerificationFailure(
        "composite answer does not fold from the verified shard answers");
  }
  return Status::OK();
}

Status Client::CheckFreshness(const VerificationToken& vt,
                              uint64_t claimed_epoch,
                              uint64_t published_epoch) {
  if (vt.epoch < published_epoch) {
    return Status::StaleEpoch("verification token lags the published epoch");
  }
  if (vt.epoch > published_epoch) {
    return Status::VerificationFailure(
        "verification token claims a future epoch");
  }
  if (claimed_epoch < published_epoch) {
    return Status::StaleEpoch(
        "SP answered from a snapshot older than the published epoch");
  }
  if (claimed_epoch > published_epoch) {
    return Status::VerificationFailure("SP claims a future epoch");
  }
  return Status::OK();
}

Status Client::VerifyResult(const std::vector<Record>& results,
                            const VerificationToken& vt,
                            uint64_t claimed_epoch, uint64_t published_epoch,
                            const RecordCodec& codec,
                            crypto::HashScheme scheme) {
  SAE_RETURN_NOT_OK(CheckFreshness(vt, claimed_epoch, published_epoch));
  return VerifyResult(results, vt.digest, codec, scheme);
}

}  // namespace sae::core
