// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements SAE client verification (core/client.h): hash the SP's
// result, XOR, compare with the TE's token.

#include "core/client.h"

namespace sae::core {

crypto::Digest Client::ResultXor(const std::vector<Record>& results,
                                 const RecordCodec& codec,
                                 crypto::HashScheme scheme) {
  crypto::Digest acc;
  std::vector<uint8_t> scratch(codec.record_size());
  for (const Record& record : results) {
    codec.Serialize(record, scratch.data());
    acc ^= crypto::ComputeDigest(scratch.data(), scratch.size(), scheme);
  }
  return acc;
}

Status Client::VerifyResult(const std::vector<Record>& results,
                            const crypto::Digest& vt,
                            const RecordCodec& codec,
                            crypto::HashScheme scheme) {
  if (ResultXor(results, codec, scheme) != vt) {
    return Status::VerificationFailure(
        "result XOR does not match the TE's verification token");
  }
  return Status::OK();
}

}  // namespace sae::core
