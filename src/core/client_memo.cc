// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the client-side verification memos (core/client_memo.h).
// Invariant shared by both classes: the memo changes only WHERE a verdict
// is computed (replay of the client's own prior pure computation on
// byte-identical inputs), never WHAT the verdict is — the cache-parity
// harness pins this bit-for-bit against the unmemoized client.

#include "core/client_memo.h"

#include <utility>

#include "core/tom.h"
#include "util/macros.h"

namespace sae::core {

namespace {

size_t HashRequest(const dbms::QueryRequest& r) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(uint64_t(r.op));
  mix(r.lo);
  mix(r.hi);
  mix(r.limit);
  return size_t(h);
}

}  // namespace

// ---------------------------------------------------------------------------
// SaeClientMemo
// ---------------------------------------------------------------------------

size_t SaeClientMemo::RequestKeyHash::operator()(
    const dbms::QueryRequest& r) const {
  return HashRequest(r);
}

SaeClientMemo::SaeClientMemo(const AnswerCacheOptions& options)
    : options_(options) {}

std::shared_ptr<const SaeClientMemo::Entry> SaeClientMemo::Lookup(
    const dbms::QueryRequest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

void SaeClientMemo::Insert(const dbms::QueryRequest& key,
                           std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++stats_.insertions;
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  ++stats_.insertions;
  while (map_.size() > options_.max_entries) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Status SaeClientMemo::VerifyAnswer(const dbms::QueryRequest& request,
                                   const dbms::QueryAnswer& claimed,
                                   const std::vector<storage::Record>& witness,
                                   const VerificationToken& vt,
                                   uint64_t claimed_epoch,
                                   uint64_t published_epoch,
                                   const storage::RecordCodec& codec,
                                   crypto::HashScheme scheme) {
  // The epoch gates always run fresh: they are the only part of the client
  // check that depends on live trusted state rather than the bytes alone.
  SAE_RETURN_NOT_OK(
      Client::CheckFreshness(vt, claimed_epoch, published_epoch));

  if (enabled()) {
    std::shared_ptr<const Entry> entry = Lookup(request);
    if (entry && entry->answer == claimed && entry->witness == witness) {
      // Byte-identical repeat: the memoized XOR *is* ResultXor(witness) by
      // determinism, so comparing it against the LIVE token digest gives
      // the same verdict a fresh re-hash would — including rejection when
      // an update moved the token for this range.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hits;
      }
      SAE_RETURN_NOT_OK(Client::CompareXor(entry->xor_digest, vt.digest));
      return entry->answer_check;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
  }

  crypto::Digest xor_digest = Client::ResultXor(witness, codec, scheme);
  SAE_RETURN_NOT_OK(Client::CompareXor(xor_digest, vt.digest));
  Status answer_check = dbms::CheckAnswer(request, witness, claimed);
  if (enabled()) {
    // Memoize only token-matched responses: an XOR mismatch never reaches
    // here, so a poisoned response can't seed the memo.
    auto fresh = std::make_shared<Entry>();
    fresh->answer = claimed;
    fresh->witness = witness;
    fresh->xor_digest = xor_digest;
    fresh->answer_check = answer_check;
    Insert(request, std::move(fresh));
  }
  return answer_check;
}

AnswerCacheStats SaeClientMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SaeClientMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ---------------------------------------------------------------------------
// TomClientMemo
// ---------------------------------------------------------------------------

size_t TomClientMemo::RequestKeyHash::operator()(
    const dbms::QueryRequest& r) const {
  return HashRequest(r);
}

TomClientMemo::TomClientMemo(const AnswerCacheOptions& options)
    : options_(options) {}

std::shared_ptr<const TomClientMemo::Entry> TomClientMemo::Lookup(
    const dbms::QueryRequest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

void TomClientMemo::Insert(const dbms::QueryRequest& key,
                           std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++stats_.insertions;
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  ++stats_.insertions;
  while (map_.size() > options_.max_entries) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void TomClientMemo::DropAllIfEpochMoved(uint64_t published_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (published_epoch <= seen_epoch_) return;
  seen_epoch_ = published_epoch;
  stats_.invalidations += map_.size();
  map_.clear();
  lru_.clear();
}

Status TomClientMemo::VerifyAnswer(const dbms::QueryRequest& request,
                                   const dbms::QueryAnswer& claimed,
                                   const std::vector<storage::Record>& witness,
                                   const mbtree::VerificationObject& vo,
                                   const std::vector<uint8_t>& vo_msg,
                                   const crypto::RsaPublicKey& owner_key,
                                   const storage::RecordCodec& codec,
                                   crypto::HashScheme scheme,
                                   uint64_t published_epoch) {
  // The epoch gate always runs fresh against the live published epoch.
  SAE_RETURN_NOT_OK(mbtree::CheckVoFreshness(vo, published_epoch));

  if (enabled()) {
    // Every VO re-signs the epoch-stamped root, so entries from an older
    // epoch can never byte-match again — reclaim them eagerly.
    DropAllIfEpochMoved(published_epoch);
    std::shared_ptr<const Entry> entry = Lookup(request);
    if (entry && entry->vo_msg == vo_msg && entry->answer == claimed &&
        entry->witness == witness) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hits;
      }
      return entry->inner;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
  }

  // The gate just proved vo.epoch == published_epoch, so handing vo.epoch
  // to the full verifier makes its internal gate trivially true and what
  // remains is a pure function of (request, claimed, witness, vo bytes) —
  // exactly the computation a byte-identical repeat may replay.
  Status inner = TomClient::VerifyAnswer(request, claimed, witness, vo,
                                         owner_key, codec, scheme, vo.epoch);
  if (enabled()) {
    auto fresh = std::make_shared<Entry>();
    fresh->answer = claimed;
    fresh->witness = witness;
    fresh->vo_msg = vo_msg;
    fresh->inner = inner;
    Insert(request, std::move(fresh));
  }
  return inner;
}

AnswerCacheStats TomClientMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t TomClientMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace sae::core

