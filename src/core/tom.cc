// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the traditional outsourcing model baseline (core/tom.h):
// MB-tree ADS at the SP, root signatures from the DO, VO-based queries.

#include "core/tom.h"

#include "core/malicious_sp.h"
#include "core/messages.h"
#include "util/macros.h"
#include "util/random.h"

namespace sae::core {

// --- TomDataOwner -------------------------------------------------------------

TomDataOwner::TomDataOwner(const Options& options)
    : options_(options),
      codec_(options.record_size),
      pool_(&store_, options.pool_pages) {
  Rng rng(options_.rsa_seed);
  key_ = crypto::RsaGenerateKey(&rng, options_.rsa_modulus_bits);
  mbtree::MbTreeOptions mb = options_.mb_options;
  mb.scheme = options_.scheme;
  auto tree = mbtree::MbTree::Create(&pool_, mb);
  SAE_CHECK(tree.ok());
  mb_ = std::move(tree).ValueOrDie();
}

Status TomDataOwner::Resign() {
  // Epoch-stamped root signature: binds the signature to the update epoch
  // so replayed pre-update roots are detectable (freshness).
  signature_ = crypto::RsaSignDigest(
      key_,
      crypto::EpochStampedDigest(mb_->root_digest(), epoch_,
                                 options_.scheme));
  return Status::OK();
}

Status TomDataOwner::RestoreEpoch(uint64_t epoch) {
  epoch_ = epoch;
  return Resign();
}

Status TomDataOwner::LoadDataset(const std::vector<Record>& sorted) {
  std::vector<crypto::Digest> digests =
      storage::DigestRecords(sorted, codec_, options_.scheme);
  std::vector<mbtree::MbEntry> entries;
  entries.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    entries.push_back(mbtree::MbEntry{sorted[i].key,
                                      storage::Rid(sorted[i].id),
                                      digests[i]});
    key_of_id_[sorted[i].id] = sorted[i].key;
  }
  SAE_RETURN_NOT_OK(mb_->BulkLoad(entries));
  epoch_ = 1;  // the initial outsourcing is epoch 1
  return Resign();
}

Status TomDataOwner::InsertRecord(const Record& record) {
  if (key_of_id_.count(record.id) > 0) {
    return Status::AlreadyExists("record id already present");
  }
  std::vector<uint8_t> bytes = codec_.Serialize(record);
  mbtree::MbEntry entry{
      record.key, storage::Rid(record.id),
      crypto::ComputeDigest(bytes.data(), bytes.size(), options_.scheme)};
  SAE_RETURN_NOT_OK(mb_->Insert(entry));
  key_of_id_[record.id] = record.key;
  ++epoch_;
  return Resign();
}

Status TomDataOwner::DeleteRecord(RecordId id) {
  auto it = key_of_id_.find(id);
  if (it == key_of_id_.end()) {
    return Status::NotFound("no record with this id");
  }
  SAE_RETURN_NOT_OK(mb_->Delete(it->second, storage::Rid(id)));
  key_of_id_.erase(it);
  ++epoch_;
  return Resign();
}

// --- TomServiceProvider ---------------------------------------------------------

TomServiceProvider::TomServiceProvider(const Options& options)
    : options_(options),
      codec_(options.record_size),
      index_pool_(&index_store_, options.index_pool_pages),
      heap_pool_(&heap_store_, options.heap_pool_pages),
      heap_(&heap_pool_, options.record_size),
      answer_cache_(options.answer_cache) {
  mbtree::MbTreeOptions mb = options_.mb_options;
  mb.scheme = options_.scheme;
  auto tree = mbtree::MbTree::Create(&index_pool_, mb);
  SAE_CHECK(tree.ok());
  mb_ = std::move(tree).ValueOrDie();
}

Status TomServiceProvider::LoadDataset(const std::vector<Record>& sorted,
                                       crypto::RsaSignature signature,
                                       uint64_t epoch) {
  std::vector<crypto::Digest> digests =
      storage::DigestRecords(sorted, codec_, options_.scheme);
  std::vector<mbtree::MbEntry> entries;
  entries.reserve(sorted.size());
  std::vector<uint8_t> scratch(codec_.record_size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Record& record = sorted[i];
    if (rid_of_id_.count(record.id) > 0) {
      return Status::InvalidArgument("duplicate record id in dataset");
    }
    codec_.Serialize(record, scratch.data());
    SAE_ASSIGN_OR_RETURN(storage::Rid rid, heap_.Insert(scratch.data()));
    rid_of_id_[record.id] = rid;
    entries.push_back(mbtree::MbEntry{record.key, rid, digests[i]});
  }
  SAE_RETURN_NOT_OK(mb_->BulkLoad(entries));
  signature_ = std::move(signature);
  epoch_ = epoch;
  answer_cache_.InvalidateAll();
  return Status::OK();
}

Status TomServiceProvider::ApplyInsert(const Record& record,
                                       crypto::RsaSignature new_sig,
                                       uint64_t new_epoch) {
  if (rid_of_id_.count(record.id) > 0) {
    return Status::AlreadyExists("record id already present");
  }
  std::vector<uint8_t> bytes = codec_.Serialize(record);
  SAE_ASSIGN_OR_RETURN(storage::Rid rid, heap_.Insert(bytes.data()));
  mbtree::MbEntry entry{
      record.key, rid,
      crypto::ComputeDigest(bytes.data(), bytes.size(), options_.scheme)};
  Status st = mb_->Insert(entry);
  if (!st.ok()) {
    SAE_CHECK_OK(heap_.Delete(rid));
    return st;
  }
  rid_of_id_[record.id] = rid;
  signature_ = std::move(new_sig);
  epoch_ = new_epoch;
  answer_cache_.InvalidateAll();
  return Status::OK();
}

Status TomServiceProvider::ApplyDelete(RecordId id,
                                       crypto::RsaSignature new_sig,
                                       uint64_t new_epoch) {
  auto it = rid_of_id_.find(id);
  if (it == rid_of_id_.end()) {
    return Status::NotFound("no record with this id");
  }
  storage::Rid rid = it->second;
  std::vector<uint8_t> bytes(codec_.record_size());
  SAE_RETURN_NOT_OK(heap_.Get(rid, bytes.data()));
  Record record = codec_.Deserialize(bytes.data());
  SAE_RETURN_NOT_OK(mb_->Delete(record.key, rid));
  SAE_RETURN_NOT_OK(heap_.Delete(rid));
  rid_of_id_.erase(it);
  signature_ = std::move(new_sig);
  epoch_ = new_epoch;
  answer_cache_.InvalidateAll();
  return Status::OK();
}

Result<TomServiceProvider::QueryResponse> TomServiceProvider::ExecuteRange(
    Key lo, Key hi) const {
  QueryResponse response;

  // Traversal 1: locate and fetch the result records (each dataset page
  // fetched once per contiguous run).
  std::vector<mbtree::MbEntry> postings;
  SAE_RETURN_NOT_OK(mb_->RangeSearch(lo, hi, &postings));
  std::vector<storage::Rid> rids;
  rids.reserve(postings.size());
  for (const auto& posting : postings) rids.push_back(posting.rid);
  response.results.reserve(rids.size());
  SAE_RETURN_NOT_OK(heap_.GetMany(rids, [&](size_t, const uint8_t* data) {
    response.results.push_back(codec_.Deserialize(data));
  }));

  // Traversal 2: build the VO; boundary records come from the dataset file.
  auto fetch = [this](storage::Rid rid) -> Result<std::vector<uint8_t>> {
    std::vector<uint8_t> bytes(codec_.record_size());
    SAE_RETURN_NOT_OK(heap_.Get(rid, bytes.data()));
    return bytes;
  };
  SAE_ASSIGN_OR_RETURN(response.vo, mb_->BuildVo(lo, hi, fetch));
  response.vo.epoch = epoch_;
  response.vo.signature = signature_;
  return response;
}

Result<TomServiceProvider::PlanResponse> TomServiceProvider::ComputePlan(
    const dbms::QueryRequest& request) const {
  SAE_ASSIGN_OR_RETURN(QueryResponse response,
                       ExecuteRange(request.lo, request.hi));
  PlanResponse plan;
  plan.answer = dbms::EvaluateAnswer(request, response.results);
  plan.witness = std::move(response.results);
  plan.vo = std::move(response.vo);
  return plan;
}

Result<TomServiceProvider::PlanResponse> TomServiceProvider::ExecutePlan(
    const dbms::QueryRequest& request) const {
  if (!answer_cache_.enabled()) return ComputePlan(request);
  AnswerCache::Key key = AnswerCache::Key::For(request, epoch_);
  if (auto hit = answer_cache_.Lookup(key)) {
    SAE_ASSIGN_OR_RETURN(QueryAnswerMessage msg,
                         DeserializeQueryAnswer(hit->answer_msg, codec_));
    PlanResponse plan;
    plan.answer = std::move(msg.answer);
    plan.witness = std::move(msg.witness);
    SAE_ASSIGN_OR_RETURN(
        plan.vo, mbtree::VerificationObject::Deserialize(hit->proof_msg));
    return plan;
  }
  SAE_ASSIGN_OR_RETURN(PlanResponse plan, ComputePlan(request));
  CachedAnswer entry;
  entry.answer_msg =
      SerializeQueryAnswer(plan.answer, plan.witness, key.epoch, codec_);
  entry.proof_msg = plan.vo.Serialize();
  answer_cache_.Insert(key, std::move(entry));
  return plan;
}

Result<TomServiceProvider::PlanResponse>
TomServiceProvider::ExecutePoisonedPlan(const dbms::QueryRequest& request,
                                        uint64_t seed) const {
  SAE_ASSIGN_OR_RETURN(PlanResponse plan, ComputePlan(request));
  plan.witness =
      ApplyAttack(plan.witness, AttackMode::kTamperPayload, codec_, seed);
  plan.answer = dbms::EvaluateAnswer(request, plan.witness);
  if (answer_cache_.enabled()) {
    AnswerCache::Key key = AnswerCache::Key::For(request, epoch_);
    CachedAnswer entry;
    entry.answer_msg =
        SerializeQueryAnswer(plan.answer, plan.witness, key.epoch, codec_);
    entry.proof_msg = plan.vo.Serialize();
    answer_cache_.Insert(key, std::move(entry));
  }
  return plan;
}

// --- TomClient ----------------------------------------------------------------

Status TomClient::Verify(Key lo, Key hi, const std::vector<Record>& results,
                         const mbtree::VerificationObject& vo,
                         const crypto::RsaPublicKey& owner_key,
                         const RecordCodec& codec,
                         crypto::HashScheme scheme, uint64_t current_epoch) {
  return mbtree::VerifyVO(vo, lo, hi, results, owner_key, codec, scheme,
                          current_epoch);
}

Status TomClient::VerifyAnswer(const dbms::QueryRequest& request,
                               const dbms::QueryAnswer& claimed,
                               const std::vector<Record>& witness,
                               const mbtree::VerificationObject& vo,
                               const crypto::RsaPublicKey& owner_key,
                               const RecordCodec& codec,
                               crypto::HashScheme scheme,
                               uint64_t current_epoch) {
  SAE_RETURN_NOT_OK(Verify(request.lo, request.hi, witness, vo, owner_key,
                           codec, scheme, current_epoch));
  return dbms::CheckAnswer(request, witness, claimed);
}

}  // namespace sae::core
