// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Client-side verification memos: the client caches ITS OWN verification
// work, never the server's claims. Each memo keys an entry by the query
// request and validates it by bitwise equality of the received response
// with the memoized copy — so a hit proves the inputs are identical to
// ones the client already processed, and replaying the memoized pure
// computation (the witness XOR under SAE, the VO reconstruction + RSA
// check under TOM) is sound by determinism, not by trust. The freshness
// gates (token/VO epoch vs the published epoch) are NOT memoized: they
// depend on the live published epoch and run on every query, so stale
// replays and epoch forgeries are caught exactly as on the uncached path.
//
// This is the client-side leg of the verified-path caching layer (see
// docs/ARCHITECTURE.md §"Caching without trusting the cache"): the SP-side
// answer cache makes repeated responses byte-identical, and this memo
// turns those repeats into a cheap comparison instead of a re-hash.
//
// The SAE memo survives epoch bumps: the memoized XOR is a pure function
// of the witness bytes, and a hit still compares it against the LIVE TE
// token digest — if the range was touched the token digest moved and the
// comparison fails exactly as a fresh re-hash would. The TOM memo expires
// wholesale on epoch bumps (every VO re-signs the epoch-stamped root, so
// no stale entry can ever byte-match again) and drops them eagerly.

#ifndef SAE_CORE_CLIENT_MEMO_H_
#define SAE_CORE_CLIENT_MEMO_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/answer_cache.h"
#include "core/client.h"
#include "core/epoch.h"
#include "crypto/rsa.h"
#include "dbms/query.h"
#include "mbtree/vo.h"
#include "storage/record.h"

namespace sae::core {

/// Memoizes Client::VerifyAnswer's pure work (witness XOR + answer
/// recomputation). Verdicts are bit-identical to the unmemoized call.
class SaeClientMemo {
 public:
  explicit SaeClientMemo(const AnswerCacheOptions& options);

  /// Drop-in replacement for Client::VerifyAnswer: the freshness gate runs
  /// on every call; a byte-identical (answer, witness) pair replays the
  /// memoized XOR (compared against the live token digest) and the
  /// memoized answer check instead of re-hashing the witness.
  Status VerifyAnswer(const dbms::QueryRequest& request,
                      const dbms::QueryAnswer& claimed,
                      const std::vector<storage::Record>& witness,
                      const VerificationToken& vt, uint64_t claimed_epoch,
                      uint64_t published_epoch,
                      const storage::RecordCodec& codec,
                      crypto::HashScheme scheme);

  bool enabled() const { return options_.enabled && options_.max_entries > 0; }
  AnswerCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    dbms::QueryAnswer answer;
    std::vector<storage::Record> witness;
    crypto::Digest xor_digest;  ///< Client::ResultXor(witness)
    Status answer_check;        ///< dbms::CheckAnswer(request, witness, answer)
  };

  struct RequestKeyHash {
    size_t operator()(const dbms::QueryRequest& r) const;
  };
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<dbms::QueryRequest>::iterator lru_pos;
  };

  std::shared_ptr<const Entry> Lookup(const dbms::QueryRequest& key);
  void Insert(const dbms::QueryRequest& key,
              std::shared_ptr<const Entry> entry);

  AnswerCacheOptions options_;
  mutable std::mutex mu_;
  std::list<dbms::QueryRequest> lru_;  // front = most recent
  std::unordered_map<dbms::QueryRequest, Slot, RequestKeyHash> map_;
  AnswerCacheStats stats_;
};

/// Memoizes TomClient::VerifyAnswer's pure work (VO replay, RSA signature
/// check, answer recomputation). Verdicts are bit-identical.
class TomClientMemo {
 public:
  explicit TomClientMemo(const AnswerCacheOptions& options);

  /// Drop-in replacement for TomClient::VerifyAnswer. `vo_msg` is the
  /// serialized VO exactly as received — the bytes the memo compares. The
  /// epoch gate (mbtree::CheckVoFreshness) runs on every call; only the
  /// epoch-independent remainder is replayed on a byte-identical repeat.
  Status VerifyAnswer(const dbms::QueryRequest& request,
                      const dbms::QueryAnswer& claimed,
                      const std::vector<storage::Record>& witness,
                      const mbtree::VerificationObject& vo,
                      const std::vector<uint8_t>& vo_msg,
                      const crypto::RsaPublicKey& owner_key,
                      const storage::RecordCodec& codec,
                      crypto::HashScheme scheme, uint64_t published_epoch);

  bool enabled() const { return options_.enabled && options_.max_entries > 0; }
  AnswerCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    dbms::QueryAnswer answer;
    std::vector<storage::Record> witness;
    std::vector<uint8_t> vo_msg;
    Status inner;  ///< verdict of the epoch-gate-free verification
  };

  struct RequestKeyHash {
    size_t operator()(const dbms::QueryRequest& r) const;
  };
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<dbms::QueryRequest>::iterator lru_pos;
  };

  std::shared_ptr<const Entry> Lookup(const dbms::QueryRequest& key);
  void Insert(const dbms::QueryRequest& key,
              std::shared_ptr<const Entry> entry);
  void DropAllIfEpochMoved(uint64_t published_epoch);

  AnswerCacheOptions options_;
  mutable std::mutex mu_;
  std::list<dbms::QueryRequest> lru_;
  std::unordered_map<dbms::QueryRequest, Slot, RequestKeyHash> map_;
  AnswerCacheStats stats_;
  uint64_t seen_epoch_ = 0;  ///< latest published epoch the memo has seen
};

}  // namespace sae::core

#endif  // SAE_CORE_CLIENT_MEMO_H_
