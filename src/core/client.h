// Copyright (c) saedb authors. Licensed under the MIT license.
//
// SAE client-side verification (paper §II): hash every record the SP
// returned, XOR the digests, and compare with the TE's token. A corrupt
// result (RS - DS) ∪ IS escapes detection only when DS⊕ = IS⊕, which is
// computationally infeasible for a collision-resistant hash.

#ifndef SAE_CORE_CLIENT_H_
#define SAE_CORE_CLIENT_H_

#include <utility>
#include <vector>

#include "core/epoch.h"
#include "crypto/digest.h"
#include "dbms/query.h"
#include "storage/key_range.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

using storage::Record;
using storage::RecordCodec;

/// Stateless verification helpers for SAE clients.
class Client {
 public:
  /// XOR of record digests — the client-side counterpart of the TE's VT.
  static crypto::Digest ResultXor(
      const std::vector<Record>& results, const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1);

  /// The epoch gates of the full client check, on their own (steps 1-2 of
  /// VerifyResult below): token and SP claim must both speak for the
  /// published epoch. SaeClientMemo runs these fresh on every query.
  static Status CheckFreshness(const VerificationToken& vt,
                               uint64_t claimed_epoch,
                               uint64_t published_epoch);

  /// The XOR comparison on its own: `computed` (from ResultXor) against
  /// the token digest, with the canonical failure status.
  static Status CompareXor(const crypto::Digest& computed,
                           const crypto::Digest& token_digest);

  /// OK when the result matches the token; VerificationFailure otherwise.
  static Status VerifyResult(
      const std::vector<Record>& results, const crypto::Digest& vt,
      const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1);

  /// Token-typed convenience: XOR check only (no freshness reference —
  /// standalone TE set-ups without a publishing DO stay at epoch 0).
  static Status VerifyResult(
      const std::vector<Record>& results, const VerificationToken& vt,
      const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1) {
    return VerifyResult(results, vt.digest, codec, scheme);
  }

  /// The full epoch-aware client check, in order:
  ///   1. the TE token must speak for the published epoch (a lagging token
  ///      is a replayed/stale VT -> kStaleEpoch);
  ///   2. the SP's claimed epoch must match the published one (a lagging
  ///      claim means the SP answered from a pre-update snapshot ->
  ///      kStaleEpoch);
  ///   3. the result XOR must match the token digest.
  /// Freshness is checked first so a replay is reported as staleness, not
  /// as generic corruption. An SP that lies about its claimed epoch simply
  /// degrades to case 3 and is caught by the fresh token.
  static Status VerifyResult(
      const std::vector<Record>& results, const VerificationToken& vt,
      uint64_t claimed_epoch, uint64_t published_epoch,
      const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1);

  /// The operator-typed client check: the epoch-aware gates and the XOR
  /// match run over the *witness* (the range record set the TE's token
  /// speaks for), and once the witness is authenticated the derived answer
  /// is recomputed from it and compared field-for-field with the SP's
  /// claim (dbms::CheckAnswer). A tampered COUNT/SUM/MIN/MAX or truncated
  /// top-k is a kVerificationFailure even though the witness verifies.
  static Status VerifyAnswer(
      const dbms::QueryRequest& request, const dbms::QueryAnswer& claimed,
      const std::vector<Record>& witness, const VerificationToken& vt,
      uint64_t claimed_epoch, uint64_t published_epoch,
      const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1);

  /// One shard's slice of a stitched sharded-SAE answer as a thin client
  /// receives it: the clipped sub-range, the witness records, the shard's
  /// claimed partial answer, that shard's TE token, and the epoch the
  /// shard's SP claimed. (`answer` is ignored by the record-shaped
  /// VerifyShardedResult; VerifyShardedAnswer checks it.)
  struct ShardSlice {
    size_t shard = 0;
    storage::Key lo = 0;
    storage::Key hi = 0;
    std::vector<Record> results;
    dbms::QueryAnswer answer;
    VerificationToken vt;
    uint64_t claimed_epoch = 0;
  };

  /// Composite verification for a sharded SAE deployment — the SAE analog
  /// of mbtree::VerifyComposite, needing only the DO-published trusted
  /// state (fence keys + per-shard epoch vector): (1) the slices must tile
  /// [lo, hi] exactly along the fences (fence-key completeness), (2) each
  /// slice must pass the full epoch-aware check against its own shard's
  /// published epoch, (3) the per-shard verdicts fold via
  /// CombineShardStatuses (uniformly stale -> kStaleEpoch, mixed
  /// fresh/stale -> kShardEpochSkew, corruption -> kVerificationFailure
  /// naming the shard). `per_shard` (optional) receives one verdict per
  /// slice so honest sub-results survive a rejection.
  static Status VerifyShardedResult(
      storage::Key lo, storage::Key hi,
      const std::vector<ShardSlice>& slices,
      const std::vector<storage::Key>& fences,
      const std::vector<uint64_t>& published_epochs, const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1,
      std::vector<std::pair<size_t, Status>>* per_shard = nullptr);

  /// Operator-typed composite verification: the same fence-cover + epoch
  /// machinery as VerifyShardedResult, but each slice runs the full
  /// VerifyAnswer check (witness proof + partial-answer recomputation) for
  /// its clipped sub-request, and the claimed composite answer must equal
  /// the fold of the now-verified per-shard answers
  /// (dbms::MergeAnswers) — so a router tier that mis-folds, or one shard
  /// that lies about its partial aggregate, is rejected with attribution.
  static Status VerifyShardedAnswer(
      const dbms::QueryRequest& request, const dbms::QueryAnswer& composite,
      const std::vector<ShardSlice>& slices,
      const std::vector<storage::Key>& fences,
      const std::vector<uint64_t>& published_epochs, const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1,
      std::vector<std::pair<size_t, Status>>* per_shard = nullptr);
};

}  // namespace sae::core

#endif  // SAE_CORE_CLIENT_H_
