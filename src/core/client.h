// Copyright (c) saedb authors. Licensed under the MIT license.
//
// SAE client-side verification (paper §II): hash every record the SP
// returned, XOR the digests, and compare with the TE's token. A corrupt
// result (RS - DS) ∪ IS escapes detection only when DS⊕ = IS⊕, which is
// computationally infeasible for a collision-resistant hash.

#ifndef SAE_CORE_CLIENT_H_
#define SAE_CORE_CLIENT_H_

#include <vector>

#include "crypto/digest.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

using storage::Record;
using storage::RecordCodec;

/// Stateless verification helpers for SAE clients.
class Client {
 public:
  /// XOR of record digests — the client-side counterpart of the TE's VT.
  static crypto::Digest ResultXor(
      const std::vector<Record>& results, const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1);

  /// OK when the result matches the token; VerificationFailure otherwise.
  static Status VerifyResult(
      const std::vector<Record>& results, const crypto::Digest& vt,
      const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1);
};

}  // namespace sae::core

#endif  // SAE_CORE_CLIENT_H_
