// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The SAE data owner (paper §II): keeps the master dataset, ships it (and
// incremental updates) to the SP and the TE, and performs *no* other task —
// the model's headline property.

#ifndef SAE_CORE_DATA_OWNER_H_
#define SAE_CORE_DATA_OWNER_H_

#include <map>
#include <vector>

#include "core/service_provider.h"
#include "core/trusted_entity.h"
#include "sim/channel.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

/// SAE's data owner.
class DataOwner {
 public:
  explicit DataOwner(size_t record_size = storage::kDefaultRecordSize);

  /// Installs the master dataset. Record ids must be unique.
  Status SetDataset(const std::vector<Record>& records);

  /// Master copy sorted by key (the shipping order).
  std::vector<Record> SortedDataset() const;

  size_t size() const { return master_.size(); }
  Result<Record> Get(RecordId id) const;

  /// Ships the dataset to both parties over the metered channels (paper
  /// Fig. 2 "Initial dataset" arrows); the parties build their structures.
  Status Outsource(ServiceProvider* sp, TrustedEntity* te,
                   sim::Channel* to_sp, sim::Channel* to_te);

  /// Update paths: apply to the master copy, bump the epoch, and propagate
  /// record + epoch notice to both parties.
  Status InsertRecord(const Record& record, ServiceProvider* sp,
                      TrustedEntity* te, sim::Channel* to_sp,
                      sim::Channel* to_te);
  Status DeleteRecord(RecordId id, ServiceProvider* sp, TrustedEntity* te,
                      sim::Channel* to_sp, sim::Channel* to_te);

  /// The latest published epoch: 0 before outsourcing, 1 at the initial
  /// shipment, +1 per update. Clients use it as the freshness reference.
  /// Guarded by the owning system's reader-writer lock under concurrency.
  uint64_t epoch() const { return epoch_; }

  /// Whether `id` is in the master copy — the write-ahead path pre-validates
  /// updates with this before logging them, so the WAL never records an
  /// update the apply would reject.
  bool HasRecord(RecordId id) const { return master_.count(id) > 0; }

  /// Recovery: rewinds the epoch to `epoch` (the snapshot's) after a
  /// fresh re-outsourcing of the snapshot dataset, re-announcing it to
  /// both parties. No data moves; WAL replay advances from here.
  void RestoreEpoch(uint64_t epoch, ServiceProvider* sp, TrustedEntity* te) {
    epoch_ = epoch;
    sp->SetEpoch(epoch);
    te->SetEpoch(epoch);
  }

  const RecordCodec& codec() const { return codec_; }

 private:
  /// Bumps the epoch and announces it to both parties (wire notice + state).
  void PublishEpoch(ServiceProvider* sp, TrustedEntity* te,
                    sim::Channel* to_sp, sim::Channel* to_te);

  RecordCodec codec_;
  std::map<RecordId, Record> master_;
  uint64_t epoch_ = 0;
};

}  // namespace sae::core

#endif  // SAE_CORE_DATA_OWNER_H_
