// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the end-to-end SaeSystem and TomSystem harnesses
// (core/system.h) used by the examples and figure benches.

#include "core/system.h"

#include <algorithm>

#include "core/messages.h"
#include "core/query_engine.h"
#include "sim/cost_model.h"
#include "util/macros.h"

namespace sae::core {

namespace {

std::vector<Record> SortByKey(std::vector<Record> records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  return records;
}

}  // namespace

// --- SaeSystem ---------------------------------------------------------------

SaeSystem::SaeSystem(const Options& options)
    : options_(options),
      owner_(options.record_size),
      sp_(ServiceProvider::Options{options.record_size,
                                   options.sp_index_pool_pages,
                                   options.sp_heap_pool_pages}),
      te_(TrustedEntity::Options{options.record_size, options.scheme,
                                 options.te_pool_pages,
                                 xbtree::XbTreeOptions{}}) {}

Status SaeSystem::Load(const std::vector<Record>& records) {
  SAE_RETURN_NOT_OK(owner_.SetDataset(records));
  return owner_.Outsource(&sp_, &te_, &do_sp_, &do_te_);
}

Result<SaeSystem::QueryOutcome> SaeSystem::Query(Key lo, Key hi,
                                                 AttackMode attack) {
  QueryEngine engine;  // no workers: the batch of one runs on this thread
  QueryEngine::SaeBatch batch = engine.Run(this, {BatchQuery{lo, hi, attack}});
  return std::move(batch.outcomes[0]);
}

Result<SaeSystem::QueryOutcome> SaeSystem::ExecuteQuery(Key lo, Key hi,
                                                        AttackMode attack) {
  QueryOutcome outcome;
  // Per-thread pool counters and per-query channel sessions keep the cost
  // attribution exact when many queries run concurrently.
  storage::BufferPool::Stats sp_index0 = sp_.index_pool_thread_stats();
  storage::BufferPool::Stats sp_heap0 = sp_.heap_pool_thread_stats();
  storage::BufferPool::Stats te0 = te_.pool_thread_stats();

  // Client -> SP: execute; the SP may be compromised.
  SAE_ASSIGN_OR_RETURN(std::vector<Record> honest, sp_.ExecuteRange(lo, hi));
  outcome.results =
      ApplyAttack(honest, attack, codec(),
                  attack_seed_.fetch_add(1, std::memory_order_relaxed));
  std::vector<uint8_t> result_msg = SerializeRecords(outcome.results, codec());
  sim::Channel::Session sp_session = sp_client_.OpenSession();
  sp_session.Send(result_msg);
  outcome.costs.result_bytes = sp_session.bytes();
  outcome.costs.sp_index_accesses =
      (sp_.index_pool_thread_stats() - sp_index0).accesses;
  outcome.costs.sp_heap_accesses =
      (sp_.heap_pool_thread_stats() - sp_heap0).accesses;

  // Client -> TE: verification token (always honest).
  SAE_ASSIGN_OR_RETURN(crypto::Digest vt, te_.GenerateVt(lo, hi));
  std::vector<uint8_t> vt_msg = SerializeVt(vt);
  sim::Channel::Session te_session = te_client_.OpenSession();
  te_session.Send(vt_msg);
  outcome.costs.auth_bytes = te_session.bytes();
  outcome.costs.te_accesses = (te_.pool_thread_stats() - te0).accesses;

  // Client: decode and verify.
  SAE_ASSIGN_OR_RETURN(std::vector<Record> received,
                       DeserializeRecords(result_msg, codec()));
  SAE_ASSIGN_OR_RETURN(outcome.vt, DeserializeVt(vt_msg));
  sim::Stopwatch watch;
  outcome.verification =
      Client::VerifyResult(received, outcome.vt, codec(), options_.scheme);
  outcome.costs.client_verify_ms = watch.ElapsedMs();
  return outcome;
}

Status SaeSystem::Insert(const Record& record) {
  return owner_.InsertRecord(record, &sp_, &te_, &do_sp_, &do_te_);
}

Status SaeSystem::Delete(RecordId id) {
  return owner_.DeleteRecord(id, &sp_, &te_, &do_sp_, &do_te_);
}

// --- TomSystem ---------------------------------------------------------------

TomSystem::TomSystem(const Options& options)
    : options_(options),
      codec_(options.record_size),
      owner_(TomDataOwner::Options{options.record_size, options.scheme,
                                   options.rsa_modulus_bits, options.rsa_seed,
                                   options.do_pool_pages,
                                   mbtree::MbTreeOptions{}}),
      sp_(TomServiceProvider::Options{options.record_size, options.scheme,
                                      options.sp_index_pool_pages,
                                      options.sp_heap_pool_pages,
                                      mbtree::MbTreeOptions{}}) {}

Status TomSystem::Load(const std::vector<Record>& records) {
  std::vector<Record> sorted = SortByKey(records);
  SAE_RETURN_NOT_OK(owner_.LoadDataset(sorted));
  std::vector<uint8_t> shipment = SerializeRecords(sorted, codec_);
  std::vector<uint8_t> sig_msg = SerializeSignature(owner_.signature());
  do_sp_.Send(shipment);
  do_sp_.Send(sig_msg);
  return sp_.LoadDataset(sorted, owner_.signature());
}

Result<TomSystem::QueryOutcome> TomSystem::Query(Key lo, Key hi,
                                                 AttackMode attack) {
  QueryEngine engine;  // no workers: the batch of one runs on this thread
  QueryEngine::TomBatch batch = engine.Run(this, {BatchQuery{lo, hi, attack}});
  return std::move(batch.outcomes[0]);
}

Result<TomSystem::QueryOutcome> TomSystem::ExecuteQuery(Key lo, Key hi,
                                                        AttackMode attack) {
  QueryOutcome outcome;
  storage::BufferPool::Stats sp_index0 = sp_.index_pool_thread_stats();
  storage::BufferPool::Stats sp_heap0 = sp_.heap_pool_thread_stats();

  SAE_ASSIGN_OR_RETURN(TomServiceProvider::QueryResponse response,
                       sp_.ExecuteRange(lo, hi));
  outcome.results =
      ApplyAttack(response.results, attack, codec_,
                  attack_seed_.fetch_add(1, std::memory_order_relaxed));
  outcome.vo = std::move(response.vo);

  std::vector<uint8_t> result_msg = SerializeRecords(outcome.results, codec_);
  std::vector<uint8_t> vo_msg = outcome.vo.Serialize();
  sim::Channel::Session session = sp_client_.OpenSession();
  session.Send(result_msg);
  outcome.costs.result_bytes = session.bytes();
  session.Send(vo_msg);
  outcome.costs.auth_bytes = session.bytes() - outcome.costs.result_bytes;
  outcome.costs.sp_index_accesses =
      (sp_.index_pool_thread_stats() - sp_index0).accesses;
  outcome.costs.sp_heap_accesses =
      (sp_.heap_pool_thread_stats() - sp_heap0).accesses;

  SAE_ASSIGN_OR_RETURN(std::vector<Record> received,
                       DeserializeRecords(result_msg, codec_));
  SAE_ASSIGN_OR_RETURN(mbtree::VerificationObject vo,
                       mbtree::VerificationObject::Deserialize(vo_msg));
  sim::Stopwatch watch;
  outcome.verification = TomClient::Verify(
      lo, hi, received, vo, owner_.public_key(), codec_, options_.scheme);
  outcome.costs.client_verify_ms = watch.ElapsedMs();
  return outcome;
}

Status TomSystem::Insert(const Record& record) {
  SAE_RETURN_NOT_OK(owner_.InsertRecord(record));
  std::vector<uint8_t> shipment = SerializeRecords({record}, codec_);
  std::vector<uint8_t> sig_msg = SerializeSignature(owner_.signature());
  do_sp_.Send(shipment);
  do_sp_.Send(sig_msg);
  return sp_.ApplyInsert(record, owner_.signature());
}

Status TomSystem::Delete(RecordId id) {
  SAE_RETURN_NOT_OK(owner_.DeleteRecord(id));
  std::vector<uint8_t> note = SerializeDelete(id, 0);
  std::vector<uint8_t> sig_msg = SerializeSignature(owner_.signature());
  do_sp_.Send(note);
  do_sp_.Send(sig_msg);
  return sp_.ApplyDelete(id, owner_.signature());
}

}  // namespace sae::core
