// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the end-to-end SaeSystem and TomSystem harnesses
// (core/system.h): the shared-mutex reader-writer discipline, the
// epoch-versioned update pipeline, and the freshness adversaries
// (kReplayStaleRoot / kStaleVt) that answer from pre-update snapshots.

#include "core/system.h"

#include <algorithm>
#include <limits>

#include "core/messages.h"
#include "core/query_engine.h"
#include "sim/cost_model.h"
#include "util/macros.h"

namespace sae::core {

namespace {

std::vector<Record> SortByKey(std::vector<Record> records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  return records;
}

constexpr Key kMinKey = std::numeric_limits<Key>::min();
constexpr Key kMaxKey = std::numeric_limits<Key>::max();

// The epoch a freshness adversary claims: the snapshot's epoch when one
// exists, and in any case strictly behind the published epoch — a replay
// staged before any update occurred still announces itself as stale, so
// "malicious" never silently means "honest".
uint64_t StaleClaim(bool captured, uint64_t stale_epoch, uint64_t published) {
  uint64_t behind = published > 0 ? published - 1 : 0;
  return captured ? std::min(stale_epoch, behind) : behind;
}

}  // namespace

// --- SaeSystem ---------------------------------------------------------------

SaeSystem::SaeSystem(const Options& options)
    : options_(options),
      owner_(options.record_size),
      sp_(ServiceProvider::Options{options.record_size,
                                   options.sp_index_pool_pages,
                                   options.sp_heap_pool_pages,
                                   options.sp_answer_cache}),
      te_(TrustedEntity::Options{options.record_size, options.scheme,
                                 options.te_pool_pages, options.xb_options,
                                 options.te_vt_cache}),
      client_memo_(options.client_memo) {}

Status SaeSystem::Load(const std::vector<Record>& records) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  SAE_RETURN_NOT_OK(LoadLocked(records));
  if (options_.durability.enabled) {
    SAE_ASSIGN_OR_RETURN(durability_,
                         DurabilityManager::Open(options_.durability));
    // The epoch-1 baseline: until this snapshot is durable, a crash means
    // re-outsourcing from the DO's master copy (Recover -> kNotFound).
    SAE_RETURN_NOT_OK(WriteSnapshotLocked());
  }
  return Status::OK();
}

Status SaeSystem::LoadLocked(const std::vector<Record>& records) {
  SAE_RETURN_NOT_OK(owner_.SetDataset(records));
  SAE_RETURN_NOT_OK(owner_.Outsource(&sp_, &te_, &do_sp_, &do_te_));
  published_epoch_.store(owner_.epoch(), std::memory_order_release);
  return Status::OK();
}

Status SaeSystem::WriteSnapshotLocked() {
  SnapshotState state;
  state.model = SnapshotState::kSae;
  state.record_size = uint32_t(options_.record_size);
  state.scheme = options_.scheme;
  state.records = owner_.SortedDataset();
  return durability_->WriteSnapshot(owner_.epoch(), state);
}

Status SaeSystem::CheckpointLocked() {
  if (durability_->NextCheckpointIsFull()) {
    SnapshotState state;
    state.model = SnapshotState::kSae;
    state.record_size = uint32_t(options_.record_size);
    state.scheme = options_.scheme;
    state.records = owner_.SortedDataset();
    return durability_->CheckpointFull(owner_.epoch(), std::move(state));
  }
  // O(changes): the pending set accumulated at stage time IS the delta.
  return durability_->CheckpointDelta(owner_.epoch(), {});
}

bool SaeSystem::EffectiveHasRecord(RecordId id) const {
  auto it = staged_presence_.find(id);
  if (it != staged_presence_.end()) return it->second.first;
  return owner_.HasRecord(id);
}

Result<std::unique_ptr<SaeSystem>> SaeSystem::Recover(const Options& options) {
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<DurabilityManager> mgr,
                       DurabilityManager::Open(options.durability));
  const DurabilityManager::Recovered& rec = mgr->recovered();
  if (!rec.has_snapshot) {
    return Status::NotFound("no durable snapshot to recover from");
  }
  if (rec.snapshot.model != SnapshotState::kSae) {
    return Status::Corruption("snapshot belongs to a different model");
  }
  if (rec.snapshot.record_size != options.record_size ||
      rec.snapshot.scheme != options.scheme) {
    return Status::Corruption("snapshot configuration does not match options");
  }

  auto system = std::unique_ptr<SaeSystem>(new SaeSystem(options));
  std::unique_lock<std::shared_mutex> lock(system->rw_mu_);
  SAE_RETURN_NOT_OK(system->LoadLocked(rec.snapshot.records));
  system->owner_.RestoreEpoch(rec.snapshot_epoch, &system->sp_,
                              &system->te_);
  // Replay the WAL tail through the normal owner paths. Records at or
  // below the snapshot epoch are already inside it (a crash can land
  // between the snapshot rename and the WAL reset); later records must
  // chain epoch-contiguously out of the snapshot.
  for (const WalUpdate& update : rec.wal_tail) {
    if (update.epoch <= rec.snapshot_epoch) continue;
    if (update.epoch != system->owner_.epoch() + 1) {
      return Status::Corruption("wal epoch does not follow recovered state");
    }
    Status applied =
        update.op == WalUpdate::kInsert
            ? system->owner_.InsertRecord(update.record, &system->sp_,
                                          &system->te_, &system->do_sp_,
                                          &system->do_te_)
            : system->owner_.DeleteRecord(update.id, &system->sp_,
                                          &system->te_, &system->do_sp_,
                                          &system->do_te_);
    if (!applied.ok()) {
      return Status::Corruption("wal replay failed: " + applied.message());
    }
  }
  system->published_epoch_.store(system->owner_.epoch(),
                                 std::memory_order_release);
  system->durability_ = std::move(mgr);
  return system;
}

Result<SaeSystem::QueryOutcome> SaeSystem::Query(
    const dbms::QueryRequest& request, AttackMode attack) {
  QueryEngine engine;  // no workers: the batch of one runs on this thread
  QueryEngine::SaeBatch batch =
      engine.Run(this, {BatchQuery{request, attack}});
  return std::move(batch.outcomes[0]);
}

void SaeSystem::CaptureStaleSnapshotLocked() {
  if (stale_captured_) return;
  // Freeze the pre-update database once, right before the first update
  // ever applied: the replay adversary will answer from this state.
  auto snapshot = sp_.ExecuteRange(kMinKey, kMaxKey);
  if (!snapshot.ok()) return;  // leave uncaptured; replay degrades cleanly
  stale_records_ = std::move(snapshot.value());
  stale_epoch_ = owner_.epoch();
  stale_captured_ = true;
}

const ServiceProvider* SaeSystem::StaleSp() {
  if (!stale_captured_) return nullptr;
  std::call_once(stale_build_once_, [this] {
    auto sp = std::make_unique<ServiceProvider>(ServiceProvider::Options{
        options_.record_size, options_.sp_index_pool_pages,
        options_.sp_heap_pool_pages, options_.sp_answer_cache});
    if (sp->LoadDataset(stale_records_).ok()) {
      sp->SetEpoch(stale_epoch_);
      stale_sp_ = std::move(sp);
    }
    stale_records_.clear();
    stale_records_.shrink_to_fit();
  });
  return stale_sp_.get();
}

Result<SaeSystem::QueryOutcome> SaeSystem::ExecuteQuery(
    const dbms::QueryRequest& request, AttackMode attack) {
  // Shared (reader) lock for the whole query: the epoch observed by the
  // SP answer, the TE token, and the client check is one frozen snapshot.
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  uint64_t published = owner_.epoch();
  uint64_t seed = attack_seed_.fetch_add(1, std::memory_order_relaxed);

  QueryOutcome outcome;
  outcome.request = request;
  // Per-thread pool counters and per-query channel sessions keep the cost
  // attribution exact when many queries run concurrently.
  storage::BufferPool::Stats sp_index0 = sp_.index_pool_thread_stats();
  storage::BufferPool::Stats sp_heap0 = sp_.heap_pool_thread_stats();
  storage::BufferPool::Stats te0 = te_.pool_thread_stats();

  // Client -> SP: execute the plan; the SP may be compromised. A replaying
  // SP serves from the pre-update snapshot and (honestly) stamps the
  // snapshot's epoch — the freshness check, not the XOR, catches it.
  ServiceProvider::PlanResult plan;
  uint64_t claimed_epoch = sp_.epoch();
  if (attack == AttackMode::kReplayStaleRoot ||
      attack == AttackMode::kStaleCacheReplay) {
    const ServiceProvider* stale = StaleSp();
    claimed_epoch = StaleClaim(stale != nullptr, stale_epoch_, published);
    const ServiceProvider& source = stale != nullptr ? *stale : sp_;
    if (attack == AttackMode::kStaleCacheReplay) {
      // Warm the stale SP's answer cache, then serve from it: the replayed
      // bytes literally come out of a cache entry keyed to the old epoch.
      SAE_RETURN_NOT_OK(source.ExecutePlan(request).status());
    }
    SAE_ASSIGN_OR_RETURN(plan, source.ExecutePlan(request));
  } else if (attack == AttackMode::kPoisonedCache) {
    // The SP poisons its own cache: tampered bytes ship now and persist
    // for later honest queries until an epoch bump flushes the cache.
    SAE_ASSIGN_OR_RETURN(plan, sp_.ExecutePoisonedPlan(request, seed));
  } else {
    SAE_ASSIGN_OR_RETURN(plan, sp_.ExecutePlan(request));
  }
  // Record attacks tamper the witness and re-derive the answer from it (a
  // consistent lie the range proof catches); answer attacks leave the
  // witness honest and falsify the derived fields (CheckAnswer's job).
  std::vector<Record> witness =
      ApplyAttack(std::move(plan.witness), attack, codec(), seed);
  dbms::QueryAnswer answer = IsRecordAttack(attack)
                                 ? dbms::EvaluateAnswer(request, witness)
                                 : std::move(plan.answer);
  ApplyAnswerAttack(&answer, attack, seed);
  std::vector<uint8_t> result_msg =
      SerializeQueryAnswer(answer, witness, claimed_epoch, codec());
  sim::Channel::Session sp_session = sp_client_.OpenSession();
  sp_session.Send(result_msg);
  outcome.costs.result_bytes = sp_session.bytes();
  outcome.costs.sp_index_accesses =
      (sp_.index_pool_thread_stats() - sp_index0).accesses;
  outcome.costs.sp_heap_accesses =
      (sp_.heap_pool_thread_stats() - sp_heap0).accesses;

  // Client -> TE: verification token (the TE itself is always honest; a
  // kStaleVt adversary replays a token captured before the last update).
  SAE_ASSIGN_OR_RETURN(VerificationToken vt, te_.GenerateVt(request));
  if (attack == AttackMode::kStaleVt) {
    vt.epoch = vt.epoch > 0 ? vt.epoch - 1 : 0;
  }
  std::vector<uint8_t> vt_msg = SerializeVt(vt);
  sim::Channel::Session te_session = te_client_.OpenSession();
  te_session.Send(vt_msg);
  outcome.costs.auth_bytes = te_session.bytes();
  outcome.costs.te_accesses = (te_.pool_thread_stats() - te0).accesses;

  // Client: decode and verify — freshness gates, then the XOR check over
  // the witness, then the answer recomputation (Client::VerifyAnswer).
  SAE_ASSIGN_OR_RETURN(QueryAnswerMessage received,
                       DeserializeQueryAnswer(result_msg, codec()));
  outcome.answer = std::move(received.answer);
  outcome.results = std::move(received.witness);
  outcome.claimed_epoch = received.epoch;
  SAE_ASSIGN_OR_RETURN(outcome.vt, DeserializeVt(vt_msg));
  sim::Stopwatch watch;
  outcome.verification = client_memo_.VerifyAnswer(
      request, outcome.answer, outcome.results, outcome.vt,
      outcome.claimed_epoch, published, codec(), options_.scheme);
  outcome.costs.client_verify_ms = watch.ElapsedMs();
  return outcome;
}

template <typename Validate, typename Fn>
Result<uint64_t> SaeSystem::RunUpdate(uint64_t* op_counter,
                                      WalUpdate wal_update,
                                      Validate&& validate, Fn&& apply) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  // Adversary staging (a one-time O(n) scan on the first update ever)
  // happens before the stopwatch so the reported update latency measures
  // the pipeline, not the test harness's replay snapshot.
  CaptureStaleSnapshotLocked();
  sim::Stopwatch watch;
  const bool group =
      durability_ != nullptr && durability_->options().wal_group_commit;
  auto fail = [&](Status st) -> Result<uint64_t> {
    ++update_stats_.failed;
    update_stats_.latency_ms += watch.ElapsedMs();
    return st;
  };
  // Write-ahead ordering: validate first — against the owner state PLUS
  // everything staged ahead of us, so the WAL never records an update its
  // apply would reject — then make the record durable, and only then
  // mutate memory. A synced record still precedes every in-memory apply
  // it covers.
  Status st = validate();
  if (!st.ok()) return fail(st);
  uint64_t my_epoch = 0;
  uint64_t seq = 0;
  RecordId staged_id = 0;
  if (durability_ != nullptr) {
    if (wal_dead_) {
      return fail(Status::IoError("durable write pipeline failed"));
    }
    my_epoch = std::max(staged_epoch_, owner_.epoch()) + 1;
    wal_update.epoch = my_epoch;
    staged_id = wal_update.op == WalUpdate::kInsert ? wal_update.record.id
                                                    : wal_update.id;
    auto staged = durability_->StageUpdate(wal_update);
    if (!staged.ok()) return fail(staged.status());
    seq = staged.value();
    staged_epoch_ = my_epoch;
    if (group) {
      staged_presence_[staged_id] = {wal_update.op == WalUpdate::kInsert,
                                     my_epoch};
      const uint64_t my_gen = wal_generation_;
      // Commit OUTSIDE the lock so concurrent committers share one fsync,
      // then re-enter and wait for our turn: applies happen in staged
      // epoch order, exactly as if the pipeline were sequential.
      lock.unlock();
      Status synced = durability_->CommitStaged(seq);
      lock.lock();
      if (synced.ok() && !wal_dead_ && wal_generation_ == my_gen) {
        apply_cv_.wait(lock, [&] {
          return wal_dead_ || wal_generation_ != my_gen ||
                 owner_.epoch() + 1 == my_epoch;
        });
      }
      if (wal_generation_ != my_gen && !wal_dead_) {
        // A failure below us in the pipeline durably retracted the whole
        // staged suffix — this record included — and re-armed. Our update
        // simply failed; recovery will never replay it.
        return fail(Status::IoError(
            "update retracted: a group-commit neighbor failed"));
      }
      if (!synced.ok() || wal_dead_) {
        // A failed group fsync (or a failure upstream in the pipeline)
        // means epochs staged after the failure can never publish. Retract
        // the whole unapplied suffix durably — a neighboring leader's
        // retried fsync may have synced our record even though our own
        // commit failed, so a volatile-looking record can still resurrect
        // — then re-arm the pipeline for new updates. Only if the
        // retraction itself cannot be made durable is the pipeline
        // poisoned: the suffix's post-crash outcome is unknown.
        if (!wal_dead_ &&
            durability_->RetractStagedFrom(owner_.epoch() + 1).ok()) {
          staged_epoch_ = owner_.epoch();
          staged_presence_.clear();
          ++wal_generation_;
        } else {
          wal_dead_ = true;
        }
        apply_cv_.notify_all();
        return fail(synced.ok()
                        ? Status::IoError("durable write pipeline failed")
                        : synced);
      }
    } else {
      st = durability_->CommitStaged(seq);
      if (!st.ok()) {
        // Single-record commit: nothing was synced on top of us, so a
        // plain stage undo retracts the record; fall back to a durable
        // abort marker, and fail stop only if both fail — then the
        // record's post-crash outcome is unknown.
        if (durability_->UndoFailedUpdate().ok() ||
            durability_->RetractStagedFrom(my_epoch).ok()) {
          staged_epoch_ = my_epoch - 1;
        } else {
          wal_dead_ = true;
        }
        return fail(st);
      }
    }
  }
  // Channels carry shipment + epoch notice; the applying update holds the
  // unique lock, so the delta is exactly this update's traffic.
  uint64_t sp_bytes0 = do_sp_.total_bytes();
  uint64_t te_bytes0 = do_te_.total_bytes();
  st = apply();
  size_t traffic = (do_sp_.total_bytes() - sp_bytes0) +
                   (do_te_.total_bytes() - te_bytes0);
  size_t notice_bytes = st.ok() ? 2 * SerializeEpochNotice(0).size() : 0;
  update_stats_.shipment_bytes += traffic - notice_bytes;
  update_stats_.auth_bytes += notice_bytes;
  update_stats_.latency_ms += watch.ElapsedMs();
  if (!st.ok()) {
    if (durability_ != nullptr) {
      bool retracted = false;
      if (staged_epoch_ == my_epoch) {
        // Ours is the newest staged record: retract it — the log and the
        // pending delta must not claim an update that did not happen. The
        // record may already be durable (group fsync), and recovery's
        // contiguity check would replay it — it only cuts epoch GAPS —
        // so prefer the physical stage undo (leaves the log byte-identical
        // to a never-staged history) and fall back to a durable abort
        // marker.
        retracted = durability_->UndoFailedUpdate().ok() ||
                    durability_->RetractStagedFrom(my_epoch).ok();
        if (retracted) {
          staged_epoch_ = my_epoch - 1;
          auto it = staged_presence_.find(staged_id);
          if (it != staged_presence_.end() && it->second.second == my_epoch) {
            staged_presence_.erase(it);
          }
        }
      } else {
        // Later updates already staged (and validated) on top of our
        // durable record; none of them can ever publish. Durably retract
        // the whole suffix and re-arm: waiters from this generation fail
        // without applying, new updates restage from the owner epoch.
        retracted = durability_->RetractStagedFrom(my_epoch).ok();
        if (retracted) {
          staged_epoch_ = my_epoch - 1;
          staged_presence_.clear();
          ++wal_generation_;
        }
      }
      if (!retracted) {
        // The failed update's durable record cannot be retracted: its
        // post-crash outcome is unknown. Fail stop so no later update
        // stacks onto an epoch that may or may not replay.
        wal_dead_ = true;
      }
      apply_cv_.notify_all();
    }
    ++update_stats_.failed;
    return st;
  }
  if (group) {
    auto it = staged_presence_.find(staged_id);
    if (it != staged_presence_.end() && it->second.second == my_epoch) {
      staged_presence_.erase(it);
    }
  }
  ++*op_counter;
  published_epoch_.store(owner_.epoch(), std::memory_order_release);
  if (durability_ != nullptr) apply_cv_.notify_all();
  if (durability_ != nullptr && durability_->ShouldSnapshot() &&
      staged_epoch_ == owner_.epoch()) {
    // Checkpoint only at a quiescent point (nothing staged-but-unapplied):
    // the WAL rotation inside the capture is then barrier-free and the
    // pending set is exactly the state delta. The cadence counter stays
    // due until the last committer of a burst lands here. The update
    // itself is already durable; a failing checkpoint still surfaces.
    SAE_RETURN_NOT_OK(CheckpointLocked());
  }
  return owner_.epoch();
}

Result<uint64_t> SaeSystem::InsertVersioned(const Record& record) {
  WalUpdate wal_update;
  wal_update.op = WalUpdate::kInsert;
  wal_update.record = record;
  return RunUpdate(
      &update_stats_.inserts, std::move(wal_update),
      [&] {
        return EffectiveHasRecord(record.id)
                   ? Status::AlreadyExists("record id already present")
                   : Status::OK();
      },
      [&] { return owner_.InsertRecord(record, &sp_, &te_, &do_sp_, &do_te_); });
}

Result<uint64_t> SaeSystem::DeleteVersioned(RecordId id) {
  WalUpdate wal_update;
  wal_update.op = WalUpdate::kDelete;
  wal_update.id = id;
  return RunUpdate(
      &update_stats_.deletes, std::move(wal_update),
      [&] {
        return EffectiveHasRecord(id)
                   ? Status::OK()
                   : Status::NotFound("no record with this id");
      },
      [&] { return owner_.DeleteRecord(id, &sp_, &te_, &do_sp_, &do_te_); });
}

UpdateStats SaeSystem::update_stats() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  return update_stats_;
}

// --- TomSystem ---------------------------------------------------------------

TomSystem::TomSystem(const Options& options)
    : options_(options),
      codec_(options.record_size),
      owner_(TomDataOwner::Options{options.record_size, options.scheme,
                                   options.rsa_modulus_bits, options.rsa_seed,
                                   options.do_pool_pages,
                                   options.mb_options}),
      sp_(TomServiceProvider::Options{options.record_size, options.scheme,
                                      options.sp_index_pool_pages,
                                      options.sp_heap_pool_pages,
                                      options.mb_options,
                                      options.sp_answer_cache}),
      client_memo_(options.client_memo) {}

Status TomSystem::Load(const std::vector<Record>& records) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  SAE_RETURN_NOT_OK(LoadLocked(records, /*ship=*/true));
  if (options_.durability.enabled) {
    SAE_ASSIGN_OR_RETURN(durability_,
                         DurabilityManager::Open(options_.durability));
    SAE_RETURN_NOT_OK(WriteSnapshotLocked());  // the epoch-1 baseline
  }
  return Status::OK();
}

Status TomSystem::LoadLocked(const std::vector<Record>& records, bool ship) {
  std::vector<Record> sorted = SortByKey(records);
  SAE_RETURN_NOT_OK(owner_.LoadDataset(sorted));
  if (ship) {
    std::vector<uint8_t> shipment = SerializeRecords(sorted, codec_);
    std::vector<uint8_t> sig_msg =
        SerializeSignature(owner_.signature(), owner_.epoch());
    do_sp_.Send(shipment);
    do_sp_.Send(sig_msg);
  }
  SAE_RETURN_NOT_OK(
      sp_.LoadDataset(sorted, owner_.signature(), owner_.epoch()));
  published_epoch_.store(owner_.epoch(), std::memory_order_release);
  return Status::OK();
}

Status TomSystem::WriteSnapshotLocked() {
  SnapshotState state;
  state.model = SnapshotState::kTom;
  state.record_size = uint32_t(options_.record_size);
  state.scheme = options_.scheme;
  SAE_ASSIGN_OR_RETURN(TomServiceProvider::QueryResponse range,
                       sp_.ExecuteRange(std::numeric_limits<Key>::min(),
                                        std::numeric_limits<Key>::max()));
  state.records = std::move(range.results);
  state.signature = owner_.signature();
  return durability_->WriteSnapshot(owner_.epoch(), state);
}

Status TomSystem::CheckpointLocked() {
  if (durability_->NextCheckpointIsFull()) {
    SnapshotState state;
    state.model = SnapshotState::kTom;
    state.record_size = uint32_t(options_.record_size);
    state.scheme = options_.scheme;
    SAE_ASSIGN_OR_RETURN(TomServiceProvider::QueryResponse range,
                         sp_.ExecuteRange(std::numeric_limits<Key>::min(),
                                          std::numeric_limits<Key>::max()));
    state.records = std::move(range.results);
    state.signature = owner_.signature();
    return durability_->CheckpointFull(owner_.epoch(), std::move(state));
  }
  // O(changes); the delta carries the root signature AT this epoch, so the
  // composed chain stays byte-provable at recovery.
  return durability_->CheckpointDelta(owner_.epoch(), owner_.signature());
}

bool TomSystem::EffectiveHasRecord(RecordId id) const {
  auto it = staged_presence_.find(id);
  if (it != staged_presence_.end()) return it->second.first;
  return owner_.HasRecord(id);
}

Result<std::unique_ptr<TomSystem>> TomSystem::Recover(const Options& options) {
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<DurabilityManager> mgr,
                       DurabilityManager::Open(options.durability));
  const DurabilityManager::Recovered& rec = mgr->recovered();
  if (!rec.has_snapshot) {
    return Status::NotFound("no durable snapshot to recover from");
  }
  if (rec.snapshot.model != SnapshotState::kTom) {
    return Status::Corruption("snapshot belongs to a different model");
  }
  if (rec.snapshot.record_size != options.record_size ||
      rec.snapshot.scheme != options.scheme) {
    return Status::Corruption("snapshot configuration does not match options");
  }

  auto system = std::unique_ptr<TomSystem>(new TomSystem(options));
  std::unique_lock<std::shared_mutex> lock(system->rw_mu_);
  SAE_RETURN_NOT_OK(system->LoadLocked(rec.snapshot.records, /*ship=*/false));
  SAE_RETURN_NOT_OK(system->owner_.RestoreEpoch(rec.snapshot_epoch));
  // The re-signed recovered root must byte-match the persisted signature:
  // this proves the rebuilt ADS is identical to the checkpointed one
  // before any client sees it.
  if (system->owner_.signature() != rec.snapshot.signature) {
    return Status::Corruption(
        "recovered root signature does not match the snapshot");
  }
  system->sp_.SetSignature(system->owner_.signature(),
                           system->owner_.epoch());
  for (const WalUpdate& update : rec.wal_tail) {
    if (update.epoch <= rec.snapshot_epoch) continue;
    if (update.epoch != system->owner_.epoch() + 1) {
      return Status::Corruption("wal epoch does not follow recovered state");
    }
    Status applied;
    if (update.op == WalUpdate::kInsert) {
      applied = system->owner_.InsertRecord(update.record);
      if (applied.ok()) {
        applied = system->sp_.ApplyInsert(update.record,
                                          system->owner_.signature(),
                                          system->owner_.epoch());
      }
    } else {
      applied = system->owner_.DeleteRecord(update.id);
      if (applied.ok()) {
        applied = system->sp_.ApplyDelete(update.id,
                                          system->owner_.signature(),
                                          system->owner_.epoch());
      }
    }
    if (!applied.ok()) {
      return Status::Corruption("wal replay failed: " + applied.message());
    }
  }
  system->published_epoch_.store(system->owner_.epoch(),
                                 std::memory_order_release);
  system->durability_ = std::move(mgr);
  return system;
}

Result<TomSystem::QueryOutcome> TomSystem::Query(
    const dbms::QueryRequest& request, AttackMode attack) {
  QueryEngine engine;  // no workers: the batch of one runs on this thread
  QueryEngine::TomBatch batch =
      engine.Run(this, {BatchQuery{request, attack}});
  return std::move(batch.outcomes[0]);
}

void TomSystem::CaptureStaleSnapshotLocked() {
  if (stale_captured_) return;
  auto snapshot = sp_.ExecuteRange(kMinKey, kMaxKey);
  if (!snapshot.ok()) return;
  stale_records_ = std::move(snapshot.value().results);
  stale_signature_ = owner_.signature();  // pre-update: not yet re-signed
  stale_epoch_ = owner_.epoch();
  stale_captured_ = true;
}

const TomServiceProvider* TomSystem::StaleSp() {
  if (!stale_captured_) return nullptr;
  std::call_once(stale_build_once_, [this] {
    auto sp = std::make_unique<TomServiceProvider>(
        TomServiceProvider::Options{options_.record_size, options_.scheme,
                                    options_.sp_index_pool_pages,
                                    options_.sp_heap_pool_pages,
                                    options_.mb_options,
                                    options_.sp_answer_cache});
    if (sp->LoadDataset(stale_records_, stale_signature_, stale_epoch_)
            .ok()) {
      stale_sp_ = std::move(sp);
    }
    stale_records_.clear();
    stale_records_.shrink_to_fit();
  });
  return stale_sp_.get();
}

Result<TomSystem::QueryOutcome> TomSystem::ExecuteQuery(
    const dbms::QueryRequest& request, AttackMode attack) {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  uint64_t published = owner_.epoch();
  uint64_t seed = attack_seed_.fetch_add(1, std::memory_order_relaxed);

  QueryOutcome outcome;
  outcome.request = request;
  storage::BufferPool::Stats sp_index0 = sp_.index_pool_thread_stats();
  storage::BufferPool::Stats sp_heap0 = sp_.heap_pool_thread_stats();

  TomServiceProvider::PlanResponse response;
  if (attack == AttackMode::kReplayStaleRoot ||
      attack == AttackMode::kStaleCacheReplay) {
    // Full replay: stale results + stale VO + the stale epoch-stamped
    // signature — internally consistent, cryptographically valid for its
    // own epoch. Only the freshness gate can reject it. The cache-replay
    // variant serves the second of two identical calls, so the replayed
    // bytes come straight out of a cache entry keyed to the old epoch.
    const TomServiceProvider* stale = StaleSp();
    const TomServiceProvider& source = stale != nullptr ? *stale : sp_;
    if (attack == AttackMode::kStaleCacheReplay) {
      SAE_RETURN_NOT_OK(source.ExecutePlan(request).status());
    }
    SAE_ASSIGN_OR_RETURN(response, source.ExecutePlan(request));
    response.vo.epoch = StaleClaim(stale != nullptr, stale_epoch_, published);
  } else if (attack == AttackMode::kPoisonedCache) {
    // The SP poisons its own cache: tampered witness bytes ship with the
    // honest VO (the VO disproves them) and persist in the cache for later
    // honest queries until a signature install flushes it.
    SAE_ASSIGN_OR_RETURN(response, sp_.ExecutePoisonedPlan(request, seed));
  } else if (attack == AttackMode::kStaleVt) {
    // Stale authentication against the current result: the SP presents an
    // old epoch's signature (TOM's analog of a replayed TE token).
    SAE_ASSIGN_OR_RETURN(response, sp_.ExecutePlan(request));
    response.vo.epoch = StaleClaim(stale_captured_, stale_epoch_, published);
    if (stale_captured_) response.vo.signature = stale_signature_;
  } else {
    SAE_ASSIGN_OR_RETURN(response, sp_.ExecutePlan(request));
  }
  // Record attacks tamper the witness (and the answer re-derives from the
  // tampered set — a consistent lie the VO catches); answer attacks leave
  // the witness honest and falsify only the derived answer.
  std::vector<Record> witness =
      ApplyAttack(std::move(response.witness), attack, codec_, seed);
  dbms::QueryAnswer answer = IsRecordAttack(attack)
                                 ? dbms::EvaluateAnswer(request, witness)
                                 : std::move(response.answer);
  ApplyAnswerAttack(&answer, attack, seed);
  outcome.vo = std::move(response.vo);

  std::vector<uint8_t> result_msg =
      SerializeQueryAnswer(answer, witness, outcome.vo.epoch, codec_);
  std::vector<uint8_t> vo_msg = outcome.vo.Serialize();
  sim::Channel::Session session = sp_client_.OpenSession();
  session.Send(result_msg);
  outcome.costs.result_bytes = session.bytes();
  session.Send(vo_msg);
  outcome.costs.auth_bytes = session.bytes() - outcome.costs.result_bytes;
  outcome.costs.sp_index_accesses =
      (sp_.index_pool_thread_stats() - sp_index0).accesses;
  outcome.costs.sp_heap_accesses =
      (sp_.heap_pool_thread_stats() - sp_heap0).accesses;

  SAE_ASSIGN_OR_RETURN(QueryAnswerMessage received,
                       DeserializeQueryAnswer(result_msg, codec_));
  outcome.answer = std::move(received.answer);
  outcome.results = std::move(received.witness);
  SAE_ASSIGN_OR_RETURN(mbtree::VerificationObject vo,
                       mbtree::VerificationObject::Deserialize(vo_msg));
  sim::Stopwatch watch;
  outcome.verification = client_memo_.VerifyAnswer(
      request, outcome.answer, outcome.results, vo, vo_msg,
      owner_.public_key(), codec_, options_.scheme, published);
  outcome.costs.client_verify_ms = watch.ElapsedMs();
  return outcome;
}

template <typename Validate, typename Fn>
Result<uint64_t> TomSystem::RunUpdate(uint64_t* op_counter,
                                      WalUpdate wal_update,
                                      Validate&& validate, Fn&& apply) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  CaptureStaleSnapshotLocked();  // off the clock, see SaeSystem::RunUpdate
  sim::Stopwatch watch;
  const bool group =
      durability_ != nullptr && durability_->options().wal_group_commit;
  auto fail = [&](Status st) -> Result<uint64_t> {
    ++update_stats_.failed;
    update_stats_.latency_ms += watch.ElapsedMs();
    return st;
  };
  // Write-ahead ordering, as in SaeSystem::RunUpdate: validate (against
  // owner state + staged-ahead changes), make durable, apply in epoch
  // order.
  Status st = validate();
  if (!st.ok()) return fail(st);
  uint64_t my_epoch = 0;
  uint64_t seq = 0;
  RecordId staged_id = 0;
  if (durability_ != nullptr) {
    if (wal_dead_) {
      return fail(Status::IoError("durable write pipeline failed"));
    }
    my_epoch = std::max(staged_epoch_, owner_.epoch()) + 1;
    wal_update.epoch = my_epoch;
    staged_id = wal_update.op == WalUpdate::kInsert ? wal_update.record.id
                                                    : wal_update.id;
    auto staged = durability_->StageUpdate(wal_update);
    if (!staged.ok()) return fail(staged.status());
    seq = staged.value();
    staged_epoch_ = my_epoch;
    if (group) {
      staged_presence_[staged_id] = {wal_update.op == WalUpdate::kInsert,
                                     my_epoch};
      const uint64_t my_gen = wal_generation_;
      lock.unlock();
      Status synced = durability_->CommitStaged(seq);
      lock.lock();
      if (synced.ok() && !wal_dead_ && wal_generation_ == my_gen) {
        apply_cv_.wait(lock, [&] {
          return wal_dead_ || wal_generation_ != my_gen ||
                 owner_.epoch() + 1 == my_epoch;
        });
      }
      if (wal_generation_ != my_gen && !wal_dead_) {
        // Retracted by a failure below us; see SaeSystem::RunUpdate.
        return fail(Status::IoError(
            "update retracted: a group-commit neighbor failed"));
      }
      if (!synced.ok() || wal_dead_) {
        // Retract the unapplied suffix and re-arm; poison only if the
        // retraction cannot be made durable. See SaeSystem::RunUpdate.
        if (!wal_dead_ &&
            durability_->RetractStagedFrom(owner_.epoch() + 1).ok()) {
          staged_epoch_ = owner_.epoch();
          staged_presence_.clear();
          ++wal_generation_;
        } else {
          wal_dead_ = true;
        }
        apply_cv_.notify_all();
        return fail(synced.ok()
                        ? Status::IoError("durable write pipeline failed")
                        : synced);
      }
    } else {
      st = durability_->CommitStaged(seq);
      if (!st.ok()) {
        // Undo (or durably abort) the unsynced record so it cannot
        // resurrect; fail stop only if both fail. See SaeSystem.
        if (durability_->UndoFailedUpdate().ok() ||
            durability_->RetractStagedFrom(my_epoch).ok()) {
          staged_epoch_ = my_epoch - 1;
        } else {
          wal_dead_ = true;
        }
        return fail(st);
      }
    }
  }
  uint64_t bytes0 = do_sp_.total_bytes();
  size_t auth_bytes = 0;
  st = apply(&auth_bytes);
  size_t traffic = do_sp_.total_bytes() - bytes0;
  update_stats_.shipment_bytes += traffic - auth_bytes;
  update_stats_.auth_bytes += auth_bytes;
  update_stats_.latency_ms += watch.ElapsedMs();
  if (!st.ok()) {
    if (durability_ != nullptr) {
      // Retract the failed (possibly durable) record — or the whole
      // staged suffix when later updates stacked on top — and re-arm;
      // fail stop only when no retraction can be made durable. See
      // SaeSystem::RunUpdate for the full reasoning.
      bool retracted = false;
      if (staged_epoch_ == my_epoch) {
        retracted = durability_->UndoFailedUpdate().ok() ||
                    durability_->RetractStagedFrom(my_epoch).ok();
        if (retracted) {
          staged_epoch_ = my_epoch - 1;
          auto it = staged_presence_.find(staged_id);
          if (it != staged_presence_.end() && it->second.second == my_epoch) {
            staged_presence_.erase(it);
          }
        }
      } else {
        retracted = durability_->RetractStagedFrom(my_epoch).ok();
        if (retracted) {
          staged_epoch_ = my_epoch - 1;
          staged_presence_.clear();
          ++wal_generation_;
        }
      }
      if (!retracted) wal_dead_ = true;
      apply_cv_.notify_all();
    }
    ++update_stats_.failed;
    return st;
  }
  if (group) {
    auto it = staged_presence_.find(staged_id);
    if (it != staged_presence_.end() && it->second.second == my_epoch) {
      staged_presence_.erase(it);
    }
  }
  ++*op_counter;
  published_epoch_.store(owner_.epoch(), std::memory_order_release);
  if (durability_ != nullptr) apply_cv_.notify_all();
  if (durability_ != nullptr && durability_->ShouldSnapshot() &&
      staged_epoch_ == owner_.epoch()) {
    SAE_RETURN_NOT_OK(CheckpointLocked());  // quiescent, see SaeSystem
  }
  return owner_.epoch();
}

Result<uint64_t> TomSystem::InsertVersioned(const Record& record) {
  WalUpdate wal_update;
  wal_update.op = WalUpdate::kInsert;
  wal_update.record = record;
  return RunUpdate(
      &update_stats_.inserts, std::move(wal_update),
      [&] {
        return EffectiveHasRecord(record.id)
                   ? Status::AlreadyExists("record id already present")
                   : Status::OK();
      },
      [&](size_t* auth_bytes) {
        SAE_RETURN_NOT_OK(owner_.InsertRecord(record));
        std::vector<uint8_t> shipment = SerializeRecords({record}, codec_);
        std::vector<uint8_t> sig_msg =
            SerializeSignature(owner_.signature(), owner_.epoch());
        *auth_bytes = sig_msg.size();
        do_sp_.Send(shipment);
        do_sp_.Send(sig_msg);
        return sp_.ApplyInsert(record, owner_.signature(), owner_.epoch());
      });
}

Result<uint64_t> TomSystem::DeleteVersioned(RecordId id) {
  WalUpdate wal_update;
  wal_update.op = WalUpdate::kDelete;
  wal_update.id = id;
  return RunUpdate(
      &update_stats_.deletes, std::move(wal_update),
      [&] {
        return EffectiveHasRecord(id)
                   ? Status::OK()
                   : Status::NotFound("no record with this id");
      },
      [&](size_t* auth_bytes) {
        SAE_RETURN_NOT_OK(owner_.DeleteRecord(id));
        std::vector<uint8_t> note = SerializeDelete(id, 0);
        std::vector<uint8_t> sig_msg =
            SerializeSignature(owner_.signature(), owner_.epoch());
        *auth_bytes = sig_msg.size();
        do_sp_.Send(note);
        do_sp_.Send(sig_msg);
        return sp_.ApplyDelete(id, owner_.signature(), owner_.epoch());
      });
}

UpdateStats TomSystem::update_stats() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  return update_stats_;
}

}  // namespace sae::core
