// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The sharded execution tier: N independent SP shards behind one
// range-partitioning ShardRouter, each shard a complete single-shard
// system (its own auth state — XB-tree at the TE under SAE, MB-tree +
// epoch-stamped root signature under TOM — its own reader-writer lock,
// its own epoch counter). Point and range queries route to the owning
// shard(s); a range spanning several shards fans out in parallel over a
// QueryEngine worker pool and the per-shard answers are stitched into a
// composite result whose verification checks, in order:
//
//   1. structural fence-key completeness — the returned slices must tile
//      the query range exactly along the trusted fences
//      (ShardRouter::VerifyCover);
//   2. per-shard cryptographic verification — each slice carries its
//      shard's own VT / VO, checked against that shard's published epoch;
//   3. cross-shard epoch agreement — fresh and stale shards mixed in one
//      answer is a torn snapshot (StatusCode::kShardEpochSkew); uniformly
//      stale is a replay (kStaleEpoch); any record-level corruption is a
//      kVerificationFailure naming the shard.
//
// Updates route to the single owning shard and bump only that shard's
// epoch, so writers on different shards never serialize against each
// other — the write path scales with the shard count
// (bench_ablation_updates' shard axis).

#ifndef SAE_CORE_SHARDED_SYSTEM_H_
#define SAE_CORE_SHARDED_SYSTEM_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/query_engine.h"
#include "core/shard_router.h"
#include "core/system.h"
#include "mbtree/composite_vo.h"

namespace sae::core {

/// Attack placement for a sharded deployment: which shard is compromised
/// and what it does. Implicitly constructible from a bare AttackMode so the
/// generic QueryEngine batch templates (whose BatchQuery carries an
/// AttackMode) apply the attack to every shard — the unsharded semantics.
struct ShardAttack {
  static constexpr size_t kAllShards = ~size_t{0};

  AttackMode mode = AttackMode::kNone;
  size_t shard = kAllShards;  ///< the compromised shard; kAllShards = all

  ShardAttack() = default;
  ShardAttack(AttackMode mode) : mode(mode) {}  // NOLINT: implicit
  /// A single compromised shard among honest ones.
  static ShardAttack At(size_t shard, AttackMode mode) {
    ShardAttack attack;
    attack.mode = mode;
    attack.shard = shard;
    return attack;
  }

  bool AppliesTo(size_t s) const {
    return mode != AttackMode::kNone &&
           (shard == kAllShards || shard == s);
  }
};

/// Which shard an update landed on and the epoch it published there.
struct ShardUpdate {
  size_t shard = 0;
  uint64_t epoch = 0;
};

/// N-shard wrapper over any single-shard system (SaeSystem, TomSystem).
/// Each shard is a full Base instance; the wrapper owns the router, the
/// fan-out engine for multi-shard queries, and the id -> key directory that
/// routes deletes. Thread-safe to the same degree as Base: queries and
/// updates may run concurrently from any number of threads, and updates to
/// different shards proceed in parallel (no global writer lock exists).
template <typename Base>
class ShardedSystem {
 public:
  struct Options {
    typename Base::Options base;  ///< applied to every shard (under TOM the
                                  ///< shared rsa_seed keeps one DO key)
    /// Worker threads of the internal fan-out engine used by multi-shard
    /// queries. 0 = fan out inline on the calling thread; batch-level
    /// parallelism then comes from an outer QueryEngine, which is the
    /// right default (nesting two pools oversubscribes small hosts).
    /// The pool serves one query's fan-out at a time (QueryEngine jobs
    /// are single-caller); a query arriving while the pool is busy fans
    /// out inline instead of waiting, so concurrent callers never block
    /// on — or race over — the shared pool.
    size_t fanout_workers = 0;
  };

  explicit ShardedSystem(ShardRouter router, const Options& options = {});

  /// Partitions the dataset along the fences and loads every shard (empty
  /// shards load an empty dataset and still publish epoch 1). With
  /// durability enabled, each shard persists under its own subdirectory
  /// `<dir>/shard-<s>` — one WAL + snapshot lineage per shard, matching
  /// the per-shard epoch independence.
  Status Load(const std::vector<Record>& records);

  /// Rebuilds every shard from its `<dir>/shard-<s>` durability directory
  /// (Base::Recover per shard) and reconstructs the id -> key routing
  /// directory from the recovered datasets. Fails if ANY shard cannot
  /// recover — a partially recovered deployment would serve torn
  /// cross-shard answers, which is exactly what kShardEpochSkew exists to
  /// prevent.
  static Result<std::unique_ptr<ShardedSystem<Base>>> Recover(
      ShardRouter router, const Options& options);

  /// One shard's contribution to a composite answer.
  struct Slice {
    size_t shard = 0;
    Key lo = 0;  ///< clipped sub-range this shard answered
    Key hi = 0;
    typename Base::QueryOutcome outcome;  ///< per-shard records + VT/VO +
                                          ///< per-shard verification status
  };

  struct QueryOutcome {
    dbms::QueryRequest request;  ///< the executed plan
    /// Composite answer folded from the per-shard partial answers
    /// (dbms::MergeAnswers): counts/sums add, extrema fold, scan rows
    /// stitch, top-k winners re-rank across shards.
    dbms::QueryAnswer answer;
    /// Stitched witness, key-ascending across slices — byte-identical to
    /// what the unsharded system returns for the same query.
    std::vector<Record> results;
    std::vector<Slice> slices;  ///< ascending by shard; per-shard verdicts
    Status verification;        ///< composite verdict (see header comment)
    QueryCosts costs;           ///< summed across slices
  };

  /// Routes, fans out, stitches, folds partial answers, verifies. Each
  /// shard executes the plan clipped to its slice (same operator, clipped
  /// range) and verifies its own partial answer against its own proof; an
  /// execution error on any shard fails the whole query (errored Result);
  /// verification failures are reported per shard in `slices` and folded
  /// into `verification` with attribution.
  Result<QueryOutcome> ExecuteQuery(const dbms::QueryRequest& request,
                                    ShardAttack attack = {});
  /// Range-scan compatibility wrapper.
  Result<QueryOutcome> ExecuteQuery(Key lo, Key hi, ShardAttack attack = {}) {
    return ExecuteQuery(dbms::QueryRequest::Scan(lo, hi), attack);
  }

  /// Aliases kept for symmetry with the unsharded systems' Query().
  Result<QueryOutcome> Query(const dbms::QueryRequest& request,
                             ShardAttack attack = {}) {
    return ExecuteQuery(request, attack);
  }
  Result<QueryOutcome> Query(Key lo, Key hi, ShardAttack attack = {}) {
    return ExecuteQuery(lo, hi, attack);
  }

  /// Updates route to the owning shard and bump only its epoch; concurrent
  /// updates to different shards do not serialize against each other.
  Result<ShardUpdate> InsertVersioned(const Record& record);
  Result<ShardUpdate> DeleteVersioned(RecordId id);
  Status Insert(const Record& record) {
    return InsertVersioned(record).status();
  }
  Status Delete(RecordId id) { return DeleteVersioned(id).status(); }

  /// The published per-shard epoch vector — the sharded client's freshness
  /// reference (shipped DO -> client as a SerializeShardEpochs message).
  std::vector<uint64_t> ShardEpochs() const;

  /// Update-pipeline stats summed across shards.
  UpdateStats update_stats() const;

  /// Durability counters summed across shards (averages re-averaged,
  /// chain length maxed). Zeroed struct when durability is off.
  DurabilityStats durability_stats() const;

  /// Drains every shard's checkpoint queue; returns the first failure.
  Status WaitForCheckpoints();

  const ShardRouter& router() const { return router_; }
  size_t num_shards() const { return shards_.size(); }
  Base& shard(size_t s) { return *shards_[s]; }
  const Base& shard(size_t s) const { return *shards_[s]; }

 private:
  ShardRouter router_;
  Options options_;
  std::vector<std::unique_ptr<Base>> shards_;
  // The fan-out pool plus the try-lock that hands it to one multi-shard
  // query at a time (QueryEngine::Dispatch is single-job-only; see
  // ExecuteQuery).
  QueryEngine fanout_;
  std::mutex fanout_mu_;

  // Routes deletes (and cross-shard duplicate-id checks) without asking
  // every shard. Guarded by its own mutex; the critical section is a map
  // op, so per-shard update parallelism is preserved.
  mutable std::mutex directory_mu_;
  std::unordered_map<RecordId, Key> directory_;
};

using ShardedSaeSystem = ShardedSystem<SaeSystem>;
using ShardedTomSystem = ShardedSystem<TomSystem>;

/// Assembles the wire-level composite proof from a sharded TOM outcome
/// whose slices all executed (mbtree::CompositeVo: per-slice sub-range +
/// VO). What an SP tier ships to a thin client that verifies with
/// mbtree::VerifyComposite instead of trusting per-shard verdicts.
mbtree::CompositeVo BuildCompositeVo(
    const ShardedTomSystem::QueryOutcome& outcome);

}  // namespace sae::core

#endif  // SAE_CORE_SHARDED_SYSTEM_H_
