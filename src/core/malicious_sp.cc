// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the threat-model mutations (core/malicious_sp.h): drop,
// inject, and tamper attacks on query results.

#include "core/malicious_sp.h"

#include <algorithm>

#include "util/random.h"

namespace sae::core {

std::vector<Record> ApplyAttack(const std::vector<Record>& honest,
                                AttackMode mode, const RecordCodec& codec,
                                uint64_t seed) {
  std::vector<Record> out = honest;
  Rng rng(seed);

  auto inject_fake = [&] {
    Record fake = codec.MakeRecord(
        storage::RecordId(0xFA4E0000u) + rng.NextBounded(1u << 20),
        storage::Key(rng.NextBounded(1u << 20)));
    size_t pos = out.empty() ? 0 : rng.NextBounded(out.size() + 1);
    out.insert(out.begin() + pos, fake);
  };

  if (mode == AttackMode::kNone || IsFreshnessAttack(mode) ||
      IsAnswerAttack(mode) || IsCacheAttack(mode)) {
    // Freshness attacks corrupt the epoch claim and answer attacks the
    // derived aggregate (ApplyAnswerAttack) — never the record bytes.
    return out;
  }

  if (out.empty() && mode != AttackMode::kDropAll) {
    // Nothing to drop or tamper with; stay malicious by injecting instead.
    inject_fake();
    return out;
  }

  switch (mode) {
    case AttackMode::kNone:
    case AttackMode::kReplayStaleRoot:
    case AttackMode::kStaleVt:
    case AttackMode::kWrongCount:
    case AttackMode::kWrongSum:
    case AttackMode::kTruncatedTopK:
    case AttackMode::kStaleCacheReplay:
    case AttackMode::kPoisonedCache:
      break;  // handled above
    case AttackMode::kDropOne:
      out.erase(out.begin() + rng.NextBounded(out.size()));
      break;
    case AttackMode::kDropAll:
      out.clear();
      break;
    case AttackMode::kInjectFake:
      inject_fake();
      break;
    case AttackMode::kTamperPayload: {
      Record& victim = out[rng.NextBounded(out.size())];
      if (victim.payload.empty()) victim.payload.resize(1);
      size_t pos = rng.NextBounded(victim.payload.size());
      victim.payload[pos] ^= 0x80;
      break;
    }
    case AttackMode::kTamperKey: {
      Record& victim = out[rng.NextBounded(out.size())];
      victim.key ^= 1;
      break;
    }
    case AttackMode::kDuplicateOne: {
      Record copy = out[rng.NextBounded(out.size())];
      out.push_back(copy);
      break;
    }
  }
  return out;
}

void ApplyAnswerAttack(dbms::QueryAnswer* answer, AttackMode mode,
                       uint64_t seed) {
  Rng rng(seed);
  switch (mode) {
    case AttackMode::kWrongCount:
      ++answer->count;
      break;
    case AttackMode::kWrongSum:
      answer->sum += 1 + rng.NextBounded(1u << 16);
      break;
    case AttackMode::kTruncatedTopK:
      if (answer->op == dbms::QueryOp::kTopK && !answer->records.empty()) {
        answer->records.pop_back();
      } else {
        // Nothing to truncate: only top-k ships answer rows of its own
        // (scan/point rows are the witness, which this attack leaves
        // honest), or the range was empty. Lie about the count instead,
        // so "malicious" never silently means "honest".
        ++answer->count;
      }
      break;
    default:
      break;  // record and freshness modes never touch the answer
  }
}

}  // namespace sae::core
