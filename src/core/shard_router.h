// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Range partitioning of the key space across N independent SP shards. The
// router is trusted configuration: the DO chooses the fence keys, ships
// them to every party, and clients use the same fences to (a) address the
// shard(s) a query touches and (b) check that a stitched multi-shard
// answer tiles the query range exactly — the fence-key completeness
// argument of docs/SHARDING.md. The fence math itself lives in
// storage/key_range.h, shared with the composite-proof verifiers so the
// router and the clients can never disagree about shard ownership: shard s
// owns the half-open fence interval [fence_{s-1}, fence_s), rendered
// inclusive as [shard_lo(s), shard_hi(s)], and adjacent shards abut with
// no gap (shard_hi(s) + 1 == shard_lo(s + 1)).

#ifndef SAE_CORE_SHARD_ROUTER_H_
#define SAE_CORE_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "storage/key_range.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;

/// Routes keys and ranges to range-partitioned shards.
class ShardRouter {
 public:
  /// One shard's clipped view of a query (shared with the verifiers).
  using Slice = storage::KeySlice;

  /// Builds a router from ascending interior fence keys; N shards need
  /// N - 1 fences (none = one shard owning the whole key space). Fences
  /// must be strictly increasing and non-zero (a zero fence would make
  /// shard 0 empty by construction).
  explicit ShardRouter(std::vector<Key> fences = {});

  /// Splits the key domain [0, domain_max] into `shards` equal-width
  /// ranges (the last shard also owns everything above domain_max).
  static ShardRouter EqualWidth(size_t shards, Key domain_max = kMaxKey);

  /// Chooses fences that balance `records` across `shards` (equal-count
  /// partition of the observed key distribution). Duplicate keys never
  /// straddle a fence; fewer shards result when distinct keys run out.
  static ShardRouter Balanced(const std::vector<Record>& records,
                              size_t shards);

  size_t num_shards() const { return fences_.size() + 1; }
  const std::vector<Key>& fences() const { return fences_; }

  /// The shard owning `key`.
  size_t ShardOf(Key key) const { return storage::ShardOfKey(fences_, key); }

  /// Inclusive bounds of shard s: [shard_lo(s), shard_hi(s)].
  Key shard_lo(size_t shard) const {
    return storage::ShardLowerBound(fences_, shard);
  }
  Key shard_hi(size_t shard) const {
    return storage::ShardUpperBound(fences_, shard);
  }

  /// Clips [lo, hi] against the fences: one slice per shard the range
  /// overlaps, ascending by shard (therefore by key). Empty when lo > hi.
  std::vector<Slice> Partition(Key lo, Key hi) const {
    return storage::PartitionKeyRange(fences_, lo, hi);
  }

  /// Client-side structural check on a stitched answer: the slices must
  /// tile [lo, hi] exactly along the trusted fences (see
  /// storage::VerifyKeyCover).
  Status VerifyCover(Key lo, Key hi, const std::vector<Slice>& slices) const {
    return storage::VerifyKeyCover(fences_, lo, hi, slices);
  }

  static constexpr Key kMaxKey = storage::kMaxShardKey;

 private:
  std::vector<Key> fences_;  // ascending interior fences
};

}  // namespace sae::core

#endif  // SAE_CORE_SHARD_ROUTER_H_
