// Copyright (c) saedb authors. Licensed under the MIT license.
//
// AnswerCache: an epoch-keyed LRU cache of *serialized* query responses at
// the service provider. The key embeds the epoch the answer speaks for, so
// an epoch bump invalidates every resident entry semantically (a stale key
// can never match a fresh query) and InvalidateAll() reclaims the memory
// wholesale. The cache stores the exact wire bytes the SP would have sent
// (answer shipment, and under TOM the VO as well); a hit replays those
// bytes bit-for-bit, which is what the cache-parity harness verifies.
//
// The cache is never trusted: the client verifies every answer against the
// live TE token / root signature regardless of where the SP got the bytes.
// See docs/ARCHITECTURE.md §"Caching without trusting the cache".

#ifndef SAE_CORE_ANSWER_CACHE_H_
#define SAE_CORE_ANSWER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dbms/query.h"
#include "storage/record.h"

namespace sae::core {

struct AnswerCacheOptions {
  bool enabled = true;
  size_t max_entries = 1024;

  static AnswerCacheOptions Disabled() {
    AnswerCacheOptions o;
    o.enabled = false;
    return o;
  }
};

/// Counters of one AnswerCache; snapshot by value, diff to measure a span
/// (same pattern as BufferPool::Stats).
struct AnswerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      ///< capacity-driven LRU removals
  uint64_t invalidations = 0;  ///< entries dropped by InvalidateAll

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }

  friend AnswerCacheStats operator-(AnswerCacheStats a,
                                    const AnswerCacheStats& b) {
    a.hits -= b.hits;
    a.misses -= b.misses;
    a.insertions -= b.insertions;
    a.evictions -= b.evictions;
    a.invalidations -= b.invalidations;
    return a;
  }
  AnswerCacheStats& operator+=(const AnswerCacheStats& b) {
    hits += b.hits;
    misses += b.misses;
    insertions += b.insertions;
    evictions += b.evictions;
    invalidations += b.invalidations;
    return *this;
  }
};

/// The serialized response a cache entry replays: the operator answer
/// shipment (SerializeQueryAnswer bytes) and, under TOM, the VO bytes.
struct CachedAnswer {
  std::vector<uint8_t> answer_msg;
  std::vector<uint8_t> proof_msg;  ///< empty for SAE's conventional SP
};

class AnswerCache {
 public:
  /// (range, op, top-k limit, epoch) — everything that determines the
  /// honest response bytes.
  struct Key {
    dbms::QueryOp op = dbms::QueryOp::kScan;
    storage::Key lo = 0;
    storage::Key hi = 0;
    uint32_t limit = 0;
    uint64_t epoch = 0;

    static Key For(const dbms::QueryRequest& request, uint64_t epoch);

    friend bool operator==(const Key& a, const Key& b) {
      return a.op == b.op && a.lo == b.lo && a.hi == b.hi &&
             a.limit == b.limit && a.epoch == b.epoch;
    }
  };

  explicit AnswerCache(const AnswerCacheOptions& options = {});

  bool enabled() const { return options_.enabled && options_.max_entries > 0; }

  /// nullptr on miss (or when disabled). Hits refresh LRU position.
  std::shared_ptr<const CachedAnswer> Lookup(const Key& key);

  void Insert(const Key& key, CachedAnswer value);

  /// The epoch-bump hook: drops every resident entry. (Keys are epoch-
  /// stamped so retained entries could never hit again anyway — this
  /// reclaims their memory immediately.)
  void InvalidateAll();

  AnswerCacheStats stats() const;
  size_t size() const;

  /// Adversary hook (tests / MaliciousSp): rewrites every resident entry in
  /// place. A poisoned cache must still be caught by client verification.
  void MutateEntries(const std::function<void(CachedAnswer*)>& fn);

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const CachedAnswer> value;
    std::list<Key>::iterator lru_pos;
  };

  AnswerCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, Entry, KeyHash> map_;
  AnswerCacheStats stats_;
};

}  // namespace sae::core

#endif  // SAE_CORE_ANSWER_CACHE_H_
