// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements ShardRouter fence construction (core/shard_router.h): checked
// fences, equal-width domain splits, and data-balanced fence selection.
// Routing and cover checks delegate to storage/key_range.h.

#include "core/shard_router.h"

#include <algorithm>

#include "util/macros.h"

namespace sae::core {

ShardRouter::ShardRouter(std::vector<Key> fences)
    : fences_(std::move(fences)) {
  for (size_t i = 0; i < fences_.size(); ++i) {
    SAE_CHECK(fences_[i] != 0);
    SAE_CHECK(i == 0 || fences_[i - 1] < fences_[i]);
  }
}

ShardRouter ShardRouter::EqualWidth(size_t shards, Key domain_max) {
  SAE_CHECK(shards >= 1);
  std::vector<Key> fences;
  fences.reserve(shards - 1);
  uint64_t width = (uint64_t(domain_max) + 1) / shards;
  if (width == 0) width = 1;
  for (size_t s = 1; s < shards; ++s) {
    uint64_t fence = uint64_t(s) * width;
    if (fence > domain_max) break;  // tiny domain: fewer shards than asked
    if (!fences.empty() && fences.back() >= Key(fence)) break;
    fences.push_back(Key(fence));
  }
  return ShardRouter(std::move(fences));
}

ShardRouter ShardRouter::Balanced(const std::vector<Record>& records,
                                  size_t shards) {
  SAE_CHECK(shards >= 1);
  std::vector<Key> keys;
  keys.reserve(records.size());
  for (const Record& record : records) keys.push_back(record.key);
  std::sort(keys.begin(), keys.end());
  std::vector<Key> fences;
  for (size_t s = 1; s < shards && !keys.empty(); ++s) {
    size_t idx = s * keys.size() / shards;
    if (idx >= keys.size()) break;
    Key fence = keys[idx];
    // Skip fences that would create a provably useless shard: zero or a
    // repeat of an earlier fence (duplicate-heavy data), or a fence at or
    // below the minimum key (the bottom shard would be empty). The router
    // degrades to fewer, still-correct shards.
    if (fence == 0 || fence <= keys.front() ||
        (!fences.empty() && fence <= fences.back())) {
      continue;
    }
    fences.push_back(fence);
  }
  return ShardRouter(std::move(fences));
}

}  // namespace sae::core
