// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the batched multi-threaded QueryEngine (core/query_engine.h):
// a fixed worker pool claiming query indices from a shared batch, with
// per-worker verification and composable cost aggregation.

#include "core/query_engine.h"

namespace sae::core {

QueryEngine::QueryEngine(const Options& options) {
  workers_.reserve(options.worker_threads);
  for (size_t i = 0; i < options.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void QueryEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    while (job_next_ < job_size_) {
      size_t index = job_next_++;
      lock.unlock();
      (*job_)(index);
      lock.lock();
      if (++job_done_ == job_size_) done_cv_.notify_all();
    }
  }
}

void QueryEngine::Dispatch(size_t count,
                           const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &task;
  job_size_ = count;
  job_next_ = 0;
  job_done_ = 0;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return job_done_ == job_size_; });
  job_ = nullptr;
}

QueryEngine::SaeBatch QueryEngine::Run(SaeSystem* system,
                                       const std::vector<BatchQuery>& queries) {
  return RunBatch(system, queries);
}

QueryEngine::TomBatch QueryEngine::Run(TomSystem* system,
                                       const std::vector<BatchQuery>& queries) {
  return RunBatch(system, queries);
}

MixedStats QueryEngine::RunMixed(SaeSystem* system,
                                 const std::vector<BatchOp>& ops) {
  return RunMixedBatch(system, ops);
}

MixedStats QueryEngine::RunMixed(TomSystem* system,
                                 const std::vector<BatchOp>& ops) {
  return RunMixedBatch(system, ops);
}

}  // namespace sae::core
