// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the batched multi-threaded QueryEngine (core/query_engine.h):
// a fixed worker pool claiming query indices from a shared batch, with
// per-worker verification and composable cost aggregation.

#include "core/query_engine.h"

#include <algorithm>
#include <optional>

#include "sim/cost_model.h"

namespace sae::core {

QueryEngine::QueryEngine(const Options& options) {
  workers_.reserve(options.worker_threads);
  for (size_t i = 0; i < options.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void QueryEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    while (job_next_ < job_size_) {
      size_t index = job_next_++;
      lock.unlock();
      (*job_)(index);
      lock.lock();
      if (++job_done_ == job_size_) done_cv_.notify_all();
    }
  }
}

void QueryEngine::Dispatch(size_t count,
                           const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &task;
  job_size_ = count;
  job_next_ = 0;
  job_done_ = 0;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return job_done_ == job_size_; });
  job_ = nullptr;
}

template <typename BatchT, typename System>
BatchT QueryEngine::RunBatch(System* system,
                             const std::vector<BatchQuery>& queries) {
  using Outcome = typename System::QueryOutcome;
  BatchT batch;
  batch.stats.queries = queries.size();

  // Workers fill disjoint slots; Result<> has no default constructor, so
  // the slots are optionals that are move-unwrapped after the barrier.
  std::vector<std::optional<Result<Outcome>>> slots(queries.size());
  std::function<void(size_t)> task = [&](size_t i) {
    const BatchQuery& q = queries[i];
    slots[i].emplace(system->ExecuteQuery(q.lo, q.hi, q.attack));
  };

  sim::Stopwatch watch;
  Dispatch(queries.size(), task);
  batch.stats.wall_ms = watch.ElapsedMs();

  batch.outcomes.reserve(slots.size());
  for (std::optional<Result<Outcome>>& slot : slots) {
    Result<Outcome>& result = *slot;
    if (result.ok()) {
      const Outcome& outcome = result.value();
      if (outcome.verification.ok()) {
        ++batch.stats.accepted;
      } else {
        ++batch.stats.rejected;
      }
      batch.stats.total += outcome.costs;
    } else {
      ++batch.stats.failed;
    }
    batch.outcomes.push_back(std::move(result));
  }
  return batch;
}

template <typename System>
MixedStats QueryEngine::RunMixedBatch(System* system,
                                      const std::vector<BatchOp>& ops) {
  MixedStats stats;

  // Per-op slots filled by disjoint workers, reduced after the barrier.
  struct OpResult {
    bool is_query = false;
    bool ok = false;        // op-level success
    bool accepted = false;  // query verification verdict
    QueryCosts costs;
    double update_ms = 0.0;
  };
  std::vector<OpResult> slots(ops.size());
  std::function<void(size_t)> task = [&](size_t i) {
    const BatchOp& op = ops[i];
    OpResult& slot = slots[i];
    switch (op.kind) {
      case BatchOp::Kind::kQuery: {
        slot.is_query = true;
        auto outcome =
            system->ExecuteQuery(op.query.lo, op.query.hi, op.query.attack);
        if (outcome.ok()) {
          slot.ok = true;
          slot.accepted = outcome.value().verification.ok();
          slot.costs = outcome.value().costs;
        }
        break;
      }
      case BatchOp::Kind::kInsert: {
        sim::Stopwatch watch;
        slot.ok = system->Insert(op.record).ok();
        slot.update_ms = watch.ElapsedMs();
        break;
      }
      case BatchOp::Kind::kDelete: {
        sim::Stopwatch watch;
        slot.ok = system->Delete(op.id).ok();
        slot.update_ms = watch.ElapsedMs();
        break;
      }
    }
  };

  sim::Stopwatch watch;
  Dispatch(ops.size(), task);
  stats.wall_ms = watch.ElapsedMs();

  for (const OpResult& slot : slots) {
    if (slot.is_query) {
      ++stats.queries;
      if (!slot.ok) {
        ++stats.failed;
      } else if (slot.accepted) {
        ++stats.accepted;
      } else {
        ++stats.rejected;
      }
      stats.query_total += slot.costs;
    } else {
      ++stats.updates;
      if (!slot.ok) ++stats.update_failures;
      stats.update_latency_ms += slot.update_ms;
      stats.max_update_latency_ms =
          std::max(stats.max_update_latency_ms, slot.update_ms);
    }
  }
  return stats;
}

QueryEngine::SaeBatch QueryEngine::Run(SaeSystem* system,
                                       const std::vector<BatchQuery>& queries) {
  return RunBatch<SaeBatch>(system, queries);
}

QueryEngine::TomBatch QueryEngine::Run(TomSystem* system,
                                       const std::vector<BatchQuery>& queries) {
  return RunBatch<TomBatch>(system, queries);
}

MixedStats QueryEngine::RunMixed(SaeSystem* system,
                                 const std::vector<BatchOp>& ops) {
  return RunMixedBatch(system, ops);
}

MixedStats QueryEngine::RunMixed(TomSystem* system,
                                 const std::vector<BatchOp>& ops) {
  return RunMixedBatch(system, ops);
}

}  // namespace sae::core
