// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Adversarial service provider behaviours (paper §II): a malicious SP
// returns RS' = (RS - DS) ∪ IS — dropping a subset DS of the true result
// and/or injecting a fake set IS; tampering with a record is drop + inject
// combined. These mutations drive the security tests and the adversarial
// example: every one of them must be caught by client verification.

#ifndef SAE_CORE_MALICIOUS_SP_H_
#define SAE_CORE_MALICIOUS_SP_H_

#include <vector>

#include "dbms/query.h"
#include "storage/record.h"

namespace sae::core {

using storage::Record;
using storage::RecordCodec;

/// What a compromised SP does to the honest result before returning it.
/// The first group mutates the result records; the freshness group replays
/// authentication state from an earlier epoch and leaves the record bytes
/// alone — those attacks are staged by the system harnesses (the SP serves
/// from a pre-update snapshot / an old token or signature is presented),
/// not by ApplyAttack.
enum class AttackMode {
  kNone = 0,        ///< honest behaviour
  kDropOne,         ///< completeness attack: remove one record
  kDropAll,         ///< completeness attack: claim an empty result
  kInjectFake,      ///< soundness attack: add a fabricated record
  kTamperPayload,   ///< soundness attack: flip bytes in a record's payload
  kTamperKey,       ///< soundness attack: change a record's search key
  kDuplicateOne,    ///< soundness attack: return a record twice
  kReplayStaleRoot, ///< freshness attack: SP answers from a pre-update
                    ///< snapshot (stale results + matching stale auth state)
  kStaleVt,         ///< freshness attack: token/signature from an old epoch
                    ///< presented against the current result
  kWrongCount,      ///< aggregate attack: the claimed COUNT is off by one
                    ///< while every witness record ships honestly
  kWrongSum,        ///< aggregate attack: the claimed SUM is perturbed
                    ///< while every witness record ships honestly
  kTruncatedTopK,   ///< aggregate attack: the top-k answer silently loses
                    ///< its last winner (witness untouched)
  kStaleCacheReplay,///< freshness attack: SP replays an answer-cache entry
                    ///< keyed to a pre-update epoch (cached stale bytes +
                    ///< matching stale auth state)
  kPoisonedCache,   ///< cache attack: SP rewrites its own answer cache and
                    ///< serves the poisoned bytes (staged by the systems via
                    ///< ExecutePoisonedPlan, not by ApplyAttack)
};

/// True for the freshness modes ApplyAttack leaves untouched.
inline bool IsFreshnessAttack(AttackMode mode) {
  return mode == AttackMode::kReplayStaleRoot ||
         mode == AttackMode::kStaleVt ||
         mode == AttackMode::kStaleCacheReplay;
}

/// True for the modes staged inside the SP's answer cache. kStaleCacheReplay
/// is also a freshness attack (a cached entry from an old epoch is just a
/// stale snapshot that happens to live in the cache); kPoisonedCache leaves
/// durable damage — the poison persists for later honest queries until an
/// epoch bump flushes it — so the parity harness excludes it from its
/// random attack pool and the security suite covers it directly.
inline bool IsCacheAttack(AttackMode mode) {
  return mode == AttackMode::kStaleCacheReplay ||
         mode == AttackMode::kPoisonedCache;
}

/// True for the modes that tamper the *derived answer* rather than the
/// witness records — the attacks CheckAnswer (not the range proof) catches.
inline bool IsAnswerAttack(AttackMode mode) {
  return mode == AttackMode::kWrongCount || mode == AttackMode::kWrongSum ||
         mode == AttackMode::kTruncatedTopK;
}

/// True for the modes that mutate the witness record set itself (the
/// classic drop/inject/tamper family the VT / VO proof catches).
inline bool IsRecordAttack(AttackMode mode) {
  return mode != AttackMode::kNone && !IsFreshnessAttack(mode) &&
         !IsAnswerAttack(mode) && !IsCacheAttack(mode);
}

/// Applies the attack to a copy of the honest result. Attacks needing a
/// victim pick one pseudo-randomly from `seed`; attacks on an empty result
/// degrade to kInjectFake so that "malicious" never silently means "honest".
/// Freshness modes return the result unchanged (see AttackMode); the
/// systems guarantee their detection by rewinding the *claimed epoch* even
/// when no pre-update snapshot exists yet.
std::vector<Record> ApplyAttack(const std::vector<Record>& honest,
                                AttackMode mode, const RecordCodec& codec,
                                uint64_t seed);

/// Applies an answer-level attack to the SP's claimed QueryAnswer, leaving
/// the witness alone: kWrongCount/kWrongSum perturb the derived dimension
/// (checked for every operator, so the lie is never silently honest) and
/// kTruncatedTopK drops the last top-k answer row — or, when the answer
/// carries no rows of its own (non-top-k operators, whose rows are the
/// witness itself, or an empty range), falls back to a count lie so the
/// attack is never a silent no-op. Every other mode leaves the answer
/// untouched.
void ApplyAnswerAttack(dbms::QueryAnswer* answer, AttackMode mode,
                       uint64_t seed);

}  // namespace sae::core

#endif  // SAE_CORE_MALICIOUS_SP_H_
