// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Adversarial service provider behaviours (paper §II): a malicious SP
// returns RS' = (RS - DS) ∪ IS — dropping a subset DS of the true result
// and/or injecting a fake set IS; tampering with a record is drop + inject
// combined. These mutations drive the security tests and the adversarial
// example: every one of them must be caught by client verification.

#ifndef SAE_CORE_MALICIOUS_SP_H_
#define SAE_CORE_MALICIOUS_SP_H_

#include <vector>

#include "storage/record.h"

namespace sae::core {

using storage::Record;
using storage::RecordCodec;

/// What a compromised SP does to the honest result before returning it.
enum class AttackMode {
  kNone = 0,        ///< honest behaviour
  kDropOne,         ///< completeness attack: remove one record
  kDropAll,         ///< completeness attack: claim an empty result
  kInjectFake,      ///< soundness attack: add a fabricated record
  kTamperPayload,   ///< soundness attack: flip bytes in a record's payload
  kTamperKey,       ///< soundness attack: change a record's search key
  kDuplicateOne,    ///< soundness attack: return a record twice
};

/// Applies the attack to a copy of the honest result. Attacks needing a
/// victim pick one pseudo-randomly from `seed`; attacks on an empty result
/// degrade to kInjectFake so that "malicious" never silently means "honest".
std::vector<Record> ApplyAttack(const std::vector<Record>& honest,
                                AttackMode mode, const RecordCodec& codec,
                                uint64_t seed);

}  // namespace sae::core

#endif  // SAE_CORE_MALICIOUS_SP_H_
