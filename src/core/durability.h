// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The durability subsystem the systems (core/system.h) plug into: WAL
// record, full-snapshot and delta-snapshot payload formats plus the
// DurabilityManager that owns a system's on-disk state (one directory:
// `wal-<seq>` segments, `snap-<epoch>` full snapshots and
// `delta-<base>-<epoch>` chain links; storage/wal.h + storage/snapshot.h).
//
// Write-ahead contract: RunUpdate validates the op against the owner,
// stages the WAL record — stamped with the POST-update epoch — and the
// record is synced durable (CommitStaged; with group commit enabled, one
// fsync covers every concurrently staged record) before the in-memory
// authentication state mutates. An update whose record reached the disk is
// recoverable; one whose record did not never happened.
//
// Checkpoints run every `snapshot_interval` updates so the WAL (and
// recovery replay) stays short. With delta snapshots on, the steady-state
// checkpoint persists only the records inserted/deleted since the previous
// checkpoint — O(changes), not O(state) — chained onto it by epoch; every
// `full_snapshot_every`-th checkpoint compacts the chain into a fresh full
// snapshot, which also garbage-collects chains beyond the newest
// `keep_snapshots`. With background checkpointing on, the write path only
// CAPTURES the (small) pending-change set under the writer lock; one
// checkpoint thread serializes and writes it, so queries and updates never
// stall behind checkpoint I/O. The WAL rotates to a fresh segment at each
// capture, and the sealed segments are dropped only after the checkpoint
// they feed is durable — a crash mid-checkpoint recovers from the previous
// chain plus the retained segments, losing nothing. A FAILED checkpoint
// write gates segment GC entirely: later delta captures are skipped (their
// base never reached the disk) and the next checkpoint is forced FULL;
// only once that full snapshot is durable — re-covering every retained
// window — does GC resume. Segments are thus only ever dropped under a
// durable checkpoint that covers them.
//
// Recovery (SaeSystem::Recover / TomSystem::Recover) inverts this: load
// the newest intact chain (full snapshot composed with every validly
// linked delta — never past a corrupt link), replay the WAL records that
// chain epoch-contiguously out of the composed state through the normal
// owner paths, truncate whatever does not (garbage, or records orphaned by
// a chain fallback), and republish. The recovered epoch is provable — TOM
// re-signs and cross-checks the persisted root signature — and clients
// verify it as live traffic; a rollback to an older durable state yields
// an older epoch that the unmodified client freshness gate rejects as
// kStaleEpoch.

#ifndef SAE_CORE_DURABILITY_H_
#define SAE_CORE_DURABILITY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/digest.h"
#include "storage/record.h"
#include "storage/snapshot.h"
#include "storage/vfs.h"
#include "storage/wal.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordId;

/// Durability knobs of one system. Disabled by default — the simulation
/// harness and the figure benches run purely in memory.
struct DurabilityOptions {
  bool enabled = false;
  /// Directory holding this system's WAL segments and snapshot chain.
  std::string dir;
  /// File-system seam; nullptr = the real POSIX Vfs. Tests inject a
  /// storage::FaultFs here to crash at exact sync points.
  storage::Vfs* vfs = nullptr;
  /// Updates between checkpoints (0 = checkpoint only at load). Small
  /// values bound replay length at the price of checkpoint I/O — the
  /// cadence sweep in bench_durability quantifies the trade.
  uint64_t snapshot_interval = 64;
  /// Full-snapshot chains kept by GC; >= 2 keeps a whole fallback chain
  /// behind a corrupt newest.
  size_t keep_snapshots = 2;
  /// Steady-state checkpoints persist only the changes since the previous
  /// checkpoint (O(changes)); false restores the PR 9 full-state behavior.
  bool delta_snapshots = true;
  /// Every Nth checkpoint is a full snapshot compacting the chain (and
  /// bounding recovery to at most N-1 delta loads). 0 or 1 = always full.
  uint64_t full_snapshot_every = 8;
  /// Split LogUpdate into stage (under the writer lock) and sync (outside
  /// it): concurrent committers share one fsync. false = sync per record
  /// under the lock, as in PR 9.
  bool wal_group_commit = true;
  /// With group commit, how long a group leader waits for stragglers to
  /// stage before issuing the shared fsync. 0 = sync immediately (groups
  /// still form out of natural concurrency).
  uint32_t max_group_delay_us = 0;
  /// Serialize + write checkpoints on a dedicated thread; the write path
  /// only captures the pending-change set. false = checkpoint inline under
  /// the writer lock.
  bool background_checkpoint = true;
};

/// One logged update, WAL payload <-> in-memory form. `epoch` is the epoch
/// the update published (owner epoch after applying). A kAbort record is a
/// durable RETRACTION (op + epoch only): every record logged before it
/// with epoch >= its epoch was acknowledged to its caller as FAILED and
/// must never replay — recovery drops that suffix from the replay tail.
struct WalUpdate {
  enum Op : uint8_t { kInsert = 1, kDelete = 2, kAbort = 3 };
  uint8_t op = kInsert;
  uint64_t epoch = 0;
  Record record;   // kInsert: the inserted record
  RecordId id = 0; // kDelete: the deleted id
};

std::vector<uint8_t> EncodeWalUpdate(const WalUpdate& update);
Result<WalUpdate> DecodeWalUpdate(const std::vector<uint8_t>& payload);

/// The checkpointed system state a FULL snapshot payload carries. Records
/// are the full dataset in key order; TOM also persists the epoch-stamped
/// root signature, which recovery cross-checks against a fresh re-signing.
struct SnapshotState {
  enum Model : uint8_t { kSae = 1, kTom = 2 };
  uint8_t model = kSae;
  uint32_t record_size = 0;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  std::vector<Record> records;
  std::vector<uint8_t> signature;  // TOM root signature; empty for SAE
};

std::vector<uint8_t> EncodeSnapshotState(const SnapshotState& state);
Result<SnapshotState> DecodeSnapshotState(const std::vector<uint8_t>& payload);

/// What one DELTA snapshot payload carries: the net changes between its
/// base checkpoint and its own epoch. Applying `removes` then `upserts` to
/// the base state yields the state at `epoch` — a delete+reinsert of the
/// same id collapses into the upsert. TOM deltas carry the root signature
/// AT this delta's epoch, so a composed chain is still byte-provable.
struct DeltaState {
  uint8_t model = SnapshotState::kSae;
  uint32_t record_size = 0;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  std::vector<Record> upserts;     // present after this delta, id-ascending
  std::vector<RecordId> removes;   // absent after this delta, ascending
  std::vector<uint8_t> signature;  // TOM root signature; empty for SAE
};

std::vector<uint8_t> EncodeDeltaState(const DeltaState& state);
Result<DeltaState> DecodeDeltaState(const std::vector<uint8_t>& payload);

/// Point-in-time durability counters (systems expose this as
/// `durability_stats()`; bench_durability and restartable_sp print it).
struct DurabilityStats {
  uint64_t wal_bytes = 0;          ///< live WAL bytes across segments
  uint64_t wal_records = 0;        ///< records staged since open
  uint64_t wal_syncs = 0;          ///< fsyncs the commit path issued
  double avg_group_records = 0.0;  ///< records per fsync (group size)
  uint64_t checkpoints_full = 0;
  uint64_t checkpoints_delta = 0;
  uint64_t checkpoints_skipped = 0;    ///< delta captures dropped while the
                                       ///< chain was broken (GC stayed gated)
  uint64_t delta_chain_length = 0;     ///< links since the last full
  uint64_t updates_since_checkpoint = 0;
  uint64_t pending_checkpoints = 0;    ///< captured, not yet durable
  uint64_t checkpoint_bytes_total = 0; ///< payload bytes written, lifetime
  uint64_t last_checkpoint_bytes = 0;
  double last_checkpoint_ms = 0.0;     ///< serialize+write wall time
};

/// Owns a system's durable state: the segmented WAL, the snapshot chain,
/// the pending-change set feeding delta checkpoints, the checkpoint thread
/// and the cadence counter. Opened at Load (fresh directory) or at Recover
/// (existing directory — `recovered()` then exposes what the disk held).
/// Stage/undo/checkpoint-capture calls are made under the owning system's
/// writer lock; CommitStaged and WaitForCheckpoints are called outside it.
class DurabilityManager {
 public:
  /// What recovery found on disk: the newest intact chain composed into
  /// one state, and the decoded WAL tail that chains onto it. Opening
  /// truncates the WAL to its usable prefix — torn or corrupt records
  /// (checksum, length lie, a crc-valid record that fails to decode, or an
  /// epoch that does not follow the composed chain) end the prefix and are
  /// cut off, never replayed. A kAbort record drops the retracted suffix
  /// (epoch >= the abort's) from the replay tail — acknowledged failures
  /// never resurrect.
  struct Recovered {
    bool has_snapshot = false;
    uint64_t snapshot_epoch = 0;  ///< epoch of the composed chain tail
    bool snapshot_fell_back = false;
    uint64_t chain_deltas = 0;    ///< delta links composed into `snapshot`
    SnapshotState snapshot;
    std::vector<WalUpdate> wal_tail;
    bool wal_truncated = false;   ///< garbage or orphans were cut
  };

  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options);

  /// Drains and joins the checkpoint thread (pending captures are written
  /// out, best effort — a failure there is what WaitForCheckpoints would
  /// have reported).
  ~DurabilityManager();

  const Recovered& recovered() const { return recovered_; }

  /// Stages one update record into the WAL buffer (volatile) and tracks
  /// its net change for the next delta checkpoint. Returns the commit
  /// sequence to pass to CommitStaged. Caller holds the writer lock.
  Result<uint64_t> StageUpdate(const WalUpdate& update);

  /// Makes every record staged up to `seq` durable — the durability commit
  /// point: returns OK iff the update is recoverable. With group commit,
  /// one leader's fsync covers the whole concurrent group; call WITHOUT
  /// the writer lock so groups can form. Without group commit this is a
  /// plain per-record fsync.
  Status CommitStaged(uint64_t seq);

  /// Stage + commit inline (one sync point) — the non-group write path,
  /// byte- and barrier-identical to PR 9's LogUpdate.
  Status LogUpdate(const WalUpdate& update);

  /// Rolls the WAL and the pending-change set back over the last
  /// StageUpdate/LogUpdate after the in-memory apply failed, so neither
  /// the log nor the next delta claims an update that did not happen.
  /// Caller holds the writer lock.
  Status UndoFailedUpdate();

  /// Durably retracts every logged-but-unpublished record with epoch >=
  /// `first_epoch` by appending and syncing a kAbort marker. Once this
  /// returns OK, recovery will never replay the retracted suffix — even if
  /// its records were already synced — and the caller may keep using the
  /// pipeline. The pending-change set cannot selectively unwind a
  /// multi-record suffix, so it is dropped and the next checkpoint is
  /// forced FULL. On failure the suffix's post-crash outcome is unknown;
  /// the caller must fail stop. Caller holds the writer lock.
  Status RetractStagedFrom(uint64_t first_epoch);

  /// Counts one APPLIED update; true when the checkpoint cadence is due.
  /// Callers must not count an update they are about to retract — the
  /// cadence only ever reflects updates that really happened.
  bool ShouldSnapshot();

  /// True when the next checkpoint must persist full state: delta
  /// snapshots disabled, no chain yet, the compaction cadence
  /// (`full_snapshot_every`) is reached, a checkpoint write failed (the
  /// on-disk chain is broken; a full re-covers it and resumes WAL GC), or
  /// a retraction dropped the pending-change set.
  bool NextCheckpointIsFull() const;

  /// Captures a FULL checkpoint of `state` at `epoch`: rotates the WAL
  /// (sealing the segments this checkpoint makes redundant) and hands the
  /// state to the checkpoint thread (or writes it inline). Resets the
  /// pending-change set, the chain, and the cadence counter. Caller holds
  /// the writer lock at a quiescent point (nothing staged-but-unapplied).
  Status CheckpointFull(uint64_t epoch, SnapshotState state);

  /// Captures a DELTA checkpoint at `epoch` from the pending-change set
  /// accumulated since the previous capture (O(changes) under the lock),
  /// chained onto that capture's epoch. Same quiescence requirement.
  Status CheckpointDelta(uint64_t epoch, std::vector<uint8_t> signature);

  /// Synchronous full checkpoint — runs inline even with background
  /// checkpointing on. Load uses this for the epoch-1 baseline, so "Load
  /// returned" implies "recoverable from disk".
  Status WriteSnapshot(uint64_t epoch, const SnapshotState& state);

  /// Blocks until every captured checkpoint is durable (or failed);
  /// returns the first failure since the last wait. Call without the
  /// writer lock.
  Status WaitForCheckpoints();

  uint64_t wal_bytes() const { return wal_->size_bytes(); }
  DurabilityStats stats() const;
  const DurabilityOptions& options() const { return options_; }

 private:
  DurabilityManager(const DurabilityOptions& options, storage::Vfs* vfs);

  /// The net in-memory effect of updates since the last checkpoint
  /// capture: id -> present (with bytes) or absent.
  struct PendingChange {
    bool present = false;
    Record record;
  };

  /// One captured checkpoint awaiting serialization + write.
  struct CheckpointJob {
    bool full = false;
    uint64_t epoch = 0;
    uint64_t base_epoch = 0;       // delta: the chain link target
    SnapshotState full_state;      // full captures
    DeltaState delta_state;        // delta captures
    uint64_t sealed_wal_seq = 0;   // segments <= this die once durable
  };

  /// Rotation + bookkeeping shared by both capture flavors; the caller
  /// fills the payload side of `job`. `force_sync` writes inline even with
  /// background checkpointing on (the Load baseline).
  Status CaptureLocked(CheckpointJob job, bool force_sync);
  /// Serializes and writes one captured checkpoint; drops the WAL
  /// segments it made redundant once it is durable. While the chain is
  /// broken (an earlier checkpoint write failed) delta jobs are SKIPPED —
  /// no write, no segment drop — until a durable full repairs it.
  Status RunCheckpointJob(const CheckpointJob& job);
  void CheckpointThreadMain();

  DurabilityOptions options_;
  storage::Vfs* vfs_;
  storage::SnapshotStore snapshots_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  Recovered recovered_;

  // Stage-side state. Calls mutating it run under the owning system's
  // writer lock; state_mu_ additionally guards it against concurrent
  // stats() readers.
  mutable std::mutex state_mu_;
  std::map<RecordId, PendingChange> pending_;
  uint64_t updates_since_checkpoint_ = 0;
  uint64_t chain_tail_epoch_ = 0;  // base of the next delta
  uint64_t chain_length_ = 0;      // deltas since the last full
  bool have_chain_ = false;        // a full snapshot exists to chain onto
  // Snapshot header fields deltas inherit (set by every full capture and
  // by recovery; a delta is never captured before a full exists).
  uint8_t meta_model_ = SnapshotState::kSae;
  uint32_t meta_record_size_ = 0;
  crypto::HashScheme meta_scheme_ = crypto::HashScheme::kSha1;
  // Undo info for the last staged update (one level deep, like the WAL's).
  RecordId last_staged_id_ = 0;
  bool last_staged_had_prev_ = false;
  PendingChange last_staged_prev_;
  bool undo_armed_ = false;
  // Set by RetractStagedFrom (the pending set was dropped wholesale, so a
  // delta could no longer account for every change since the last
  // capture); forces the next checkpoint full, cleared by a full capture.
  bool pending_incomplete_ = false;

  // Checkpoint pipeline.
  mutable std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  std::deque<CheckpointJob> ckpt_queue_;
  bool ckpt_running_ = false;   // a job is being written right now
  bool ckpt_stop_ = false;
  Status ckpt_status_;          // first failure since the last wait
  std::thread ckpt_thread_;
  bool ckpt_thread_started_ = false;
  // Set when a checkpoint write fails: the on-disk chain is missing that
  // link, so sealed WAL segments are the only durable copy of the failed
  // window — GC stops and deltas are skipped until a durable full snapshot
  // (forced by NextCheckpointIsFull) re-covers everything. Atomic: written
  // on the checkpoint thread, read by the capture/cadence path.
  std::atomic<bool> chain_broken_{false};
  // Stats written by the checkpoint path (under ckpt_mu_).
  uint64_t checkpoints_full_ = 0;
  uint64_t checkpoints_delta_ = 0;
  uint64_t checkpoints_skipped_ = 0;
  uint64_t checkpoint_bytes_total_ = 0;
  uint64_t last_checkpoint_bytes_ = 0;
  double last_checkpoint_ms_ = 0.0;
};

}  // namespace sae::core

#endif  // SAE_CORE_DURABILITY_H_
