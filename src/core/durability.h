// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The durability subsystem the systems (core/system.h) plug into: WAL
// record and snapshot payload formats plus the DurabilityManager that owns
// a system's on-disk state (one directory: a `wal` file and `snap-<epoch>`
// snapshots, storage/wal.h + storage/snapshot.h).
//
// Write-ahead contract: RunUpdate validates the op against the owner,
// appends the WAL record — stamped with the POST-update epoch — and syncs
// it durable, and only then mutates the in-memory authentication state.
// An update whose record reached the disk is recoverable; one whose record
// did not never happened. Snapshots checkpoint the full system state every
// `snapshot_interval` updates so the WAL (and recovery replay) stays short.
//
// Recovery (SaeSystem::Recover / TomSystem::Recover) inverts this: load
// the newest valid snapshot, replay the WAL records with epoch > snapshot
// epoch through the normal owner paths, truncate whatever garbage follows
// the valid prefix, and republish. The recovered epoch is provable — TOM
// re-signs and cross-checks the persisted root signature — and clients
// verify it as live traffic; a rollback to an older durable state yields
// an older epoch that the unmodified client freshness gate rejects as
// kStaleEpoch.

#ifndef SAE_CORE_DURABILITY_H_
#define SAE_CORE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/digest.h"
#include "storage/record.h"
#include "storage/snapshot.h"
#include "storage/vfs.h"
#include "storage/wal.h"
#include "util/status.h"

namespace sae::core {

using storage::Key;
using storage::Record;
using storage::RecordId;

/// Durability knobs of one system. Disabled by default — the simulation
/// harness and the figure benches run purely in memory.
struct DurabilityOptions {
  bool enabled = false;
  /// Directory holding this system's `wal` file and `snap-*` snapshots.
  std::string dir;
  /// File-system seam; nullptr = the real POSIX Vfs. Tests inject a
  /// storage::FaultFs here to crash at exact sync points.
  storage::Vfs* vfs = nullptr;
  /// Updates between snapshots (0 = snapshot only at load). Small values
  /// bound replay length at the price of checkpoint I/O — the cadence
  /// sweep in bench_durability quantifies the trade.
  uint64_t snapshot_interval = 64;
  /// Snapshots kept by GC; >= 2 keeps a fallback behind a corrupt newest.
  size_t keep_snapshots = 2;
};

/// One logged update, WAL payload <-> in-memory form. `epoch` is the epoch
/// the update published (owner epoch after applying).
struct WalUpdate {
  enum Op : uint8_t { kInsert = 1, kDelete = 2 };
  uint8_t op = kInsert;
  uint64_t epoch = 0;
  Record record;   // kInsert: the inserted record
  RecordId id = 0; // kDelete: the deleted id
};

std::vector<uint8_t> EncodeWalUpdate(const WalUpdate& update);
Result<WalUpdate> DecodeWalUpdate(const std::vector<uint8_t>& payload);

/// The checkpointed system state a snapshot payload carries. Records are
/// the full dataset in key order; TOM also persists the epoch-stamped root
/// signature, which recovery cross-checks against a fresh re-signing.
struct SnapshotState {
  enum Model : uint8_t { kSae = 1, kTom = 2 };
  uint8_t model = kSae;
  uint32_t record_size = 0;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  std::vector<Record> records;
  std::vector<uint8_t> signature;  // TOM root signature; empty for SAE
};

std::vector<uint8_t> EncodeSnapshotState(const SnapshotState& state);
Result<SnapshotState> DecodeSnapshotState(const std::vector<uint8_t>& payload);

/// Owns a system's durable state: the WAL append handle, the snapshot
/// store, and the cadence counter. Opened at Load (fresh directory) or at
/// Recover (existing directory — `recovered()` then exposes what the disk
/// held). Calls are made under the owning system's writer lock.
class DurabilityManager {
 public:
  /// What recovery found on disk: the newest valid snapshot (if any) and
  /// the decoded WAL tail. Opening truncates the WAL to its valid prefix —
  /// torn or corrupt records (checksum, length lie, or a crc-valid record
  /// that fails to decode) end the prefix and are cut off, never replayed.
  struct Recovered {
    bool has_snapshot = false;
    uint64_t snapshot_epoch = 0;
    bool snapshot_fell_back = false;
    SnapshotState snapshot;
    std::vector<WalUpdate> wal_tail;
    bool wal_truncated = false;  // garbage was cut from the log
  };

  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options);

  const Recovered& recovered() const { return recovered_; }

  /// Appends + syncs one update record (one sync point). The durability
  /// commit point: returns OK iff the update is recoverable.
  Status LogUpdate(const WalUpdate& update);

  /// Rolls the WAL back over the last LogUpdate after the in-memory apply
  /// failed, so the log never claims an update that did not happen.
  Status UndoFailedUpdate();

  /// Counts one applied update; true when the snapshot cadence is due.
  bool ShouldSnapshot();

  /// Checkpoints `state` under `epoch` (temp-write + sync + rename; two
  /// sync points), then empties the WAL (one more) — its records are now
  /// redundant. Resets the cadence counter.
  Status WriteSnapshot(uint64_t epoch, const SnapshotState& state);

  uint64_t wal_bytes() const { return wal_->size_bytes(); }
  const DurabilityOptions& options() const { return options_; }

 private:
  DurabilityManager(const DurabilityOptions& options, storage::Vfs* vfs);

  DurabilityOptions options_;
  storage::Vfs* vfs_;
  storage::SnapshotStore snapshots_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  Recovered recovered_;
  uint64_t updates_since_snapshot_ = 0;
  uint64_t last_append_offset_ = 0;
};

}  // namespace sae::core

#endif  // SAE_CORE_DURABILITY_H_
