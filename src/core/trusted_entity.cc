// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the trusted entity (core/trusted_entity.h): XB-tree over
// <id, key, H(record)> tuples answering queries with the 20-byte VT.

#include "core/trusted_entity.h"

#include <algorithm>

#include "util/macros.h"

namespace sae::core {

TrustedEntity::TrustedEntity(const Options& options)
    : options_(options),
      codec_(options.record_size),
      pool_(&store_, options.pool_pages),
      vt_cache_(options.vt_cache) {
  auto tree = xbtree::XbTree::Create(&pool_, options_.xb_options);
  SAE_CHECK(tree.ok());
  xb_ = std::move(tree).ValueOrDie();
}

Status TrustedEntity::LoadDataset(const std::vector<Record>& sorted) {
  vt_cache_.InvalidateAll();
  std::vector<crypto::Digest> digests =
      storage::DigestRecords(sorted, codec_, options_.scheme);
  std::vector<xbtree::XbTuple> tuples;
  tuples.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    tuples.push_back(
        xbtree::XbTuple{sorted[i].key, sorted[i].id, digests[i]});
  }
  return xb_->BulkLoad(tuples);
}

Status TrustedEntity::InsertRecord(const Record& record) {
  vt_cache_.InvalidateAll();
  std::vector<uint8_t> bytes = codec_.Serialize(record);
  crypto::Digest digest =
      crypto::ComputeDigest(bytes.data(), bytes.size(), options_.scheme);
  return xb_->Insert(record.key, record.id, digest);
}

Status TrustedEntity::DeleteRecord(Key key, RecordId id) {
  vt_cache_.InvalidateAll();
  return xb_->Delete(key, id);
}

Result<VerificationToken> TrustedEntity::GenerateVt(Key lo, Key hi) const {
  VerificationToken vt;
  vt.epoch = epoch();
  AnswerCache::Key key;
  key.lo = lo;
  key.hi = hi;
  key.epoch = vt.epoch;
  if (vt_cache_.enabled()) {
    if (auto hit = vt_cache_.Lookup(key)) {
      SAE_CHECK(hit->answer_msg.size() == crypto::Digest::kSize);
      std::copy(hit->answer_msg.begin(), hit->answer_msg.end(),
                vt.digest.bytes.begin());
      return vt;
    }
  }
  SAE_ASSIGN_OR_RETURN(vt.digest, xb_->GenerateVT(lo, hi));
  if (vt_cache_.enabled()) {
    CachedAnswer entry;
    entry.answer_msg.assign(vt.digest.bytes.begin(), vt.digest.bytes.end());
    vt_cache_.Insert(key, std::move(entry));
  }
  return vt;
}

}  // namespace sae::core
