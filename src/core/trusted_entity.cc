// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the trusted entity (core/trusted_entity.h): XB-tree over
// <id, key, H(record)> tuples answering queries with the 20-byte VT.

#include "core/trusted_entity.h"

#include "util/macros.h"

namespace sae::core {

TrustedEntity::TrustedEntity(const Options& options)
    : options_(options),
      codec_(options.record_size),
      pool_(&store_, options.pool_pages) {
  auto tree = xbtree::XbTree::Create(&pool_, options_.xb_options);
  SAE_CHECK(tree.ok());
  xb_ = std::move(tree).ValueOrDie();
}

Status TrustedEntity::LoadDataset(const std::vector<Record>& sorted) {
  std::vector<xbtree::XbTuple> tuples;
  tuples.reserve(sorted.size());
  std::vector<uint8_t> scratch(codec_.record_size());
  for (const Record& record : sorted) {
    codec_.Serialize(record, scratch.data());
    tuples.push_back(xbtree::XbTuple{
        record.key, record.id,
        crypto::ComputeDigest(scratch.data(), scratch.size(),
                              options_.scheme)});
  }
  return xb_->BulkLoad(tuples);
}

Status TrustedEntity::InsertRecord(const Record& record) {
  std::vector<uint8_t> bytes = codec_.Serialize(record);
  crypto::Digest digest =
      crypto::ComputeDigest(bytes.data(), bytes.size(), options_.scheme);
  return xb_->Insert(record.key, record.id, digest);
}

Status TrustedEntity::DeleteRecord(Key key, RecordId id) {
  return xb_->Delete(key, id);
}

Result<VerificationToken> TrustedEntity::GenerateVt(Key lo, Key hi) const {
  VerificationToken vt;
  vt.epoch = epoch();
  SAE_ASSIGN_OR_RETURN(vt.digest, xb_->GenerateVT(lo, hi));
  return vt;
}

}  // namespace sae::core
