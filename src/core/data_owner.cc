// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the data owner (core/data_owner.h): initial shipping and
// incremental updates to SP and TE (and ADS maintenance under TOM).

#include "core/data_owner.h"

#include <algorithm>

#include "core/messages.h"
#include "util/macros.h"

namespace sae::core {

DataOwner::DataOwner(size_t record_size) : codec_(record_size) {}

Status DataOwner::SetDataset(const std::vector<Record>& records) {
  master_.clear();
  epoch_ = 0;  // nothing outsourced yet; Outsource publishes epoch 1
  for (const Record& record : records) {
    if (!master_.emplace(record.id, record).second) {
      return Status::InvalidArgument("duplicate record id");
    }
  }
  return Status::OK();
}

std::vector<Record> DataOwner::SortedDataset() const {
  std::vector<Record> out;
  out.reserve(master_.size());
  for (const auto& [id, record] : master_) out.push_back(record);
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  });
  return out;
}

Result<Record> DataOwner::Get(RecordId id) const {
  auto it = master_.find(id);
  if (it == master_.end()) return Status::NotFound("no record with this id");
  return it->second;
}

void DataOwner::PublishEpoch(ServiceProvider* sp, TrustedEntity* te,
                             sim::Channel* to_sp, sim::Channel* to_te) {
  ++epoch_;
  std::vector<uint8_t> notice = SerializeEpochNotice(epoch_);
  to_sp->Send(notice);
  to_te->Send(notice);
  sp->SetEpoch(epoch_);
  te->SetEpoch(epoch_);
}

Status DataOwner::Outsource(ServiceProvider* sp, TrustedEntity* te,
                            sim::Channel* to_sp, sim::Channel* to_te) {
  std::vector<Record> sorted = SortedDataset();
  std::vector<uint8_t> shipment = SerializeRecords(sorted, codec_);
  to_sp->Send(shipment);
  to_te->Send(shipment);
  SAE_RETURN_NOT_OK(sp->LoadDataset(sorted));
  SAE_RETURN_NOT_OK(te->LoadDataset(sorted));
  PublishEpoch(sp, te, to_sp, to_te);  // the initial shipment is epoch 1
  return Status::OK();
}

Status DataOwner::InsertRecord(const Record& record, ServiceProvider* sp,
                               TrustedEntity* te, sim::Channel* to_sp,
                               sim::Channel* to_te) {
  if (!master_.emplace(record.id, record).second) {
    return Status::AlreadyExists("record id already present");
  }
  std::vector<uint8_t> shipment = SerializeRecords({record}, codec_);
  to_sp->Send(shipment);
  to_te->Send(shipment);
  SAE_RETURN_NOT_OK(sp->InsertRecord(record));
  SAE_RETURN_NOT_OK(te->InsertRecord(record));
  PublishEpoch(sp, te, to_sp, to_te);
  return Status::OK();
}

Status DataOwner::DeleteRecord(RecordId id, ServiceProvider* sp,
                               TrustedEntity* te, sim::Channel* to_sp,
                               sim::Channel* to_te) {
  auto it = master_.find(id);
  if (it == master_.end()) return Status::NotFound("no record with this id");
  Key key = it->second.key;
  master_.erase(it);
  std::vector<uint8_t> note = SerializeDelete(id, key);
  to_sp->Send(note);
  to_te->Send(note);
  SAE_RETURN_NOT_OK(sp->DeleteRecord(id));
  SAE_RETURN_NOT_OK(te->DeleteRecord(key, id));
  PublishEpoch(sp, te, to_sp, to_te);
  return Status::OK();
}

}  // namespace sae::core
