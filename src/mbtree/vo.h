// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The TOM verification object (VO).
//
// Paper §I: for a range result {r_i..r_j} the VO contains (i) the boundary
// records r_{i-1}, r_{j+1}, (ii) digests of the left siblings on the path to
// r_{i-1}, (iii) digests of the right siblings on the path to r_{j+1}, and
// (iv) the DO's signature. We represent the VO as a depth-first encoding of
// the minimal subtree covering the result span: sibling entries appear as
// bare digests, covered leaf entries as result placeholders (the client
// hashes the records the SP returned), and boundary entries carry the full
// record bytes. The client replays the encoding to rebuild the root digest
// and checks it against the signature.

#ifndef SAE_MBTREE_VO_H_
#define SAE_MBTREE_VO_H_

#include <memory>
#include <vector>

#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::mbtree {

/// One entry of a VO node. Deep-copyable (the child subtree is cloned) so
/// VerificationObject behaves as a regular value type.
struct VoItem {
  enum class Type : uint8_t {
    kDigest = 0,          ///< sibling entry: pre-computed digest
    kBoundaryRecord = 1,  ///< boundary record: full record bytes
    kResultEntry = 2,     ///< covered entry: digest comes from SP's results
    kChild = 3,           ///< covered subtree: recursive node
  };

  VoItem() = default;
  VoItem(VoItem&&) = default;
  VoItem& operator=(VoItem&&) = default;
  VoItem(const VoItem& other);
  VoItem& operator=(const VoItem& other);

  Type type = Type::kDigest;
  crypto::Digest digest;              // kDigest
  std::vector<uint8_t> record_bytes;  // kBoundaryRecord
  std::unique_ptr<struct VoNode> child;  // kChild
};

/// A node of the VO's covering subtree.
struct VoNode {
  bool is_leaf = true;
  std::vector<VoItem> items;
};

/// Complete verification object as shipped SP -> client. The signature is
/// the DO's RSA signature over the *epoch-stamped* root commitment
/// crypto::EpochStampedDigest(root_digest, epoch), so the epoch field is
/// authenticated: forging a fresher epoch breaks the signature, and a
/// replayed old VO carries its old epoch.
struct VerificationObject {
  VoNode root;
  uint64_t epoch = 0;
  crypto::RsaSignature signature;

  /// Wire encoding; its size is the Fig. 5 "SP-Client (TOM)" series.
  std::vector<uint8_t> Serialize() const;

  static Result<VerificationObject> Deserialize(
      const std::vector<uint8_t>& bytes);

  size_t SerializedSize() const { return Serialize().size(); }
};

/// Client-side verification (paper §I): first the freshness gate — the
/// VO's epoch must equal `current_epoch`, the latest one the DO published
/// (a lagging epoch is a replayed pre-update snapshot -> kStaleEpoch; a
/// future one is a forgery -> kVerificationFailure) — then reconstructs the
/// MB-tree root digest from `results` + the VO, checks the signature over
/// the epoch-stamped root commitment, and enforces the soundness/
/// completeness structure (boundary keys enclose [lo, hi]; no hidden
/// digests inside the result span; results sorted and in range).
///
/// \param results records the SP returned, in key order
/// \param current_epoch the latest published epoch (0 for static set-ups
///        that never advance it)
/// \returns OK when the result is proven correct and fresh.
Status VerifyVO(const VerificationObject& vo, storage::Key lo,
                storage::Key hi, const std::vector<storage::Record>& results,
                const crypto::RsaPublicKey& owner_key,
                const storage::RecordCodec& codec,
                crypto::HashScheme scheme = crypto::HashScheme::kSha1,
                uint64_t current_epoch = 0);

/// VerifyVO's freshness gate on its own: the VO's epoch against the latest
/// published one. Everything else VerifyVO checks is a pure function of
/// (vo, lo, hi, results) — which is what lets core::TomClientMemo memoize
/// it — while this gate must run fresh on every query.
Status CheckVoFreshness(const VerificationObject& vo, uint64_t current_epoch);

}  // namespace sae::mbtree

#endif  // SAE_MBTREE_VO_H_
