// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Composite verification object for a sharded TOM deployment: a range
// query spanning several MB-tree shards is answered by stitching the
// per-shard results, and the proof is the matching stitch of per-shard
// VOs — one part per shard slice, each carrying the slice's clipped
// sub-range and that shard's epoch-stamped, root-signed VO.
//
// Client-side verification (VerifyComposite) establishes end-to-end
// correctness of the stitched answer from the trusted fence keys alone:
//
//   1. fence-key completeness — the parts must tile [lo, hi] exactly along
//      the fences (storage::VerifyKeyCover). Each part's VO then proves
//      completeness of its own sub-range via MB-tree boundary records, and
//      because adjacent parts meet on a fence (part.hi + 1 == next.lo), no
//      record anywhere in [lo, hi] can be dropped without some part's
//      proof breaking — including a record "hidden between shards";
//   2. per-shard soundness and freshness — each part's VO is replayed
//      against its slice of the results and checked against that shard's
//      DO signature and published epoch (mbtree::VerifyVO);
//   3. cross-shard epoch agreement — per-shard verdicts fold via
//      sae::CombineShardStatuses: a uniformly stale answer is kStaleEpoch,
//      fresh and stale shards mixed in one answer is kShardEpochSkew, and
//      any record-level corruption is kVerificationFailure naming the
//      shard.

#ifndef SAE_MBTREE_COMPOSITE_VO_H_
#define SAE_MBTREE_COMPOSITE_VO_H_

#include <vector>

#include "crypto/rsa.h"
#include "mbtree/vo.h"
#include "storage/key_range.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::mbtree {

/// One shard's contribution to a composite proof.
struct CompositeVoPart {
  uint32_t shard = 0;
  storage::Key lo = 0;  ///< clipped sub-range this shard answers, inclusive
  storage::Key hi = 0;
  VerificationObject vo;
};

/// The stitched proof shipped SP -> client for a multi-shard range query.
struct CompositeVo {
  std::vector<CompositeVoPart> parts;  ///< ascending by shard

  /// Wire encoding: part count, then per part the shard id, sub-range and
  /// the embedded VO bytes. Its size is the sharded analog of the Fig. 5
  /// "SP-Client (TOM)" series.
  std::vector<uint8_t> Serialize() const;
  static Result<CompositeVo> Deserialize(const std::vector<uint8_t>& bytes);
  size_t SerializedSize() const { return Serialize().size(); }
};

/// Per-shard verdict reported back by VerifyComposite.
struct ShardVoVerdict {
  uint32_t shard = 0;
  uint64_t epoch = 0;  ///< epoch the shard's VO claims
  Status status;       ///< that shard's VerifyVO outcome
};

/// Verifies the stitched `results` for [lo, hi] against the composite
/// proof. `fences` are the trusted interior fence keys from the DO;
/// `published_epochs[s]` is the latest epoch the DO published for shard s
/// (the freshness reference). When `per_shard` is non-null it receives one
/// verdict per part, so a caller can attribute a rejection to the
/// compromised shard while keeping the honest shards' sub-results.
Status VerifyComposite(const CompositeVo& cvo, storage::Key lo,
                       storage::Key hi,
                       const std::vector<storage::Record>& results,
                       const std::vector<storage::Key>& fences,
                       const crypto::RsaPublicKey& owner_key,
                       const storage::RecordCodec& codec,
                       crypto::HashScheme scheme,
                       const std::vector<uint64_t>& published_epochs,
                       std::vector<ShardVoVerdict>* per_shard = nullptr);

}  // namespace sae::mbtree

#endif  // SAE_MBTREE_COMPOSITE_VO_H_
