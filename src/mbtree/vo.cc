// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the TOM verification object (mbtree/vo.h): VO construction at
// the SP (boundary records + sibling digests) and the client-side replay
// that rebuilds the signed root digest.

#include "mbtree/vo.h"

#include "util/codec.h"
#include "util/macros.h"

namespace sae::mbtree {

namespace {

constexpr uint8_t kTokNodeBegin = 0xA0;
constexpr uint8_t kTokNodeEnd = 0xA1;
constexpr uint8_t kTokDigest = 0xA2;
constexpr uint8_t kTokBoundary = 0xA3;
constexpr uint8_t kTokResult = 0xA4;

void SerializeNode(const VoNode& node, ByteWriter* w) {
  w->PutU8(kTokNodeBegin);
  w->PutU8(node.is_leaf ? 1 : 0);
  w->PutU16(uint16_t(node.items.size()));
  for (const VoItem& item : node.items) {
    switch (item.type) {
      case VoItem::Type::kDigest:
        w->PutU8(kTokDigest);
        w->PutBytes(item.digest.bytes.data(), crypto::Digest::kSize);
        break;
      case VoItem::Type::kBoundaryRecord:
        w->PutU8(kTokBoundary);
        w->PutU32(uint32_t(item.record_bytes.size()));
        w->PutBytes(item.record_bytes.data(), item.record_bytes.size());
        break;
      case VoItem::Type::kResultEntry:
        w->PutU8(kTokResult);
        break;
      case VoItem::Type::kChild:
        SerializeNode(*item.child, w);
        break;
    }
  }
  w->PutU8(kTokNodeEnd);
}

// Parses a node whose NodeBegin token has already been consumed.
Status ParseNodeAfterBegin(ByteReader* r, VoNode* out) {
  out->is_leaf = r->GetU8() != 0;
  uint16_t count = r->GetU16();
  out->items.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    if (r->failed()) return Status::Corruption("VO: truncated");
    uint8_t tok = r->GetU8();
    VoItem item;
    switch (tok) {
      case kTokDigest:
        item.type = VoItem::Type::kDigest;
        if (!r->GetBytes(item.digest.bytes.data(), crypto::Digest::kSize)) {
          return Status::Corruption("VO: truncated digest");
        }
        break;
      case kTokBoundary: {
        item.type = VoItem::Type::kBoundaryRecord;
        uint32_t len = r->GetU32();
        if (len > (1u << 20) || r->remaining() < len) {
          return Status::Corruption("VO: bad boundary record length");
        }
        item.record_bytes.resize(len);
        if (!r->GetBytes(item.record_bytes.data(), len)) {
          return Status::Corruption("VO: truncated boundary record");
        }
        break;
      }
      case kTokResult:
        item.type = VoItem::Type::kResultEntry;
        break;
      case kTokNodeBegin: {
        item.type = VoItem::Type::kChild;
        item.child = std::make_unique<VoNode>();
        SAE_RETURN_NOT_OK(ParseNodeAfterBegin(r, item.child.get()));
        break;
      }
      default:
        return Status::Corruption("VO: unknown token");
    }
    out->items.push_back(std::move(item));
  }
  if (r->GetU8() != kTokNodeEnd) {
    return Status::Corruption("VO: expected node end");
  }
  return Status::OK();
}

Result<VoNode> DeserializeNode(ByteReader* r) {
  if (r->GetU8() != kTokNodeBegin) {
    return Status::Corruption("VO: expected node begin");
  }
  VoNode node;
  SAE_RETURN_NOT_OK(ParseNodeAfterBegin(r, &node));
  return node;
}

// --- verification -----------------------------------------------------------

// Flattened view used for the structural (completeness) checks.
enum class FlatKind { kDigest, kBoundary, kResult };

struct FlatToken {
  FlatKind kind;
  bool leaf_level;
  const VoItem* item;
};

void Flatten(const VoNode& node, std::vector<FlatToken>* out) {
  for (const VoItem& item : node.items) {
    switch (item.type) {
      case VoItem::Type::kDigest:
        out->push_back({FlatKind::kDigest, node.is_leaf, &item});
        break;
      case VoItem::Type::kBoundaryRecord:
        out->push_back({FlatKind::kBoundary, node.is_leaf, &item});
        break;
      case VoItem::Type::kResultEntry:
        out->push_back({FlatKind::kResult, node.is_leaf, &item});
        break;
      case VoItem::Type::kChild:
        Flatten(*item.child, out);
        break;
    }
  }
}

// Recomputes the node digest, consuming result-record digests in order.
Status ComputeNodeDigest(const VoNode& node,
                         const std::vector<crypto::Digest>& result_digests,
                         size_t* next_result, crypto::HashScheme scheme,
                         crypto::Digest* out) {
  std::vector<crypto::Digest> digests;
  digests.reserve(node.items.size());
  for (const VoItem& item : node.items) {
    switch (item.type) {
      case VoItem::Type::kDigest:
        digests.push_back(item.digest);
        break;
      case VoItem::Type::kBoundaryRecord:
        if (!node.is_leaf) {
          return Status::VerificationFailure(
              "VO: boundary record above leaf level");
        }
        digests.push_back(crypto::ComputeDigest(item.record_bytes.data(),
                                                item.record_bytes.size(),
                                                scheme));
        break;
      case VoItem::Type::kResultEntry: {
        if (!node.is_leaf) {
          return Status::VerificationFailure(
              "VO: result entry above leaf level");
        }
        if (*next_result >= result_digests.size()) {
          return Status::VerificationFailure(
              "VO: more result slots than records returned");
        }
        digests.push_back(result_digests[(*next_result)++]);
        break;
      }
      case VoItem::Type::kChild: {
        if (node.is_leaf) {
          return Status::VerificationFailure("VO: child under a leaf");
        }
        crypto::Digest child_digest;
        SAE_RETURN_NOT_OK(ComputeNodeDigest(*item.child, result_digests,
                                            next_result, scheme,
                                            &child_digest));
        digests.push_back(child_digest);
        break;
      }
    }
  }
  if (digests.empty()) {
    // Empty tree (e.g. an empty shard of a partitioned deployment): the
    // digest of zero digests, mirroring MbTree::NodeDigest, so the VO of
    // an honestly empty result reconstructs the signed empty-root digest.
    // Not a forgery vector: a non-empty signed tree has no node with this
    // digest, so a fabricated empty node still fails the signature check.
    *out = crypto::CombineDigests(nullptr, 0, scheme);
    return Status::OK();
  }
  *out = crypto::CombineDigests(digests.data(), digests.size(), scheme);
  return Status::OK();
}

}  // namespace

VoItem::VoItem(const VoItem& other)
    : type(other.type),
      digest(other.digest),
      record_bytes(other.record_bytes),
      child(other.child ? std::make_unique<VoNode>(*other.child) : nullptr) {}

VoItem& VoItem::operator=(const VoItem& other) {
  if (this != &other) {
    type = other.type;
    digest = other.digest;
    record_bytes = other.record_bytes;
    child = other.child ? std::make_unique<VoNode>(*other.child) : nullptr;
  }
  return *this;
}

std::vector<uint8_t> VerificationObject::Serialize() const {
  ByteWriter w;
  SerializeNode(root, &w);
  w.PutU64(epoch);
  w.PutU16(uint16_t(signature.size()));
  w.PutBytes(signature.data(), signature.size());
  return w.Release();
}

Result<VerificationObject> VerificationObject::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  VerificationObject vo;
  SAE_ASSIGN_OR_RETURN(vo.root, DeserializeNode(&r));
  vo.epoch = r.GetU64();
  uint16_t sig_len = r.GetU16();
  if (r.failed()) return Status::Corruption("VO: truncated epoch/signature");
  vo.signature.resize(sig_len);
  if (!r.GetBytes(vo.signature.data(), sig_len) || r.failed()) {
    return Status::Corruption("VO: truncated signature");
  }
  return vo;
}

Status VerifyVO(const VerificationObject& vo, storage::Key lo,
                storage::Key hi, const std::vector<storage::Record>& results,
                const crypto::RsaPublicKey& owner_key,
                const storage::RecordCodec& codec,
                crypto::HashScheme scheme, uint64_t current_epoch) {
  // 0. Freshness gate, before any cryptographic work: a replayed VO from a
  // pre-update snapshot is internally consistent and would pass every
  // check below against its own (old) signature — only the epoch exposes
  // it. Checked first so staleness is reported distinctly.
  SAE_RETURN_NOT_OK(CheckVoFreshness(vo, current_epoch));

  // 1. Results must be sorted by key and inside [lo, hi].
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].key < lo || results[i].key > hi) {
      return Status::VerificationFailure("result record outside query range");
    }
    if (i > 0 && results[i - 1].key > results[i].key) {
      return Status::VerificationFailure("result records out of key order");
    }
  }

  // 2. Structural completeness over the flattened stream.
  std::vector<FlatToken> flat;
  Flatten(vo.root, &flat);

  long left_boundary = -1, right_boundary = -1;
  long first_result = -1, last_result = -1;
  size_t result_slots = 0;
  size_t boundary_count = 0;
  for (size_t i = 0; i < flat.size(); ++i) {
    switch (flat[i].kind) {
      case FlatKind::kBoundary:
        ++boundary_count;
        if (boundary_count > 2) {
          return Status::VerificationFailure("VO: more than two boundaries");
        }
        if (left_boundary < 0 && first_result < 0) {
          left_boundary = long(i);
        } else {
          right_boundary = long(i);
        }
        break;
      case FlatKind::kResult:
        ++result_slots;
        if (first_result < 0) first_result = long(i);
        last_result = long(i);
        break;
      case FlatKind::kDigest:
        break;
    }
  }
  if (result_slots != results.size()) {
    return Status::VerificationFailure(
        "result cardinality disagrees with VO");
  }

  // The protected span runs from the left boundary (or the very start when
  // the result begins at the first entry of the tree) to the right boundary
  // (or the very end). No digest token may hide inside it.
  long span_begin = left_boundary >= 0 ? left_boundary : 0;
  long span_end = right_boundary >= 0 ? right_boundary : long(flat.size()) - 1;
  if (right_boundary >= 0 && left_boundary >= 0 &&
      right_boundary < left_boundary) {
    return Status::VerificationFailure("VO: boundaries out of order");
  }
  for (long i = span_begin; i <= span_end && i >= 0; ++i) {
    if (flat[i].kind == FlatKind::kDigest) {
      return Status::VerificationFailure(
          "VO: digest hidden inside the result span");
    }
  }
  if (first_result >= 0 && left_boundary >= 0 && first_result < left_boundary) {
    return Status::VerificationFailure("VO: result before left boundary");
  }
  if (last_result >= 0 && right_boundary >= 0 && last_result > right_boundary) {
    return Status::VerificationFailure("VO: result after right boundary");
  }

  // 3. Boundary key checks (completeness at the range edges).
  if (left_boundary >= 0) {
    const auto& bytes = flat[left_boundary].item->record_bytes;
    if (bytes.size() != codec.record_size()) {
      return Status::VerificationFailure("VO: bad boundary record size");
    }
    storage::Record r = codec.Deserialize(bytes.data());
    if (r.key >= lo) {
      return Status::VerificationFailure(
          "VO: left boundary key not below query range");
    }
  }
  if (right_boundary >= 0) {
    const auto& bytes = flat[right_boundary].item->record_bytes;
    if (bytes.size() != codec.record_size()) {
      return Status::VerificationFailure("VO: bad boundary record size");
    }
    storage::Record r = codec.Deserialize(bytes.data());
    if (r.key <= hi) {
      return Status::VerificationFailure(
          "VO: right boundary key not above query range");
    }
  }

  // 4. Rebuild the root digest and check the owner's signature. The result
  // re-hash dominates large range verifications; batch it through the
  // multi-buffer hash kernels.
  std::vector<crypto::Digest> result_digests =
      storage::DigestRecords(results, codec, scheme);
  size_t next_result = 0;
  crypto::Digest root_digest;
  SAE_RETURN_NOT_OK(ComputeNodeDigest(vo.root, result_digests, &next_result,
                                      scheme, &root_digest));
  if (next_result != result_digests.size()) {
    return Status::VerificationFailure("VO: unconsumed result records");
  }
  // The DO signs the epoch-stamped commitment, never the bare root: the
  // signature authenticates the epoch field checked above.
  return crypto::RsaVerifyDigest(
      owner_key, crypto::EpochStampedDigest(root_digest, vo.epoch, scheme),
      vo.signature);
}

Status CheckVoFreshness(const VerificationObject& vo, uint64_t current_epoch) {
  if (vo.epoch < current_epoch) {
    return Status::StaleEpoch("VO epoch lags the published epoch");
  }
  if (vo.epoch > current_epoch) {
    return Status::VerificationFailure("VO claims a future epoch");
  }
  return Status::OK();
}

}  // namespace sae::mbtree
