// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the Merkle B-tree (mbtree/mb_tree.h): B+-tree maintenance with
// per-entry digests recomputed along every root path, plus the range-search
// hooks VO construction traverses.

#include "mbtree/mb_tree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/codec.h"
#include "util/macros.h"

namespace sae::mbtree {

namespace {

constexpr uint32_t kMagic = 0x4D42544Eu;  // "MBTN"
constexpr size_t kHeaderSize = 16;
constexpr size_t kDigestSize = crypto::Digest::kSize;  // 20
constexpr size_t kLeafEntrySize = 4 + 8 + kDigestSize;  // 32
constexpr size_t kInternalEntrySize = 4 + 4 + kDigestSize;  // 28
constexpr size_t kInternalChild0Size = 4 + kDigestSize;  // 24

size_t DefaultMaxLeaf() {
  return (storage::kPageSize - kHeaderSize) / kLeafEntrySize;  // 127
}
size_t DefaultMaxInternal() {
  return (storage::kPageSize - kHeaderSize - kInternalChild0Size) /
         kInternalEntrySize;  // 144
}

// Near-equal chunks aiming at `target` per chunk within [min_size,
// hard_cap]; see bplus_tree.cc for the rationale.
std::vector<size_t> PlanChunks(size_t total, size_t target, size_t hard_cap,
                               size_t min_size) {
  SAE_CHECK(min_size >= 1 && min_size <= hard_cap && target >= 1);
  if (total <= min_size) return {total};
  size_t n = (total + target - 1) / target;
  if (n == 0) n = 1;
  while (n > 1 && total / n < min_size) --n;
  while ((total + n - 1) / n > hard_cap) ++n;
  std::vector<size_t> sizes(n, total / n);
  for (size_t i = 0; i < total % n; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

Result<std::unique_ptr<MbTree>> MbTree::Create(BufferPool* pool,
                                               const MbTreeOptions& options) {
  size_t max_leaf =
      options.max_leaf_entries ? options.max_leaf_entries : DefaultMaxLeaf();
  size_t max_internal = options.max_internal_keys ? options.max_internal_keys
                                                  : DefaultMaxInternal();
  SAE_CHECK(max_leaf >= 2 && max_leaf <= DefaultMaxLeaf());
  SAE_CHECK(max_internal >= 2 && max_internal <= DefaultMaxInternal());

  auto tree = std::unique_ptr<MbTree>(new MbTree(
      pool, max_leaf, max_internal, options.scheme,
      storage::NodeCacheOptions{options.hot_cache_levels,
                                options.hot_cache_entries}));
  Node root;
  root.is_leaf = true;
  SAE_ASSIGN_OR_RETURN(tree->root_, tree->NewNode(root));
  tree->root_digest_ = tree->NodeDigest(root);
  return tree;
}

crypto::Digest MbTree::NodeDigest(const Node& node) const {
  if (node.digests.empty()) {
    // Empty tree: digest of zero digests — hash of the empty string.
    return crypto::CombineDigests(nullptr, 0, scheme_);
  }
  return crypto::CombineDigests(node.digests.data(), node.digests.size(),
                                scheme_);
}

Result<MbTree::Node> MbTree::LoadNode(PageId id) const {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(id));
  const uint8_t* p = ref.Get().bytes();
  if (DecodeU32(p) != kMagic) {
    return Status::Corruption("bad mbtree node magic");
  }
  Node node;
  node.is_leaf = p[4] != 0;
  uint16_t count = DecodeU16(p + 6);
  node.next = DecodeU32(p + 8);
  const uint8_t* body = p + kHeaderSize;
  if (node.is_leaf) {
    for (uint16_t i = 0; i < count; ++i) {
      const uint8_t* e = body + i * kLeafEntrySize;
      node.keys.push_back(DecodeU32(e));
      node.rids.push_back(DecodeU64(e + 4));
      crypto::Digest d;
      std::memcpy(d.bytes.data(), e + 12, kDigestSize);
      node.digests.push_back(d);
    }
  } else {
    node.children.push_back(DecodeU32(body));
    crypto::Digest d0;
    std::memcpy(d0.bytes.data(), body + 4, kDigestSize);
    node.digests.push_back(d0);
    const uint8_t* pairs = body + kInternalChild0Size;
    for (uint16_t i = 0; i < count; ++i) {
      const uint8_t* e = pairs + i * kInternalEntrySize;
      node.keys.push_back(DecodeU32(e));
      node.children.push_back(DecodeU32(e + 4));
      crypto::Digest d;
      std::memcpy(d.bytes.data(), e + 8, kDigestSize);
      node.digests.push_back(d);
    }
  }
  return node;
}

Result<std::shared_ptr<const MbTree::Node>> MbTree::LoadNodeCached(
    PageId id, size_t depth) const {
  if (auto hit = node_cache_.Lookup(id, depth)) return hit;
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(id));
  return node_cache_.Insert(id, depth, std::move(node));
}

Status MbTree::StoreNode(PageId id, const Node& node) {
  node_cache_.Invalidate(id);
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(id));
  storage::Page& page = ref.Mutable();
  page.Zero();
  uint8_t* p = page.bytes();
  EncodeU32(p, kMagic);
  p[4] = node.is_leaf ? 1 : 0;
  EncodeU16(p + 6, uint16_t(node.keys.size()));
  EncodeU32(p + 8, node.next);
  uint8_t* body = p + kHeaderSize;
  if (node.is_leaf) {
    SAE_CHECK(node.keys.size() == node.rids.size());
    SAE_CHECK(node.keys.size() == node.digests.size());
    SAE_CHECK(node.keys.size() <= DefaultMaxLeaf());
    for (size_t i = 0; i < node.keys.size(); ++i) {
      uint8_t* e = body + i * kLeafEntrySize;
      EncodeU32(e, node.keys[i]);
      EncodeU64(e + 4, node.rids[i]);
      std::memcpy(e + 12, node.digests[i].bytes.data(), kDigestSize);
    }
  } else {
    SAE_CHECK(node.children.size() == node.keys.size() + 1);
    SAE_CHECK(node.digests.size() == node.children.size());
    SAE_CHECK(node.keys.size() <= DefaultMaxInternal());
    EncodeU32(body, node.children[0]);
    std::memcpy(body + 4, node.digests[0].bytes.data(), kDigestSize);
    uint8_t* pairs = body + kInternalChild0Size;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      uint8_t* e = pairs + i * kInternalEntrySize;
      EncodeU32(e, node.keys[i]);
      EncodeU32(e + 4, node.children[i + 1]);
      std::memcpy(e + 8, node.digests[i + 1].bytes.data(), kDigestSize);
    }
  }
  return Status::OK();
}

Result<PageId> MbTree::NewNode(const Node& node) {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->New());
  PageId id = ref.id();
  ref.Release();
  SAE_RETURN_NOT_OK(StoreNode(id, node));
  ++node_count_;
  return id;
}

size_t MbTree::MinOccupancy(const Node& node) const {
  return node.is_leaf ? max_leaf_ / 2 : max_internal_ / 2;
}

Status MbTree::Insert(const MbEntry& entry) {
  std::optional<SplitResult> split;
  crypto::Digest root_child_digest;
  SAE_RETURN_NOT_OK(InsertRec(root_, entry, &split, &root_child_digest));
  if (split.has_value()) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.keys.push_back(split->separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(split->right_page);
    new_root.digests.push_back(root_child_digest);
    new_root.digests.push_back(split->right_digest);
    SAE_ASSIGN_OR_RETURN(root_, NewNode(new_root));
    ++height_;
    root_digest_ = NodeDigest(new_root);
  } else {
    root_digest_ = root_child_digest;
  }
  ++entry_count_;
  return Status::OK();
}

Status MbTree::InsertRec(PageId page, const MbEntry& entry,
                         std::optional<SplitResult>* split,
                         crypto::Digest* self_digest) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  split->reset();

  if (node.is_leaf) {
    size_t pos =
        std::upper_bound(node.keys.begin(), node.keys.end(), entry.key) -
        node.keys.begin();
    node.keys.insert(node.keys.begin() + pos, entry.key);
    node.rids.insert(node.rids.begin() + pos, entry.rid);
    node.digests.insert(node.digests.begin() + pos, entry.digest);

    if (node.keys.size() > max_leaf_) {
      size_t mid = node.keys.size() / 2;
      Node right;
      right.is_leaf = true;
      right.keys.assign(node.keys.begin() + mid, node.keys.end());
      right.rids.assign(node.rids.begin() + mid, node.rids.end());
      right.digests.assign(node.digests.begin() + mid, node.digests.end());
      right.next = node.next;
      node.keys.resize(mid);
      node.rids.resize(mid);
      node.digests.resize(mid);
      SAE_ASSIGN_OR_RETURN(PageId right_page, NewNode(right));
      node.next = right_page;
      *split = SplitResult{right.keys.front(), right_page, NodeDigest(right)};
    }
    *self_digest = NodeDigest(node);
    return StoreNode(page, node);
  }

  size_t idx =
      std::upper_bound(node.keys.begin(), node.keys.end(), entry.key) -
      node.keys.begin();
  std::optional<SplitResult> child_split;
  crypto::Digest child_digest;
  SAE_RETURN_NOT_OK(
      InsertRec(node.children[idx], entry, &child_split, &child_digest));
  node.digests[idx] = child_digest;

  if (child_split.has_value()) {
    node.keys.insert(node.keys.begin() + idx, child_split->separator);
    node.children.insert(node.children.begin() + idx + 1,
                         child_split->right_page);
    node.digests.insert(node.digests.begin() + idx + 1,
                        child_split->right_digest);

    if (node.keys.size() > max_internal_) {
      size_t mid = node.keys.size() / 2;
      Key separator = node.keys[mid];
      Node right;
      right.is_leaf = false;
      right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
      right.children.assign(node.children.begin() + mid + 1,
                            node.children.end());
      right.digests.assign(node.digests.begin() + mid + 1,
                           node.digests.end());
      node.keys.resize(mid);
      node.children.resize(mid + 1);
      node.digests.resize(mid + 1);
      SAE_ASSIGN_OR_RETURN(PageId right_page, NewNode(right));
      *split = SplitResult{separator, right_page, NodeDigest(right)};
    }
  }
  *self_digest = NodeDigest(node);
  return StoreNode(page, node);
}

Status MbTree::Delete(Key key, Rid rid) {
  bool underflow = false;
  crypto::Digest new_digest;
  SAE_RETURN_NOT_OK(DeleteRec(root_, key, rid, &underflow, &new_digest));
  root_digest_ = new_digest;
  if (underflow) {
    SAE_ASSIGN_OR_RETURN(Node root, LoadNode(root_));
    if (!root.is_leaf && root.keys.empty()) {
      PageId old = root_;
      root_ = root.children[0];
      root_digest_ = root.digests[0];
      node_cache_.Invalidate(old);
      SAE_RETURN_NOT_OK(pool_->Free(old));
      --node_count_;
      --height_;
    }
  }
  --entry_count_;
  return Status::OK();
}

Status MbTree::DeleteRec(PageId page, Key key, Rid rid, bool* underflow,
                         crypto::Digest* self_digest) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  *underflow = false;

  if (node.is_leaf) {
    size_t pos = std::lower_bound(node.keys.begin(), node.keys.end(), key) -
                 node.keys.begin();
    for (; pos < node.keys.size() && node.keys[pos] == key; ++pos) {
      if (node.rids[pos] == rid) {
        node.keys.erase(node.keys.begin() + pos);
        node.rids.erase(node.rids.begin() + pos);
        node.digests.erase(node.digests.begin() + pos);
        *underflow = node.keys.size() < MinOccupancy(node);
        *self_digest = NodeDigest(node);
        return StoreNode(page, node);
      }
    }
    return Status::NotFound("posting not found");
  }

  size_t first = std::lower_bound(node.keys.begin(), node.keys.end(), key) -
                 node.keys.begin();
  size_t last = std::upper_bound(node.keys.begin(), node.keys.end(), key) -
                node.keys.begin();
  for (size_t idx = first; idx <= last; ++idx) {
    bool child_underflow = false;
    crypto::Digest child_digest;
    Status st =
        DeleteRec(node.children[idx], key, rid, &child_underflow,
                  &child_digest);
    if (st.code() == StatusCode::kNotFound) continue;
    SAE_RETURN_NOT_OK(st);
    node.digests[idx] = child_digest;
    if (child_underflow) {
      SAE_RETURN_NOT_OK(FixUnderflow(&node, idx));
      *underflow = node.keys.size() < MinOccupancy(node);
    }
    *self_digest = NodeDigest(node);
    return StoreNode(page, node);
  }
  return Status::NotFound("posting not found");
}

Status MbTree::FixUnderflow(Node* parent, size_t child_idx) {
  PageId child_page = parent->children[child_idx];
  SAE_ASSIGN_OR_RETURN(Node child, LoadNode(child_page));

  if (child_idx > 0) {
    PageId left_page = parent->children[child_idx - 1];
    SAE_ASSIGN_OR_RETURN(Node left, LoadNode(left_page));
    if (left.keys.size() > MinOccupancy(left)) {
      if (child.is_leaf) {
        child.keys.insert(child.keys.begin(), left.keys.back());
        child.rids.insert(child.rids.begin(), left.rids.back());
        child.digests.insert(child.digests.begin(), left.digests.back());
        left.keys.pop_back();
        left.rids.pop_back();
        left.digests.pop_back();
        parent->keys[child_idx - 1] = child.keys.front();
      } else {
        child.keys.insert(child.keys.begin(), parent->keys[child_idx - 1]);
        child.children.insert(child.children.begin(), left.children.back());
        child.digests.insert(child.digests.begin(), left.digests.back());
        parent->keys[child_idx - 1] = left.keys.back();
        left.keys.pop_back();
        left.children.pop_back();
        left.digests.pop_back();
      }
      SAE_RETURN_NOT_OK(StoreNode(left_page, left));
      SAE_RETURN_NOT_OK(StoreNode(child_page, child));
      parent->digests[child_idx - 1] = NodeDigest(left);
      parent->digests[child_idx] = NodeDigest(child);
      return Status::OK();
    }
  }

  if (child_idx + 1 < parent->children.size()) {
    PageId right_page = parent->children[child_idx + 1];
    SAE_ASSIGN_OR_RETURN(Node right, LoadNode(right_page));
    if (right.keys.size() > MinOccupancy(right)) {
      if (child.is_leaf) {
        child.keys.push_back(right.keys.front());
        child.rids.push_back(right.rids.front());
        child.digests.push_back(right.digests.front());
        right.keys.erase(right.keys.begin());
        right.rids.erase(right.rids.begin());
        right.digests.erase(right.digests.begin());
        parent->keys[child_idx] = right.keys.front();
      } else {
        child.keys.push_back(parent->keys[child_idx]);
        child.children.push_back(right.children.front());
        child.digests.push_back(right.digests.front());
        parent->keys[child_idx] = right.keys.front();
        right.keys.erase(right.keys.begin());
        right.children.erase(right.children.begin());
        right.digests.erase(right.digests.begin());
      }
      SAE_RETURN_NOT_OK(StoreNode(right_page, right));
      SAE_RETURN_NOT_OK(StoreNode(child_page, child));
      parent->digests[child_idx] = NodeDigest(child);
      parent->digests[child_idx + 1] = NodeDigest(right);
      return Status::OK();
    }
  }

  if (child_idx > 0) {
    PageId left_page = parent->children[child_idx - 1];
    SAE_ASSIGN_OR_RETURN(Node left, LoadNode(left_page));
    if (child.is_leaf) {
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.rids.insert(left.rids.end(), child.rids.begin(), child.rids.end());
      left.digests.insert(left.digests.end(), child.digests.begin(),
                          child.digests.end());
      left.next = child.next;
    } else {
      left.keys.push_back(parent->keys[child_idx - 1]);
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.children.insert(left.children.end(), child.children.begin(),
                           child.children.end());
      left.digests.insert(left.digests.end(), child.digests.begin(),
                          child.digests.end());
    }
    SAE_RETURN_NOT_OK(StoreNode(left_page, left));
    node_cache_.Invalidate(child_page);
    SAE_RETURN_NOT_OK(pool_->Free(child_page));
    --node_count_;
    parent->keys.erase(parent->keys.begin() + child_idx - 1);
    parent->children.erase(parent->children.begin() + child_idx);
    parent->digests.erase(parent->digests.begin() + child_idx);
    parent->digests[child_idx - 1] = NodeDigest(left);
    return Status::OK();
  }

  SAE_CHECK(child_idx + 1 < parent->children.size());
  PageId right_page = parent->children[child_idx + 1];
  SAE_ASSIGN_OR_RETURN(Node right, LoadNode(right_page));
  if (child.is_leaf) {
    child.keys.insert(child.keys.end(), right.keys.begin(), right.keys.end());
    child.rids.insert(child.rids.end(), right.rids.begin(), right.rids.end());
    child.digests.insert(child.digests.end(), right.digests.begin(),
                         right.digests.end());
    child.next = right.next;
  } else {
    child.keys.push_back(parent->keys[child_idx]);
    child.keys.insert(child.keys.end(), right.keys.begin(), right.keys.end());
    child.children.insert(child.children.end(), right.children.begin(),
                          right.children.end());
    child.digests.insert(child.digests.end(), right.digests.begin(),
                         right.digests.end());
  }
  SAE_RETURN_NOT_OK(StoreNode(child_page, child));
  node_cache_.Invalidate(right_page);
  SAE_RETURN_NOT_OK(pool_->Free(right_page));
  --node_count_;
  parent->keys.erase(parent->keys.begin() + child_idx);
  parent->children.erase(parent->children.begin() + child_idx + 1);
  parent->digests.erase(parent->digests.begin() + child_idx + 1);
  parent->digests[child_idx] = NodeDigest(child);
  return Status::OK();
}

Status MbTree::BulkLoad(const std::vector<MbEntry>& sorted, double fill) {
  if (entry_count_ != 0 || node_count_ != 1) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (fill <= 0.0 || fill > 1.0) {
    return Status::InvalidArgument("fill must be in (0, 1]");
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1].key > sorted[i].key) {
      return Status::InvalidArgument("entries not sorted by key");
    }
  }
  if (sorted.empty()) return Status::OK();
  node_cache_.Clear();

  size_t min_leaf = std::max<size_t>(1, max_leaf_ / 2);
  size_t leaf_target = std::max<size_t>(
      min_leaf, static_cast<size_t>(double(max_leaf_) * fill));
  std::vector<size_t> leaf_sizes =
      PlanChunks(sorted.size(), leaf_target, max_leaf_, min_leaf);

  struct LevelEntry {
    Key first_key;
    PageId page;
    crypto::Digest digest;
  };
  std::vector<LevelEntry> level;
  level.reserve(leaf_sizes.size());

  // One batched hash per tree level: a node's digest preimage is its
  // child-digest array, so the whole level rides the multi-buffer kernels
  // (NodeDigest would hash node-at-a-time). Payloads are the nodes' digest
  // vectors, kept alive until the batch call.
  std::vector<std::vector<crypto::Digest>> payloads;
  auto fill_level_digests = [&](std::vector<LevelEntry>* entries) {
    std::vector<crypto::ByteSpan> spans(payloads.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      spans[i] = crypto::ByteSpan{payloads[i].data(),
                                  payloads[i].size() * crypto::Digest::kSize};
    }
    std::vector<crypto::Digest> digests(payloads.size());
    crypto::ComputeDigests(spans.data(), spans.size(), digests.data(),
                           scheme_);
    for (size_t i = 0; i < digests.size(); ++i) {
      (*entries)[i].digest = digests[i];
    }
    payloads.clear();
  };

  size_t offset = 0;
  PageId prev_leaf = storage::kInvalidPageId;
  for (size_t li = 0; li < leaf_sizes.size(); ++li) {
    Node leaf;
    leaf.is_leaf = true;
    for (size_t i = 0; i < leaf_sizes[li]; ++i) {
      leaf.keys.push_back(sorted[offset + i].key);
      leaf.rids.push_back(sorted[offset + i].rid);
      leaf.digests.push_back(sorted[offset + i].digest);
    }
    offset += leaf_sizes[li];

    PageId page;
    if (li == 0) {
      page = root_;
      SAE_RETURN_NOT_OK(StoreNode(page, leaf));
    } else {
      SAE_ASSIGN_OR_RETURN(page, NewNode(leaf));
    }
    if (prev_leaf != storage::kInvalidPageId) {
      SAE_ASSIGN_OR_RETURN(Node prev, LoadNode(prev_leaf));
      prev.next = page;
      SAE_RETURN_NOT_OK(StoreNode(prev_leaf, prev));
    }
    prev_leaf = page;
    level.push_back(LevelEntry{leaf.keys.front(), page, crypto::Digest{}});
    payloads.push_back(std::move(leaf.digests));
  }
  fill_level_digests(&level);

  height_ = 1;
  size_t min_children = max_internal_ / 2 + 1;
  size_t target_children = std::max<size_t>(
      min_children, static_cast<size_t>(double(max_internal_ + 1) * fill));
  while (level.size() > 1) {
    std::vector<size_t> group_sizes = PlanChunks(
        level.size(), target_children, max_internal_ + 1, min_children);
    std::vector<LevelEntry> next_level;
    next_level.reserve(group_sizes.size());
    size_t pos = 0;
    for (size_t gs : group_sizes) {
      Node internal;
      internal.is_leaf = false;
      internal.children.push_back(level[pos].page);
      internal.digests.push_back(level[pos].digest);
      for (size_t i = 1; i < gs; ++i) {
        internal.keys.push_back(level[pos + i].first_key);
        internal.children.push_back(level[pos + i].page);
        internal.digests.push_back(level[pos + i].digest);
      }
      SAE_ASSIGN_OR_RETURN(PageId page, NewNode(internal));
      next_level.push_back(
          LevelEntry{level[pos].first_key, page, crypto::Digest{}});
      payloads.push_back(std::move(internal.digests));
      pos += gs;
    }
    fill_level_digests(&next_level);
    level = std::move(next_level);
    ++height_;
  }

  root_ = level.front().page;
  entry_count_ = sorted.size();
  root_digest_ = level.front().digest;
  return Status::OK();
}

Status MbTree::RangeSearch(Key lo, Key hi, std::vector<MbEntry>* out) const {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  PageId page = root_;
  size_t depth = 0;
  for (;;) {
    SAE_ASSIGN_OR_RETURN(auto node, LoadNodeCached(page, depth));
    if (node->is_leaf) break;
    size_t idx = std::lower_bound(node->keys.begin(), node->keys.end(), lo) -
                 node->keys.begin();
    page = node->children[idx];
    ++depth;
  }
  while (page != storage::kInvalidPageId) {
    SAE_ASSIGN_OR_RETURN(auto leaf, LoadNodeCached(page, depth));
    size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
                 leaf->keys.begin();
    for (; pos < leaf->keys.size(); ++pos) {
      if (leaf->keys[pos] > hi) return Status::OK();
      out->push_back(MbEntry{leaf->keys[pos], leaf->rids[pos],
                             leaf->digests[pos]});
    }
    page = leaf->next;
  }
  return Status::OK();
}

Result<std::optional<MbEntry>> MbTree::PredecessorRec(PageId page,
                                                      size_t depth,
                                                      Key lo) const {
  SAE_ASSIGN_OR_RETURN(auto node, LoadNodeCached(page, depth));
  if (node->is_leaf) {
    size_t pos = std::lower_bound(node->keys.begin(), node->keys.end(), lo) -
                 node->keys.begin();
    if (pos == 0) return std::optional<MbEntry>();
    return std::optional<MbEntry>(MbEntry{node->keys[pos - 1],
                                          node->rids[pos - 1],
                                          node->digests[pos - 1]});
  }
  size_t idx = std::lower_bound(node->keys.begin(), node->keys.end(), lo) -
               node->keys.begin();
  for (size_t i = idx + 1; i-- > 0;) {
    SAE_ASSIGN_OR_RETURN(auto r,
                         PredecessorRec(node->children[i], depth + 1, lo));
    if (r.has_value()) return r;
    if (i == 0) break;
  }
  return std::optional<MbEntry>();
}

Result<std::optional<MbEntry>> MbTree::SuccessorRec(PageId page, size_t depth,
                                                    Key hi) const {
  SAE_ASSIGN_OR_RETURN(auto node, LoadNodeCached(page, depth));
  if (node->is_leaf) {
    size_t pos = std::upper_bound(node->keys.begin(), node->keys.end(), hi) -
                 node->keys.begin();
    if (pos == node->keys.size()) return std::optional<MbEntry>();
    return std::optional<MbEntry>(
        MbEntry{node->keys[pos], node->rids[pos], node->digests[pos]});
  }
  size_t idx = std::upper_bound(node->keys.begin(), node->keys.end(), hi) -
               node->keys.begin();
  for (size_t i = idx; i < node->children.size(); ++i) {
    SAE_ASSIGN_OR_RETURN(auto r, SuccessorRec(node->children[i], depth + 1,
                                              hi));
    if (r.has_value()) return r;
  }
  return std::optional<MbEntry>();
}

Result<std::optional<MbEntry>> MbTree::Predecessor(Key lo) const {
  if (lo == 0) return std::optional<MbEntry>();
  return PredecessorRec(root_, 0, lo);
}

Result<std::optional<MbEntry>> MbTree::Successor(Key hi) const {
  return SuccessorRec(root_, 0, hi);
}

Status MbTree::BuildVoRec(PageId page, size_t depth, Key lo, Key hi,
                          const std::optional<MbEntry>& left_boundary,
                          const std::optional<MbEntry>& right_boundary,
                          const RecordFetcher& fetch, VoNode* out) const {
  SAE_ASSIGN_OR_RETURN(auto node_ptr, LoadNodeCached(page, depth));
  const Node& node = *node_ptr;
  out->is_leaf = node.is_leaf;

  // The span that must be expanded (not hidden behind digests): from the
  // left boundary's key (or lo) through the right boundary's key (or hi).
  Key span_lo = left_boundary ? left_boundary->key : lo;
  Key span_hi = right_boundary ? right_boundary->key : hi;

  if (node.is_leaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      VoItem item;
      bool is_left = left_boundary && node.keys[i] == left_boundary->key &&
                     node.rids[i] == left_boundary->rid;
      bool is_right = right_boundary && node.keys[i] == right_boundary->key &&
                      node.rids[i] == right_boundary->rid;
      if (is_left || is_right) {
        item.type = VoItem::Type::kBoundaryRecord;
        SAE_ASSIGN_OR_RETURN(item.record_bytes, fetch(node.rids[i]));
      } else if (node.keys[i] >= lo && node.keys[i] <= hi) {
        item.type = VoItem::Type::kResultEntry;
      } else {
        item.type = VoItem::Type::kDigest;
        item.digest = node.digests[i];
      }
      out->items.push_back(std::move(item));
    }
    return Status::OK();
  }

  for (size_t i = 0; i < node.children.size(); ++i) {
    // Child i covers [keys[i-1], keys[i]], inclusive at both ends because
    // duplicate keys may straddle node boundaries.
    Key child_lo = (i == 0) ? 0 : node.keys[i - 1];
    Key child_hi =
        (i == node.keys.size()) ? std::numeric_limits<Key>::max()
                                : node.keys[i];
    VoItem item;
    if (child_hi < span_lo || child_lo > span_hi) {
      item.type = VoItem::Type::kDigest;
      item.digest = node.digests[i];
    } else {
      item.type = VoItem::Type::kChild;
      item.child = std::make_unique<VoNode>();
      SAE_RETURN_NOT_OK(BuildVoRec(node.children[i], depth + 1, lo, hi,
                                   left_boundary, right_boundary, fetch,
                                   item.child.get()));
    }
    out->items.push_back(std::move(item));
  }
  return Status::OK();
}

Result<VerificationObject> MbTree::BuildVo(Key lo, Key hi,
                                           const RecordFetcher& fetch) const {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  SAE_ASSIGN_OR_RETURN(auto left_boundary, Predecessor(lo));
  SAE_ASSIGN_OR_RETURN(auto right_boundary, Successor(hi));
  VerificationObject vo;
  SAE_RETURN_NOT_OK(BuildVoRec(root_, 0, lo, hi, left_boundary,
                               right_boundary, fetch, &vo.root));
  return vo;
}

Status MbTree::ValidateRec(PageId page, size_t depth, std::optional<Key> lo,
                           std::optional<Key> hi, size_t* leaf_depth,
                           size_t* entries, size_t* nodes,
                           crypto::Digest* digest) const {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  ++*nodes;

  for (size_t i = 1; i < node.keys.size(); ++i) {
    if (node.keys[i - 1] > node.keys[i]) {
      return Status::Corruption("keys out of order");
    }
  }
  for (Key k : node.keys) {
    if ((lo && k < *lo) || (hi && k > *hi)) {
      return Status::Corruption("key outside separator bounds");
    }
  }

  if (node.is_leaf) {
    if (node.keys.size() > max_leaf_) return Status::Corruption("leaf overflow");
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    *entries += node.keys.size();
    *digest = NodeDigest(node);
    return Status::OK();
  }

  if (node.keys.size() > max_internal_) {
    return Status::Corruption("internal overflow");
  }
  if (node.children.size() != node.keys.size() + 1 ||
      node.digests.size() != node.children.size()) {
    return Status::Corruption("child/key/digest count mismatch");
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    std::optional<Key> child_lo =
        (i == 0) ? lo : std::optional(node.keys[i - 1]);
    std::optional<Key> child_hi =
        (i == node.keys.size()) ? hi : std::optional(node.keys[i]);
    crypto::Digest child_digest;
    SAE_RETURN_NOT_OK(ValidateRec(node.children[i], depth + 1, child_lo,
                                  child_hi, leaf_depth, entries, nodes,
                                  &child_digest));
    if (child_digest != node.digests[i]) {
      return Status::Corruption("stale child digest");
    }
  }
  *digest = NodeDigest(node);
  return Status::OK();
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x4D425353u;  // "MBSS"
}

void MbTree::WriteSnapshot(ByteWriter* out) const {
  out->PutU32(kSnapshotMagic);
  out->PutU8(uint8_t(scheme_));
  out->PutU32(uint32_t(max_leaf_));
  out->PutU32(uint32_t(max_internal_));
  out->PutU32(root_);
  out->PutBytes(root_digest_.bytes.data(), crypto::Digest::kSize);
  out->PutU64(entry_count_);
  out->PutU64(node_count_);
  out->PutU32(uint32_t(height_));
}

Result<std::unique_ptr<MbTree>> MbTree::OpenSnapshot(BufferPool* pool,
                                                     ByteReader* in) {
  if (in->GetU32() != kSnapshotMagic) {
    return Status::Corruption("not an MB-tree snapshot");
  }
  auto scheme = crypto::HashScheme(in->GetU8());
  size_t max_leaf = in->GetU32();
  size_t max_internal = in->GetU32();
  PageId root = in->GetU32();
  crypto::Digest root_digest;
  in->GetBytes(root_digest.bytes.data(), crypto::Digest::kSize);
  uint64_t entries = in->GetU64();
  uint64_t nodes = in->GetU64();
  size_t height = in->GetU32();
  if (in->failed()) return Status::Corruption("truncated MB-tree snapshot");

  auto tree = std::unique_ptr<MbTree>(
      new MbTree(pool, max_leaf, max_internal, scheme));
  tree->root_ = root;
  tree->root_digest_ = root_digest;
  tree->entry_count_ = entries;
  tree->node_count_ = nodes;
  tree->height_ = height;
  // The recorded root digest must match the stored root node.
  SAE_ASSIGN_OR_RETURN(Node root_node, tree->LoadNode(root));
  if (tree->NodeDigest(root_node) != root_digest) {
    return Status::Corruption("snapshot root digest mismatch");
  }
  return tree;
}

Status MbTree::Validate() const {
  size_t leaf_depth = 0, entries = 0, nodes = 0;
  crypto::Digest digest;
  SAE_RETURN_NOT_OK(ValidateRec(root_, 1, std::nullopt, std::nullopt,
                                &leaf_depth, &entries, &nodes, &digest));
  if (entries != entry_count_) return Status::Corruption("entry count mismatch");
  if (nodes != node_count_) return Status::Corruption("node count mismatch");
  if (leaf_depth != height_) return Status::Corruption("height mismatch");
  if (digest != root_digest_) return Status::Corruption("root digest stale");
  return Status::OK();
}

}  // namespace sae::mbtree
