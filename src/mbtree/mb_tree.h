// Copyright (c) saedb authors. Licensed under the MIT license.
//
// MB-Tree: the state-of-the-art ADS for disk-based range authentication
// (Li et al., SIGMOD'06), as the paper summarizes it in §I. A B+-tree where
// every leaf entry carries H(record) and every internal entry carries the
// digest of the child page's concatenated digests; the DO signs the root
// digest.
//
// Node format (4096-byte pages):
//   header  : [magic u32][is_leaf u8][pad u8][count u16][next u32][rsvd u32]
//   leaf    : count x (key u32, rid u64, digest 20B)            -> 32 B/entry
//   internal: (child0 u32, digest0 20B), count x (key u32, child u32,
//              digest 20B)                                      -> 28 B/entry
//
// The digest payload shrinks fanout to 127 (leaf) / 144+1 (internal) versus
// the plain B+-tree's 340 / 509+1 — the root cause of TOM's higher SP cost
// in Fig. 6 and larger index in Fig. 8.

#ifndef SAE_MBTREE_MB_TREE_H_
#define SAE_MBTREE_MB_TREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/digest.h"
#include "mbtree/vo.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/node_cache.h"
#include "storage/record.h"
#include "util/codec.h"
#include "util/status.h"

namespace sae::mbtree {

using storage::BufferPool;
using storage::Key;
using storage::PageId;
using storage::Rid;

/// A leaf posting: key, record location, record digest.
struct MbEntry {
  Key key;
  Rid rid;
  crypto::Digest digest;
};

/// Fanout overrides for tests (0 = derive from page size).
struct MbTreeOptions {
  size_t max_leaf_entries = 0;
  size_t max_internal_keys = 0;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
  /// Hot-level digest cache: parsed nodes at depth < hot_cache_levels are
  /// memoized and invalidated precisely along every update path, so
  /// steady-state traversals only parse (and hash over) the leaf frontier.
  /// 0 disables the cache entirely.
  size_t hot_cache_levels = 2;
  size_t hot_cache_entries = 1024;
};

/// Merkle B+-tree. Same structural behaviour as btree::BPlusTree plus digest
/// maintenance on every mutation. Const methods (RangeSearch, BuildVo,
/// Validate) are safe to call from many threads over a thread-safe
/// BufferPool; mutations require exclusive access to the tree.
class MbTree {
 public:
  static Result<std::unique_ptr<MbTree>> Create(
      BufferPool* pool, const MbTreeOptions& options = {});

  /// Inserts a posting, updating digests along the path.
  Status Insert(const MbEntry& entry);

  /// Removes the posting (key, rid); NotFound if absent.
  Status Delete(Key key, Rid rid);

  /// Bottom-up bulk load from key-sorted postings into an empty tree.
  Status BulkLoad(const std::vector<MbEntry>& sorted, double fill = 1.0);

  /// Plain range search (no VO) — what the SP uses to locate result rids.
  Status RangeSearch(Key lo, Key hi, std::vector<MbEntry>* out) const;

  /// Fetches a record's canonical bytes given its rid — supplied by the SP
  /// so boundary records are pulled from the (access-counted) dataset file.
  using RecordFetcher =
      std::function<Result<std::vector<uint8_t>>(Rid)>;

  /// Builds the covering-subtree VO for [lo, hi] (paper §I). The signature
  /// field is left empty; the SP attaches the DO's current root signature.
  Result<VerificationObject> BuildVo(Key lo, Key hi,
                                     const RecordFetcher& fetch) const;

  /// Current root digest (the value the DO signs).
  const crypto::Digest& root_digest() const { return root_digest_; }

  size_t size() const { return entry_count_; }
  size_t node_count() const { return node_count_; }
  size_t height() const { return height_; }
  size_t SizeBytes() const { return node_count_ * storage::kPageSize; }
  size_t max_leaf_entries() const { return max_leaf_; }
  size_t max_internal_keys() const { return max_internal_; }

  /// Hot-level node cache counters (hits/misses/invalidations/evictions);
  /// snapshot by value, diff to measure a span.
  storage::NodeCacheStats digest_cache_stats() const {
    return node_cache_.stats();
  }

  /// Structural + digest-consistency check. Test hook; O(n).
  Status Validate() const;

  /// Serializes volatile metadata (root page + digest, counts, fanouts) for
  /// re-attachment to the same page store after a restart.
  void WriteSnapshot(ByteWriter* out) const;

  /// Re-attaches a tree persisted with WriteSnapshot.
  static Result<std::unique_ptr<MbTree>> OpenSnapshot(BufferPool* pool,
                                                      ByteReader* in);

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<Key> keys;
    std::vector<Rid> rids;                  // leaf
    std::vector<PageId> children;           // internal: keys.size() + 1
    std::vector<crypto::Digest> digests;    // leaf: per key; internal:
                                            // per child (keys.size() + 1)
    PageId next = storage::kInvalidPageId;
  };

  MbTree(BufferPool* pool, size_t max_leaf, size_t max_internal,
         crypto::HashScheme scheme,
         const storage::NodeCacheOptions& cache_options = {})
      : pool_(pool),
        max_leaf_(max_leaf),
        max_internal_(max_internal),
        scheme_(scheme),
        node_cache_(cache_options) {}

  Result<Node> LoadNode(PageId id) const;
  /// Depth-aware load: serves hot levels (depth < hot_cache_levels, root at
  /// depth 0) from the digest cache, filling it on miss.
  Result<std::shared_ptr<const Node>> LoadNodeCached(PageId id,
                                                     size_t depth) const;
  Status StoreNode(PageId id, const Node& node);
  Result<PageId> NewNode(const Node& node);

  crypto::Digest NodeDigest(const Node& node) const;

  struct SplitResult {
    Key separator;
    PageId right_page;
    crypto::Digest right_digest;
  };

  // Inserts into subtree; `self_digest` returns the node's new digest.
  Status InsertRec(PageId page, const MbEntry& entry,
                   std::optional<SplitResult>* split,
                   crypto::Digest* self_digest);

  Status DeleteRec(PageId page, Key key, Rid rid, bool* underflow,
                   crypto::Digest* self_digest);

  Status FixUnderflow(Node* parent, size_t child_idx);

  size_t MinOccupancy(const Node& node) const;

  Result<std::optional<MbEntry>> Predecessor(Key lo) const;
  Result<std::optional<MbEntry>> Successor(Key hi) const;
  Result<std::optional<MbEntry>> PredecessorRec(PageId page, size_t depth,
                                                Key lo) const;
  Result<std::optional<MbEntry>> SuccessorRec(PageId page, size_t depth,
                                              Key hi) const;

  Status BuildVoRec(PageId page, size_t depth, Key lo, Key hi,
                    const std::optional<MbEntry>& left_boundary,
                    const std::optional<MbEntry>& right_boundary,
                    const RecordFetcher& fetch, VoNode* out) const;

  Status ValidateRec(PageId page, size_t depth, std::optional<Key> lo,
                     std::optional<Key> hi, size_t* leaf_depth,
                     size_t* entries, size_t* nodes,
                     crypto::Digest* digest) const;

  BufferPool* pool_;
  size_t max_leaf_;
  size_t max_internal_;
  crypto::HashScheme scheme_;
  PageId root_ = storage::kInvalidPageId;
  crypto::Digest root_digest_;
  size_t entry_count_ = 0;
  size_t node_count_ = 0;
  size_t height_ = 1;
  mutable storage::HotNodeCache<Node> node_cache_;
};

}  // namespace sae::mbtree

#endif  // SAE_MBTREE_MB_TREE_H_
