// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the composite VO (mbtree/composite_vo.h): wire encoding of
// the per-shard parts and the stitched client-side verification.

#include "mbtree/composite_vo.h"

#include <string>

#include "util/codec.h"

namespace sae::mbtree {

namespace {
constexpr uint8_t kTagCompositeVo = 0x21;
}  // namespace

std::vector<uint8_t> CompositeVo::Serialize() const {
  ByteWriter w;
  w.PutU8(kTagCompositeVo);
  w.PutU32(uint32_t(parts.size()));
  for (const CompositeVoPart& part : parts) {
    w.PutU32(part.shard);
    w.PutU32(part.lo);
    w.PutU32(part.hi);
    std::vector<uint8_t> vo_bytes = part.vo.Serialize();
    w.PutU32(uint32_t(vo_bytes.size()));
    w.PutBytes(vo_bytes.data(), vo_bytes.size());
  }
  return w.Release();
}

Result<CompositeVo> CompositeVo::Deserialize(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kTagCompositeVo) {
    return Status::Corruption("not a composite VO message");
  }
  uint32_t count = r.GetU32();
  if (r.failed()) return Status::Corruption("composite VO truncated");
  CompositeVo cvo;
  cvo.parts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CompositeVoPart part;
    part.shard = r.GetU32();
    part.lo = r.GetU32();
    part.hi = r.GetU32();
    uint32_t vo_size = r.GetU32();
    if (r.failed() || vo_size > r.remaining()) {
      return Status::Corruption("composite VO truncated");
    }
    std::vector<uint8_t> vo_bytes(vo_size);
    if (!r.GetBytes(vo_bytes.data(), vo_bytes.size())) {
      return Status::Corruption("composite VO truncated");
    }
    SAE_ASSIGN_OR_RETURN(part.vo, VerificationObject::Deserialize(vo_bytes));
    cvo.parts.push_back(std::move(part));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after composite VO");
  }
  return cvo;
}

Status VerifyComposite(const CompositeVo& cvo, storage::Key lo,
                       storage::Key hi,
                       const std::vector<storage::Record>& results,
                       const std::vector<storage::Key>& fences,
                       const crypto::RsaPublicKey& owner_key,
                       const storage::RecordCodec& codec,
                       crypto::HashScheme scheme,
                       const std::vector<uint64_t>& published_epochs,
                       std::vector<ShardVoVerdict>* per_shard) {
  if (per_shard != nullptr) per_shard->clear();

  std::vector<storage::KeySlice> slices;
  slices.reserve(cvo.parts.size());
  for (const CompositeVoPart& part : cvo.parts) {
    slices.push_back(storage::KeySlice{part.shard, part.lo, part.hi});
  }

  // The shared scaffold (storage::VerifyCompositeSlices) runs the
  // fence-key tiling check first, then the per-part callback, then the
  // cross-shard epoch fold (stale vs skew vs corruption). The callback
  // splits the stitched results along the part boundaries as it goes:
  // keys must be non-decreasing — the stitched order of key-sorted
  // slices — and every record must fall inside some part (the cover
  // check guarantees the parts tile [lo, hi], so an out-of-part key is
  // out of query range).
  size_t next = 0;
  bool tiling_ok = false;  // the callback only runs once the cover passed
  Status folded = storage::VerifyCompositeSlices(
      fences, lo, hi, slices, published_epochs,
      [&](size_t i, const storage::KeySlice& slice, uint64_t published) {
        tiling_ok = true;
        const CompositeVoPart& part = cvo.parts[i];
        std::vector<storage::Record> slice_results;
        while (next < results.size() && results[next].key >= slice.lo &&
               results[next].key <= slice.hi) {
          if (!slice_results.empty() &&
              results[next].key < slice_results.back().key) {
            return Status::VerificationFailure(
                "stitched results are not key-sorted");
          }
          slice_results.push_back(results[next]);
          ++next;
        }
        // Per-shard soundness + freshness against the shard's own epoch.
        Status status = VerifyVO(part.vo, slice.lo, slice.hi, slice_results,
                                 owner_key, codec, scheme, published);
        if (per_shard != nullptr) {
          per_shard->push_back(
              ShardVoVerdict{part.shard, part.vo.epoch, status});
        }
        return status;
      },
      nullptr);
  // Leftover records fit no part: corruption, which outranks a stale/skew
  // fold — but never masks a tiling failure (when the cover check failed,
  // no part consumed anything and `folded` already says why).
  if (tiling_ok && next != results.size()) {
    return Status::VerificationFailure(
        "result records outside every shard slice");
  }
  return folded;
}

}  // namespace sae::mbtree
