// Copyright (c) saedb authors. Licensed under the MIT license.
//
// XB-Tree (XOR B-Tree) — the paper's core contribution (§III). The trusted
// entity indexes tuples t = <id, a, h = H(record)> so that the verification
// token VT (the XOR of the digests of all tuples with a in [ql, qu]) is
// computable in O(log n) node accesses, independent of the result size.
//
// Structure: a B-tree over *distinct* search keys. Every node starts with an
// anchor entry e0 = <X, c> (no key, no duplicate list; X = 0 and c = null in
// leaves) followed by keyed entries e = <sk, L, X, c> where
//   * e.L  references a chain of duplicate *chunks* holding the (id, h) of
//     every tuple with a == e.sk,
//   * e.c  points to the subtree with keys strictly between e.sk and the
//     next entry's sk,
//   * e.X  = (XOR of digests in e.L) ^ (XOR of X values in node(e.c)).
//
// The paper describes e.L as "a pointer to a disk page containing the ids
// and digests of the tuples with a values equal to e.sk". A literal page
// per distinct key would cost 4 KB per key (4 GB at n = 1M mostly-unique
// keys), contradicting the paper's Fig. 8 where the TE footprint is minor;
// we therefore store duplicate lists as fixed-size chunks packed into shared
// slab pages — same content and asymptotics, realistic space (see
// docs/ARCHITECTURE.md §5.2).
//
// Page formats (4096-byte pages):
//   node page : [magic u32][is_leaf u8][pad u8][count u16][rsvd u64]
//               [e0: X 20B, c u32] then count x [sk u32, L u32, X 20B, c u32]
//               -> 126 keyed entries max
//   slab page : [magic u32][u16 used][u16 rsvd][rsvd u64] then fixed-size
//               chunks [count u16, pad u16, next u32, T x (id u64, h 20B)];
//               T = 1 by default -> 36 B per tuple, 113 chunks per page

#ifndef SAE_XBTREE_XB_TREE_H_
#define SAE_XBTREE_XB_TREE_H_

#include <memory>
#include <optional>
#include <vector>

#include "crypto/digest.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "storage/record.h"
#include "util/codec.h"
#include "util/status.h"

namespace sae::xbtree {

using storage::BufferPool;
using storage::Key;
using storage::PageId;
using storage::RecordId;

/// One tuple held by the TE: record id + record digest, keyed by `key`.
struct XbTuple {
  Key key;
  RecordId id;
  crypto::Digest digest;
};

/// Fanout overrides for tests (0 = use defaults).
struct XbTreeOptions {
  size_t max_entries = 0;       ///< keyed entries per node (default 126)
  size_t tuples_per_chunk = 0;  ///< tuples per duplicate chunk (default 2)
  /// Hot-level digest cache: parsed nodes at depth < hot_cache_levels are
  /// memoized and invalidated precisely along every update path, so
  /// steady-state VT generation parses only the leaf frontier. 0 disables.
  size_t hot_cache_levels = 2;
  size_t hot_cache_entries = 1024;
};

/// Disk-based XOR B-tree. Const methods (GenerateVT, Validate) are safe to
/// call from many threads over a thread-safe BufferPool; mutations require
/// exclusive access to the tree.
class XbTree {
 public:
  static Result<std::unique_ptr<XbTree>> Create(
      BufferPool* pool, const XbTreeOptions& options = {});

  /// Adds tuple (key, id, h). O(log n) node accesses; duplicate keys append
  /// to the key's duplicate-page chain in O(1) extra accesses.
  Status Insert(Key key, RecordId id, const crypto::Digest& digest);

  /// Removes the tuple with `id` under `key`; deletes the key's entry (and
  /// rebalances) when its duplicate chain empties. NotFound if absent.
  Status Delete(Key key, RecordId id);

  /// Paper Fig. 4: computes VT = XOR of digests of all tuples with
  /// key in [ql, qu]. O(log n) node accesses.
  Result<crypto::Digest> GenerateVT(Key ql, Key qu) const;

  /// Bottom-up bulk load from key-sorted tuples into an empty tree.
  Status BulkLoad(const std::vector<XbTuple>& sorted);

  size_t size() const { return tuple_count_; }
  size_t distinct_keys() const { return key_count_; }
  size_t node_count() const { return node_count_; }
  /// Slab pages backing duplicate chunks (high-water mark; chunks are
  /// recycled but slab pages are not returned to the store).
  size_t dup_page_count() const { return slab_pages_.size(); }
  /// Live duplicate chunks across all keys.
  size_t dup_chunk_count() const { return dup_chunk_count_; }
  size_t height() const { return height_; }
  size_t SizeBytes() const {
    return (node_count_ + dup_page_count()) * storage::kPageSize;
  }
  size_t max_entries() const { return max_entries_; }
  size_t tuples_per_chunk() const { return tuples_per_chunk_; }

  /// Hot-level node cache counters (hits/misses/invalidations/evictions);
  /// snapshot by value, diff to measure a span.
  storage::NodeCacheStats digest_cache_stats() const {
    return node_cache_.stats();
  }

  /// Recomputes every X value and duplicate chain from scratch and compares
  /// against the stored aggregates. Test hook; O(n).
  Status Validate() const;

  /// Serializes volatile metadata (root, counts, slab directory, free
  /// chunks) for re-attachment to the same page store after a restart.
  void WriteSnapshot(ByteWriter* out) const;

  /// Re-attaches a tree persisted with WriteSnapshot.
  static Result<std::unique_ptr<XbTree>> OpenSnapshot(BufferPool* pool,
                                                      ByteReader* in);

 private:
  // A chunk reference encodes (slab page id << 8) | slot in 32 bits so it
  // fits the paper's 4-byte e.L field.
  using ChunkRef = uint32_t;
  static constexpr ChunkRef kInvalidChunk = 0xFFFFFFFFu;

  struct Entry {
    Key sk = 0;
    ChunkRef dup_head = kInvalidChunk;
    crypto::Digest x;
    PageId child = storage::kInvalidPageId;
  };

  struct Node {
    bool is_leaf = true;
    crypto::Digest x0;                       // anchor entry X
    PageId child0 = storage::kInvalidPageId; // anchor entry child
    std::vector<Entry> entries;
  };

  XbTree(BufferPool* pool, size_t max_entries, size_t tuples_per_chunk,
         const storage::NodeCacheOptions& cache_options = {})
      : pool_(pool),
        max_entries_(max_entries),
        tuples_per_chunk_(tuples_per_chunk),
        node_cache_(cache_options) {}

  Result<Node> LoadNode(PageId id) const;
  /// Depth-aware load: serves hot levels (depth < hot_cache_levels, root at
  /// depth 0) from the digest cache, filling it on miss.
  Result<std::shared_ptr<const Node>> LoadNodeCached(PageId id,
                                                     size_t depth) const;
  Status StoreNode(PageId id, const Node& node);
  Result<PageId> NewNode(const Node& node);

  // XOR of x0 and all entry X values — the total digest mass of a subtree.
  static crypto::Digest SubtreeXor(const Node& node);

  // XOR of the digests in an entry's duplicate chain, derived as
  // X ^ SubtreeXor(child) (one child load for internal entries;
  // `child_depth` is that child's depth for the hot-level cache).
  Result<crypto::Digest> EntryDupXor(const Entry& entry,
                                     size_t child_depth) const;

  // Duplicate-chunk slab helpers.
  size_t ChunkBytes() const { return 8 + tuples_per_chunk_ * 28; }
  size_t ChunksPerPage() const {
    return (storage::kPageSize - 16) / ChunkBytes();
  }
  Result<ChunkRef> AllocChunk();
  Status FreeChunk(ChunkRef ref);

  // Duplicate-chain operations over chunk refs stored in Entry::dup_head.
  Result<ChunkRef> NewDupChain(RecordId id, const crypto::Digest& digest);
  Status DupChainInsert(Entry* entry, RecordId id,
                        const crypto::Digest& digest);
  // Removes `id` from the chain; sets *now_empty when the chain vanishes.
  // NotFound if absent.
  Result<crypto::Digest> DupChainRemove(Entry* entry, RecordId id,
                                        bool* now_empty);
  Status FreeDupChain(ChunkRef head);
  Result<std::vector<std::pair<RecordId, crypto::Digest>>> ReadDupChain(
      ChunkRef head) const;

  struct Split {
    Entry promoted;     // entry to insert into the parent (child = right)
    crypto::Digest removed_mass;  // XOR mass that left the split node
  };

  Status InsertRec(PageId page, Key key, RecordId id,
                   const crypto::Digest& digest, std::optional<Split>* split);

  // Removes tuple; *removed = its digest; *underflow set for rebalance.
  Status DeleteRec(PageId page, Key key, RecordId id, crypto::Digest* removed,
                   bool* underflow);

  // Removes the smallest keyed entry in the subtree (with its dup chain) and
  // returns it through *out; fixes X values along the way.
  Status RemoveMinRec(PageId page, Entry* out, bool* underflow);

  // child_slot: 0 = anchor child, i >= 1 = entries[i-1].child.
  Status FixUnderflow(Node* parent, size_t child_slot);

  Status GenerateVTRec(PageId page, size_t depth, Key ql, Key qu,
                       crypto::Digest* vt) const;

  Status ValidateRec(PageId page, size_t depth,
                     std::optional<Key> lo, std::optional<Key> hi,
                     size_t* leaf_depth, size_t* tuples, size_t* keys,
                     size_t* nodes, size_t* dup_pages,
                     crypto::Digest* subtree_xor) const;

  BufferPool* pool_;
  size_t max_entries_;
  size_t tuples_per_chunk_;
  PageId root_ = storage::kInvalidPageId;
  size_t tuple_count_ = 0;
  size_t key_count_ = 0;
  size_t node_count_ = 0;
  size_t dup_chunk_count_ = 0;
  size_t height_ = 1;
  std::vector<PageId> slab_pages_;     // all slab pages, in allocation order
  std::vector<ChunkRef> free_chunks_;  // recycled chunk slots
  mutable storage::HotNodeCache<Node> node_cache_;
};

}  // namespace sae::xbtree

#endif  // SAE_XBTREE_XB_TREE_H_
