// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the XB-tree (xbtree/xb_tree.h): keyed nodes with running XOR
// summaries, duplicate lists chunked into shared slab pages, O(log n)
// GenerateVT, and insert/delete with X-value maintenance.

#include "xbtree/xb_tree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/codec.h"
#include "util/macros.h"

namespace sae::xbtree {

namespace {

constexpr uint32_t kNodeMagic = 0x5842544Eu;  // "XBTN"
constexpr uint32_t kSlabMagic = 0x58425342u;  // "XBSB"
constexpr size_t kNodeHeaderSize = 16;
constexpr size_t kAnchorSize = crypto::Digest::kSize + 4;        // 24
constexpr size_t kEntrySize = 4 + 4 + crypto::Digest::kSize + 4; // 32
constexpr size_t kSlabHeaderSize = 16;
constexpr size_t kChunkHeaderSize = 8;  // count u16, pad u16, next u32
constexpr size_t kDupTupleSize = 8 + crypto::Digest::kSize;      // 28
// One tuple per chunk by default: the TE pays 36 bytes per tuple (28-byte
// tuple + 8-byte chunk header), matching the paper's "the TE maintains only
// two attributes and a digest for each record" accounting. Keys with many
// duplicates simply chain chunks.
constexpr size_t kDefaultTuplesPerChunk = 1;

size_t DefaultMaxEntries() {
  return (storage::kPageSize - kNodeHeaderSize - kAnchorSize) / kEntrySize;
}

// Splits `total` items into exactly `chunks` near-equal sizes.
std::vector<size_t> EvenChunks(size_t total, size_t chunks) {
  SAE_CHECK(chunks >= 1 && total >= chunks);
  std::vector<size_t> sizes(chunks, total / chunks);
  for (size_t i = 0; i < total % chunks; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

Result<std::unique_ptr<XbTree>> XbTree::Create(BufferPool* pool,
                                               const XbTreeOptions& options) {
  size_t max_entries =
      options.max_entries ? options.max_entries : DefaultMaxEntries();
  size_t per_chunk = options.tuples_per_chunk ? options.tuples_per_chunk
                                              : kDefaultTuplesPerChunk;
  SAE_CHECK(max_entries >= 2 && max_entries <= DefaultMaxEntries());
  SAE_CHECK(per_chunk >= 1 &&
            kChunkHeaderSize + per_chunk * kDupTupleSize <=
                storage::kPageSize - kSlabHeaderSize);

  auto tree = std::unique_ptr<XbTree>(new XbTree(
      pool, max_entries, per_chunk,
      storage::NodeCacheOptions{options.hot_cache_levels,
                                options.hot_cache_entries}));
  SAE_CHECK(tree->ChunksPerPage() <= 256);  // slot must fit in 8 bits
  Node root;
  root.is_leaf = true;
  SAE_ASSIGN_OR_RETURN(tree->root_, tree->NewNode(root));
  return tree;
}

// --- node (de)serialization --------------------------------------------------

Result<XbTree::Node> XbTree::LoadNode(PageId id) const {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(id));
  const uint8_t* p = ref.Get().bytes();
  if (DecodeU32(p) != kNodeMagic) {
    return Status::Corruption("bad xbtree node magic");
  }
  Node node;
  node.is_leaf = p[4] != 0;
  uint16_t count = DecodeU16(p + 6);
  const uint8_t* anchor = p + kNodeHeaderSize;
  std::memcpy(node.x0.bytes.data(), anchor, crypto::Digest::kSize);
  node.child0 = DecodeU32(anchor + crypto::Digest::kSize);
  const uint8_t* entries = anchor + kAnchorSize;
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    const uint8_t* e = entries + i * kEntrySize;
    Entry entry;
    entry.sk = DecodeU32(e);
    entry.dup_head = DecodeU32(e + 4);
    std::memcpy(entry.x.bytes.data(), e + 8, crypto::Digest::kSize);
    entry.child = DecodeU32(e + 8 + crypto::Digest::kSize);
    node.entries.push_back(entry);
  }
  return node;
}

Result<std::shared_ptr<const XbTree::Node>> XbTree::LoadNodeCached(
    PageId id, size_t depth) const {
  if (auto hit = node_cache_.Lookup(id, depth)) return hit;
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(id));
  return node_cache_.Insert(id, depth, std::move(node));
}

Status XbTree::StoreNode(PageId id, const Node& node) {
  node_cache_.Invalidate(id);
  SAE_CHECK(node.entries.size() <= DefaultMaxEntries());
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(id));
  storage::Page& page = ref.Mutable();
  page.Zero();
  uint8_t* p = page.bytes();
  EncodeU32(p, kNodeMagic);
  p[4] = node.is_leaf ? 1 : 0;
  EncodeU16(p + 6, uint16_t(node.entries.size()));
  uint8_t* anchor = p + kNodeHeaderSize;
  std::memcpy(anchor, node.x0.bytes.data(), crypto::Digest::kSize);
  EncodeU32(anchor + crypto::Digest::kSize, node.child0);
  uint8_t* entries = anchor + kAnchorSize;
  for (size_t i = 0; i < node.entries.size(); ++i) {
    uint8_t* e = entries + i * kEntrySize;
    const Entry& entry = node.entries[i];
    EncodeU32(e, entry.sk);
    EncodeU32(e + 4, entry.dup_head);
    std::memcpy(e + 8, entry.x.bytes.data(), crypto::Digest::kSize);
    EncodeU32(e + 8 + crypto::Digest::kSize, entry.child);
  }
  return Status::OK();
}

Result<PageId> XbTree::NewNode(const Node& node) {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->New());
  PageId id = ref.id();
  ref.Release();
  SAE_RETURN_NOT_OK(StoreNode(id, node));
  ++node_count_;
  return id;
}

crypto::Digest XbTree::SubtreeXor(const Node& node) {
  crypto::Digest x = node.x0;
  for (const Entry& e : node.entries) x ^= e.x;
  return x;
}

Result<crypto::Digest> XbTree::EntryDupXor(const Entry& entry,
                                           size_t child_depth) const {
  if (entry.child == storage::kInvalidPageId) {
    return entry.x;  // leaf entry: X is exactly the duplicate-chain XOR
  }
  SAE_ASSIGN_OR_RETURN(auto child, LoadNodeCached(entry.child, child_depth));
  return entry.x ^ SubtreeXor(*child);
}

// --- duplicate chunks (slab allocator) ----------------------------------------

namespace {
inline storage::PageId ChunkPage(uint32_t ref) { return ref >> 8; }
inline uint32_t ChunkSlot(uint32_t ref) { return ref & 0xFFu; }
inline uint32_t MakeChunkRef(storage::PageId page, uint32_t slot) {
  return (page << 8) | slot;
}
}  // namespace

Result<XbTree::ChunkRef> XbTree::AllocChunk() {
  if (free_chunks_.empty()) {
    SAE_ASSIGN_OR_RETURN(auto ref, pool_->New());
    PageId page_id = ref.id();
    SAE_CHECK(page_id < (1u << 24));  // must fit the 24-bit page field
    uint8_t* p = ref.Mutable().bytes();
    EncodeU32(p, kSlabMagic);
    slab_pages_.push_back(page_id);
    for (size_t slot = ChunksPerPage(); slot-- > 0;) {
      free_chunks_.push_back(MakeChunkRef(page_id, uint32_t(slot)));
    }
  }
  ChunkRef ref = free_chunks_.back();
  free_chunks_.pop_back();
  ++dup_chunk_count_;
  return ref;
}

Status XbTree::FreeChunk(ChunkRef ref) {
  free_chunks_.push_back(ref);
  SAE_CHECK(dup_chunk_count_ > 0);
  --dup_chunk_count_;
  return Status::OK();
}

Result<XbTree::ChunkRef> XbTree::NewDupChain(RecordId id,
                                             const crypto::Digest& digest) {
  SAE_ASSIGN_OR_RETURN(ChunkRef ref, AllocChunk());
  SAE_ASSIGN_OR_RETURN(auto page, pool_->Fetch(ChunkPage(ref)));
  uint8_t* c = page.Mutable().bytes() + kSlabHeaderSize +
               ChunkSlot(ref) * ChunkBytes();
  EncodeU16(c, 1);
  EncodeU32(c + 4, kInvalidChunk);
  EncodeU64(c + kChunkHeaderSize, id);
  std::memcpy(c + kChunkHeaderSize + 8, digest.bytes.data(),
              crypto::Digest::kSize);
  return ref;
}

Status XbTree::DupChainInsert(Entry* entry, RecordId id,
                              const crypto::Digest& digest) {
  {
    SAE_ASSIGN_OR_RETURN(auto page, pool_->Fetch(ChunkPage(entry->dup_head)));
    uint8_t* c = page.Mutable().bytes() + kSlabHeaderSize +
                 ChunkSlot(entry->dup_head) * ChunkBytes();
    uint16_t count = DecodeU16(c);
    if (count < tuples_per_chunk_) {
      uint8_t* t = c + kChunkHeaderSize + count * kDupTupleSize;
      EncodeU64(t, id);
      std::memcpy(t + 8, digest.bytes.data(), crypto::Digest::kSize);
      EncodeU16(c, uint16_t(count + 1));
      return Status::OK();
    }
  }
  // Head chunk full: prepend a fresh one.
  SAE_ASSIGN_OR_RETURN(ChunkRef new_head, NewDupChain(id, digest));
  SAE_ASSIGN_OR_RETURN(auto page, pool_->Fetch(ChunkPage(new_head)));
  uint8_t* c = page.Mutable().bytes() + kSlabHeaderSize +
               ChunkSlot(new_head) * ChunkBytes();
  EncodeU32(c + 4, entry->dup_head);
  entry->dup_head = new_head;
  return Status::OK();
}

Result<crypto::Digest> XbTree::DupChainRemove(Entry* entry, RecordId id,
                                              bool* now_empty) {
  *now_empty = false;
  ChunkRef prev = kInvalidChunk;
  ChunkRef cur = entry->dup_head;
  while (cur != kInvalidChunk) {
    ChunkRef next;
    {
      SAE_ASSIGN_OR_RETURN(auto page, pool_->Fetch(ChunkPage(cur)));
      uint8_t* c = page.Mutable().bytes() + kSlabHeaderSize +
                   ChunkSlot(cur) * ChunkBytes();
      uint16_t count = DecodeU16(c);
      next = DecodeU32(c + 4);
      for (uint16_t i = 0; i < count; ++i) {
        uint8_t* t = c + kChunkHeaderSize + i * kDupTupleSize;
        if (DecodeU64(t) == id) {
          crypto::Digest digest;
          std::memcpy(digest.bytes.data(), t + 8, crypto::Digest::kSize);
          if (i + 1 < count) {
            // Swap the last tuple into the hole.
            const uint8_t* last =
                c + kChunkHeaderSize + (count - 1) * kDupTupleSize;
            std::memmove(t, last, kDupTupleSize);
          }
          EncodeU16(c, uint16_t(count - 1));
          if (count - 1 == 0) {
            // Unlink and recycle the empty chunk.
            if (prev == kInvalidChunk) {
              entry->dup_head = next;
            } else {
              SAE_ASSIGN_OR_RETURN(auto ppage,
                                   pool_->Fetch(ChunkPage(prev)));
              uint8_t* pc = ppage.Mutable().bytes() + kSlabHeaderSize +
                            ChunkSlot(prev) * ChunkBytes();
              EncodeU32(pc + 4, next);
            }
            SAE_RETURN_NOT_OK(FreeChunk(cur));
            *now_empty = entry->dup_head == kInvalidChunk;
          }
          return digest;
        }
      }
    }
    prev = cur;
    cur = next;
  }
  return Status::NotFound("tuple id not in duplicate chain");
}

Status XbTree::FreeDupChain(ChunkRef head) {
  while (head != kInvalidChunk) {
    ChunkRef next;
    {
      SAE_ASSIGN_OR_RETURN(auto page, pool_->Fetch(ChunkPage(head)));
      const uint8_t* c = page.Get().bytes() + kSlabHeaderSize +
                         ChunkSlot(head) * ChunkBytes();
      next = DecodeU32(c + 4);
    }
    SAE_RETURN_NOT_OK(FreeChunk(head));
    head = next;
  }
  return Status::OK();
}

Result<std::vector<std::pair<RecordId, crypto::Digest>>> XbTree::ReadDupChain(
    ChunkRef head) const {
  std::vector<std::pair<RecordId, crypto::Digest>> out;
  while (head != kInvalidChunk) {
    SAE_ASSIGN_OR_RETURN(auto page, pool_->Fetch(ChunkPage(head)));
    const uint8_t* p = page.Get().bytes();
    if (DecodeU32(p) != kSlabMagic) {
      return Status::Corruption("bad slab page magic");
    }
    const uint8_t* c = p + kSlabHeaderSize + ChunkSlot(head) * ChunkBytes();
    uint16_t count = DecodeU16(c);
    for (uint16_t i = 0; i < count; ++i) {
      const uint8_t* t = c + kChunkHeaderSize + i * kDupTupleSize;
      crypto::Digest d;
      std::memcpy(d.bytes.data(), t + 8, crypto::Digest::kSize);
      out.emplace_back(DecodeU64(t), d);
    }
    head = DecodeU32(c + 4);
  }
  return out;
}

// --- insert ------------------------------------------------------------------

Status XbTree::Insert(Key key, RecordId id, const crypto::Digest& digest) {
  std::optional<Split> split;
  SAE_RETURN_NOT_OK(InsertRec(root_, key, id, digest, &split));
  if (split.has_value()) {
    SAE_ASSIGN_OR_RETURN(Node old_root, LoadNode(root_));
    Node new_root;
    new_root.is_leaf = false;
    new_root.child0 = root_;
    new_root.x0 = SubtreeXor(old_root);
    new_root.entries.push_back(split->promoted);
    SAE_ASSIGN_OR_RETURN(root_, NewNode(new_root));
    ++height_;
  }
  ++tuple_count_;
  return Status::OK();
}

Status XbTree::InsertRec(PageId page, Key key, RecordId id,
                         const crypto::Digest& digest,
                         std::optional<Split>* split) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  split->reset();

  auto it = std::lower_bound(
      node.entries.begin(), node.entries.end(), key,
      [](const Entry& e, Key k) { return e.sk < k; });
  size_t pos = it - node.entries.begin();

  if (pos < node.entries.size() && node.entries[pos].sk == key) {
    // Existing key: append to its duplicate chain.
    SAE_RETURN_NOT_OK(DupChainInsert(&node.entries[pos], id, digest));
    node.entries[pos].x ^= digest;
    return StoreNode(page, node);
  }

  if (!node.is_leaf) {
    PageId child = pos == 0 ? node.child0 : node.entries[pos - 1].child;
    std::optional<Split> child_split;
    SAE_RETURN_NOT_OK(InsertRec(child, key, id, digest, &child_split));
    crypto::Digest* cover = pos == 0 ? &node.x0 : &node.entries[pos - 1].x;
    *cover ^= digest;
    if (child_split.has_value()) {
      *cover ^= child_split->removed_mass;
      node.entries.insert(node.entries.begin() + pos, child_split->promoted);
    }
  } else {
    // New key: create its duplicate chain and leaf entry.
    Entry entry;
    entry.sk = key;
    SAE_ASSIGN_OR_RETURN(entry.dup_head, NewDupChain(id, digest));
    entry.x = digest;
    node.entries.insert(node.entries.begin() + pos, entry);
    ++key_count_;
  }

  if (node.entries.size() > max_entries_) {
    // Split around the median keyed entry, which is promoted to the parent.
    size_t mid = node.entries.size() / 2;
    Entry median = node.entries[mid];

    Node right;
    right.is_leaf = node.is_leaf;
    right.child0 = median.child;
    if (median.child == storage::kInvalidPageId) {
      right.x0 = crypto::Digest::Zero();
    } else {
      SAE_ASSIGN_OR_RETURN(Node mc, LoadNode(median.child));
      right.x0 = SubtreeXor(mc);
    }
    right.entries.assign(node.entries.begin() + mid + 1, node.entries.end());
    node.entries.resize(mid);
    SAE_ASSIGN_OR_RETURN(PageId right_page, NewNode(right));

    // L-xor of the median: its X minus its (old) child subtree, which is
    // exactly right.x0.
    crypto::Digest median_lxor = median.x ^ right.x0;

    Entry promoted;
    promoted.sk = median.sk;
    promoted.dup_head = median.dup_head;
    promoted.child = right_page;
    promoted.x = median_lxor ^ SubtreeXor(right);
    *split = Split{promoted, promoted.x};
  }
  return StoreNode(page, node);
}

// --- delete ------------------------------------------------------------------

Status XbTree::Delete(Key key, RecordId id) {
  crypto::Digest removed;
  bool underflow = false;
  SAE_RETURN_NOT_OK(DeleteRec(root_, key, id, &removed, &underflow));
  if (underflow) {
    SAE_ASSIGN_OR_RETURN(Node root, LoadNode(root_));
    if (!root.is_leaf && root.entries.empty()) {
      PageId old = root_;
      root_ = root.child0;
      node_cache_.Invalidate(old);
      SAE_RETURN_NOT_OK(pool_->Free(old));
      --node_count_;
      --height_;
    }
  }
  --tuple_count_;
  return Status::OK();
}

Status XbTree::DeleteRec(PageId page, Key key, RecordId id,
                         crypto::Digest* removed, bool* underflow) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  *underflow = false;

  auto it = std::lower_bound(
      node.entries.begin(), node.entries.end(), key,
      [](const Entry& e, Key k) { return e.sk < k; });
  size_t pos = it - node.entries.begin();

  if (pos < node.entries.size() && node.entries[pos].sk == key) {
    Entry& entry = node.entries[pos];
    bool now_empty = false;
    SAE_ASSIGN_OR_RETURN(*removed, DupChainRemove(&entry, id, &now_empty));
    entry.x ^= *removed;
    if (!now_empty) {
      return StoreNode(page, node);
    }
    --key_count_;
    if (node.is_leaf) {
      node.entries.erase(node.entries.begin() + pos);
      *underflow = node.entries.size() < max_entries_ / 2;
      return StoreNode(page, node);
    }
    // Internal key with an emptied chain: replace it by the smallest key of
    // its child subtree (the in-order successor), then rebalance if needed.
    Entry successor;
    bool child_underflow = false;
    SAE_RETURN_NOT_OK(
        RemoveMinRec(node.entries[pos].child, &successor, &child_underflow));
    node.entries[pos].sk = successor.sk;
    node.entries[pos].dup_head = successor.dup_head;
    // entries[pos].x is unchanged: the successor's mass moved from the child
    // subtree into the entry's own duplicate chain.
    if (child_underflow) {
      SAE_RETURN_NOT_OK(FixUnderflow(&node, pos + 1));
    }
    *underflow = node.entries.size() < max_entries_ / 2;
    return StoreNode(page, node);
  }

  if (node.is_leaf) {
    return Status::NotFound("key not in tree");
  }

  PageId child = pos == 0 ? node.child0 : node.entries[pos - 1].child;
  bool child_underflow = false;
  SAE_RETURN_NOT_OK(DeleteRec(child, key, id, removed, &child_underflow));
  crypto::Digest* cover = pos == 0 ? &node.x0 : &node.entries[pos - 1].x;
  *cover ^= *removed;
  if (child_underflow) {
    SAE_RETURN_NOT_OK(FixUnderflow(&node, pos));
  }
  *underflow = node.entries.size() < max_entries_ / 2;
  return StoreNode(page, node);
}

Status XbTree::RemoveMinRec(PageId page, Entry* out, bool* underflow) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  *underflow = false;

  if (node.is_leaf) {
    if (node.entries.empty()) {
      return Status::Corruption("empty leaf in RemoveMin");
    }
    *out = node.entries.front();
    node.entries.erase(node.entries.begin());
    *underflow = node.entries.size() < max_entries_ / 2;
    return StoreNode(page, node);
  }

  bool child_underflow = false;
  SAE_RETURN_NOT_OK(RemoveMinRec(node.child0, out, &child_underflow));
  node.x0 ^= out->x;  // the minimum's mass left the anchor subtree
  if (child_underflow) {
    SAE_RETURN_NOT_OK(FixUnderflow(&node, 0));
  }
  *underflow = node.entries.size() < max_entries_ / 2;
  return StoreNode(page, node);
}

Status XbTree::FixUnderflow(Node* parent, size_t child_slot) {
  auto slot_page = [&](size_t slot) {
    return slot == 0 ? parent->child0 : parent->entries[slot - 1].child;
  };
  auto slot_cover = [&](size_t slot) -> crypto::Digest* {
    return slot == 0 ? &parent->x0 : &parent->entries[slot - 1].x;
  };

  PageId child_page = slot_page(child_slot);
  SAE_ASSIGN_OR_RETURN(Node child, LoadNode(child_page));
  size_t min_entries = max_entries_ / 2;

  // Borrow from the left sibling (rotate right through the separator).
  if (child_slot > 0) {
    PageId left_page = slot_page(child_slot - 1);
    SAE_ASSIGN_OR_RETURN(Node left, LoadNode(left_page));
    if (left.entries.size() > min_entries) {
      Entry& sep = parent->entries[child_slot - 1];
      Entry donor = left.entries.back();
      left.entries.pop_back();

      crypto::Digest sep_lxor = sep.x ^ SubtreeXor(child);

      // Separator key+chain move down as the child's new first entry; its
      // child pointer is the child's old anchor subtree.
      Entry moved;
      moved.sk = sep.sk;
      moved.dup_head = sep.dup_head;
      moved.child = child.child0;
      moved.x = sep_lxor ^ child.x0;
      child.entries.insert(child.entries.begin(), moved);

      // The donor's child becomes the child's new anchor subtree.
      child.child0 = donor.child;
      if (donor.child == storage::kInvalidPageId) {
        child.x0 = crypto::Digest::Zero();
      } else {
        SAE_ASSIGN_OR_RETURN(Node dc, LoadNode(donor.child));
        child.x0 = SubtreeXor(dc);
      }
      crypto::Digest donor_lxor = donor.x ^ child.x0;

      // The donor's key+chain move up into the separator.
      sep.sk = donor.sk;
      sep.dup_head = donor.dup_head;
      sep.x = donor_lxor ^ SubtreeXor(child);

      // The left sibling's subtree lost the donor's entire mass.
      *slot_cover(child_slot - 1) ^= donor.x;

      SAE_RETURN_NOT_OK(StoreNode(left_page, left));
      return StoreNode(child_page, child);
    }
  }

  // Borrow from the right sibling (rotate left through the separator).
  if (child_slot < parent->entries.size()) {
    PageId right_page = slot_page(child_slot + 1);
    SAE_ASSIGN_OR_RETURN(Node right, LoadNode(right_page));
    if (right.entries.size() > min_entries) {
      Entry& sep = parent->entries[child_slot];
      // L-xor of the separator, derived from the sibling's subtree *before*
      // the donor is removed.
      crypto::Digest sep_lxor = sep.x ^ SubtreeXor(right);
      Entry donor = right.entries.front();
      right.entries.erase(right.entries.begin());

      Entry moved;
      moved.sk = sep.sk;
      moved.dup_head = sep.dup_head;
      moved.child = right.child0;
      moved.x = sep_lxor ^ right.x0;
      child.entries.push_back(moved);

      right.child0 = donor.child;
      if (donor.child == storage::kInvalidPageId) {
        right.x0 = crypto::Digest::Zero();
      } else {
        SAE_ASSIGN_OR_RETURN(Node dc, LoadNode(donor.child));
        right.x0 = SubtreeXor(dc);
      }
      crypto::Digest donor_lxor = donor.x ^ right.x0;

      sep.sk = donor.sk;
      sep.dup_head = donor.dup_head;
      sep.x = donor_lxor ^ SubtreeXor(right);

      // The child's subtree gained the moved entry's mass.
      *slot_cover(child_slot) ^= moved.x;

      SAE_RETURN_NOT_OK(StoreNode(right_page, right));
      return StoreNode(child_page, child);
    }
  }

  // Merge. Prefer absorbing the child into its left sibling.
  if (child_slot > 0) {
    PageId left_page = slot_page(child_slot - 1);
    SAE_ASSIGN_OR_RETURN(Node left, LoadNode(left_page));
    Entry sep = parent->entries[child_slot - 1];

    crypto::Digest sep_lxor = sep.x ^ SubtreeXor(child);
    Entry moved;
    moved.sk = sep.sk;
    moved.dup_head = sep.dup_head;
    moved.child = child.child0;
    moved.x = sep_lxor ^ child.x0;
    left.entries.push_back(moved);
    left.entries.insert(left.entries.end(), child.entries.begin(),
                        child.entries.end());

    // Everything under the separator (chain + child subtree) joins the left
    // sibling's covering entry.
    *slot_cover(child_slot - 1) ^= sep.x;

    parent->entries.erase(parent->entries.begin() + child_slot - 1);
    SAE_RETURN_NOT_OK(StoreNode(left_page, left));
    node_cache_.Invalidate(child_page);
    SAE_RETURN_NOT_OK(pool_->Free(child_page));
    --node_count_;
    return Status::OK();
  }

  SAE_CHECK(child_slot < parent->entries.size());
  PageId right_page = slot_page(child_slot + 1);
  SAE_ASSIGN_OR_RETURN(Node right, LoadNode(right_page));
  Entry sep = parent->entries[child_slot];

  crypto::Digest sep_lxor = sep.x ^ SubtreeXor(right);
  Entry moved;
  moved.sk = sep.sk;
  moved.dup_head = sep.dup_head;
  moved.child = right.child0;
  moved.x = sep_lxor ^ right.x0;
  child.entries.push_back(moved);
  child.entries.insert(child.entries.end(), right.entries.begin(),
                       right.entries.end());

  *slot_cover(child_slot) ^= sep.x;

  parent->entries.erase(parent->entries.begin() + child_slot);
  SAE_RETURN_NOT_OK(StoreNode(child_page, child));
  node_cache_.Invalidate(right_page);
  SAE_RETURN_NOT_OK(pool_->Free(right_page));
  --node_count_;
  return Status::OK();
}

// --- GenerateVT (paper Fig. 4) ----------------------------------------------

Status XbTree::GenerateVTRec(PageId page, size_t depth, Key ql, Key qu,
                             crypto::Digest* vt) const {
  SAE_ASSIGN_OR_RETURN(auto node_ptr, LoadNodeCached(page, depth));
  const Node& node = *node_ptr;
  size_t f = node.entries.size() + 1;  // conceptual entries incl. the anchor

  for (size_t i = 0; i < f; ++i) {
    // Conceptual e_i: i == 0 is the anchor (sk = -inf); e_f has sk = +inf.
    bool sk_is_neg_inf = (i == 0);
    Key sk = sk_is_neg_inf ? 0 : node.entries[i - 1].sk;
    bool next_is_pos_inf = (i + 1 == f);
    Key next_sk = next_is_pos_inf ? std::numeric_limits<Key>::max()
                                  : node.entries[i].sk;
    const crypto::Digest& x = (i == 0) ? node.x0 : node.entries[i - 1].x;
    PageId child = (i == 0) ? node.child0 : node.entries[i - 1].child;

    bool ql_le_sk = !sk_is_neg_inf && ql <= sk;
    bool qu_ge_next = !next_is_pos_inf && qu >= next_sk;

    if (ql_le_sk && qu_ge_next) {
      // Lines 2-3: the whole [sk_i, sk_{i+1}) span is inside the query.
      *vt ^= x;
    } else if (ql_le_sk && qu >= sk) {
      // Lines 4-5: only the key itself qualifies; add its chain XOR.
      SAE_ASSIGN_OR_RETURN(crypto::Digest lxor,
                           EntryDupXor(node.entries[i - 1], depth + 1));
      *vt ^= lxor;
    }

    // Lines 6-8: recurse where a query endpoint falls strictly inside the
    // (sk_i, sk_{i+1}) gap.
    bool ql_inside = (sk_is_neg_inf || ql > sk) &&
                     (next_is_pos_inf || ql < next_sk);
    bool qu_inside = (sk_is_neg_inf || qu > sk) &&
                     (next_is_pos_inf || qu < next_sk);
    // The unbounded sentinel gaps are genuine: (-inf, e1.sk) and
    // (e_{f-1}.sk, +inf) extend to the domain edges.
    if (sk_is_neg_inf && next_is_pos_inf) {
      // Single conceptual gap (node with no keyed entries): recurse iff any
      // endpoint exists — only possible at an empty root.
      ql_inside = qu_inside = true;
    }
    if ((ql_inside || qu_inside) && child != storage::kInvalidPageId) {
      SAE_RETURN_NOT_OK(GenerateVTRec(child, depth + 1, ql, qu, vt));
    }
  }
  return Status::OK();
}

Result<crypto::Digest> XbTree::GenerateVT(Key ql, Key qu) const {
  if (ql > qu) return Status::InvalidArgument("ql > qu");
  crypto::Digest vt;
  SAE_RETURN_NOT_OK(GenerateVTRec(root_, 0, ql, qu, &vt));
  return vt;
}

// --- bulk load ---------------------------------------------------------------

Status XbTree::BulkLoad(const std::vector<XbTuple>& sorted) {
  if (tuple_count_ != 0 || node_count_ != 1) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1].key > sorted[i].key) {
      return Status::InvalidArgument("tuples not sorted by key");
    }
  }
  if (sorted.empty()) return Status::OK();
  node_cache_.Clear();

  // Group tuples by distinct key, writing the duplicate chains.
  struct KeyedItem {
    Key sk;
    PageId dup_head;
    crypto::Digest lxor;
  };
  std::vector<KeyedItem> items;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    KeyedItem item{sorted[i].key, kInvalidChunk, crypto::Digest::Zero()};
    Entry chain_entry;  // reuse DupChainInsert via a scratch entry
    SAE_ASSIGN_OR_RETURN(chain_entry.dup_head,
                         NewDupChain(sorted[i].id, sorted[i].digest));
    item.lxor ^= sorted[i].digest;
    for (j = i + 1; j < sorted.size() && sorted[j].key == item.sk; ++j) {
      SAE_RETURN_NOT_OK(
          DupChainInsert(&chain_entry, sorted[j].id, sorted[j].digest));
      item.lxor ^= sorted[j].digest;
    }
    item.dup_head = chain_entry.dup_head;
    items.push_back(item);
    i = j;
  }
  key_count_ = items.size();
  tuple_count_ = sorted.size();

  // Build the leaf level. With L leaves, L-1 keys are promoted upward as
  // separators between adjacent leaves.
  struct LevelNode {
    PageId page;
    crypto::Digest subtree;
  };
  std::vector<LevelNode> level;
  std::vector<KeyedItem> separators;

  size_t total = items.size();
  // Smallest leaf count L such that the L-1 promoted separators leave at
  // most max_entries_ keys per leaf; keys are then spread evenly, which
  // keeps every leaf within [min, max] occupancy.
  size_t leaves = 1;
  while (total - (leaves - 1) > leaves * max_entries_) ++leaves;
  std::vector<size_t> leaf_sizes = EvenChunks(total - (leaves - 1), leaves);

  size_t pos = 0;
  for (size_t li = 0; li < leaf_sizes.size(); ++li) {
    Node leaf;
    leaf.is_leaf = true;
    for (size_t k = 0; k < leaf_sizes[li]; ++k) {
      const KeyedItem& item = items[pos++];
      Entry e;
      e.sk = item.sk;
      e.dup_head = item.dup_head;
      e.x = item.lxor;
      leaf.entries.push_back(e);
    }
    PageId page;
    if (li == 0) {
      page = root_;
      SAE_RETURN_NOT_OK(StoreNode(page, leaf));
    } else {
      SAE_ASSIGN_OR_RETURN(page, NewNode(leaf));
    }
    level.push_back(LevelNode{page, SubtreeXor(leaf)});
    if (li + 1 < leaf_sizes.size()) {
      separators.push_back(items[pos++]);  // promoted between leaves
    }
  }
  SAE_CHECK(pos == items.size());

  height_ = 1;
  size_t cap_children = max_entries_ + 1;
  while (level.size() > 1) {
    // Smallest node count N such that, after promoting N-1 separators
    // upward, every node holds at most cap_children children.
    size_t nodes = 1;
    while (level.size() > nodes * cap_children) ++nodes;
    std::vector<size_t> group_sizes = EvenChunks(level.size(), nodes);
    std::vector<LevelNode> next_level;
    std::vector<KeyedItem> next_separators;
    size_t child_pos = 0;
    size_t sep_pos = 0;
    for (size_t gi = 0; gi < group_sizes.size(); ++gi) {
      Node internal;
      internal.is_leaf = false;
      internal.child0 = level[child_pos].page;
      internal.x0 = level[child_pos].subtree;
      ++child_pos;
      for (size_t k = 1; k < group_sizes[gi]; ++k) {
        const KeyedItem& sep = separators[sep_pos++];
        Entry e;
        e.sk = sep.sk;
        e.dup_head = sep.dup_head;
        e.child = level[child_pos].page;
        e.x = sep.lxor ^ level[child_pos].subtree;
        internal.entries.push_back(e);
        ++child_pos;
      }
      SAE_ASSIGN_OR_RETURN(PageId page, NewNode(internal));
      next_level.push_back(LevelNode{page, SubtreeXor(internal)});
      if (gi + 1 < group_sizes.size()) {
        next_separators.push_back(separators[sep_pos++]);
      }
    }
    SAE_CHECK(child_pos == level.size());
    SAE_CHECK(sep_pos == separators.size());
    level = std::move(next_level);
    separators = std::move(next_separators);
    ++height_;
  }
  SAE_CHECK(separators.empty());
  root_ = level.front().page;
  return Status::OK();
}

// --- snapshots -----------------------------------------------------------------

namespace {
constexpr uint32_t kSnapshotMagic = 0x58425353u;  // "XBSS"
}

void XbTree::WriteSnapshot(ByteWriter* out) const {
  out->PutU32(kSnapshotMagic);
  out->PutU32(uint32_t(max_entries_));
  out->PutU32(uint32_t(tuples_per_chunk_));
  out->PutU32(root_);
  out->PutU64(tuple_count_);
  out->PutU64(key_count_);
  out->PutU64(node_count_);
  out->PutU64(dup_chunk_count_);
  out->PutU32(uint32_t(height_));
  out->PutU32(uint32_t(slab_pages_.size()));
  for (PageId p : slab_pages_) out->PutU32(p);
  out->PutU32(uint32_t(free_chunks_.size()));
  for (ChunkRef r : free_chunks_) out->PutU32(r);
}

Result<std::unique_ptr<XbTree>> XbTree::OpenSnapshot(BufferPool* pool,
                                                     ByteReader* in) {
  if (in->GetU32() != kSnapshotMagic) {
    return Status::Corruption("not an XB-tree snapshot");
  }
  size_t max_entries = in->GetU32();
  size_t per_chunk = in->GetU32();
  PageId root = in->GetU32();
  uint64_t tuples = in->GetU64();
  uint64_t keys = in->GetU64();
  uint64_t nodes = in->GetU64();
  uint64_t chunks = in->GetU64();
  size_t height = in->GetU32();
  auto tree =
      std::unique_ptr<XbTree>(new XbTree(pool, max_entries, per_chunk));
  uint32_t slab_count = in->GetU32();
  tree->slab_pages_.reserve(slab_count);
  for (uint32_t i = 0; i < slab_count; ++i) {
    tree->slab_pages_.push_back(in->GetU32());
  }
  uint32_t free_count = in->GetU32();
  tree->free_chunks_.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    tree->free_chunks_.push_back(in->GetU32());
  }
  if (in->failed()) return Status::Corruption("truncated XB-tree snapshot");

  tree->root_ = root;
  tree->tuple_count_ = tuples;
  tree->key_count_ = keys;
  tree->node_count_ = nodes;
  tree->dup_chunk_count_ = chunks;
  tree->height_ = height;
  SAE_RETURN_NOT_OK(tree->LoadNode(root).status());
  return tree;
}

// --- validation ----------------------------------------------------------------

Status XbTree::ValidateRec(PageId page, size_t depth, std::optional<Key> lo,
                           std::optional<Key> hi, size_t* leaf_depth,
                           size_t* tuples, size_t* keys, size_t* nodes,
                           size_t* dup_pages,
                           crypto::Digest* subtree_xor) const {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  ++*nodes;
  if (node.entries.size() > max_entries_) {
    return Status::Corruption("node overflow");
  }
  for (size_t i = 1; i < node.entries.size(); ++i) {
    if (node.entries[i - 1].sk >= node.entries[i].sk) {
      return Status::Corruption("keys not strictly increasing");
    }
  }
  for (const Entry& e : node.entries) {
    if ((lo && e.sk <= *lo) || (hi && e.sk >= *hi)) {
      return Status::Corruption("key outside separator bounds");
    }
  }

  crypto::Digest total = crypto::Digest::Zero();

  if (node.is_leaf) {
    if (!node.x0.IsZero() || node.child0 != storage::kInvalidPageId) {
      return Status::Corruption("leaf anchor must be <0, null>");
    }
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
  } else {
    if (node.child0 == storage::kInvalidPageId) {
      return Status::Corruption("internal anchor without child");
    }
    crypto::Digest child_xor;
    size_t page_count_before = *dup_pages;
    (void)page_count_before;
    SAE_RETURN_NOT_OK(ValidateRec(
        node.child0, depth + 1, lo,
        node.entries.empty() ? hi : std::optional<Key>(node.entries[0].sk),
        leaf_depth, tuples, keys, nodes, dup_pages, &child_xor));
    if (child_xor != node.x0) {
      return Status::Corruption("anchor X inconsistent with child subtree");
    }
  }
  total ^= node.x0;

  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Entry& e = node.entries[i];
    if (e.dup_head == kInvalidChunk) {
      return Status::Corruption("keyed entry without duplicate chain");
    }
    SAE_ASSIGN_OR_RETURN(auto chain, ReadDupChain(e.dup_head));
    if (chain.empty()) {
      return Status::Corruption("empty duplicate chain");
    }
    crypto::Digest lxor;
    for (const auto& [id, d] : chain) lxor ^= d;
    *tuples += chain.size();
    // Count the chain's chunks.
    ChunkRef cr = e.dup_head;
    while (cr != kInvalidChunk) {
      ++*dup_pages;  // counter reused for live chunks
      SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(cr >> 8));
      const uint8_t* c = ref.Get().bytes() + kSlabHeaderSize +
                         (cr & 0xFFu) * ChunkBytes();
      if (DecodeU16(c) == 0) {
        return Status::Corruption("empty chunk on a live chain");
      }
      cr = DecodeU32(c + 4);
    }
    ++*keys;

    crypto::Digest expect = lxor;
    if (node.is_leaf) {
      if (e.child != storage::kInvalidPageId) {
        return Status::Corruption("leaf entry with child");
      }
    } else {
      if (e.child == storage::kInvalidPageId) {
        return Status::Corruption("internal entry without child");
      }
      std::optional<Key> child_hi =
          (i + 1 < node.entries.size())
              ? std::optional<Key>(node.entries[i + 1].sk)
              : hi;
      crypto::Digest child_xor;
      SAE_RETURN_NOT_OK(ValidateRec(e.child, depth + 1,
                                    std::optional<Key>(e.sk), child_hi,
                                    leaf_depth, tuples, keys, nodes, dup_pages,
                                    &child_xor));
      expect ^= child_xor;
    }
    if (expect != e.x) {
      return Status::Corruption("entry X inconsistent at key " +
                                std::to_string(e.sk) + " depth " +
                                std::to_string(depth) +
                                (node.is_leaf ? " (leaf)" : " (internal)"));
    }
    total ^= e.x;
  }

  *subtree_xor = total;
  return Status::OK();
}

Status XbTree::Validate() const {
  size_t leaf_depth = 0, tuples = 0, keys = 0, nodes = 0, chunks = 0;
  crypto::Digest total;
  SAE_RETURN_NOT_OK(ValidateRec(root_, 1, std::nullopt, std::nullopt,
                                &leaf_depth, &tuples, &keys, &nodes, &chunks,
                                &total));
  if (tuples != tuple_count_) return Status::Corruption("tuple count mismatch");
  if (keys != key_count_) return Status::Corruption("key count mismatch");
  if (nodes != node_count_) return Status::Corruption("node count mismatch");
  if (chunks != dup_chunk_count_) {
    return Status::Corruption("dup chunk count mismatch");
  }
  if (chunks + free_chunks_.size() !=
      slab_pages_.size() * ChunksPerPage()) {
    return Status::Corruption("slab accounting mismatch");
  }
  if (tuple_count_ > 0 && leaf_depth != height_) {
    return Status::Corruption("height mismatch");
  }
  return Status::OK();
}

}  // namespace sae::xbtree
