// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Backend selection, padding, and batch scheduling for the accelerated
// hash kernels. The compression kernels (crypto/kernels.h) only consume
// whole 64-byte blocks; this file owns FIPS 180-4 padding (BuildTail) so
// every byte hashed is identical to the scalar Sha1/Sha256 classes, and
// owns the known-answer self-check that gates kernel dispatch.

#include "crypto/backend.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "crypto/kernels.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace sae::crypto {

namespace {

Digest ScalarHash(HashScheme scheme, const void* data, size_t len) {
  Digest d;
  if (scheme == HashScheme::kSha1) {
    auto h = Sha1::Hash(data, len);
    std::memcpy(d.bytes.data(), h.data(), Digest::kSize);
  } else {
    auto h = Sha256::Hash(data, len);
    std::memcpy(d.bytes.data(), h.data(), Digest::kSize);
  }
  return d;
}

#ifdef SAE_CRYPTO_HAVE_KERNELS

constexpr uint32_t kSha1Iv[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                 0x10325476u, 0xC3D2E1F0u};
constexpr uint32_t kSha256Iv[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u,
                                   0xa54ff53au, 0x510e527fu, 0x9b05688cu,
                                   0x1f83d9abu, 0x5be0cd19u};

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = uint8_t(v >> 24);
  p[1] = uint8_t(v >> 16);
  p[2] = uint8_t(v >> 8);
  p[3] = uint8_t(v);
}

// FIPS 180-4 padding for the trailing partial block: writes 1 or 2
// 64-byte blocks into `tail` and returns how many. `rem` = len % 64
// bytes still unprocessed, `total_len` = full message length in bytes.
size_t BuildTail(const uint8_t* rem_data, size_t rem, uint64_t total_len,
                 uint8_t tail[128]) {
  const size_t tail_blocks = rem >= 56 ? 2 : 1;
  std::memset(tail, 0, tail_blocks * 64);
  if (rem > 0) std::memcpy(tail, rem_data, rem);
  tail[rem] = 0x80;
  const uint64_t bit_len = total_len * 8;
  uint8_t* p = tail + tail_blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) p[i] = uint8_t(bit_len >> (56 - 8 * i));
  return tail_blocks;
}

// --- SHA-NI single-stream path ---------------------------------------------

Digest NiHash(HashScheme scheme, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const size_t full = len / 64;
  uint8_t tail[128];
  const size_t tail_blocks = BuildTail(p + full * 64, len % 64, len, tail);
  Digest d;
  if (scheme == HashScheme::kSha1) {
    uint32_t st[5];
    std::memcpy(st, kSha1Iv, sizeof(st));
    if (full > 0) internal::Sha1NiBlocks(st, p, full);
    internal::Sha1NiBlocks(st, tail, tail_blocks);
    for (int w = 0; w < 5; ++w) StoreBe32(&d.bytes[4 * w], st[w]);
  } else {
    uint32_t st[8];
    std::memcpy(st, kSha256Iv, sizeof(st));
    if (full > 0) internal::Sha256NiBlocks(st, p, full);
    internal::Sha256NiBlocks(st, tail, tail_blocks);
    for (int w = 0; w < 5; ++w) StoreBe32(&d.bytes[4 * w], st[w]);
  }
  return d;
}

// --- AVX2 8-lane multi-buffer path -----------------------------------------

// Hashes `lanes` (1..8) equal-length messages in one pass; spare lanes
// re-hash lane 0 and are discarded.
void Avx2HashEqualLen(HashScheme scheme, const uint8_t* const* data, size_t len,
                      size_t lanes, Digest* const* out) {
  const size_t full = len / 64;
  const size_t rem = len % 64;
  const int words = scheme == HashScheme::kSha1 ? 5 : 8;
  const uint32_t* iv = scheme == HashScheme::kSha1 ? kSha1Iv : kSha256Iv;

  uint32_t st[8 * 8];  // transposed: st[word * 8 + lane]
  for (int w = 0; w < words; ++w) {
    for (int lane = 0; lane < 8; ++lane) st[w * 8 + lane] = iv[w];
  }

  const uint8_t* ptrs[8];
  for (size_t lane = 0; lane < 8; ++lane) {
    ptrs[lane] = data[lane < lanes ? lane : 0];
  }
  auto* kernel = scheme == HashScheme::kSha1 ? internal::Sha1X8Blocks
                                             : internal::Sha256X8Blocks;
  if (full > 0) kernel(st, ptrs, full);

  uint8_t tails[8][128];
  size_t tail_blocks = 1;
  for (size_t lane = 0; lane < lanes; ++lane) {
    tail_blocks = BuildTail(ptrs[lane] + full * 64, rem, len, tails[lane]);
  }
  const uint8_t* tail_ptrs[8];
  for (size_t lane = 0; lane < 8; ++lane) {
    tail_ptrs[lane] = tails[lane < lanes ? lane : 0];
  }
  kernel(st, tail_ptrs, tail_blocks);

  for (size_t lane = 0; lane < lanes; ++lane) {
    for (int w = 0; w < 5; ++w) {
      StoreBe32(&out[lane]->bytes[4 * static_cast<size_t>(w)], st[w * 8 + lane]);
    }
  }
}

// Groups inputs by exact length (sorted index permutation) and feeds
// equal-length runs to the 8-lane kernel; singleton runs take the scalar
// path. Output order matches input order regardless of grouping.
void Avx2HashMany(HashScheme scheme, const ByteSpan* inputs, size_t count,
                  Digest* out) {
  std::vector<uint32_t> idx(count);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    return inputs[a].len < inputs[b].len;
  });
  size_t pos = 0;
  while (pos < count) {
    const size_t len = inputs[idx[pos]].len;
    size_t end = pos;
    while (end < count && inputs[idx[end]].len == len) ++end;
    while (pos < end) {
      const size_t lanes = std::min<size_t>(8, end - pos);
      if (lanes == 1) {
        out[idx[pos]] = ScalarHash(scheme, inputs[idx[pos]].data, len);
      } else {
        const uint8_t* data[8];
        Digest* dsts[8];
        for (size_t lane = 0; lane < lanes; ++lane) {
          data[lane] =
              static_cast<const uint8_t*>(inputs[idx[pos + lane]].data);
          dsts[lane] = &out[idx[pos + lane]];
        }
        Avx2HashEqualLen(scheme, data, len, lanes, dsts);
      }
      pos += lanes;
    }
  }
}

#endif  // SAE_CRYPTO_HAVE_KERNELS

bool EnvForceScalar() {
  const char* v = std::getenv("SAE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

Backend& Backend::Instance() {
  static Backend instance;  // magic-static: thread-safe one-time init
  return instance;
}

Backend::Backend() {
#if defined(SAE_CRYPTO_HAVE_KERNELS)
  features_.sse41 = __builtin_cpu_supports("sse4.1");
  features_.avx2 = __builtin_cpu_supports("avx2");
  features_.sha_ni = __builtin_cpu_supports("sha") && features_.sse41;
  avx2_ok_ = features_.avx2;
  sha_ni_ok_ = features_.sha_ni;
  SelfCheck();
#endif
  force_scalar_.store(EnvForceScalar(), std::memory_order_relaxed);
}

// Known-answer gate: runs NIST-anchored and boundary-length messages
// through every detected kernel and compares against the scalar
// reference (itself pinned to NIST vectors in crypto_test). A kernel
// that disagrees on any byte is permanently disabled, so on hardware or
// compiler combinations where an accelerated path misbehaves the
// process silently degrades to scalar instead of emitting wrong
// digests — golden encodings can never change with the CPU.
void Backend::SelfCheck() {
#ifdef SAE_CRYPTO_HAVE_KERNELS
  // Lengths straddle every padding case: empty, sub-block, 55/56/63/64
  // (tail-block boundaries), multi-block, and a >2-block message.
  static constexpr size_t kLens[] = {0, 1, 3, 55, 56, 63, 64, 65, 127, 128, 150, 443};
  uint8_t msg[443];
  for (size_t i = 0; i < sizeof(msg); ++i) msg[i] = uint8_t(i * 131 + 7);
  std::memcpy(msg, "abc", 3);  // prefix doubles as the NIST "abc" vector

  for (HashScheme scheme : {HashScheme::kSha1, HashScheme::kSha256Trunc}) {
    Digest expect[std::size(kLens)];
    for (size_t i = 0; i < std::size(kLens); ++i) {
      expect[i] = ScalarHash(scheme, msg, kLens[i]);
    }
    if (sha_ni_ok_) {
      for (size_t i = 0; i < std::size(kLens); ++i) {
        if (NiHash(scheme, msg, kLens[i]) != expect[i]) {
          sha_ni_ok_ = false;
          break;
        }
      }
    }
    if (avx2_ok_) {
      // Batch of mixed lengths exercises grouping, lane packing, and
      // partial (non-multiple-of-8) batches at once.
      ByteSpan spans[std::size(kLens)];
      Digest got[std::size(kLens)];
      for (size_t i = 0; i < std::size(kLens); ++i) {
        spans[i] = ByteSpan{msg, kLens[i]};
      }
      Avx2HashMany(scheme, spans, std::size(kLens), got);
      for (size_t i = 0; i < std::size(kLens); ++i) {
        if (got[i] != expect[i]) {
          avx2_ok_ = false;
          break;
        }
      }
    }
  }
#endif
}

bool Backend::accelerated_hash() const {
  return !force_scalar() && (sha_ni_ok_ || avx2_ok_);
}

const char* Backend::hash_kernel() const {
  if (force_scalar()) return "scalar";
  if (sha_ni_ok_) return "sha-ni";
  if (avx2_ok_) return "avx2-x8";
  return "scalar";
}

const char* Backend::modexp_kernel() const {
  // Montgomery/windowed ModPow is portable integer code — always
  // available; only the scalar escape hatch reverts to square-and-multiply.
  return force_scalar() ? "scalar" : "montgomery";
}

Digest Backend::HashOne(HashScheme scheme, const void* data, size_t len) const {
#ifdef SAE_CRYPTO_HAVE_KERNELS
  if (sha_ni_ok_ && !force_scalar()) return NiHash(scheme, data, len);
#endif
  return ScalarHash(scheme, data, len);
}

void Backend::HashMany(HashScheme scheme, const ByteSpan* inputs, size_t count,
                       Digest* out) const {
  if (count == 0) return;
#ifdef SAE_CRYPTO_HAVE_KERNELS
  if (!force_scalar()) {
    if (sha_ni_ok_) {
      // Single-stream SHA-NI already runs at ~1 cycle/byte; per-message
      // dispatch beats lane packing overhead.
      for (size_t i = 0; i < count; ++i) {
        out[i] = NiHash(scheme, inputs[i].data, inputs[i].len);
      }
      return;
    }
    if (avx2_ok_) {
      Avx2HashMany(scheme, inputs, count, out);
      return;
    }
  }
#endif
  for (size_t i = 0; i < count; ++i) {
    out[i] = ScalarHash(scheme, inputs[i].data, inputs[i].len);
  }
}

}  // namespace sae::crypto
