// Copyright (c) saedb authors. Licensed under the MIT license.
//
// SHA-256 (FIPS 180-4). Modern alternative to SHA-1 for deployments; digests
// are truncated to 20 bytes when used as the project-wide Digest so that all
// size-sensitive experiments keep the paper's 20-byte accounting.

#ifndef SAE_CRYPTO_SHA256_H_
#define SAE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstddef>

namespace sae::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Finish(uint8_t out[kDigestSize]);

  static std::array<uint8_t, kDigestSize> Hash(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t h_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_SHA256_H_
