// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements RSA (crypto/rsa.h): keygen with e = 65537 over BigInt
// primes, and EMSA-PKCS#1 v1.5 sign/verify on SHA-1 digests.

#include "crypto/rsa.h"

#include <cstring>

#include "crypto/backend.h"
#include "util/macros.h"

namespace sae::crypto {

namespace {

// ASN.1 DigestInfo prefix for SHA-1 (RFC 8017 §9.2 note 1).
constexpr uint8_t kSha1DigestInfoPrefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                             0x05, 0x2b, 0x0e, 0x03, 0x02,
                                             0x1a, 0x05, 0x00, 0x04, 0x14};

// EMSA-PKCS1-v1_5: 0x00 0x01 FF..FF 0x00 DigestInfo || H.
std::vector<uint8_t> EncodeEmsaPkcs1(const Digest& digest, size_t em_len) {
  const size_t t_len = sizeof(kSha1DigestInfoPrefix) + Digest::kSize;
  SAE_CHECK(em_len >= t_len + 11);
  std::vector<uint8_t> em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::memcpy(&em[em_len - t_len], kSha1DigestInfoPrefix,
              sizeof(kSha1DigestInfoPrefix));
  std::memcpy(&em[em_len - Digest::kSize], digest.bytes.data(), Digest::kSize);
  return em;
}

}  // namespace

RsaPrivateKey RsaGenerateKey(Rng* rng, size_t modulus_bits) {
  SAE_CHECK(modulus_bits >= 256);
  const BigInt e(65537);
  for (;;) {
    BigInt p = BigInt::GeneratePrime(rng, modulus_bits / 2);
    BigInt q = BigInt::GeneratePrime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != modulus_bits) continue;
    BigInt p1 = BigInt::Sub(p, BigInt(1));
    BigInt q1 = BigInt::Sub(q, BigInt(1));
    BigInt phi = BigInt::Mul(p1, q1);
    BigInt d;
    if (!BigInt::ModInverse(e, phi, &d)) continue;  // e not coprime with phi
    BigInt qinv;
    if (!BigInt::ModInverse(q, p, &qinv)) continue;  // p == q impossible here
    return RsaPrivateKey{n,           e,
                         d,           p,
                         q,           BigInt::Mod(d, p1),
                         BigInt::Mod(d, q1), qinv};
  }
}

RsaSignature RsaSignDigest(const RsaPrivateKey& key, const Digest& digest) {
  size_t k = (key.n.BitLength() + 7) / 8;
  std::vector<uint8_t> em = EncodeEmsaPkcs1(digest, k);
  BigInt m = BigInt::FromBytes(em.data(), em.size());
  BigInt s;
  if (key.HasCrt() && !Backend::Instance().force_scalar()) {
    // CRT: two half-size exponentiations + Garner recombination produce
    // exactly m^d mod n (CRT on n = p*q), so the signature bytes are
    // identical to the direct pipeline below.
    BigInt s1 = BigInt::ModPow(m, key.dp, key.p);
    BigInt s2 = BigInt::ModPow(m, key.dq, key.q);
    BigInt diff = s1 >= s2 ? BigInt::Sub(s1, s2)
                           : BigInt::Sub(BigInt::Add(s1, key.p),
                                         BigInt::Mod(s2, key.p));
    BigInt h = BigInt::Mod(BigInt::Mul(key.qinv, diff), key.p);
    s = BigInt::Add(s2, BigInt::Mul(h, key.q));
  } else {
    s = BigInt::ModPow(m, key.d, key.n);
  }
  return s.ToBytes(k);
}

Status RsaVerifyDigest(const RsaPublicKey& key, const Digest& digest,
                       const RsaSignature& sig) {
  size_t k = key.ModulusBytes();
  if (sig.size() != k) {
    return Status::VerificationFailure("signature has wrong length");
  }
  BigInt s = BigInt::FromBytes(sig.data(), sig.size());
  if (s >= key.n) {
    return Status::VerificationFailure("signature out of range");
  }
  BigInt m = BigInt::ModPow(s, key.e, key.n);
  std::vector<uint8_t> em = m.ToBytes(k);
  std::vector<uint8_t> expected = EncodeEmsaPkcs1(digest, k);
  if (em != expected) {
    return Status::VerificationFailure("PKCS#1 encoding mismatch");
  }
  return Status::OK();
}

}  // namespace sae::crypto
