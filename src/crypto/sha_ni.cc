// Copyright (c) saedb authors. Licensed under the MIT license.
//
// SHA-NI (Intel SHA extensions) single-stream compression kernels,
// following the canonical round structure for _mm_sha1rnds4_epu32 /
// _mm_sha256rnds2_epu32. Compression only — padding stays in
// backend.cc so the bytes hashed are byte-for-byte those of the scalar
// reference.
//
// backend.cc only dispatches here after __builtin_cpu_supports("sha")
// and an init-time known-answer check both pass, so a platform where
// these kernels misbehave silently falls back to scalar instead of
// emitting wrong digests.

#include "crypto/kernels.h"

#ifdef SAE_CRYPTO_HAVE_KERNELS

#include <immintrin.h>

namespace sae::crypto::internal {

#define SAE_SHANI __attribute__((target("sha,sse4.1")))

SAE_SHANI void Sha1NiBlocks(uint32_t state[5], const uint8_t* data,
                            size_t blocks) {
  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);  // elements: a b c d -> d c b a order
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  const __m128i mask =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);

  while (blocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;
    __m128i e1;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), mask);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), mask);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), mask);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), mask);

    // Rounds 0-3
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // Rounds 4-7
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);

    // Rounds 8-11
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 12-15
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);

    data += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<uint32_t>(_mm_extract_epi32(e0, 3));
}

namespace {
// K constants in round order; _mm_loadu_si128 of kSha256K + 4*g yields
// the wk vector for round group g.
alignas(16) constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
}  // namespace

SAE_SHANI void Sha256NiBlocks(uint32_t state[8], const uint8_t* data,
                              size_t blocks) {
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack a..h into the ABEF/CDGH register layout sha256rnds2 expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (blocks-- > 0) {
    const __m128i state0_save = state0;
    const __m128i state1_save = state1;

    // 16 groups of 4 rounds. Message schedule registers rotate roles:
    // group g consumes msgs[g & 3]; the msg2 completion targets
    // msgs[(g+1) & 3] and the msg1 half-step targets msgs[(g+3) & 3],
    // exactly the canonical unrolled sequence expressed as a loop.
    __m128i msgs[4];
    for (int g = 0; g < 16; ++g) {
      if (g < 4) {
        msgs[g] = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(data + 16 * g)),
            mask);
      }
      const __m128i cur = msgs[g & 3];
      __m128i msg = _mm_add_epi32(
          cur, _mm_load_si128(
                   reinterpret_cast<const __m128i*>(kSha256K + 4 * g)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      if (g >= 3 && g <= 14) {
        const __m128i tmp = _mm_alignr_epi8(cur, msgs[(g + 3) & 3], 4);
        __m128i nxt = _mm_add_epi32(msgs[(g + 1) & 3], tmp);
        msgs[(g + 1) & 3] = _mm_sha256msg2_epu32(nxt, cur);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      if (g >= 1 && g <= 12) {
        msgs[(g + 3) & 3] = _mm_sha256msg1_epu32(msgs[(g + 3) & 3], cur);
      }
    }

    state0 = _mm_add_epi32(state0, state0_save);
    state1 = _mm_add_epi32(state1, state1_save);

    data += 64;
  }

  // Unpack ABEF/CDGH back to a..h.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);       // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);          // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#undef SAE_SHANI

}  // namespace sae::crypto::internal

#endif  // SAE_CRYPTO_HAVE_KERNELS
