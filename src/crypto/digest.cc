// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the 20-byte Digest type (crypto/digest.h): hashing records
// under the selected scheme (SHA-1, or SHA-256 truncated to 20 bytes),
// XOR folding, and Merkle-style child-digest combination. All hashing
// routes through crypto::Backend, which dispatches to the fastest
// bit-identical kernel the CPU supports.

#include "crypto/digest.h"

#include <cstring>

#include "crypto/backend.h"
#include "util/hex.h"

namespace sae::crypto {

std::string Digest::ToHex() const {
  return HexEncode(bytes.data(), bytes.size());
}

Digest ComputeDigest(const void* data, size_t len, HashScheme scheme) {
  return Backend::Instance().HashOne(scheme, data, len);
}

void ComputeDigests(const ByteSpan* inputs, size_t count, Digest* out,
                    HashScheme scheme) {
  Backend::Instance().HashMany(scheme, inputs, count, out);
}

// Digest is exactly its byte array, so an array of Digests *is* the
// concatenated preimage H(h_1 || ... || h_f) — one contiguous hash, no
// per-child Update() buffering. The MB-tree node combiner hits this with
// fanout-sized arrays on every node recomputation.
static_assert(sizeof(Digest) == Digest::kSize,
              "Digest must have no padding: CombineDigests hashes the raw "
              "array as the concatenation of its elements");

Digest CombineDigests(const Digest* digests, size_t count, HashScheme scheme) {
  return Backend::Instance().HashOne(scheme, digests, count * Digest::kSize);
}

Digest EpochStampedDigest(const Digest& base, uint64_t epoch,
                          HashScheme scheme) {
  // base (20B) || epoch (8B little-endian) — fixed 28-byte preimage.
  uint8_t buf[Digest::kSize + 8];
  std::memcpy(buf, base.bytes.data(), Digest::kSize);
  for (size_t i = 0; i < 8; ++i) {
    buf[Digest::kSize + i] = uint8_t(epoch >> (8 * i));
  }
  return ComputeDigest(buf, sizeof(buf), scheme);
}

}  // namespace sae::crypto
