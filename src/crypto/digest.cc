// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the 20-byte Digest type (crypto/digest.h): hashing records
// under the selected scheme (SHA-1, or SHA-256 truncated to 20 bytes),
// XOR folding, and Merkle-style child-digest combination.

#include "crypto/digest.h"

#include <cstring>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace sae::crypto {

std::string Digest::ToHex() const {
  return HexEncode(bytes.data(), bytes.size());
}

Digest ComputeDigest(const void* data, size_t len, HashScheme scheme) {
  Digest d;
  switch (scheme) {
    case HashScheme::kSha1: {
      auto h = Sha1::Hash(data, len);
      std::memcpy(d.bytes.data(), h.data(), Digest::kSize);
      break;
    }
    case HashScheme::kSha256Trunc: {
      auto h = Sha256::Hash(data, len);
      std::memcpy(d.bytes.data(), h.data(), Digest::kSize);
      break;
    }
  }
  return d;
}

Digest CombineDigests(const Digest* digests, size_t count, HashScheme scheme) {
  Digest d;
  switch (scheme) {
    case HashScheme::kSha1: {
      Sha1 hasher;
      for (size_t i = 0; i < count; ++i) {
        hasher.Update(digests[i].bytes.data(), Digest::kSize);
      }
      uint8_t out[Sha1::kDigestSize];
      hasher.Finish(out);
      std::memcpy(d.bytes.data(), out, Digest::kSize);
      break;
    }
    case HashScheme::kSha256Trunc: {
      Sha256 hasher;
      for (size_t i = 0; i < count; ++i) {
        hasher.Update(digests[i].bytes.data(), Digest::kSize);
      }
      uint8_t out[Sha256::kDigestSize];
      hasher.Finish(out);
      std::memcpy(d.bytes.data(), out, Digest::kSize);
      break;
    }
  }
  return d;
}

Digest EpochStampedDigest(const Digest& base, uint64_t epoch,
                          HashScheme scheme) {
  // base (20B) || epoch (8B little-endian) — fixed 28-byte preimage.
  uint8_t buf[Digest::kSize + 8];
  std::memcpy(buf, base.bytes.data(), Digest::kSize);
  for (size_t i = 0; i < 8; ++i) {
    buf[Digest::kSize + i] = uint8_t(epoch >> (8 * i));
  }
  return ComputeDigest(buf, sizeof(buf), scheme);
}

}  // namespace sae::crypto
