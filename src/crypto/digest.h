// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The project-wide 20-byte digest type and its XOR algebra.
//
// SAE's verification token is the XOR of record digests (paper §II):
//   VT = t_i.h XOR t_{i+1}.h XOR ... XOR t_j.h
// XOR forms an abelian group on digests ((D, ^), identity 0, every element
// its own inverse), which is exactly the structure GenerateVT and the
// XB-Tree's X values exploit.

#ifndef SAE_CRYPTO_DIGEST_H_
#define SAE_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <string>

namespace sae::crypto {

/// Which hash backs Digest computation. kSha1 reproduces the paper
/// (20-byte Crypto++-era digests); kSha256Trunc truncates SHA-256 to 20
/// bytes, keeping every size-sensitive measurement identical.
enum class HashScheme : uint8_t {
  kSha1 = 0,
  kSha256Trunc = 1,
};

/// A 20-byte digest. Passive value type; all algebra is free functions or
/// tiny members so it can live inside on-page tree entries.
struct Digest {
  static constexpr size_t kSize = 20;

  std::array<uint8_t, kSize> bytes{};

  /// The XOR-group identity (all zero bytes).
  static Digest Zero() { return Digest{}; }

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  Digest& operator^=(const Digest& other) {
    for (size_t i = 0; i < kSize; ++i) bytes[i] ^= other.bytes[i];
    return *this;
  }

  friend Digest operator^(Digest a, const Digest& b) {
    a ^= b;
    return a;
  }

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const Digest& a, const Digest& b) {
    return !(a == b);
  }

  /// Lowercase hex, for logs and golden tests.
  std::string ToHex() const;
};

/// A borrowed byte range; the unit of batched hashing.
struct ByteSpan {
  const void* data = nullptr;
  size_t len = 0;
};

/// Hashes `len` bytes under the given scheme.
Digest ComputeDigest(const void* data, size_t len,
                     HashScheme scheme = HashScheme::kSha1);

/// Batched hashing: out[i] = H(inputs[i]). Bit-identical to calling
/// ComputeDigest per input, but the accelerated backends hash up to 8
/// messages per pass — use this in any loop that digests a result set or
/// a node's records. Dispatches through crypto::Backend.
void ComputeDigests(const ByteSpan* inputs, size_t count, Digest* out,
                    HashScheme scheme = HashScheme::kSha1);

/// Digest of the concatenation of `count` digests (Merkle node combiner used
/// by the MB-tree: h(node) = H(h_1 || h_2 || ... || h_f)).
Digest CombineDigests(const Digest* digests, size_t count,
                      HashScheme scheme = HashScheme::kSha1);

/// Epoch-stamped commitment: H(base || epoch_le64). Signing this instead of
/// the bare root digest binds every root signature to the DO's update epoch,
/// so a replayed signature from an earlier database state carries its stale
/// epoch with it and cannot speak for the current one. golden_test pins the
/// byte-exact encoding for both hash schemes.
Digest EpochStampedDigest(const Digest& base, uint64_t epoch,
                          HashScheme scheme = HashScheme::kSha1);

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_DIGEST_H_
