// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the SHA-1 compression function and streaming interface
// (crypto/sha1.h) per FIPS 180-4.

#include "crypto/sha1.h"

#include <cstring>

namespace sae::crypto {

namespace {

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline uint32_t LoadBe32(const uint8_t* p) {
  return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
         (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = uint8_t(v >> 24);
  p[1] = uint8_t(v >> 16);
  p[2] = uint8_t(v >> 8);
  p[3] = uint8_t(v);
}

}  // namespace

void Sha1::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::ProcessBlock(const uint8_t block[kBlockSize]) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = LoadBe32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    size_t take = kBlockSize - buffer_len_;
    if (take > len) take = len;
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }

  while (len >= kBlockSize) {
    ProcessBlock(p);
    p += kBlockSize;
    len -= kBlockSize;
  }

  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

void Sha1::Finish(uint8_t out[kDigestSize]) {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad[kBlockSize + 8] = {0x80};
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_)
                                      : (kBlockSize + 56 - buffer_len_);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = uint8_t(bit_len >> (56 - 8 * i));
  Update(pad, pad_len);
  Update(len_be, 8);
  // After absorbing the length the buffer is block-aligned and empty.
  for (int i = 0; i < 5; ++i) StoreBe32(out + 4 * i, h_[i]);
}

std::array<uint8_t, Sha1::kDigestSize> Sha1::Hash(const void* data,
                                                  size_t len) {
  Sha1 hasher;
  hasher.Update(data, len);
  std::array<uint8_t, kDigestSize> out;
  hasher.Finish(out.data());
  return out;
}

}  // namespace sae::crypto
