// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Internal declarations for the accelerated hash kernels. Only
// backend.cc should include this; everything else goes through
// crypto::Backend. The kernels are compiled per-function with
// __attribute__((target(...))) so the rest of the library keeps the
// baseline ISA, and they are only *called* after runtime feature
// detection plus a known-answer self-check.

#ifndef SAE_CRYPTO_KERNELS_H_
#define SAE_CRYPTO_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace sae::crypto::internal {

#if defined(SAE_CRYPTO_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define SAE_CRYPTO_HAVE_KERNELS 1

// --- AVX2 8-lane multi-buffer kernels (sha_mb_avx2.cc) ---------------------
//
// Transposed state: state[word * 8 + lane]. Each lane hashes `blocks`
// consecutive 64-byte blocks starting at ptrs[lane]. Lanes are fully
// independent; callers pad short batches by pointing spare lanes at
// lane 0's data.

void Sha1X8Blocks(uint32_t* state, const uint8_t* const ptrs[8],
                  size_t blocks);
void Sha256X8Blocks(uint32_t* state, const uint8_t* const ptrs[8],
                    size_t blocks);

// --- SHA-NI single-stream kernels (sha_ni.cc) ------------------------------
//
// Compression only: updates `state` in place over `blocks` 64-byte blocks.
// Padding/finalization is the caller's job (backend.cc BuildTail).

void Sha1NiBlocks(uint32_t state[5], const uint8_t* data, size_t blocks);
void Sha256NiBlocks(uint32_t state[8], const uint8_t* data, size_t blocks);

#endif  // SAE_CRYPTO_SIMD && x86

}  // namespace sae::crypto::internal

#endif  // SAE_CRYPTO_KERNELS_H_
