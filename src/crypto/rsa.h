// Copyright (c) saedb authors. Licensed under the MIT license.
//
// RSA signatures with EMSA-PKCS#1 v1.5 encoding over SHA-1 digests, the
// public-key primitive TOM uses to bind the MB-tree root digest to the data
// owner. Hand-rolled on sae::crypto::BigInt. Signing runs CRT (p/q half-size
// exponentiations, Garner recombination) on top of BigInt's Montgomery
// fixed-window ModPow — the TOM insert-signing hot path; the non-CRT
// square-and-multiply pipeline remains reachable via SAE_FORCE_SCALAR and is
// what the parity tests diff against. Both paths emit identical signature
// bytes (s = m^d mod n either way); cryptanalytic strength is out of scope
// for the reproduction.

#ifndef SAE_CRYPTO_RSA_H_
#define SAE_CRYPTO_RSA_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "util/random.h"
#include "util/status.h"

namespace sae::crypto {

/// RSA public key (n, e).
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes; also the signature size.
  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }
};

/// RSA private key. Holds the public part too for convenience. The CRT
/// fields are an optimization only — when absent (zero), signing falls back
/// to the direct m^d mod n pipeline with identical output bytes.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  BigInt p;     // prime factor (optional, enables CRT signing)
  BigInt q;     // prime factor
  BigInt dp;    // d mod (p-1)
  BigInt dq;    // d mod (q-1)
  BigInt qinv;  // q^{-1} mod p

  bool HasCrt() const { return !p.IsZero() && !q.IsZero(); }

  RsaPublicKey PublicKey() const { return RsaPublicKey{n, e}; }
};

/// A detached RSA signature (big-endian, ModulusBytes() long).
using RsaSignature = std::vector<uint8_t>;

/// Generates a fresh key pair with a modulus of `modulus_bits` (e = 65537).
/// Deterministic given the Rng seed, which keeps tests and benches
/// reproducible.
RsaPrivateKey RsaGenerateKey(Rng* rng, size_t modulus_bits);

/// Signs a 20-byte digest: EMSA-PKCS1-v1_5(SHA-1 DigestInfo) then s = m^d
/// mod n.
RsaSignature RsaSignDigest(const RsaPrivateKey& key, const Digest& digest);

/// Verifies `sig` over `digest`. Returns VerificationFailure on mismatch or
/// malformed input; never aborts on attacker-controlled bytes.
Status RsaVerifyDigest(const RsaPublicKey& key, const Digest& digest,
                       const RsaSignature& sig);

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_RSA_H_
