// Copyright (c) saedb authors. Licensed under the MIT license.
//
// RSA signatures with EMSA-PKCS#1 v1.5 encoding over SHA-1 digests, the
// public-key primitive TOM uses to bind the MB-tree root digest to the data
// owner. Hand-rolled on sae::crypto::BigInt; correctness is what matters for
// the reproduction (the experiments measure signature size and sign/verify
// latency, not cryptanalytic strength).

#ifndef SAE_CRYPTO_RSA_H_
#define SAE_CRYPTO_RSA_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "util/random.h"
#include "util/status.h"

namespace sae::crypto {

/// RSA public key (n, e).
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes; also the signature size.
  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }
};

/// RSA private key. Holds the public part too for convenience.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;

  RsaPublicKey PublicKey() const { return RsaPublicKey{n, e}; }
};

/// A detached RSA signature (big-endian, ModulusBytes() long).
using RsaSignature = std::vector<uint8_t>;

/// Generates a fresh key pair with a modulus of `modulus_bits` (e = 65537).
/// Deterministic given the Rng seed, which keeps tests and benches
/// reproducible.
RsaPrivateKey RsaGenerateKey(Rng* rng, size_t modulus_bits);

/// Signs a 20-byte digest: EMSA-PKCS1-v1_5(SHA-1 DigestInfo) then s = m^d
/// mod n.
RsaSignature RsaSignDigest(const RsaPrivateKey& key, const Digest& digest);

/// Verifies `sig` over `digest`. Returns VerificationFailure on mismatch or
/// malformed input; never aborts on attacker-controlled bytes.
Status RsaVerifyDigest(const RsaPublicKey& key, const Digest& digest,
                       const RsaSignature& sig);

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_RSA_H_
