// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements BigInt (crypto/bigint.h): schoolbook multiply, Knuth
// Algorithm D division, Montgomery (CIOS) fixed-window modular
// exponentiation with a square-and-multiply scalar reference, and
// Miller-Rabin prime generation for RSA key sizes.

#include "crypto/bigint.h"

#include <algorithm>

#include "crypto/backend.h"
#include "util/macros.h"

namespace sae::crypto {

namespace {

constexpr uint64_t kBase = 1ULL << 32;

// Small primes for trial division before Miller-Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

BigInt BigInt::FromBytes(const uint8_t* data, size_t len) {
  BigInt out;
  out.limbs_.assign((len + 3) / 4, 0);
  for (size_t i = 0; i < len; ++i) {
    // data[0] is the most significant byte.
    size_t byte_index = len - 1 - i;  // little-endian byte position
    out.limbs_[byte_index / 4] |= uint32_t(data[i]) << (8 * (byte_index % 4));
  }
  out.Trim();
  return out;
}

BigInt BigInt::FromHex(const std::string& hex) {
  BigInt out;
  for (char c : hex) {
    uint32_t v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      SAE_CHECK(false && "invalid hex digit");
      return out;
    }
    out = Add(Mul(out, BigInt(16)), BigInt(v));
  }
  return out;
}

BigInt BigInt::Random(Rng* rng, size_t bits, bool exact_bits) {
  SAE_CHECK(bits > 0);
  BigInt out;
  size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = static_cast<uint32_t>(rng->Next());
  size_t top_bits = bits - (limbs - 1) * 32;  // bits in the top limb, 1..32
  uint32_t mask =
      top_bits == 32 ? 0xffffffffu : ((uint32_t(1) << top_bits) - 1);
  out.limbs_.back() &= mask;
  if (exact_bits) out.limbs_.back() |= uint32_t(1) << (top_bits - 1);
  out.Trim();
  return out;
}

std::vector<uint8_t> BigInt::ToBytes(size_t len) const {
  std::vector<uint8_t> out(len, 0);
  size_t nbytes = limbs_.size() * 4;
  for (size_t i = 0; i < nbytes; ++i) {
    uint8_t byte = uint8_t(limbs_[i / 4] >> (8 * (i % 4)));
    if (byte != 0) SAE_CHECK(i < len && "value does not fit in len bytes");
    if (i < len) out[len - 1 - i] = byte;
  }
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  size_t bytes = (BitLength() + 7) / 8;
  if (bytes == 0) bytes = 1;
  return ToBytes(bytes);
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  SAE_CHECK(Compare(a, b) >= 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = int64_t(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += int64_t(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  SAE_CHECK(borrow == 0);
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(const BigInt& a, size_t bits) {
  if (a.IsZero() || bits == 0) {
    BigInt out = a;
    return out;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t v = uint64_t(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(const BigInt& a, size_t bits) {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size()) {
      v |= uint64_t(a.limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigInt BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* rem) {
  SAE_CHECK(!b.IsZero());
  if (Compare(a, b) < 0) {
    if (rem) *rem = a;
    return BigInt();
  }
  if (b.limbs_.size() == 1) {
    // Short division.
    uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t r = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (r << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      r = cur % d;
    }
    q.Trim();
    if (rem) *rem = BigInt(r);
    return q;
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set.
  size_t shift = 0;
  uint32_t top = b.limbs_.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    ++shift;
  }
  BigInt u = ShiftLeft(a, shift);
  BigInt v = ShiftLeft(b, shift);
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m+n+1 limbs

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate quotient digit.
    uint64_t numerator = (uint64_t(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = numerator / v.limbs_[n - 1];
    uint64_t rhat = numerator % v.limbs_[n - 1];
    while (qhat >= kBase ||
           (n >= 2 &&
            qhat * v.limbs_[n - 2] > ((rhat << 32) | u.limbs_[j + n - 2]))) {
      --qhat;
      rhat += v.limbs_[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = int64_t(u.limbs_[i + j]) - int64_t(uint32_t(p)) - borrow;
      u.limbs_[i + j] = static_cast<uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    int64_t t = int64_t(u.limbs_[j + n]) - int64_t(carry) - borrow;
    u.limbs_[j + n] = static_cast<uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add back.
      --qhat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t s = uint64_t(u.limbs_[i + j]) + v.limbs_[i] + c;
        u.limbs_[i + j] = static_cast<uint32_t>(s);
        c = s >> 32;
      }
      u.limbs_[j + n] = static_cast<uint32_t>(u.limbs_[j + n] + c);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Trim();
  if (rem) {
    u.limbs_.resize(n);
    u.Trim();
    *rem = ShiftRight(u, shift);
  }
  return q;
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  BigInt r;
  DivMod(a, m, &r);
  return r;
}

BigInt BigInt::ModPow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  SAE_CHECK(Compare(m, BigInt(1)) > 0);
  // Montgomery form needs gcd(R, m) = 1, i.e. an odd modulus — true for
  // every RSA and sig-chain modulus. Single-limb moduli aren't worth the
  // domain conversions; SAE_FORCE_SCALAR pins the reference ladder.
  if (m.IsOdd() && m.limbs_.size() >= 2 && !Backend::Instance().force_scalar()) {
    return ModPowMont(base, exp, m);
  }
  return ModPowScalar(base, exp, m);
}

BigInt BigInt::ModPowScalar(const BigInt& base, const BigInt& exp,
                            const BigInt& m) {
  SAE_CHECK(Compare(m, BigInt(1)) > 0);
  BigInt result(1);
  BigInt b = Mod(base, m);
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = Mod(Mul(result, result), m);
    if (exp.Bit(i)) result = Mod(Mul(result, b), m);
  }
  return result;
}

namespace {

#ifdef __SIZEOF_INT128__

// The Montgomery engine works on 64-bit limbs with unsigned __int128
// accumulators — half the limb count and a quarter of the multiply count
// of the 32-bit representation BigInt stores.
using Limb = uint64_t;
using Wide = unsigned __int128;
constexpr int kLimbBits = 64;

// -x^{-1} mod 2^64 for odd x (Newton: precision doubles per step from the
// 3-bit seed inv = x, since x*x ≡ 1 mod 8).
Limb NegInvModWord(Limb x) {
  Limb inv = x;
  for (int i = 0; i < 5; ++i) inv *= 2u - x * inv;
  return ~inv + 1u;
}

// Packs BigInt's 32-bit limbs into K 64-bit limbs (zero-extended).
std::vector<Limb> PackLimbs(const std::vector<uint32_t>& v, size_t K) {
  std::vector<Limb> out(K, 0);
  for (size_t i = 0; i < v.size(); ++i) {
    out[i / 2] |= Limb(v[i]) << (32 * (i % 2));
  }
  return out;
}

// CIOS Montgomery product: out = a * b * R^{-1} mod n with R = 2^(64k).
// a, b are k-limb values < n; t is k+2 scratch limbs. out may alias a or b
// (the result lives in t until the final reduce/copy).
void MontMul(const Limb* a, const Limb* b, const Limb* n, size_t k,
             Limb n0inv, Limb* t, Limb* out) {
  std::fill(t, t + k + 2, Limb(0));
  for (size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    Limb carry = 0;
    const Limb ai = a[i];
    for (size_t j = 0; j < k; ++j) {
      const Wide cur = Wide(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    Wide cur = Wide(t[k]) + carry;
    t[k] = static_cast<Limb>(cur);
    t[k + 1] += static_cast<Limb>(cur >> kLimbBits);

    // t = (t + (t[0] * n0inv mod 2^64) * n) / 2^64 — one limb retired.
    const Limb mi = t[0] * n0inv;
    carry = static_cast<Limb>((Wide(mi) * n[0] + t[0]) >> kLimbBits);
    for (size_t j = 1; j < k; ++j) {
      const Wide c2 = Wide(mi) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(c2);
      carry = static_cast<Limb>(c2 >> kLimbBits);
    }
    cur = Wide(t[k]) + carry;
    t[k - 1] = static_cast<Limb>(cur);
    t[k] = t[k + 1] + static_cast<Limb>(cur >> kLimbBits);
    t[k + 1] = 0;
  }
  // CIOS leaves t < 2n: at most one subtraction.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (size_t j = k; j-- > 0;) {
      if (t[j] != n[j]) {
        ge = t[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    Limb borrow = 0;
    for (size_t j = 0; j < k; ++j) {
      const Wide d = Wide(t[j]) - n[j] - borrow;
      out[j] = static_cast<Limb>(d);
      borrow = static_cast<Limb>((d >> kLimbBits) & 1);
    }
  } else {
    std::copy(t, t + k, out);
  }
}

#endif  // __SIZEOF_INT128__

}  // namespace

BigInt BigInt::ModPowMont(const BigInt& base, const BigInt& exp,
                          const BigInt& m) {
#ifndef __SIZEOF_INT128__
  return ModPowScalar(base, exp, m);
#else
  const size_t bits = exp.BitLength();
  if (bits == 0) return BigInt(1);  // m > 1 checked by ModPow

  const size_t k = (m.limbs_.size() + 1) / 2;  // 64-bit limb count
  const std::vector<Limb> n_v = PackLimbs(m.limbs_, k);
  const Limb* n = n_v.data();
  const Limb n0inv = NegInvModWord(n[0]);

  // One-time setup via the generic division path: R mod n (the Montgomery
  // one) and R^2 mod n (the to-domain conversion factor).
  std::vector<Limb> one_m =
      PackLimbs(Mod(ShiftLeft(BigInt(1), 64 * k), m).limbs_, k);
  std::vector<Limb> rr =
      PackLimbs(Mod(ShiftLeft(BigInt(1), 128 * k), m).limbs_, k);
  std::vector<Limb> b = PackLimbs(Mod(base, m).limbs_, k);

  std::vector<Limb> t(k + 2);
  std::vector<Limb> bm(k);
  MontMul(b.data(), rr.data(), n, k, n0inv, t.data(), bm.data());

  // Fixed window: all w squarings happen per window regardless of bits, and
  // the table makes the multiply count bits/w instead of popcount(exp).
  const size_t w = bits >= 512 ? 5 : bits >= 128 ? 4 : bits >= 24 ? 3 : 1;
  const size_t table_size = size_t(1) << w;
  std::vector<std::vector<Limb>> table(table_size);
  table[0] = one_m;
  table[1] = bm;
  for (size_t i = 2; i < table_size; ++i) {
    table[i].resize(k);
    MontMul(table[i - 1].data(), bm.data(), n, k, n0inv, t.data(),
            table[i].data());
  }

  auto window_at = [&](size_t j) {
    uint32_t v = 0;
    for (size_t bi = 0; bi < w; ++bi) {
      const size_t bit = j * w + bi;
      if (bit < bits && exp.Bit(bit)) v |= uint32_t(1) << bi;
    }
    return v;
  };

  const size_t nwin = (bits + w - 1) / w;
  std::vector<Limb> acc = table[window_at(nwin - 1)];
  for (size_t j = nwin - 1; j-- > 0;) {
    for (size_t s = 0; s < w; ++s) {
      MontMul(acc.data(), acc.data(), n, k, n0inv, t.data(), acc.data());
    }
    const uint32_t d = window_at(j);
    if (d != 0) {
      MontMul(acc.data(), table[d].data(), n, k, n0inv, t.data(), acc.data());
    }
  }

  // Leave the Montgomery domain: multiply by 1 (not one_m).
  std::vector<Limb> unit(k, 0);
  unit[0] = 1;
  MontMul(acc.data(), unit.data(), n, k, n0inv, t.data(), acc.data());

  BigInt out;
  out.limbs_.resize(2 * k);
  for (size_t i = 0; i < k; ++i) {
    out.limbs_[2 * i] = static_cast<uint32_t>(acc[i]);
    out.limbs_[2 * i + 1] = static_cast<uint32_t>(acc[i] >> 32);
  }
  out.Trim();
  return out;
#endif  // __SIZEOF_INT128__
}

#ifdef __SIZEOF_INT128__

Montgomery::Montgomery(const BigInt& modulus) {
  if (!modulus.IsOdd() || modulus.limbs_.size() < 2 ||
      Backend::Instance().force_scalar()) {
    return;  // caller keeps its division-based fallback
  }
  modulus_ = modulus;
  k_ = (modulus.limbs_.size() + 1) / 2;
  n_ = PackLimbs(modulus.limbs_, k_);
  n0inv_ = NegInvModWord(n_[0]);
  one_m_ = PackLimbs(
      BigInt::Mod(BigInt::ShiftLeft(BigInt(1), 64 * k_), modulus).limbs_, k_);
  rr_ = PackLimbs(
      BigInt::Mod(BigInt::ShiftLeft(BigInt(1), 128 * k_), modulus).limbs_, k_);
  scratch_.resize(k_ + 2);
  usable_ = true;
}

Montgomery::Value Montgomery::ToMont(const BigInt& x) const {
  SAE_CHECK(usable_);
  Value v = PackLimbs(BigInt::Mod(x, modulus_).limbs_, k_);
  Value out(k_);
  MontMul(v.data(), rr_.data(), n_.data(), k_, n0inv_, scratch_.data(),
          out.data());
  return out;
}

BigInt Montgomery::FromMont(const Value& v) const {
  SAE_CHECK(usable_ && v.size() == k_);
  Value unit(k_, 0);
  unit[0] = 1;
  Value acc(k_);
  MontMul(v.data(), unit.data(), n_.data(), k_, n0inv_, scratch_.data(),
          acc.data());
  BigInt out;
  out.limbs_.resize(2 * k_);
  for (size_t i = 0; i < k_; ++i) {
    out.limbs_[2 * i] = static_cast<uint32_t>(acc[i]);
    out.limbs_[2 * i + 1] = static_cast<uint32_t>(acc[i] >> 32);
  }
  out.Trim();
  return out;
}

void Montgomery::MulInPlace(Value* a, const Value& b) const {
  SAE_CHECK(usable_ && a->size() == k_ && b.size() == k_);
  MontMul(a->data(), b.data(), n_.data(), k_, n0inv_, scratch_.data(),
          a->data());
}

#else  // !__SIZEOF_INT128__

Montgomery::Montgomery(const BigInt&) {}

Montgomery::Value Montgomery::ToMont(const BigInt&) const {
  SAE_CHECK(false);
  return {};
}

BigInt Montgomery::FromMont(const Value&) const {
  SAE_CHECK(false);
  return {};
}

void Montgomery::MulInPlace(Value*, const Value&) const { SAE_CHECK(false); }

#endif  // __SIZEOF_INT128__

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  while (!y.IsZero()) {
    BigInt r = Mod(x, y);
    x = y;
    y = r;
  }
  return x;
}

bool BigInt::ModInverse(const BigInt& a, const BigInt& m, BigInt* out) {
  // Extended Euclid with coefficients tracked as (value, negative?) pairs to
  // stay in unsigned arithmetic.
  BigInt r0 = m, r1 = Mod(a, m);
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.IsZero()) {
    BigInt q = DivMod(r0, r1, nullptr);
    BigInt r2 = Sub(r0, Mul(q, r1));

    // t2 = t0 - q * t1 with sign tracking.
    BigInt qt = Mul(q, t1);
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (Compare(t0, qt) >= 0) {
        t2 = Sub(t0, qt);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt);
      t2_neg = t0_neg;
    }

    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }

  if (Compare(r0, BigInt(1)) != 0) return false;  // not coprime
  if (t0_neg) t0 = Sub(m, Mod(t0, m));
  *out = Mod(t0, m);
  return true;
}

bool BigInt::IsProbablePrime(const BigInt& n, Rng* rng, int rounds) {
  if (Compare(n, BigInt(3)) <= 0) return Compare(n, BigInt(2)) >= 0;
  if (!n.IsOdd()) return false;

  for (uint32_t p : kSmallPrimes) {
    BigInt r = Mod(n, BigInt(p));
    if (r.IsZero()) return Compare(n, BigInt(p)) == 0;
  }

  // Write n-1 = d * 2^s.
  BigInt n_minus_1 = Sub(n, BigInt(1));
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = ShiftRight(d, 1);
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigInt a;
    do {
      a = Random(rng, n.BitLength(), /*exact_bits=*/false);
    } while (Compare(a, BigInt(2)) < 0 || Compare(a, Sub(n, BigInt(2))) > 0);

    BigInt x = ModPow(a, d, n);
    if (Compare(x, BigInt(1)) == 0 || Compare(x, n_minus_1) == 0) continue;
    bool witness = true;
    for (size_t i = 1; i < s; ++i) {
      x = Mod(Mul(x, x), n);
      if (Compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::GeneratePrime(Rng* rng, size_t bits) {
  SAE_CHECK(bits >= 16);
  for (;;) {
    BigInt candidate = Random(rng, bits, /*exact_bits=*/true);
    if (!candidate.IsOdd()) candidate = Add(candidate, BigInt(1));
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

}  // namespace sae::crypto
