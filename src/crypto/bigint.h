// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Arbitrary-precision unsigned integers, sized for RSA (512-2048 bit moduli).
// 32-bit limbs, little-endian limb order, always normalized (no leading zero
// limbs). Division is Knuth's Algorithm D. Modular exponentiation with an odd
// modulus (every RSA/sig-chain call) runs CIOS Montgomery multiplication under
// a fixed-window ladder — the TOM insert-signing hot path; the plain
// square-and-multiply reference survives as ModPowScalar, stays the fallback
// for even moduli and SAE_FORCE_SCALAR, and anchors the differential parity
// tests (crypto_parity_test) that prove both paths agree bit for bit.

#ifndef SAE_CRYPTO_BIGINT_H_
#define SAE_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace sae::crypto {

/// Unsigned arbitrary-precision integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine word.
  explicit BigInt(uint64_t v);

  /// From big-endian bytes (leading zeros permitted).
  static BigInt FromBytes(const uint8_t* data, size_t len);

  /// From lowercase/uppercase hex (no 0x prefix). Empty string -> 0.
  static BigInt FromHex(const std::string& hex);

  /// Uniformly random integer with exactly `bits` bits (msb forced to 1)
  /// when exact_bits, else uniform in [0, 2^bits).
  static BigInt Random(Rng* rng, size_t bits, bool exact_bits);

  /// Big-endian byte serialization, zero-padded/truncated to `len` bytes.
  /// Requires the value to fit (checked).
  std::vector<uint8_t> ToBytes(size_t len) const;

  /// Minimal big-endian bytes ("" -> value 0 yields {0x00} of size 1).
  std::vector<uint8_t> ToBytes() const;

  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;

  /// Three-way comparison: -1, 0, +1.
  static int Compare(const BigInt& a, const BigInt& b);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

  static BigInt Add(const BigInt& a, const BigInt& b);
  /// Requires a >= b (checked).
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  /// Floor division; `rem` (optional) receives a mod b. Requires b != 0.
  static BigInt DivMod(const BigInt& a, const BigInt& b, BigInt* rem);
  static BigInt Mod(const BigInt& a, const BigInt& m);

  static BigInt ShiftLeft(const BigInt& a, size_t bits);
  static BigInt ShiftRight(const BigInt& a, size_t bits);

  /// (base^exp) mod m. Requires m > 1. Odd multi-limb moduli dispatch to
  /// Montgomery + fixed-window (ModPowMont); everything else — and any
  /// process with SAE_FORCE_SCALAR set — takes ModPowScalar.
  static BigInt ModPow(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Square-and-multiply reference implementation of ModPow. Public so the
  /// parity harness can compare it against the Montgomery path directly.
  static BigInt ModPowScalar(const BigInt& base, const BigInt& exp,
                             const BigInt& m);

  /// Greatest common divisor.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Modular inverse of a mod m; returns false when gcd(a, m) != 1.
  static bool ModInverse(const BigInt& a, const BigInt& m, BigInt* out);

  /// Miller-Rabin probabilistic primality, `rounds` random bases.
  static bool IsProbablePrime(const BigInt& n, Rng* rng, int rounds = 24);

  /// Random prime with exactly `bits` bits.
  static BigInt GeneratePrime(Rng* rng, size_t bits);

 private:
  void Trim();

  /// Montgomery-domain fixed-window exponentiation. Requires m odd, m > 1.
  static BigInt ModPowMont(const BigInt& base, const BigInt& exp,
                           const BigInt& m);

  friend class Montgomery;

  std::vector<uint32_t> limbs_;  // little-endian, normalized
};

/// Reusable Montgomery-multiplication context over one fixed odd modulus.
/// ModPow pays its domain setup (n0inv, R mod n, R^2 mod n) on every call;
/// this class pays it once so workloads with thousands of modular products
/// under the same modulus — condensed-RSA batch verification above all —
/// get each product at one CIOS multiply instead of a full division.
///
/// usable() is false when the fast path can't run (no __int128, an even or
/// single-limb modulus, or SAE_FORCE_SCALAR); callers must then keep their
/// division-based fallback, which is exactly what the scalar-parity harness
/// exercises.
class Montgomery {
 public:
  /// A value in the Montgomery domain: k 64-bit limbs, little-endian,
  /// fixed width. Opaque outside ToMont/FromMont/MulInPlace.
  using Value = std::vector<uint64_t>;

  explicit Montgomery(const BigInt& modulus);

  bool usable() const { return usable_; }

  /// x (reduced mod n) into the Montgomery domain. Requires usable().
  Value ToMont(const BigInt& x) const;

  /// Back to an ordinary integer in [0, n). Requires usable().
  BigInt FromMont(const Value& v) const;

  /// The multiplicative identity (R mod n) in the domain.
  const Value& One() const { return one_m_; }

  /// *a = a * b mod n, both already in the domain. Not thread-safe: the
  /// context owns the scratch buffer (one context per thread).
  void MulInPlace(Value* a, const Value& b) const;

 private:
  bool usable_ = false;
  size_t k_ = 0;  // 64-bit limb count of the modulus
  BigInt modulus_;
  std::vector<uint64_t> n_;
  uint64_t n0inv_ = 0;
  Value one_m_;  // R mod n
  Value rr_;     // R^2 mod n
  mutable std::vector<uint64_t> scratch_;
};

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_BIGINT_H_
