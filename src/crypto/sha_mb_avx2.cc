// Copyright (c) saedb authors. Licensed under the MIT license.
//
// AVX2 8-lane multi-buffer SHA-1 / SHA-256 compression kernels.
//
// Eight independent messages are hashed in parallel: lane L lives in
// 32-bit element L of each ymm register, so one round of vector code
// performs the same round for all eight messages. The working-variable
// recurrences are exactly FIPS 180-4; byte order is handled by a
// per-32-bit-word byte shuffle after gathering each message word.
//
// These functions are compiled with per-function target attributes, so
// this translation unit is safe to build into a baseline-ISA binary;
// backend.cc only calls them after __builtin_cpu_supports("avx2") and a
// known-answer self-check both pass.

#include "crypto/kernels.h"

#ifdef SAE_CRYPTO_HAVE_KERNELS

#include <immintrin.h>

#include <cstring>

namespace sae::crypto::internal {

namespace {

#define SAE_AVX2 __attribute__((target("avx2")))

SAE_AVX2 inline __m256i Rotl(__m256i x, int n) {
  return _mm256_or_si256(_mm256_slli_epi32(x, n), _mm256_srli_epi32(x, 32 - n));
}

SAE_AVX2 inline __m256i Rotr(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

SAE_AVX2 inline __m256i Xor3(__m256i a, __m256i b, __m256i c) {
  return _mm256_xor_si256(_mm256_xor_si256(a, b), c);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

// Gathers 32-bit word `off` (byte offset) of each lane's message and
// byte-swaps every word to big-endian in one shuffle.
SAE_AVX2 inline __m256i GatherWordBe(const uint8_t* const p[8], size_t off,
                                     __m256i bswap) {
  __m256i v = _mm256_set_epi32(
      static_cast<int>(LoadLe32(p[7] + off)), static_cast<int>(LoadLe32(p[6] + off)),
      static_cast<int>(LoadLe32(p[5] + off)), static_cast<int>(LoadLe32(p[4] + off)),
      static_cast<int>(LoadLe32(p[3] + off)), static_cast<int>(LoadLe32(p[2] + off)),
      static_cast<int>(LoadLe32(p[1] + off)), static_cast<int>(LoadLe32(p[0] + off)));
  return _mm256_shuffle_epi8(v, bswap);
}

SAE_AVX2 inline __m256i BswapMask() {
  return _mm256_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
                          3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
}

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

SAE_AVX2 void Sha256X8Blocks(uint32_t* state, const uint8_t* const ptrs[8],
                             size_t blocks) {
  const __m256i bswap = BswapMask();
  __m256i st[8];
  for (int i = 0; i < 8; ++i) {
    st[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + i * 8));
  }
  for (size_t blk = 0; blk < blocks; ++blk) {
    __m256i w[16];
    const size_t base = blk * 64;
    for (int i = 0; i < 16; ++i) {
      w[i] = GatherWordBe(ptrs, base + 4 * static_cast<size_t>(i), bswap);
    }
    __m256i a = st[0], b = st[1], c = st[2], d = st[3];
    __m256i e = st[4], f = st[5], g = st[6], h = st[7];
    for (int t = 0; t < 64; ++t) {
      __m256i wt;
      if (t < 16) {
        wt = w[t];
      } else {
        __m256i w15 = w[(t - 15) & 15];
        __m256i w2 = w[(t - 2) & 15];
        __m256i s0 = Xor3(Rotr(w15, 7), Rotr(w15, 18), _mm256_srli_epi32(w15, 3));
        __m256i s1 = Xor3(Rotr(w2, 17), Rotr(w2, 19), _mm256_srli_epi32(w2, 10));
        wt = _mm256_add_epi32(_mm256_add_epi32(w[t & 15], s0),
                              _mm256_add_epi32(w[(t - 7) & 15], s1));
        w[t & 15] = wt;
      }
      __m256i s1e = Xor3(Rotr(e, 6), Rotr(e, 11), Rotr(e, 25));
      __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                    _mm256_andnot_si256(e, g));
      __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(h, s1e),
                           _mm256_add_epi32(ch, _mm256_set1_epi32(
                                                    static_cast<int>(kSha256K[t])))),
          wt);
      __m256i s0a = Xor3(Rotr(a, 2), Rotr(a, 13), Rotr(a, 22));
      // maj(a,b,c) = (a & b) | (c & (a | b))
      __m256i maj = _mm256_or_si256(_mm256_and_si256(a, b),
                                    _mm256_and_si256(c, _mm256_or_si256(a, b)));
      __m256i t2 = _mm256_add_epi32(s0a, maj);
      h = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(t1, t2);
    }
    st[0] = _mm256_add_epi32(st[0], a);
    st[1] = _mm256_add_epi32(st[1], b);
    st[2] = _mm256_add_epi32(st[2], c);
    st[3] = _mm256_add_epi32(st[3], d);
    st[4] = _mm256_add_epi32(st[4], e);
    st[5] = _mm256_add_epi32(st[5], f);
    st[6] = _mm256_add_epi32(st[6], g);
    st[7] = _mm256_add_epi32(st[7], h);
  }
  for (int i = 0; i < 8; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + i * 8), st[i]);
  }
}

SAE_AVX2 void Sha1X8Blocks(uint32_t* state, const uint8_t* const ptrs[8],
                           size_t blocks) {
  const __m256i bswap = BswapMask();
  __m256i st[5];
  for (int i = 0; i < 5; ++i) {
    st[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + i * 8));
  }
  for (size_t blk = 0; blk < blocks; ++blk) {
    __m256i w[16];
    const size_t base = blk * 64;
    for (int i = 0; i < 16; ++i) {
      w[i] = GatherWordBe(ptrs, base + 4 * static_cast<size_t>(i), bswap);
    }
    __m256i a = st[0], b = st[1], c = st[2], d = st[3], e = st[4];
    for (int t = 0; t < 80; ++t) {
      __m256i wt;
      if (t < 16) {
        wt = w[t];
      } else {
        wt = Rotl(Xor3(_mm256_xor_si256(w[(t + 13) & 15], w[(t + 8) & 15]),
                       w[(t + 2) & 15], w[t & 15]),
                  1);
        w[t & 15] = wt;
      }
      __m256i f;
      uint32_t k;
      if (t < 20) {
        // ch(b,c,d)
        f = _mm256_xor_si256(_mm256_and_si256(b, c), _mm256_andnot_si256(b, d));
        k = 0x5a827999u;
      } else if (t < 40) {
        f = Xor3(b, c, d);
        k = 0x6ed9eba1u;
      } else if (t < 60) {
        // maj(b,c,d)
        f = _mm256_or_si256(_mm256_and_si256(b, c),
                            _mm256_and_si256(d, _mm256_or_si256(b, c)));
        k = 0x8f1bbcdcu;
      } else {
        f = Xor3(b, c, d);
        k = 0xca62c1d6u;
      }
      __m256i tmp = _mm256_add_epi32(
          _mm256_add_epi32(Rotl(a, 5), f),
          _mm256_add_epi32(_mm256_add_epi32(e, wt),
                           _mm256_set1_epi32(static_cast<int>(k))));
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = tmp;
    }
    st[0] = _mm256_add_epi32(st[0], a);
    st[1] = _mm256_add_epi32(st[1], b);
    st[2] = _mm256_add_epi32(st[2], c);
    st[3] = _mm256_add_epi32(st[3], d);
    st[4] = _mm256_add_epi32(st[4], e);
  }
  for (int i = 0; i < 5; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + i * 8), st[i]);
  }
}

#undef SAE_AVX2

}  // namespace sae::crypto::internal

#endif  // SAE_CRYPTO_HAVE_KERNELS
