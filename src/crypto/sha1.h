// Copyright (c) saedb authors. Licensed under the MIT license.
//
// SHA-1 (FIPS 180-4). The paper uses 20-byte digests for both SAE and TOM;
// SHA-1 is the natural 2008-era choice (Crypto++ default). This is a faithful
// from-scratch implementation validated against the FIPS test vectors.
//
// Note: SHA-1 is used here to reproduce the paper's measurements; the library
// also ships SHA-256 (crypto/sha256.h) for deployments that need a
// collision-resistant digest by modern standards.

#ifndef SAE_CRYPTO_SHA1_H_
#define SAE_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>
#include <cstddef>

namespace sae::crypto {

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1() { Reset(); }

  /// Resets to the initial state; the hasher is reusable after Finish().
  void Reset();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);

  /// Finalizes and writes 20 bytes to `out`. The hasher must be Reset()
  /// before reuse.
  void Finish(uint8_t out[kDigestSize]);

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t h_[5];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_SHA1_H_
