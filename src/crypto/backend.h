// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Runtime-dispatched crypto backend facade. The primitive layer ships
// several implementations of the same functions — portable scalar code
// (always present), AVX2 8-lane multi-buffer hashing, and SHA-NI
// single-stream hashing — and this class picks the fastest one the CPU
// supports at process start. Every backend is bit-identical by
// construction: accelerated kernels are verified against pinned NIST
// digests at initialization and are disabled (falling back to scalar) on
// any mismatch, so golden-pinned digests, VTs, VOs, and signatures can
// never change with the hardware.
//
// Escape hatch: set SAE_FORCE_SCALAR=1 in the environment (or call
// set_force_scalar) to pin every primitive to the scalar reference path.

#ifndef SAE_CRYPTO_BACKEND_H_
#define SAE_CRYPTO_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "crypto/digest.h"

namespace sae::crypto {

class Backend {
 public:
  /// CPU features relevant to the crypto kernels, detected once.
  struct Features {
    bool sse41 = false;
    bool avx2 = false;
    bool sha_ni = false;
  };

  /// The process-wide backend (thread-safe lazy init + self-check).
  static Backend& Instance();

  const Features& features() const { return features_; }

  /// True when every primitive must take the scalar reference path:
  /// SAE_FORCE_SCALAR=1, set_force_scalar(true), or no usable kernel.
  bool force_scalar() const {
    return force_scalar_.load(std::memory_order_relaxed);
  }

  /// Test hook: flips dispatch at runtime (used by the parity harness to
  /// compare backends within one process).
  void set_force_scalar(bool on) {
    force_scalar_.store(on, std::memory_order_relaxed);
  }

  /// True when an accelerated hash kernel is active (not forced scalar,
  /// feature present, and the init-time self-check passed).
  bool accelerated_hash() const;

  /// Active kernel names, for logs and bench JSON:
  /// "sha-ni" | "avx2-x8" | "scalar", and "montgomery" | "scalar".
  const char* hash_kernel() const;
  const char* modexp_kernel() const;

  /// One-shot digest under `scheme`; dispatches to SHA-NI when available.
  Digest HashOne(HashScheme scheme, const void* data, size_t len) const;

  /// Batched digests: out[i] = H(inputs[i]). Bit-identical to calling
  /// HashOne per input; accelerated path hashes up to 8 equal-length
  /// inputs per AVX2 pass (or streams each through SHA-NI).
  void HashMany(HashScheme scheme, const ByteSpan* inputs, size_t count,
                Digest* out) const;

 private:
  Backend();

  void SelfCheck();

  Features features_;
  std::atomic<bool> force_scalar_{false};
  bool sha_ni_ok_ = false;  // feature present AND self-check passed
  bool avx2_ok_ = false;
};

}  // namespace sae::crypto

#endif  // SAE_CRYPTO_BACKEND_H_
