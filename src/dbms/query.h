// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The verified query-plan abstraction: a QueryRequest names a key range
// plus an operator (scan, point, COUNT, SUM, MIN, MAX, top-k) and a typed
// QueryAnswer carries the derived result. The authentication protocols stay
// range-shaped underneath — every operator executes as a range scan whose
// record set (the *witness*) is what the VT / VO / sigchain proof
// authenticates — and the derived answer is verified *from the proof*: the
// client recomputes the aggregate from the authenticated,
// boundary-complete witness and compares it with the SP's claim
// (CheckAnswer). An SP that returns a wrong COUNT/SUM/MIN/MAX or a
// truncated top-k therefore fails verification even though every witness
// byte it shipped is genuine. Sharded deployments fold per-shard partial
// answers with MergeAnswers and verify each slice the same way.

#ifndef SAE_DBMS_QUERY_H_
#define SAE_DBMS_QUERY_H_

#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace sae::dbms {

using storage::Key;
using storage::Record;

/// The query operators of the verified plan layer. Values are the wire
/// encoding (core::SerializeQueryRequest) — append only, never renumber.
enum class QueryOp : uint8_t {
  kScan = 0,   ///< all records with key in [lo, hi], key-ascending
  kPoint = 1,  ///< all records with key == lo (hi == lo by construction)
  kCount = 2,  ///< |RS| for the range
  kSum = 3,    ///< sum of the result keys (mod 2^64)
  kMin = 4,    ///< smallest key in the range (absent when RS is empty)
  kMax = 5,    ///< largest key in the range (absent when RS is empty)
  kTopK = 6,   ///< the `limit` records with the largest keys, descending
};

/// Stable lower-case name for logs, bench tables and test output.
const char* QueryOpName(QueryOp op);

/// True for the operators whose verified result is a record set. Only
/// kTopK materializes rows in QueryAnswer::records (the ranked winners);
/// scan/point rows ARE the witness the proof authenticates, held once in
/// the outcome's `results`, never duplicated into the answer.
inline bool OpReturnsRecords(QueryOp op) {
  return op == QueryOp::kScan || op == QueryOp::kPoint ||
         op == QueryOp::kTopK;
}

/// One verified query: a key range plus the operator applied to it.
struct QueryRequest {
  QueryOp op = QueryOp::kScan;
  Key lo = 0;
  Key hi = 0;
  uint32_t limit = 0;  ///< kTopK result cardinality cap; unused otherwise

  static QueryRequest Scan(Key lo, Key hi) {
    return QueryRequest{QueryOp::kScan, lo, hi, 0};
  }
  static QueryRequest Point(Key key) {
    return QueryRequest{QueryOp::kPoint, key, key, 0};
  }
  static QueryRequest Count(Key lo, Key hi) {
    return QueryRequest{QueryOp::kCount, lo, hi, 0};
  }
  static QueryRequest Sum(Key lo, Key hi) {
    return QueryRequest{QueryOp::kSum, lo, hi, 0};
  }
  static QueryRequest Min(Key lo, Key hi) {
    return QueryRequest{QueryOp::kMin, lo, hi, 0};
  }
  static QueryRequest Max(Key lo, Key hi) {
    return QueryRequest{QueryOp::kMax, lo, hi, 0};
  }
  static QueryRequest TopK(Key lo, Key hi, uint32_t limit) {
    return QueryRequest{QueryOp::kTopK, lo, hi, limit};
  }

  friend bool operator==(const QueryRequest& a, const QueryRequest& b) {
    return a.op == b.op && a.lo == b.lo && a.hi == b.hi && a.limit == b.limit;
  }
  friend bool operator!=(const QueryRequest& a, const QueryRequest& b) {
    return !(a == b);
  }
};

/// The typed answer to a QueryRequest. EvaluateAnswer always fills every
/// derived field — count, sum and the extrema summarize the full range
/// regardless of the operator — so CheckAnswer can compare answers
/// field-for-field and any tampered dimension is caught for any operator.
/// `records` carries rows only for top-k (the winners, descending);
/// scan/point rows are exactly the witness record set and live once, in
/// the query outcome's `results`, not here.
struct QueryAnswer {
  QueryOp op = QueryOp::kScan;
  uint64_t count = 0;  ///< |RS| of the underlying range
  uint64_t sum = 0;    ///< sum of the range keys (mod 2^64)
  bool has_extrema = false;  ///< false iff the range is empty
  Key min_key = 0;
  Key max_key = 0;
  std::vector<Record> records;

  friend bool operator==(const QueryAnswer& a, const QueryAnswer& b) {
    return a.op == b.op && a.count == b.count && a.sum == b.sum &&
           a.has_extrema == b.has_extrema && a.min_key == b.min_key &&
           a.max_key == b.max_key && a.records == b.records;
  }
  friend bool operator!=(const QueryAnswer& a, const QueryAnswer& b) {
    return !(a == b);
  }
};

/// Derives the answer from the range's record set — the single shared
/// derivation rule: the honest SP uses it to produce answers and the client
/// re-runs it over the *authenticated* witness to verify them. Top-k
/// ordering is descending by key with descending id as the tie-break, so
/// the winner set is deterministic even under duplicate keys.
QueryAnswer EvaluateAnswer(const QueryRequest& request,
                           const std::vector<Record>& range_records);

/// The client-side aggregate check: recomputes the answer from the verified
/// witness and compares field-for-field with the SP's claim. Returns
/// kVerificationFailure naming the first mismatching dimension. Only sound
/// when `verified_witness` has already passed the range proof (VT / VO) —
/// this check adds derived-answer integrity on top, it does not replace
/// the proof.
Status CheckAnswer(const QueryRequest& request,
                   const std::vector<Record>& verified_witness,
                   const QueryAnswer& claimed);

/// Folds per-shard partial answers (ascending shard = ascending key order)
/// into the composite answer for the whole range: counts and sums add,
/// extrema fold, scan/point rows concatenate, and top-k re-ranks the
/// per-shard winners and cuts back to the limit. The fold is exactly what
/// a sharded deployment's router tier computes, and the composite verifier
/// re-runs it over the per-slice answers it has individually verified.
QueryAnswer MergeAnswers(const QueryRequest& request,
                         const std::vector<QueryAnswer>& parts);

}  // namespace sae::dbms

#endif  // SAE_DBMS_QUERY_H_
