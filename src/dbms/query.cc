// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the verified query-plan layer (dbms/query.h): the shared
// derivation rule EvaluateAnswer, the client-side recomputation check
// CheckAnswer, and the cross-shard partial-answer fold MergeAnswers.

#include "dbms/query.h"

#include <algorithm>
#include <string>

namespace sae::dbms {

namespace {

// Top-k rank order: descending key, then descending id. Total and
// deterministic for any record multiset the trees can store.
bool TopKBefore(const Record& a, const Record& b) {
  return a.key != b.key ? a.key > b.key : a.id > b.id;
}

void RankTopK(std::vector<Record>* records, uint32_t limit) {
  std::sort(records->begin(), records->end(), TopKBefore);
  if (records->size() > limit) records->resize(limit);
}

}  // namespace

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kScan:
      return "scan";
    case QueryOp::kPoint:
      return "point";
    case QueryOp::kCount:
      return "count";
    case QueryOp::kSum:
      return "sum";
    case QueryOp::kMin:
      return "min";
    case QueryOp::kMax:
      return "max";
    case QueryOp::kTopK:
      return "topk";
  }
  return "unknown";
}

QueryAnswer EvaluateAnswer(const QueryRequest& request,
                           const std::vector<Record>& range_records) {
  QueryAnswer answer;
  answer.op = request.op;
  answer.count = range_records.size();
  for (const Record& record : range_records) {
    answer.sum += record.key;
    if (!answer.has_extrema) {
      answer.has_extrema = true;
      answer.min_key = answer.max_key = record.key;
    } else {
      answer.min_key = std::min(answer.min_key, record.key);
      answer.max_key = std::max(answer.max_key, record.key);
    }
  }
  switch (request.op) {
    case QueryOp::kTopK:
      answer.records = range_records;
      RankTopK(&answer.records, request.limit);
      break;
    case QueryOp::kScan:
    case QueryOp::kPoint:
      // The rows are the witness itself — shipped and held once by the
      // protocol layer, never duplicated into the answer.
    case QueryOp::kCount:
    case QueryOp::kSum:
    case QueryOp::kMin:
    case QueryOp::kMax:
      break;
  }
  return answer;
}

Status CheckAnswer(const QueryRequest& request,
                   const std::vector<Record>& verified_witness,
                   const QueryAnswer& claimed) {
  if (claimed.op != request.op) {
    return Status::VerificationFailure(
        std::string("answer operator mismatch: asked ") +
        QueryOpName(request.op) + ", answered " + QueryOpName(claimed.op));
  }
  QueryAnswer expect = EvaluateAnswer(request, verified_witness);
  if (claimed.count != expect.count) {
    return Status::VerificationFailure(
        "claimed COUNT " + std::to_string(claimed.count) +
        " does not match the authenticated result set (" +
        std::to_string(expect.count) + ")");
  }
  if (claimed.sum != expect.sum) {
    return Status::VerificationFailure(
        "claimed SUM " + std::to_string(claimed.sum) +
        " does not match the authenticated result set (" +
        std::to_string(expect.sum) + ")");
  }
  if (claimed.has_extrema != expect.has_extrema ||
      claimed.min_key != expect.min_key ||
      claimed.max_key != expect.max_key) {
    return Status::VerificationFailure(
        "claimed MIN/MAX do not match the authenticated result set");
  }
  if (claimed.records != expect.records) {
    return Status::VerificationFailure(
        std::string("claimed ") + QueryOpName(request.op) +
        " rows do not match the authenticated result set (" +
        std::to_string(claimed.records.size()) + " claimed, " +
        std::to_string(expect.records.size()) + " derived)");
  }
  return Status::OK();
}

QueryAnswer MergeAnswers(const QueryRequest& request,
                         const std::vector<QueryAnswer>& parts) {
  QueryAnswer merged;
  merged.op = request.op;
  for (const QueryAnswer& part : parts) {
    merged.count += part.count;
    merged.sum += part.sum;
    if (part.has_extrema) {
      if (!merged.has_extrema) {
        merged.has_extrema = true;
        merged.min_key = part.min_key;
        merged.max_key = part.max_key;
      } else {
        merged.min_key = std::min(merged.min_key, part.min_key);
        merged.max_key = std::max(merged.max_key, part.max_key);
      }
    }
    // Parts arrive in ascending shard (= ascending key) order, so plain
    // concatenation keeps scan/point rows sorted; top-k re-ranks below.
    merged.records.insert(merged.records.end(), part.records.begin(),
                          part.records.end());
  }
  if (request.op == QueryOp::kTopK) {
    RankTopK(&merged.records, request.limit);
  }
  return merged;
}

}  // namespace sae::dbms
