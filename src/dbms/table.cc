// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements Table (dbms/table.h): heap-file storage plus B+-tree index
// with separate buffer pools, range queries, updates, and snapshot/reopen.

#include "dbms/table.h"

#include <algorithm>

#include "util/macros.h"

namespace sae::dbms {

Result<std::unique_ptr<Table>> Table::Create(BufferPool* index_pool,
                                             BufferPool* heap_pool,
                                             size_t record_size) {
  auto table = std::unique_ptr<Table>(new Table(heap_pool, record_size));
  SAE_ASSIGN_OR_RETURN(table->index_, btree::BPlusTree::Create(index_pool));
  return table;
}

Status Table::Insert(const Record& record) {
  if (rid_of_id_.count(record.id) > 0) {
    return Status::AlreadyExists("record id already present");
  }
  std::vector<uint8_t> bytes = codec_.Serialize(record);
  SAE_ASSIGN_OR_RETURN(Rid rid, heap_.Insert(bytes.data()));
  Status st = index_->Insert(record.key, rid);
  if (!st.ok()) {
    SAE_CHECK_OK(heap_.Delete(rid));
    return st;
  }
  rid_of_id_[record.id] = rid;
  return Status::OK();
}

Status Table::Delete(RecordId id) {
  auto it = rid_of_id_.find(id);
  if (it == rid_of_id_.end()) {
    return Status::NotFound("no record with this id");
  }
  Rid rid = it->second;
  std::vector<uint8_t> bytes(codec_.record_size());
  SAE_RETURN_NOT_OK(heap_.Get(rid, bytes.data()));
  Record record = codec_.Deserialize(bytes.data());
  SAE_RETURN_NOT_OK(index_->Delete(record.key, rid));
  SAE_RETURN_NOT_OK(heap_.Delete(rid));
  rid_of_id_.erase(it);
  return Status::OK();
}

Status Table::Update(const Record& record) {
  SAE_RETURN_NOT_OK(Delete(record.id));
  return Insert(record);
}

Result<Record> Table::Get(RecordId id) const {
  auto it = rid_of_id_.find(id);
  if (it == rid_of_id_.end()) {
    return Status::NotFound("no record with this id");
  }
  std::vector<uint8_t> bytes(codec_.record_size());
  SAE_RETURN_NOT_OK(heap_.Get(it->second, bytes.data()));
  return codec_.Deserialize(bytes.data());
}

Status Table::RangeQuery(Key lo, Key hi, std::vector<Record>* out) const {
  std::vector<btree::BTreeEntry> postings;
  SAE_RETURN_NOT_OK(index_->RangeSearch(lo, hi, &postings));
  std::vector<Rid> rids;
  rids.reserve(postings.size());
  for (const auto& posting : postings) rids.push_back(posting.rid);
  out->reserve(out->size() + rids.size());
  return heap_.GetMany(rids, [&](size_t, const uint8_t* data) {
    out->push_back(codec_.Deserialize(data));
  });
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x54425353u;  // "TBSS"
}

void Table::WriteSnapshot(ByteWriter* out) const {
  out->PutU32(kSnapshotMagic);
  out->PutU32(uint32_t(codec_.record_size()));
  heap_.WriteSnapshot(out);
  index_->WriteSnapshot(out);
  out->PutU64(rid_of_id_.size());
  for (const auto& [id, rid] : rid_of_id_) {
    out->PutU64(id);
    out->PutU64(rid);
  }
}

Result<std::unique_ptr<Table>> Table::OpenSnapshot(BufferPool* index_pool,
                                                   BufferPool* heap_pool,
                                                   ByteReader* in) {
  if (in->GetU32() != kSnapshotMagic) {
    return Status::Corruption("not a table snapshot");
  }
  size_t record_size = in->GetU32();
  auto table = std::unique_ptr<Table>(new Table(heap_pool, record_size));
  SAE_RETURN_NOT_OK(table->heap_.RestoreSnapshot(in));
  SAE_ASSIGN_OR_RETURN(table->index_,
                       btree::BPlusTree::OpenSnapshot(index_pool, in));
  uint64_t catalog_size = in->GetU64();
  for (uint64_t i = 0; i < catalog_size; ++i) {
    RecordId id = in->GetU64();
    Rid rid = in->GetU64();
    table->rid_of_id_[id] = rid;
  }
  if (in->failed()) return Status::Corruption("truncated table snapshot");
  return table;
}

Status Table::BulkLoad(const std::vector<Record>& sorted_by_key) {
  if (size() != 0) {
    return Status::InvalidArgument("bulk load requires an empty table");
  }
  for (size_t i = 1; i < sorted_by_key.size(); ++i) {
    if (sorted_by_key[i - 1].key > sorted_by_key[i].key) {
      return Status::InvalidArgument("records not sorted by key");
    }
  }
  std::vector<btree::BTreeEntry> postings;
  postings.reserve(sorted_by_key.size());
  std::vector<uint8_t> bytes(codec_.record_size());
  for (const Record& record : sorted_by_key) {
    if (!rid_of_id_.emplace(record.id, 0).second) {
      return Status::InvalidArgument("duplicate record id in dataset");
    }
    codec_.Serialize(record, bytes.data());
    SAE_ASSIGN_OR_RETURN(Rid rid, heap_.Insert(bytes.data()));
    rid_of_id_[record.id] = rid;
    postings.push_back(btree::BTreeEntry{record.key, rid});
  }
  return index_->BulkLoad(postings);
}

}  // namespace sae::dbms
