// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The "conventional DBMS" the SP runs under SAE (paper §II): a heap file of
// fixed-size records plus a plain B+-tree on the query attribute. Index and
// dataset pages live in *separate* buffer pools so experiments can account
// index node accesses and dataset-page fetches independently (see the Fig. 6
// cost-accounting note in docs/ARCHITECTURE.md §5.1).

#ifndef SAE_DBMS_TABLE_H_
#define SAE_DBMS_TABLE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::dbms {

using storage::BufferPool;
using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;
using storage::Rid;

/// A single-attribute-indexed relational table.
class Table {
 public:
  /// \param index_pool buffer pool for B+-tree pages (not owned)
  /// \param heap_pool  buffer pool for dataset pages (not owned)
  static Result<std::unique_ptr<Table>> Create(BufferPool* index_pool,
                                               BufferPool* heap_pool,
                                               size_t record_size);

  /// Inserts a record; the record id must be unique.
  Status Insert(const Record& record);

  /// Deletes the record with the given id.
  Status Delete(RecordId id);

  /// Replaces the record with `record.id` (key changes are handled).
  Status Update(const Record& record);

  Result<Record> Get(RecordId id) const;

  /// All records with lo <= key <= hi, in key order. Dataset pages are
  /// fetched once per page run, as a real executor would.
  Status RangeQuery(Key lo, Key hi, std::vector<Record>* out) const;

  /// Loads a key-sorted dataset into an empty table (records are placed in
  /// key order, so range results are clustered).
  Status BulkLoad(const std::vector<Record>& sorted_by_key);

  size_t size() const { return heap_.size(); }
  const btree::BPlusTree& index() const { return *index_; }
  const storage::HeapFile& heap() const { return heap_; }
  const RecordCodec& codec() const { return codec_; }

  size_t IndexSizeBytes() const { return index_->SizeBytes(); }
  size_t HeapSizeBytes() const { return heap_.SizeBytes(); }

  /// Serializes the table's volatile metadata (heap directory, index meta,
  /// id catalog) so the table can reopen against the same page stores —
  /// e.g. after an SP restart, without the DO re-shipping the dataset.
  void WriteSnapshot(ByteWriter* out) const;

  /// Re-attaches a table persisted with WriteSnapshot.
  static Result<std::unique_ptr<Table>> OpenSnapshot(BufferPool* index_pool,
                                                     BufferPool* heap_pool,
                                                     ByteReader* in);

 private:
  Table(BufferPool* heap_pool, size_t record_size)
      : codec_(record_size), heap_(heap_pool, record_size) {}

  RecordCodec codec_;
  storage::HeapFile heap_;
  std::unique_ptr<btree::BPlusTree> index_;
  // DBMS catalog: record id -> physical location. Held in memory, as a
  // system catalog would be.
  std::unordered_map<RecordId, Rid> rid_of_id_;
};

}  // namespace sae::dbms

#endif  // SAE_DBMS_TABLE_H_
