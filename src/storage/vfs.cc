// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements RealVfs (storage/vfs.h): POSIX-backed files where Sync() is
// fsync(2) and Rename() is rename(2) followed by an fsync of the parent
// directory — the standard atomic-replace durability protocol.

#include "storage/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sae::storage {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

class RealVfsFile final : public VfsFile {
 public:
  explicit RealVfsFile(int fd) : fd_(fd) {}
  ~RealVfsFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, uint8_t* buf,
                        size_t n) const override {
    size_t done = 0;
    while (done < n) {
      ssize_t got = ::pread(fd_, buf + done, n - done, off_t(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("pread", "fd"));
      }
      if (got == 0) break;  // EOF
      done += size_t(got);
    }
    return done;
  }

  Status WriteAt(uint64_t offset, const uint8_t* buf, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t put = ::pwrite(fd_, buf + done, n - done, off_t(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("pwrite", "fd"));
      }
      done += size_t(put);
    }
    return Status::OK();
  }

  Status Append(const uint8_t* buf, size_t n) override {
    SAE_ASSIGN_OR_RETURN(uint64_t size, Size());
    return WriteAt(size, buf, n);
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError(ErrnoMessage("fstat", "fd"));
    }
    return uint64_t(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, off_t(size)) != 0) {
      return Status::IoError(ErrnoMessage("ftruncate", "fd"));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync", "fd"));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class RealVfs final : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        bool create) override {
    int flags = O_RDWR | (create ? O_CREAT : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IoError(ErrnoMessage("open", path));
    }
    return std::unique_ptr<VfsFile>(new RealVfsFile(fd));
  }

  bool Exists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename", from + " -> " + to));
    }
    // Make the name change durable: fsync the parent directory.
    int dir = ::open(ParentDir(to).c_str(), O_RDONLY | O_DIRECTORY);
    if (dir < 0) return Status::IoError(ErrnoMessage("open dir", to));
    int rc = ::fsync(dir);
    ::close(dir);
    if (rc != 0) return Status::IoError(ErrnoMessage("fsync dir", to));
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> List(const std::string& dir) const override {
    std::vector<std::string> names;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return names;
      return Status::IoError(ErrnoMessage("opendir", dir));
    }
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status MkDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError(ErrnoMessage("mkdir", path));
    }
    return Status::OK();
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static RealVfs instance;
  return &instance;
}

}  // namespace sae::storage
