// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the segmented write-ahead log (storage/wal.h): CRC-32, the
// per-segment prefix scan that defines recoverability, segment rotation and
// drop, and the stage/commit group sequencer.

#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/codec.h"

namespace sae::storage {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

constexpr const char* kWalPrefix = "wal-";
constexpr size_t kWalSeqDigits = 20;  // zero-padded u64 — names sort by seq

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ data[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<WalContents> ReadLog(Vfs* vfs, const std::string& path) {
  WalContents out;
  if (!vfs->Exists(path)) return out;
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Open(path, false));
  SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());

  uint64_t offset = 0;
  uint8_t header[kWalRecordHeader];
  while (offset + kWalRecordHeader <= size) {
    SAE_ASSIGN_OR_RETURN(size_t got,
                         file->ReadAt(offset, header, kWalRecordHeader));
    if (got < kWalRecordHeader) break;  // torn header
    uint32_t len = DecodeU32(header);
    uint32_t crc = DecodeU32(header + 4);
    // A lying length prefix (absurd size or past EOF) ends the valid
    // prefix before any allocation happens.
    if (len > kMaxWalPayload || offset + kWalRecordHeader + len > size) break;
    std::vector<uint8_t> payload(len);
    SAE_ASSIGN_OR_RETURN(
        got, file->ReadAt(offset + kWalRecordHeader, payload.data(), len));
    if (got < len || Crc32(payload.data(), len) != crc) break;
    out.records.push_back(std::move(payload));
    offset += kWalRecordHeader + len;
  }
  out.valid_bytes = offset;
  out.torn_tail = offset < size;
  return out;
}

bool ParseWalSegmentName(const std::string& name, uint64_t* seq) {
  if (name.size() != std::string(kWalPrefix).size() + kWalSeqDigits) {
    return false;
  }
  if (name.compare(0, 4, kWalPrefix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = 4; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + uint64_t(name[i] - '0');
  }
  *seq = value;
  return true;
}

std::string WalSegmentName(uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%020llu", kWalPrefix,
                static_cast<unsigned long long>(seq));
  return name;
}

std::string WriteAheadLog::SegmentPath(uint64_t seq) const {
  return dir_ + "/" + WalSegmentName(seq);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    Vfs* vfs, const std::string& dir, WalContents* contents) {
  SAE_RETURN_NOT_OK(vfs->MkDir(dir));
  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(vfs, dir));

  std::vector<uint64_t> seqs;
  SAE_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs->List(dir));
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  WalContents all;
  bool cut = false;  // a torn tail ended the global prefix
  uint64_t last_live = 0;
  for (uint64_t seq : seqs) {
    if (cut) {
      // A valid record can never legitimately follow a torn one: every
      // later segment is post-crash garbage.
      SAE_RETURN_NOT_OK(vfs->Remove(log->SegmentPath(seq)));
      continue;
    }
    SAE_ASSIGN_OR_RETURN(WalContents scanned,
                         ReadLog(vfs, log->SegmentPath(seq)));
    uint64_t running = 0;
    for (std::vector<uint8_t>& record : scanned.records) {
      running += kWalRecordHeader + record.size();
      log->open_record_pos_.push_back({seq, running});
      all.records.push_back(std::move(record));
    }
    all.valid_bytes += scanned.valid_bytes;
    log->sealed_bytes_[seq] = scanned.valid_bytes;
    last_live = seq;
    if (scanned.torn_tail) {
      all.torn_tail = true;
      cut = true;
      // Drop the torn/corrupt tail so future stages extend a valid prefix.
      // Volatile until the next sync — harmless, since the scan would cut
      // the same tail again after a crash.
      SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                           vfs->Open(log->SegmentPath(seq), false));
      SAE_RETURN_NOT_OK(file->Truncate(scanned.valid_bytes));
    }
  }

  if (last_live != 0) {
    // The highest surviving segment becomes the active one.
    log->active_seq_ = last_live;
    log->end_ = log->sealed_bytes_[last_live];
    log->sealed_bytes_.erase(last_live);
    log->open_first_segment_ = seqs.front();
  }
  log->prev_end_ = log->end_;
  log->staged_count_ = log->durable_count_ = all.records.size();
  if (contents != nullptr) *contents = std::move(all);
  return log;
}

Status WriteAheadLog::EnsureActiveOpenLocked() {
  if (active_file_ != nullptr) return Status::OK();
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                       vfs_->Open(SegmentPath(active_seq_), true));
  active_file_ = std::shared_ptr<VfsFile>(std::move(file));
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Stage(const uint8_t* payload, size_t len) {
  if (len > kMaxWalPayload) {
    return Status::InvalidArgument("wal record exceeds payload cap");
  }
  std::unique_lock<std::mutex> lock(mu_);
  SAE_RETURN_NOT_OK(EnsureActiveOpenLocked());
  uint8_t header[kWalRecordHeader];
  EncodeU32(header, uint32_t(len));
  EncodeU32(header + 4, Crc32(payload, len));
  SAE_RETURN_NOT_OK(active_file_->WriteAt(end_, header, kWalRecordHeader));
  SAE_RETURN_NOT_OK(
      active_file_->WriteAt(end_ + kWalRecordHeader, payload, len));
  prev_end_ = end_;
  end_ += kWalRecordHeader + len;
  ++staged_count_;
  ++stats_.staged_records;
  stats_.staged_bytes += kWalRecordHeader + len;
  cv_.notify_all();  // a leader delaying for stragglers may pick this up
  return staged_count_;
}

Status WriteAheadLog::Commit(uint64_t seq, uint32_t max_delay_us) {
  std::unique_lock<std::mutex> lock(mu_);
  while (durable_count_ < seq) {
    if (sync_in_flight_) {
      // Someone else's fsync is running; it may cover us. Re-check after.
      cv_.wait(lock);
      continue;
    }
    // Become the group leader: one fsync for everything staged so far.
    sync_in_flight_ = true;
    if (max_delay_us > 0) {
      // Let concurrent stagers join the group before the fsync is priced.
      cv_.wait_for(lock, std::chrono::microseconds(max_delay_us));
    }
    uint64_t target = staged_count_;
    std::shared_ptr<VfsFile> file = active_file_;
    lock.unlock();
    Status st = file != nullptr ? file->Sync() : Status::OK();
    lock.lock();
    sync_in_flight_ = false;
    if (!st.ok()) {
      // Wake everyone; each waiter retries as its own leader and surfaces
      // its own failure — nobody reports durable on the strength of a
      // failed fsync.
      cv_.notify_all();
      return st;
    }
    ++stats_.syncs;
    if (target > durable_count_) {
      stats_.synced_records += target - durable_count_;
      durable_count_ = target;
    }
    cv_.notify_all();
  }
  return Status::OK();
}

Status WriteAheadLog::Append(const uint8_t* payload, size_t len) {
  SAE_ASSIGN_OR_RETURN(uint64_t seq, Stage(payload, len));
  return Commit(seq, 0);
}

Status WriteAheadLog::UndoLastStaged() {
  std::unique_lock<std::mutex> lock(mu_);
  if (prev_end_ > end_ || staged_count_ == 0) {
    return Status::InvalidArgument("no staged record to undo");
  }
  if (prev_end_ == end_) return Status::OK();  // already undone
  SAE_RETURN_NOT_OK(EnsureActiveOpenLocked());
  SAE_RETURN_NOT_OK(active_file_->Truncate(prev_end_));
  SAE_RETURN_NOT_OK(active_file_->Sync());  // one sync point, as TruncateTo
  end_ = prev_end_;
  --staged_count_;
  if (durable_count_ > staged_count_) durable_count_ = staged_count_;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Rotate() {
  std::unique_lock<std::mutex> lock(mu_);
  if (end_ == 0) {
    // Nothing staged into the active segment since the last seal: no new
    // segment needed; everything strictly older is what the checkpoint
    // covers.
    return active_seq_ - 1;
  }
  // All staged records must be durable before the seal — normally they
  // already are (checkpoints capture at a quiescent point, after every
  // staged update committed and applied), making this loop barrier-free.
  while (durable_count_ < staged_count_) {
    if (sync_in_flight_) {
      cv_.wait(lock);
      continue;
    }
    sync_in_flight_ = true;
    uint64_t target = staged_count_;
    std::shared_ptr<VfsFile> file = active_file_;
    lock.unlock();
    Status st = file != nullptr ? file->Sync() : Status::OK();
    lock.lock();
    sync_in_flight_ = false;
    cv_.notify_all();
    if (!st.ok()) return st;
    ++stats_.syncs;
    if (target > durable_count_) {
      stats_.synced_records += target - durable_count_;
      durable_count_ = target;
    }
  }
  uint64_t sealed = active_seq_;
  sealed_bytes_[sealed] = end_;
  active_seq_ = sealed + 1;
  active_file_.reset();
  end_ = 0;
  prev_end_ = 0;
  return sealed;
}

Status WriteAheadLog::DropSegmentsThrough(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = sealed_bytes_.begin(); it != sealed_bytes_.end();) {
    if (it->first > seq) break;
    const std::string path = SegmentPath(it->first);
    if (vfs_->Exists(path)) SAE_RETURN_NOT_OK(vfs_->Remove(path));
    it = sealed_bytes_.erase(it);
  }
  return Status::OK();
}

Status WriteAheadLog::TruncateAfterRecord(size_t keep) {
  std::unique_lock<std::mutex> lock(mu_);
  if (keep >= open_record_pos_.size()) return Status::OK();
  RecordPos pos = keep > 0 ? open_record_pos_[keep - 1]
                           : RecordPos{open_first_segment_, 0};
  // Remove every segment past the cut point; the cut segment becomes the
  // active one, truncated to the last kept record.
  for (auto it = sealed_bytes_.upper_bound(pos.segment);
       it != sealed_bytes_.end();) {
    const std::string path = SegmentPath(it->first);
    if (vfs_->Exists(path)) SAE_RETURN_NOT_OK(vfs_->Remove(path));
    it = sealed_bytes_.erase(it);
  }
  if (active_seq_ != pos.segment) {
    const std::string path = SegmentPath(active_seq_);
    if (vfs_->Exists(path)) SAE_RETURN_NOT_OK(vfs_->Remove(path));
    active_file_.reset();
    active_seq_ = pos.segment;
    sealed_bytes_.erase(pos.segment);
  }
  end_ = pos.end_offset;
  prev_end_ = pos.end_offset;
  SAE_RETURN_NOT_OK(EnsureActiveOpenLocked());
  // Volatile until the next sync — the scan would cut the same tail again.
  SAE_RETURN_NOT_OK(active_file_->Truncate(end_));
  staged_count_ = durable_count_ = keep;
  open_record_pos_.resize(keep);
  return Status::OK();
}

uint64_t WriteAheadLog::size_bytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t total = end_;
  for (const auto& [seq, bytes] : sealed_bytes_) total += bytes;
  return total;
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sae::storage
