// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the write-ahead log (storage/wal.h): CRC-32, the prefix scan
// that defines recoverability, and the append/sync/reset handle.

#include "storage/wal.h"

#include "util/codec.h"

namespace sae::storage {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ data[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<WalContents> ReadLog(Vfs* vfs, const std::string& path) {
  WalContents out;
  if (!vfs->Exists(path)) return out;
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Open(path, false));
  SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());

  uint64_t offset = 0;
  uint8_t header[kWalRecordHeader];
  while (offset + kWalRecordHeader <= size) {
    SAE_ASSIGN_OR_RETURN(size_t got,
                         file->ReadAt(offset, header, kWalRecordHeader));
    if (got < kWalRecordHeader) break;  // torn header
    uint32_t len = DecodeU32(header);
    uint32_t crc = DecodeU32(header + 4);
    // A lying length prefix (absurd size or past EOF) ends the valid
    // prefix before any allocation happens.
    if (len > kMaxWalPayload || offset + kWalRecordHeader + len > size) break;
    std::vector<uint8_t> payload(len);
    SAE_ASSIGN_OR_RETURN(
        got, file->ReadAt(offset + kWalRecordHeader, payload.data(), len));
    if (got < len || Crc32(payload.data(), len) != crc) break;
    out.records.push_back(std::move(payload));
    offset += kWalRecordHeader + len;
  }
  out.valid_bytes = offset;
  out.torn_tail = offset < size;
  return out;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    Vfs* vfs, const std::string& path, WalContents* contents) {
  SAE_ASSIGN_OR_RETURN(WalContents scanned, ReadLog(vfs, path));
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Open(path, true));
  SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (scanned.valid_bytes < size) {
    // Drop the torn/corrupt tail so future appends extend a valid prefix.
    // Volatile until the next append's sync — harmless, since the scan
    // would cut the same tail again after a crash.
    SAE_RETURN_NOT_OK(file->Truncate(scanned.valid_bytes));
  }
  uint64_t end = scanned.valid_bytes;
  if (contents != nullptr) *contents = std::move(scanned);
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(file), end));
}

Status WriteAheadLog::Append(const uint8_t* payload, size_t len) {
  if (len > kMaxWalPayload) {
    return Status::InvalidArgument("wal record exceeds payload cap");
  }
  uint8_t header[kWalRecordHeader];
  EncodeU32(header, uint32_t(len));
  EncodeU32(header + 4, Crc32(payload, len));
  SAE_RETURN_NOT_OK(file_->WriteAt(end_, header, kWalRecordHeader));
  SAE_RETURN_NOT_OK(file_->WriteAt(end_ + kWalRecordHeader, payload, len));
  SAE_RETURN_NOT_OK(file_->Sync());
  end_ += kWalRecordHeader + len;
  return Status::OK();
}

Status WriteAheadLog::Reset() { return TruncateTo(0); }

Status WriteAheadLog::TruncateTo(uint64_t offset) {
  if (offset > end_) {
    return Status::InvalidArgument("wal truncation past the valid end");
  }
  SAE_RETURN_NOT_OK(file_->Truncate(offset));
  SAE_RETURN_NOT_OK(file_->Sync());
  end_ = offset;
  return Status::OK();
}

}  // namespace sae::storage
