// Copyright (c) saedb authors. Licensed under the MIT license.
//
// PageStore: the persistence boundary. Two implementations:
//  * InMemoryPageStore — pages live on the heap; used by the experiment
//    harness so that disk latency is modeled exclusively by the paper's
//    10 ms/node-access charge instead of the host machine's SSD.
//  * FilePageStore — page reads/writes against a real file through the Vfs
//    seam (storage/vfs.h); proves the formats are genuinely disk-resident,
//    is exercised by tests, and participates in crash injection when built
//    over a FaultFs.

#ifndef SAE_STORAGE_PAGE_STORE_H_
#define SAE_STORAGE_PAGE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/vfs.h"
#include "util/status.h"

namespace sae::storage {

/// Abstract page-granular storage with an allocate/free life cycle.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Allocates a zeroed page and returns its id (may reuse freed pages).
  virtual Result<PageId> Allocate() = 0;

  /// Returns a page to the free list. Freeing an unallocated page is an
  /// error.
  virtual Status Free(PageId id) = 0;

  virtual Status Read(PageId id, Page* out) const = 0;
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Pages currently allocated (live), excluding freed ones.
  virtual size_t LivePageCount() const = 0;

  /// Total footprint in bytes (live pages * page size).
  size_t SizeBytes() const { return LivePageCount() * kPageSize; }
};

/// Heap-backed store.
class InMemoryPageStore final : public PageStore {
 public:
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) const override;
  Status Write(PageId id, const Page& page) override;
  size_t LivePageCount() const override { return live_count_; }

 private:
  bool IsLive(PageId id) const {
    return id < pages_.size() && pages_[id] != nullptr;
  }

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
  size_t live_count_ = 0;
};

/// File-backed store (single file, pages addressed by offset). Routed
/// through a Vfs (default: the real POSIX one) so crash tests can swap in
/// a FaultFs.
class FilePageStore final : public PageStore {
 public:
  /// Creates or truncates `path`.
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, Vfs* vfs = nullptr);

  /// Opens an existing page file. Every page currently in the file is
  /// treated as live; pages freed before the restart become unreachable
  /// slack until they are allocated again (the usual trade-off of keeping
  /// the free list in memory). A file whose size is not page-aligned is
  /// rejected as corrupt — use OpenForRecovery after a crash.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path,
                                                     Vfs* vfs = nullptr);

  /// Crash-tolerant open: a partially written final page (the state a
  /// power loss mid-write leaves behind) is cut off instead of rejected,
  /// and `*truncated_pages` (optional) reports whether a torn tail was
  /// dropped. Only the complete pages are trusted.
  static Result<std::unique_ptr<FilePageStore>> OpenForRecovery(
      const std::string& path, Vfs* vfs = nullptr,
      bool* truncated_tail = nullptr);

  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) const override;
  Status Write(PageId id, const Page& page) override;
  size_t LivePageCount() const override { return live_count_; }

  /// Durability barrier for all pages written so far (one sync point).
  Status Sync();

 private:
  explicit FilePageStore(std::unique_ptr<VfsFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<VfsFile> file_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  size_t live_count_ = 0;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_PAGE_STORE_H_
