// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the PageStore backends (storage/page_store.h): the heap-backed
// InMemoryPageStore and the file-backed FilePageStore.

#include "storage/page_store.h"

namespace sae::storage {

Result<PageId> InMemoryPageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = std::make_unique<Page>();
  } else {
    id = static_cast<PageId>(pages_.size());
    if (id == kInvalidPageId) {
      return Status::OutOfRange("page id space exhausted");
    }
    pages_.push_back(std::make_unique<Page>());
  }
  ++live_count_;
  return id;
}

Status InMemoryPageStore::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("freeing unallocated page");
  }
  pages_[id].reset();
  free_list_.push_back(id);
  --live_count_;
  return Status::OK();
}

Status InMemoryPageStore::Read(PageId id, Page* out) const {
  if (!IsLive(id)) {
    return Status::InvalidArgument("reading unallocated page");
  }
  *out = *pages_[id];
  return Status::OK();
}

Status InMemoryPageStore::Write(PageId id, const Page& page) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("writing unallocated page");
  }
  *pages_[id] = page;
  return Status::OK();
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path, Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Open(path, true));
  SAE_RETURN_NOT_OK(file->Truncate(0));
  return std::unique_ptr<FilePageStore>(new FilePageStore(std::move(file)));
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path, Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Open(path, false));
  SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    return Status::Corruption("page file size is not page-aligned");
  }
  auto store = std::unique_ptr<FilePageStore>(new FilePageStore(std::move(file)));
  store->live_.assign(size_t(size / kPageSize), true);
  store->live_count_ = store->live_.size();
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenForRecovery(
    const std::string& path, Vfs* vfs, bool* truncated_tail) {
  if (vfs == nullptr) vfs = Vfs::Default();
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Open(path, false));
  SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  uint64_t aligned = size - size % kPageSize;
  if (aligned != size) {
    // A crash mid page write left a torn final page; only the complete
    // pages are trusted.
    SAE_RETURN_NOT_OK(file->Truncate(aligned));
  }
  if (truncated_tail != nullptr) *truncated_tail = aligned != size;
  auto store = std::unique_ptr<FilePageStore>(new FilePageStore(std::move(file)));
  store->live_.assign(size_t(aligned / kPageSize), true);
  store->live_count_ = store->live_.size();
  return store;
}

Result<PageId> FilePageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    live_[id] = true;
  } else {
    id = static_cast<PageId>(live_.size());
    if (id == kInvalidPageId) {
      return Status::OutOfRange("page id space exhausted");
    }
    live_.push_back(true);
  }
  ++live_count_;
  // Zero the page on disk so Read-after-Allocate is well-defined.
  Page zero;
  Status st = Write(id, zero);
  if (!st.ok()) return st;
  return id;
}

Status FilePageStore::Free(PageId id) {
  if (id >= live_.size() || !live_[id]) {
    return Status::InvalidArgument("freeing unallocated page");
  }
  live_[id] = false;
  free_list_.push_back(id);
  --live_count_;
  return Status::OK();
}

Status FilePageStore::Read(PageId id, Page* out) const {
  if (id >= live_.size() || !live_[id]) {
    return Status::InvalidArgument("reading unallocated page");
  }
  SAE_ASSIGN_OR_RETURN(
      size_t got,
      file_->ReadAt(uint64_t(id) * kPageSize, out->bytes(), kPageSize));
  if (got != kPageSize) return Status::IoError("short read");
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const Page& page) {
  if (id >= live_.size() || !live_[id]) {
    return Status::InvalidArgument("writing unallocated page");
  }
  return file_->WriteAt(uint64_t(id) * kPageSize, page.bytes(), kPageSize);
}

Status FilePageStore::Sync() { return file_->Sync(); }

}  // namespace sae::storage
