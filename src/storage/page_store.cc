// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the PageStore backends (storage/page_store.h): the heap-backed
// InMemoryPageStore and the file-backed FilePageStore.

#include "storage/page_store.h"

namespace sae::storage {

Result<PageId> InMemoryPageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = std::make_unique<Page>();
  } else {
    id = static_cast<PageId>(pages_.size());
    if (id == kInvalidPageId) {
      return Status::OutOfRange("page id space exhausted");
    }
    pages_.push_back(std::make_unique<Page>());
  }
  ++live_count_;
  return id;
}

Status InMemoryPageStore::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("freeing unallocated page");
  }
  pages_[id].reset();
  free_list_.push_back(id);
  --live_count_;
  return Status::OK();
}

Status InMemoryPageStore::Read(PageId id, Page* out) const {
  if (!IsLive(id)) {
    return Status::InvalidArgument("reading unallocated page");
  }
  *out = *pages_[id];
  return Status::OK();
}

Status InMemoryPageStore::Write(PageId id, const Page& page) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("writing unallocated page");
  }
  *pages_[id] = page;
  return Status::OK();
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(file));
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed");
  }
  long size = std::ftell(file);
  if (size < 0 || size % long(kPageSize) != 0) {
    std::fclose(file);
    return Status::Corruption("page file size is not page-aligned");
  }
  auto store = std::unique_ptr<FilePageStore>(new FilePageStore(file));
  store->live_.assign(size_t(size) / kPageSize, true);
  store->live_count_ = store->live_.size();
  return store;
}

FilePageStore::~FilePageStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> FilePageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    live_[id] = true;
  } else {
    id = static_cast<PageId>(live_.size());
    if (id == kInvalidPageId) {
      return Status::OutOfRange("page id space exhausted");
    }
    live_.push_back(true);
  }
  ++live_count_;
  // Zero the page on disk so Read-after-Allocate is well-defined.
  Page zero;
  Status st = Write(id, zero);
  if (!st.ok()) return st;
  return id;
}

Status FilePageStore::Free(PageId id) {
  if (id >= live_.size() || !live_[id]) {
    return Status::InvalidArgument("freeing unallocated page");
  }
  live_[id] = false;
  free_list_.push_back(id);
  --live_count_;
  return Status::OK();
}

Status FilePageStore::Read(PageId id, Page* out) const {
  if (id >= live_.size() || !live_[id]) {
    return Status::InvalidArgument("reading unallocated page");
  }
  if (std::fseek(file_, long(id) * long(kPageSize), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fread(out->bytes(), 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("short read");
  }
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const Page& page) {
  if (id >= live_.size() || !live_[id]) {
    return Status::InvalidArgument("writing unallocated page");
  }
  if (std::fseek(file_, long(id) * long(kPageSize), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(page.bytes(), 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

}  // namespace sae::storage
