// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the shared fence-key partition math (storage/key_range.h).

#include "storage/key_range.h"

#include <algorithm>
#include <string>

#include "util/macros.h"

namespace sae::storage {

size_t ShardOfKey(const std::vector<Key>& fences, Key key) {
  return size_t(std::upper_bound(fences.begin(), fences.end(), key) -
                fences.begin());
}

Key ShardLowerBound(const std::vector<Key>& fences, size_t shard) {
  SAE_CHECK(shard <= fences.size());
  return shard == 0 ? 0 : fences[shard - 1];
}

Key ShardUpperBound(const std::vector<Key>& fences, size_t shard) {
  SAE_CHECK(shard <= fences.size());
  return shard == fences.size() ? kMaxShardKey : fences[shard] - 1;
}

std::vector<KeySlice> PartitionKeyRange(const std::vector<Key>& fences,
                                        Key lo, Key hi) {
  std::vector<KeySlice> slices;
  if (lo > hi) return slices;
  size_t first = ShardOfKey(fences, lo);
  size_t last = ShardOfKey(fences, hi);
  slices.reserve(last - first + 1);
  for (size_t s = first; s <= last; ++s) {
    slices.push_back(KeySlice{s, std::max(lo, ShardLowerBound(fences, s)),
                              std::min(hi, ShardUpperBound(fences, s))});
  }
  return slices;
}

Status VerifyKeyCover(const std::vector<Key>& fences, Key lo, Key hi,
                      const std::vector<KeySlice>& slices) {
  std::vector<KeySlice> expected = PartitionKeyRange(fences, lo, hi);
  if (slices.size() != expected.size()) {
    return Status::VerificationFailure(
        "answer covers " + std::to_string(slices.size()) +
        " shard slice(s), the fences require " +
        std::to_string(expected.size()));
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!(slices[i] == expected[i])) {
      return Status::VerificationFailure(
          "slice " + std::to_string(i) +
          " does not match the trusted fence partition (shard " +
          std::to_string(expected[i].shard) + " owns [" +
          std::to_string(expected[i].lo) + ", " +
          std::to_string(expected[i].hi) + "])");
    }
  }
  return Status::OK();
}

Status VerifyCompositeSlices(
    const std::vector<Key>& fences, Key lo, Key hi,
    const std::vector<KeySlice>& slices,
    const std::vector<uint64_t>& published_epochs,
    const std::function<Status(size_t index, const KeySlice& slice,
                               uint64_t published_epoch)>& verify_slice,
    std::vector<std::pair<size_t, Status>>* per_shard) {
  if (per_shard != nullptr) per_shard->clear();
  SAE_RETURN_NOT_OK(VerifyKeyCover(fences, lo, hi, slices));
  std::vector<std::pair<size_t, Status>> verdicts;
  verdicts.reserve(slices.size());
  for (size_t i = 0; i < slices.size(); ++i) {
    uint64_t published = slices[i].shard < published_epochs.size()
                             ? published_epochs[slices[i].shard]
                             : 0;
    verdicts.emplace_back(slices[i].shard,
                          verify_slice(i, slices[i], published));
  }
  if (per_shard != nullptr) *per_shard = verdicts;
  return CombineShardStatuses(verdicts);
}

}  // namespace sae::storage
