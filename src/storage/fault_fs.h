// Copyright (c) saedb authors. Licensed under the MIT license.
//
// FaultFs: the deterministic crash-injection file system behind the
// recovery proofs. It keeps TWO images of every file — the DURABLE bytes
// (what survives power loss) and the CURRENT bytes (durable + everything
// written since the last barrier) — and counts every durability barrier
// (VfsFile::Sync, Vfs::Rename) as a numbered "sync point".
//
// Crash protocol:
//   1. fs.CrashAtSyncPoint(k)     — arm: the k-th barrier attempt fails
//      (its bytes never become durable) and the fs enters the crashed
//      state, where every subsequent operation returns kIoError — the
//      process is dead from the storage layer's point of view.
//   2. run the workload           — it aborts with kIoError somewhere.
//   3. fs.DropVolatile()          — power loss: every file reverts to its
//      durable image; never-synced files vanish. Clears the crashed state.
//   4. recover against the same fs and prove the invariants.
//
// Running the same deterministic workload for every k in [1, total sync
// points] enumerates every distinguishable durable state a real crash can
// leave behind (bytes written between two barriers are volatile, so a
// crash anywhere between barrier k and k+1 leaves the same durable image
// as failing barrier k+1).
//
// Rename models the real protocol's sharp edge: the name change is
// journaled atomically by the file system (durable at the rename barrier),
// but the file CONTENT is only durable if it was synced before the rename.
// Renaming an unsynced file destroys the destination's durable image —
// which is why the snapshot store syncs its temp file first, and what the
// recovery tests would catch if it ever stopped doing so. Remove() is
// modeled as immediately durable (resurrecting GC'ed files after a crash
// would only ever surface older epochs, which recovery orders away).

#ifndef SAE_STORAGE_FAULT_FS_H_
#define SAE_STORAGE_FAULT_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/vfs.h"

namespace sae::storage {

class FaultFs final : public Vfs {
 public:
  FaultFs() = default;

  // --- Vfs ------------------------------------------------------------------
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        bool create) override;
  bool Exists(const std::string& path) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) const override;
  Status MkDir(const std::string&) override { return Status::OK(); }

  // --- crash scheduling -------------------------------------------------------
  /// Arms the crash: barrier attempt number `k` (1-based, counted from now
  /// on) fails and flips the fs into the crashed state. 0 disarms.
  void CrashAtSyncPoint(uint64_t k);

  /// Arms a TRANSIENT fault: barrier attempt number `k` (1-based, counted
  /// from now on) fails — its bytes never become durable — but the fs
  /// stays healthy, so every subsequent operation (including a retried
  /// sync) succeeds. Models a one-off EIO, where CrashAtSyncPoint models
  /// fail-stop. One-shot; 0 disarms.
  void FailAtSyncPoint(uint64_t k);

  /// Power loss: every file reverts to its durable image (never-synced
  /// files disappear), open handles keep working against the reverted
  /// state, and the crashed flag clears so recovery can run.
  void DropVolatile();

  bool crashed() const;

  /// Barrier attempts so far (including a failed one). Run a workload with
  /// no crash armed, read this, and you have the matrix size.
  uint64_t sync_points() const;

  /// Simulated fsync cost: every successful barrier sleeps `us`
  /// microseconds while holding the fs lock, like a device draining its
  /// queue. 0 (the default) keeps barriers free — crash-matrix accounting
  /// is unaffected either way, only wall time changes. This is what makes
  /// group commit measurable on the in-memory fs: N amortized commits pay
  /// one sleep instead of N.
  void SetSyncLatency(uint32_t us);

  /// Bytes durable across all files / bytes that a crash right now would
  /// destroy (current minus durable, summed over files).
  uint64_t durable_bytes() const;
  uint64_t volatile_bytes() const;

  /// Deep copy of the file map (both images) — for staging rollback
  /// adversaries from a past on-disk state.
  std::unique_ptr<FaultFs> Clone() const;

 private:
  friend class FaultFsFile;

  struct FileState {
    std::vector<uint8_t> durable;
    std::vector<uint8_t> current;
    bool durable_exists = false;  // false until first synced (or renamed
                                  // from a synced file)
  };

  /// Returns kIoError if crashed; otherwise bumps the barrier counter and
  /// triggers the armed crash (making THIS barrier fail).
  Status Barrier();

  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  uint64_t barrier_count_ = 0;
  uint64_t crash_at_ = 0;
  uint64_t fail_at_ = 0;  // one-shot transient barrier failure
  uint32_t sync_latency_us_ = 0;
  bool crashed_ = false;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_FAULT_FS_H_
