// Copyright (c) saedb authors. Licensed under the MIT license.
//
// LRU buffer pool. All index and heap-file page traffic goes through here,
// which gives the experiments a single place to count *node accesses* — the
// paper's cost unit (10 ms each). `Stats::accesses` counts every logical
// fetch (what the paper charges); `Stats::misses` counts frame faults, which
// the buffer-capacity ablation uses.
//
// Concurrency: the pool is safe for any number of concurrent readers (and
// for readers concurrent with a single writer touching disjoint pages). An
// internal mutex guards the frame table / LRU / pin counts, counters are
// atomic, and `stats()` returns a consistent snapshot instead of a racy
// reference. Per-thread counters (`ThreadStats()`) let a worker attribute
// node accesses to the query it is executing without racing other workers;
// callers diff two snapshots, so the counters themselves never need
// resetting. Page *contents* are protected by the pin discipline: a pinned
// frame is never evicted or reused, so `PageRef::Get()` may read it without
// the mutex; writers (`Mutable()`) require that no other thread holds a ref
// to the same page.

#ifndef SAE_STORAGE_BUFFER_POOL_H_
#define SAE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace sae::storage {

/// Pins pages in memory and evicts least-recently-used unpinned frames.
class BufferPool {
 public:
  /// A snapshot of the pool's counters. Obtain via `stats()` (all threads)
  /// or `ThreadStats()` (calling thread only) and diff two snapshots to
  /// measure the work in between. Each field is individually exact
  /// (relaxed atomics); a `stats()` snapshot taken while workers are mid-
  /// fetch is not cross-field consistent — snapshot quiescent pools when
  /// ratios between fields matter.
  struct Stats {
    uint64_t accesses = 0;   // logical page fetches (hits + misses)
    uint64_t misses = 0;     // fetches that had to read the store
    uint64_t evictions = 0;  // frames written back / dropped to make room
    uint64_t allocations = 0;  // new pages created through the pool

    /// Component-wise delta: the cost of the work between two snapshots.
    friend Stats operator-(Stats a, const Stats& b) {
      a.accesses -= b.accesses;
      a.misses -= b.misses;
      a.evictions -= b.evictions;
      a.allocations -= b.allocations;
      return a;
    }
    Stats& operator+=(const Stats& o) {
      accesses += o.accesses;
      misses += o.misses;
      evictions += o.evictions;
      allocations += o.allocations;
      return *this;
    }
  };

  /// RAII pin on a cached page. Move-only; unpins on destruction.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    PageId id() const { return id_; }

    /// Mutable access automatically marks the frame dirty. The caller must
    /// be the only thread holding a ref to this page.
    Page& Mutable();
    const Page& Get() const;

    /// Explicitly unpin before destruction (idempotent).
    void Release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, size_t frame, PageId id)
        : pool_(pool), frame_(frame), id_(id) {}

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
    PageId id_ = kInvalidPageId;
  };

  /// \param store     backing page store (not owned; accessed only under the
  ///                  pool's internal lock)
  /// \param capacity  max resident frames; must allow the deepest pin chain
  ///                  (a root-to-leaf path plus siblings, per concurrent
  ///                  reader; 16 per thread is plenty)
  BufferPool(PageStore* store, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches and pins a page; counts one logical node access. Thread-safe.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a fresh zeroed page, pins it, returns the ref; `Fetch`-style
  /// access accounting applies.
  Result<PageRef> New();

  /// Frees a page (must not be pinned); drops any cached frame.
  Status Free(PageId id);

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Snapshot of the global counters (every thread's fetches).
  Stats stats() const;

  /// Snapshot of the counters for fetches made *by the calling thread*.
  /// Because a query runs entirely on one worker thread, diffing this
  /// around the query attributes its node accesses exactly, with no races
  /// against concurrent queries and no reset of shared state.
  Stats ThreadStats() const;

  /// Zeroes the global counters. Single-threaded convenience for tests and
  /// benches; do not call while other threads use the pool (prefer
  /// snapshot deltas, which need no reset).
  void ResetStats();

  size_t capacity() const { return capacity_; }
  PageStore* store() const { return store_; }

 private:
  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && in_use
    bool in_lru = false;
  };

  void Unpin(size_t frame);
  void MarkDirty(size_t frame) { frames_[frame].dirty = true; }
  // Finds a free frame, evicting if necessary; sets *evicted when a victim
  // was pushed out. Returns frame index. Caller must hold mu_.
  Result<size_t> GrabFrame(bool* evicted);

  // Bump the global atomics and this thread's counters. Called outside mu_
  // so the hash-map lookup never extends the critical section.
  void CountAccess(bool miss);
  void CountEviction();
  void CountAllocation();

  PageStore* store_;
  size_t capacity_;

  // mu_ guards frames_ metadata (pin counts, dirty/in-use flags, ids),
  // free_frames_, lru_, table_, and all PageStore calls. Page *contents* of
  // pinned frames are read outside the lock (see class comment). The lock
  // is held across store I/O on the miss path — negligible for the
  // simulator's in-memory store; sharding the lock (or moving reads behind
  // an io-pending flag) is the next step if a real disk store needs to
  // scale under miss-heavy load.
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = least recently used, unpinned only
  std::unordered_map<PageId, size_t> table_;

  std::atomic<uint64_t> accesses_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> allocations_{0};
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_BUFFER_POOL_H_
