// Copyright (c) saedb authors. Licensed under the MIT license.
//
// LRU buffer pool. All index and heap-file page traffic goes through here,
// which gives the experiments a single place to count *node accesses* — the
// paper's cost unit (10 ms each). `Stats::accesses` counts every logical
// fetch (what the paper charges); `Stats::misses` counts frame faults, which
// the buffer-capacity ablation uses.

#ifndef SAE_STORAGE_BUFFER_POOL_H_
#define SAE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace sae::storage {

/// Pins pages in memory and evicts least-recently-used unpinned frames.
class BufferPool {
 public:
  struct Stats {
    uint64_t accesses = 0;   // logical page fetches (hits + misses)
    uint64_t misses = 0;     // fetches that had to read the store
    uint64_t evictions = 0;  // frames written back / dropped to make room
    uint64_t allocations = 0;  // new pages created through the pool
  };

  /// RAII pin on a cached page. Move-only; unpins on destruction.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    PageId id() const { return id_; }

    /// Mutable access automatically marks the frame dirty.
    Page& Mutable();
    const Page& Get() const;

    /// Explicitly unpin before destruction (idempotent).
    void Release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, size_t frame, PageId id)
        : pool_(pool), frame_(frame), id_(id) {}

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
    PageId id_ = kInvalidPageId;
  };

  /// \param store     backing page store (not owned)
  /// \param capacity  max resident frames; must allow the deepest pin chain
  ///                  (a root-to-leaf path plus siblings; 16 is plenty)
  BufferPool(PageStore* store, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches and pins a page; counts one logical node access.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a fresh zeroed page, pins it, returns the ref; `Fetch`-style
  /// access accounting applies.
  Result<PageRef> New();

  /// Frees a page (must not be pinned); drops any cached frame.
  Status Free(PageId id);

  /// Writes back all dirty frames.
  Status FlushAll();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  size_t capacity() const { return capacity_; }
  PageStore* store() const { return store_; }

 private:
  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && in_use
    bool in_lru = false;
  };

  void Unpin(size_t frame);
  void MarkDirty(size_t frame) { frames_[frame].dirty = true; }
  // Finds a free frame, evicting if necessary. Returns frame index.
  Result<size_t> GrabFrame();

  PageStore* store_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = least recently used, unpinned only
  std::unordered_map<PageId, size_t> table_;
  Stats stats_;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_BUFFER_POOL_H_
