// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements FaultFs (storage/fault_fs.h): the durable/current double image,
// the barrier counter and the armed-crash trigger.

#include "storage/fault_fs.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace sae::storage {

namespace {
constexpr const char* kCrashedMsg = "simulated crash: storage is offline";
}

/// A handle into the FaultFs map. All state lives in the fs (keyed by
/// path), so handles are trivially re-openable after DropVolatile.
class FaultFsFile final : public VfsFile {
 public:
  FaultFsFile(FaultFs* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Result<size_t> ReadAt(uint64_t offset, uint8_t* buf,
                        size_t n) const override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return Status::IoError(kCrashedMsg);
    auto it = fs_->files_.find(path_);
    if (it == fs_->files_.end()) {
      return Status::IoError("file vanished: " + path_);
    }
    const std::vector<uint8_t>& bytes = it->second.current;
    if (offset >= bytes.size()) return size_t{0};
    size_t got = std::min(n, size_t(bytes.size() - offset));
    std::memcpy(buf, bytes.data() + offset, got);
    return got;
  }

  Status WriteAt(uint64_t offset, const uint8_t* buf, size_t n) override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return Status::IoError(kCrashedMsg);
    auto it = fs_->files_.find(path_);
    if (it == fs_->files_.end()) {
      return Status::IoError("file vanished: " + path_);
    }
    std::vector<uint8_t>& bytes = it->second.current;
    if (offset + n > bytes.size()) bytes.resize(offset + n, 0);
    std::memcpy(bytes.data() + offset, buf, n);
    return Status::OK();
  }

  Status Append(const uint8_t* buf, size_t n) override {
    SAE_ASSIGN_OR_RETURN(uint64_t size, Size());
    return WriteAt(size, buf, n);
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return Status::IoError(kCrashedMsg);
    auto it = fs_->files_.find(path_);
    if (it == fs_->files_.end()) {
      return Status::IoError("file vanished: " + path_);
    }
    return uint64_t(it->second.current.size());
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    if (fs_->crashed_) return Status::IoError(kCrashedMsg);
    auto it = fs_->files_.find(path_);
    if (it == fs_->files_.end()) {
      return Status::IoError("file vanished: " + path_);
    }
    it->second.current.resize(size, 0);
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    SAE_RETURN_NOT_OK(fs_->Barrier());
    auto it = fs_->files_.find(path_);
    if (it == fs_->files_.end()) {
      return Status::IoError("file vanished: " + path_);
    }
    it->second.durable = it->second.current;
    it->second.durable_exists = true;
    return Status::OK();
  }

 private:
  FaultFs* fs_;
  std::string path_;
};

Status FaultFs::Barrier() {
  // Caller holds mu_.
  if (crashed_) return Status::IoError(kCrashedMsg);
  ++barrier_count_;
  if (crash_at_ != 0 && barrier_count_ == crash_at_) {
    crashed_ = true;  // this barrier never completes
    return Status::IoError(kCrashedMsg);
  }
  if (fail_at_ != 0 && barrier_count_ == fail_at_) {
    fail_at_ = 0;  // one-shot: the device is healthy again immediately
    return Status::IoError("simulated transient i/o failure");
  }
  if (sync_latency_us_ > 0) {
    // Sleeping under mu_ serializes barriers like a single device queue.
    std::this_thread::sleep_for(std::chrono::microseconds(sync_latency_us_));
  }
  return Status::OK();
}

void FaultFs::SetSyncLatency(uint32_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_latency_us_ = us;
}

Result<std::unique_ptr<VfsFile>> FaultFs::Open(const std::string& path,
                                               bool create) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!create) return Status::NotFound("no such file: " + path);
    files_[path];  // created empty and volatile (durable_exists = false)
  }
  return std::unique_ptr<VfsFile>(new FaultFsFile(this, path));
}

bool FaultFs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end() && !crashed_) {
    return Status::NotFound("no such file: " + from);
  }
  SAE_RETURN_NOT_OK(Barrier());
  // The name change is atomic and durable at this barrier. The content
  // carried to `to` is durable only to the extent `from` was synced: an
  // unsynced source leaves `to` with NO durable image (a torn destination
  // after a crash), modeling a skipped temp-file fsync.
  FileState state = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(state);
  return Status::OK();
}

Status FaultFs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  files_.erase(path);  // modeled immediately durable (see header)
  return Status::OK();
}

Result<std::vector<std::string>> FaultFs::List(const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    std::string name = path.substr(prefix.size());
    if (name.find('/') == std::string::npos) names.push_back(name);
  }
  return names;
}

void FaultFs::CrashAtSyncPoint(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  barrier_count_ = 0;
  crash_at_ = k;
  fail_at_ = 0;
  crashed_ = false;
}

void FaultFs::FailAtSyncPoint(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  barrier_count_ = 0;
  fail_at_ = k;
}

void FaultFs::DropVolatile() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    if (!it->second.durable_exists) {
      it = files_.erase(it);
    } else {
      it->second.current = it->second.durable;
      ++it;
    }
  }
  crash_at_ = 0;
  fail_at_ = 0;
  crashed_ = false;
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultFs::sync_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return barrier_count_;
}

uint64_t FaultFs::durable_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, state] : files_) {
    if (state.durable_exists) total += state.durable.size();
  }
  return total;
}

uint64_t FaultFs::volatile_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t durable = 0, current = 0;
  for (const auto& [path, state] : files_) {
    if (state.durable_exists) durable += state.durable.size();
    current += state.current.size();
  }
  return current > durable ? current - durable : 0;
}

std::unique_ptr<FaultFs> FaultFs::Clone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto copy = std::make_unique<FaultFs>();
  copy->files_ = files_;
  return copy;
}

}  // namespace sae::storage
