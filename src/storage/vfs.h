// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Vfs: the file-system seam of the durability subsystem. Everything the
// WAL, the snapshot store and the file-backed page store do to disk goes
// through this interface, so the crash-injection harness (storage::FaultFs)
// can interpose on every byte and every durability barrier. Two
// implementations:
//  * RealVfs  — POSIX files (pread/pwrite/fsync/rename); what deployments
//    use. Rename is the atomic-replace primitive of the snapshot protocol.
//  * FaultFs  — an in-memory file system that tracks durable vs volatile
//    bytes and can crash at an exact sync point (storage/fault_fs.h).
//
// Durability model: bytes written through WriteAt/Append/Truncate are
// VOLATILE until the file is Sync()ed — a crash discards them. Sync() and
// Rename() are the only durability barriers ("sync points"): Sync makes a
// file's bytes durable, Rename atomically (and durably) replaces the
// destination name. This is exactly the contract crash recovery is proven
// against.

#ifndef SAE_STORAGE_VFS_H_
#define SAE_STORAGE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace sae::storage {

/// A random-access file handle. Not thread-safe; callers serialize.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Reads up to `n` bytes at `offset`; returns the count actually read
  /// (short at EOF, 0 past it).
  virtual Result<size_t> ReadAt(uint64_t offset, uint8_t* buf,
                                size_t n) const = 0;

  /// Writes `n` bytes at `offset`, extending the file if needed. The bytes
  /// are volatile until Sync().
  virtual Status WriteAt(uint64_t offset, const uint8_t* buf, size_t n) = 0;

  /// Appends at the current end of file (volatile until Sync()).
  virtual Status Append(const uint8_t* buf, size_t n) = 0;

  virtual Result<uint64_t> Size() const = 0;

  /// Cuts the file to `size` bytes (volatile until Sync()).
  virtual Status Truncate(uint64_t size) = 0;

  /// Durability barrier: makes every previously written byte of this file
  /// durable. One sync point.
  virtual Status Sync() = 0;
};

/// A minimal file-system namespace: open/exists/rename/remove/list.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` read-write. With `create`, an absent file is created
  /// (empty, volatile until synced); without, absence is kNotFound.
  virtual Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                                bool create) = 0;

  virtual bool Exists(const std::string& path) const = 0;

  /// Atomically replaces `to` with `from` and makes the name change
  /// durable. One sync point. The CONTENT of `from` is only durable to the
  /// extent it was synced — renaming an unsynced file can surface a torn
  /// destination after a crash, exactly as on a real file system, so the
  /// snapshot protocol always syncs the temp file first.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Unlinks a file; missing files are OK (idempotent garbage collection).
  virtual Status Remove(const std::string& path) = 0;

  /// Names (not paths) of the files directly inside `dir`, unsorted.
  /// A missing directory lists empty.
  virtual Result<std::vector<std::string>> List(
      const std::string& dir) const = 0;

  /// Creates a directory (parents must exist); an existing one is OK.
  virtual Status MkDir(const std::string& path) = 0;

  /// The process-wide POSIX-backed instance.
  static Vfs* Default();
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_VFS_H_
