// Copyright (c) saedb authors. Licensed under the MIT license.
//
// HeapFile: the "dataset file" of the paper — fixed-size record slots on
// 4096-byte pages. The SP retrieves query results from here after the index
// identifies qualifying rids (the paper's "scan ... in the dataset file for
// retrieving the results").
//
// Page layout: [magic u32][num_slots u16][used u16][bitmap 24B][slots...]
// Slot region starts at byte 32; slots_per_page = (4096 - 32) / record_size.

#ifndef SAE_STORAGE_HEAP_FILE_H_
#define SAE_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/codec.h"
#include "util/status.h"

namespace sae::storage {

/// Location of a record inside a heap file: (page id, slot).
using Rid = uint64_t;

inline constexpr Rid kInvalidRid = ~0ULL;

inline Rid MakeRid(PageId page, uint32_t slot) {
  return (uint64_t(page) << 32) | slot;
}
inline PageId RidPage(Rid rid) { return PageId(rid >> 32); }
inline uint32_t RidSlot(Rid rid) { return uint32_t(rid & 0xffffffffu); }

/// Fixed-size-record heap file over a buffer pool. File metadata (owned
/// pages, free-slot list) is kept in memory; page contents are the source of
/// truth and fully self-describing.
class HeapFile {
 public:
  /// \param pool         buffer pool (not owned)
  /// \param record_size  bytes per record; >= 22 so the slot bitmap fits
  HeapFile(BufferPool* pool, size_t record_size);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  ~HeapFile();

  size_t record_size() const { return record_size_; }
  size_t slots_per_page() const { return slots_per_page_; }
  size_t size() const { return record_count_; }
  size_t PageCount() const { return pages_.size(); }
  size_t SizeBytes() const { return PageCount() * kPageSize; }

  /// Inserts `record_size` bytes; returns the new record's location.
  Result<Rid> Insert(const uint8_t* data);

  /// Copies the record at `rid` into `out` (record_size bytes).
  Status Get(Rid rid, uint8_t* out) const;

  /// Visits records for all `rids` in order, fetching each page once per
  /// contiguous run — what a real executor does for a clustered result.
  /// The callback receives the rid's index in `rids` and the record bytes
  /// (valid only during the call).
  Status GetMany(
      const std::vector<Rid>& rids,
      const std::function<void(size_t, const uint8_t*)>& callback) const;

  /// Overwrites the record at `rid`.
  Status Update(Rid rid, const uint8_t* data);

  /// Removes the record at `rid`, making the slot reusable.
  Status Delete(Rid rid);

  /// Visits every live record in page order. The callback receives the rid
  /// and a pointer to the record bytes (valid only during the call).
  Status Scan(
      const std::function<void(Rid, const uint8_t*)>& callback) const;

  /// Serializes the file's volatile metadata (page directory, free list)
  /// for re-attachment to the same page store after a restart.
  void WriteSnapshot(ByteWriter* out) const;

  /// Re-attaches a heap file persisted with WriteSnapshot.
  static Result<std::unique_ptr<HeapFile>> OpenSnapshot(BufferPool* pool,
                                                        ByteReader* in);

  /// Restores snapshot metadata into this (freshly constructed, empty)
  /// file; the record size must match the snapshot's.
  Status RestoreSnapshot(ByteReader* in);

 private:
  static constexpr size_t kHeaderSize = 32;
  static constexpr size_t kBitmapOffset = 8;
  static constexpr size_t kBitmapBytes = 24;
  static constexpr uint32_t kMagic = 0x48454150;  // "HEAP"

  static bool TestBit(const uint8_t* bitmap, uint32_t i) {
    return (bitmap[i / 8] >> (i % 8)) & 1;
  }
  static void SetBit(uint8_t* bitmap, uint32_t i) {
    bitmap[i / 8] |= uint8_t(1) << (i % 8);
  }
  static void ClearBit(uint8_t* bitmap, uint32_t i) {
    bitmap[i / 8] &= ~(uint8_t(1) << (i % 8));
  }

  BufferPool* pool_;
  size_t record_size_;
  size_t slots_per_page_;
  std::vector<PageId> pages_;           // insertion order
  std::vector<PageId> pages_with_room_; // stack of pages with free slots
  size_t record_count_ = 0;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_HEAP_FILE_H_
