// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Epoch-versioned snapshots: the durable baseline recovery starts from.
// A snapshot atomically persists one serialized system state (tree-page
// content in load order, root signature, epoch — the payload is opaque
// here; core/durability.h defines it) under the epoch it speaks for.
//
// Atomicity protocol (write-temp-then-rename):
//   1. write  <dir>/snap.tmp  = header + payload + CRC-32 trailer
//   2. sync it                           (sync point: content durable)
//   3. rename to <dir>/snap-<epoch020>   (sync point: name durable)
//   4. GC snapshots older than the newest `keep`
// A crash anywhere leaves either the previous snapshot set intact or the
// new snapshot fully in place — a torn snapshot is never visible under a
// snap-* name, and a bit-flipped one fails its CRC and is skipped by
// LoadLatest in favor of the next-newest valid file.

#ifndef SAE_STORAGE_SNAPSHOT_H_
#define SAE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/vfs.h"
#include "util/status.h"

namespace sae::storage {

class SnapshotStore {
 public:
  /// `dir` must exist (or be creatable); `keep` newest snapshots survive GC
  /// (>= 2 keeps a fallback for a bit-flipped newest file).
  SnapshotStore(Vfs* vfs, std::string dir, size_t keep = 2);

  /// Persists `payload` as the snapshot for `epoch` (see protocol above).
  /// Two sync points.
  Status Write(uint64_t epoch, const std::vector<uint8_t>& payload);

  struct Loaded {
    uint64_t epoch = 0;
    std::vector<uint8_t> payload;
    /// True when the newest snap-* file was invalid and an older one was
    /// used — recovery will come back at an older epoch, which the client
    /// freshness gate surfaces as kStaleEpoch rather than trusting it.
    bool fell_back = false;
  };

  /// Newest valid snapshot; kNotFound when no valid snapshot exists.
  Result<Loaded> LoadLatest() const;

  /// Epochs of the snap-* files present, ascending (validity not checked).
  Result<std::vector<uint64_t>> ListEpochs() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(uint64_t epoch) const;

  Vfs* vfs_;
  std::string dir_;
  size_t keep_;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_SNAPSHOT_H_
