// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Epoch-versioned snapshots: the durable baseline recovery starts from.
// Two file kinds live in one directory:
//
//   snap-<epoch020>            a FULL snapshot — one serialized system
//                              state (the payload is opaque here;
//                              core/durability.h defines it)
//   delta-<base020>-<epoch020> a DELTA — only the changes between the
//                              checkpoint at `base` and this one; each
//                              delta names its immediate predecessor, so
//                              full + deltas form an epoch-linked CHAIN
//                              whose tail is the newest durable state
//
// Atomicity protocol (write-temp-then-rename), identical for both kinds:
//   1. write  <dir>/snap.tmp  = header + payload + CRC-32 trailer
//   2. sync it                           (sync point: content durable)
//   3. rename to its final name          (sync point: name durable)
//   4. (full writes only) GC whole chains older than the newest `keep`
// A crash anywhere leaves either the previous chain set intact or the new
// file fully in place — a torn file is never visible under a final name,
// and a bit-flipped one fails its CRC: LoadChain never composes past a bad
// link, it stops at the longest intact prefix (or falls back to an older
// full snapshot entirely).

#ifndef SAE_STORAGE_SNAPSHOT_H_
#define SAE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/vfs.h"
#include "util/status.h"

namespace sae::storage {

class SnapshotStore {
 public:
  /// `dir` must exist (or be creatable); the newest `keep` full-snapshot
  /// chains survive GC (>= 2 keeps a whole fallback chain behind a corrupt
  /// newest).
  SnapshotStore(Vfs* vfs, std::string dir, size_t keep = 2);

  /// Persists `payload` as the FULL snapshot for `epoch` (see protocol
  /// above). Two sync points. GCs chains beyond the newest `keep`.
  Status Write(uint64_t epoch, const std::vector<uint8_t>& payload);

  /// Persists `payload` as the DELTA from the checkpoint at `base_epoch`
  /// to `epoch`. Two sync points. No GC — a chain is collected as a whole
  /// when a later full snapshot retires it.
  Status WriteDelta(uint64_t base_epoch, uint64_t epoch,
                    const std::vector<uint8_t>& payload);

  struct Loaded {
    uint64_t epoch = 0;
    std::vector<uint8_t> payload;
    /// True when the newest snap-* file was invalid and an older one was
    /// used — recovery will come back at an older epoch, which the client
    /// freshness gate surfaces as kStaleEpoch rather than trusting it.
    bool fell_back = false;
  };

  /// Newest valid FULL snapshot; kNotFound when none exists. (Chain-blind;
  /// LoadChain is the recovery entry point.)
  Result<Loaded> LoadLatest() const;

  /// One link of a loaded chain.
  struct ChainLink {
    uint64_t base_epoch = 0;
    uint64_t epoch = 0;
    std::vector<uint8_t> payload;
  };

  /// The newest intact chain: a valid full snapshot plus every delta that
  /// validly links onto it, in order. The walk stops at the first missing
  /// or corrupt link — it never composes past one — and a corrupt full
  /// snapshot falls back to the next-newest chain entirely.
  struct LoadedChain {
    uint64_t base_epoch = 0;
    std::vector<uint8_t> base_payload;
    std::vector<ChainLink> deltas;
    /// An invalid file was skipped somewhere: either an older full was
    /// used, or the delta walk stopped at a bad link that existed.
    bool fell_back = false;
  };

  /// kNotFound when no valid full snapshot exists at all.
  Result<LoadedChain> LoadChain() const;

  /// Epochs of the snap-* full files present, ascending (validity not
  /// checked).
  Result<std::vector<uint64_t>> ListEpochs() const;

  /// (base, epoch) of the delta-* files present, ascending by epoch
  /// (validity not checked).
  Result<std::vector<std::pair<uint64_t, uint64_t>>> ListDeltaLinks() const;

  /// Validates and returns one delta file's payload; any mismatch
  /// (magic, version, header/name disagreement, CRC) is kCorruption,
  /// as is a link that does not advance its base epoch.
  Result<std::vector<uint8_t>> ReadDelta(uint64_t base_epoch,
                                         uint64_t epoch) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(uint64_t epoch) const;
  std::string DeltaPathFor(uint64_t base_epoch, uint64_t epoch) const;
  /// Shared temp-write + sync + rename tail of both Write flavors.
  Status WriteImage(const std::vector<uint8_t>& image,
                    const std::string& final_path);

  Vfs* vfs_;
  std::string dir_;
  size_t keep_;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_SNAPSHOT_H_
