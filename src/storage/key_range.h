// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Fence-key range partitioning shared by every layer that reasons about a
// sharded key space: core::ShardRouter (routing), mbtree::VerifyComposite
// and sigchain::VerifyComposite (client-side completeness of stitched
// proofs). One implementation so the router and the verifiers can never
// disagree about which shard owns a key: given ascending interior fences
// f_1 < ... < f_{N-1}, shard s owns the half-open interval [f_s, f_{s+1})
// with f_0 = 0 and f_N = 2^32, rendered inclusive as
// [ShardLowerBound(s), ShardUpperBound(s)].

#ifndef SAE_STORAGE_KEY_RANGE_H_
#define SAE_STORAGE_KEY_RANGE_H_

#include <functional>
#include <utility>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace sae::storage {

/// One shard's clipped, inclusive view of a query range.
struct KeySlice {
  size_t shard = 0;
  Key lo = 0;
  Key hi = 0;

  friend bool operator==(const KeySlice& a, const KeySlice& b) {
    return a.shard == b.shard && a.lo == b.lo && a.hi == b.hi;
  }
};

inline constexpr Key kMaxShardKey = ~Key{0};

/// The shard owning `key` under the given ascending interior fences.
size_t ShardOfKey(const std::vector<Key>& fences, Key key);

/// Inclusive bounds of shard s (s <= fences.size()).
Key ShardLowerBound(const std::vector<Key>& fences, size_t shard);
Key ShardUpperBound(const std::vector<Key>& fences, size_t shard);

/// Clips [lo, hi] against the fences: one slice per overlapped shard,
/// ascending by shard and therefore by key. Empty when lo > hi.
std::vector<KeySlice> PartitionKeyRange(const std::vector<Key>& fences,
                                        Key lo, Key hi);

/// Client-side tiling check on a stitched answer: the slices must equal
/// PartitionKeyRange(fences, lo, hi) — same shards, same clipped bounds,
/// no gap, overlap, or fence violation. An SP hiding a shard's
/// contribution, serving one twice, or moving a fence to swallow a
/// neighbour's keys fails here before any cryptography runs.
Status VerifyKeyCover(const std::vector<Key>& fences, Key lo, Key hi,
                      const std::vector<KeySlice>& slices);

/// The composite-verification scaffold shared by every scheme's stitched
/// verifier (core::Client::VerifyShardedResult, mbtree::VerifyComposite,
/// sigchain::VerifyComposite), so the policy lives once, next to the
/// fence math: (1) the slices must tile [lo, hi] along the trusted fences
/// (VerifyKeyCover) before any cryptography runs; (2) `verify_slice` runs
/// per slice with that shard's published epoch — 0 when the published
/// vector is too short, which fails closed downstream (a proof claiming
/// an epoch above its published reference is a forgery); (3) the
/// per-shard verdicts are reported through `per_shard` (optional) and
/// folded with sae::CombineShardStatuses (all stale -> kStaleEpoch,
/// mixed -> kShardEpochSkew, corruption -> failure naming the shard).
Status VerifyCompositeSlices(
    const std::vector<Key>& fences, Key lo, Key hi,
    const std::vector<KeySlice>& slices,
    const std::vector<uint64_t>& published_epochs,
    const std::function<Status(size_t index, const KeySlice& slice,
                               uint64_t published_epoch)>& verify_slice,
    std::vector<std::pair<size_t, Status>>* per_shard = nullptr);

}  // namespace sae::storage

#endif  // SAE_STORAGE_KEY_RANGE_H_
