// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Fixed-size page abstraction. Every index and the dataset file are laid out
// on 4096-byte pages (paper §IV: "All indexes are disk-based using pages of
// 4096 bytes"), which is what makes fanout — and thus every Fig. 6/8 series —
// emerge from entry sizes rather than be hard-coded.

#ifndef SAE_STORAGE_PAGE_H_
#define SAE_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace sae::storage {

using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;
inline constexpr size_t kPageSize = 4096;

/// Raw 4096-byte page buffer with bounds-checked field accessors.
struct Page {
  std::array<uint8_t, kPageSize> data{};

  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }

  void Zero() { data.fill(0); }
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_PAGE_H_
