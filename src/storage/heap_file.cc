// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements HeapFile (storage/heap_file.h): fixed-size record slots on
// 4096-byte pages with free-slot reuse and snapshot/restore.

#include "storage/heap_file.h"

#include <cstring>

#include "util/codec.h"
#include "util/macros.h"

namespace sae::storage {

HeapFile::HeapFile(BufferPool* pool, size_t record_size)
    : pool_(pool), record_size_(record_size) {
  SAE_CHECK(record_size_ >= 22 && record_size_ <= kPageSize - kHeaderSize);
  slots_per_page_ = (kPageSize - kHeaderSize) / record_size_;
  if (slots_per_page_ > kBitmapBytes * 8) slots_per_page_ = kBitmapBytes * 8;
  SAE_CHECK(slots_per_page_ >= 1);
}

HeapFile::~HeapFile() = default;

Result<Rid> HeapFile::Insert(const uint8_t* data) {
  PageId page_id;
  BufferPool::PageRef ref;
  if (!pages_with_room_.empty()) {
    page_id = pages_with_room_.back();
    SAE_ASSIGN_OR_RETURN(ref, pool_->Fetch(page_id));
  } else {
    SAE_ASSIGN_OR_RETURN(ref, pool_->New());
    page_id = ref.id();
    Page& page = ref.Mutable();
    EncodeU32(page.bytes(), kMagic);
    EncodeU16(page.bytes() + 4, uint16_t(slots_per_page_));
    EncodeU16(page.bytes() + 6, 0);
    pages_.push_back(page_id);
    pages_with_room_.push_back(page_id);
  }

  Page& page = ref.Mutable();
  uint8_t* bitmap = page.bytes() + kBitmapOffset;
  uint16_t used = DecodeU16(page.bytes() + 6);
  SAE_CHECK(used < slots_per_page_);

  uint32_t slot = 0;
  while (TestBit(bitmap, slot)) ++slot;
  SAE_CHECK(slot < slots_per_page_);

  SetBit(bitmap, slot);
  EncodeU16(page.bytes() + 6, uint16_t(used + 1));
  std::memcpy(page.bytes() + kHeaderSize + slot * record_size_, data,
              record_size_);

  if (size_t(used) + 1 == slots_per_page_) {
    // Page is now full; drop it from the free stack (it is on top).
    SAE_CHECK(pages_with_room_.back() == page_id);
    pages_with_room_.pop_back();
  }
  ++record_count_;
  return MakeRid(page_id, slot);
}

Status HeapFile::Get(Rid rid, uint8_t* out) const {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(RidPage(rid)));
  const Page& page = ref.Get();
  uint32_t slot = RidSlot(rid);
  if (DecodeU32(page.bytes()) != kMagic || slot >= slots_per_page_ ||
      !TestBit(page.bytes() + kBitmapOffset, slot)) {
    return Status::NotFound("no record at rid");
  }
  std::memcpy(out, page.bytes() + kHeaderSize + slot * record_size_,
              record_size_);
  return Status::OK();
}

Status HeapFile::GetMany(
    const std::vector<Rid>& rids,
    const std::function<void(size_t, const uint8_t*)>& callback) const {
  BufferPool::PageRef ref;
  PageId current = kInvalidPageId;
  for (size_t i = 0; i < rids.size(); ++i) {
    PageId page_id = RidPage(rids[i]);
    if (page_id != current) {
      SAE_ASSIGN_OR_RETURN(ref, pool_->Fetch(page_id));
      current = page_id;
    }
    const Page& page = ref.Get();
    uint32_t slot = RidSlot(rids[i]);
    if (DecodeU32(page.bytes()) != kMagic || slot >= slots_per_page_ ||
        !TestBit(page.bytes() + kBitmapOffset, slot)) {
      return Status::NotFound("no record at rid");
    }
    callback(i, page.bytes() + kHeaderSize + slot * record_size_);
  }
  return Status::OK();
}

Status HeapFile::Update(Rid rid, const uint8_t* data) {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(RidPage(rid)));
  Page& page = ref.Mutable();
  uint32_t slot = RidSlot(rid);
  if (DecodeU32(page.bytes()) != kMagic || slot >= slots_per_page_ ||
      !TestBit(page.bytes() + kBitmapOffset, slot)) {
    return Status::NotFound("no record at rid");
  }
  std::memcpy(page.bytes() + kHeaderSize + slot * record_size_, data,
              record_size_);
  return Status::OK();
}

Status HeapFile::Delete(Rid rid) {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(RidPage(rid)));
  Page& page = ref.Mutable();
  uint32_t slot = RidSlot(rid);
  uint8_t* bitmap = page.bytes() + kBitmapOffset;
  if (DecodeU32(page.bytes()) != kMagic || slot >= slots_per_page_ ||
      !TestBit(bitmap, slot)) {
    return Status::NotFound("no record at rid");
  }
  uint16_t used = DecodeU16(page.bytes() + 6);
  ClearBit(bitmap, slot);
  EncodeU16(page.bytes() + 6, uint16_t(used - 1));
  if (used == slots_per_page_) {
    // Page was full and now has room again.
    pages_with_room_.push_back(RidPage(rid));
  }
  --record_count_;
  return Status::OK();
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x48505353u;  // "HPSS"
}

void HeapFile::WriteSnapshot(ByteWriter* out) const {
  out->PutU32(kSnapshotMagic);
  out->PutU32(uint32_t(record_size_));
  out->PutU64(record_count_);
  out->PutU32(uint32_t(pages_.size()));
  for (PageId p : pages_) out->PutU32(p);
  out->PutU32(uint32_t(pages_with_room_.size()));
  for (PageId p : pages_with_room_) out->PutU32(p);
}

Status HeapFile::RestoreSnapshot(ByteReader* in) {
  if (record_count_ != 0 || !pages_.empty()) {
    return Status::InvalidArgument("restore requires an empty heap file");
  }
  if (in->GetU32() != kSnapshotMagic) {
    return Status::Corruption("not a heap-file snapshot");
  }
  if (in->GetU32() != record_size_) {
    return Status::Corruption("heap-file snapshot record size mismatch");
  }
  record_count_ = in->GetU64();
  uint32_t page_count = in->GetU32();
  pages_.reserve(page_count);
  for (uint32_t i = 0; i < page_count; ++i) pages_.push_back(in->GetU32());
  uint32_t room_count = in->GetU32();
  pages_with_room_.reserve(room_count);
  for (uint32_t i = 0; i < room_count; ++i) {
    pages_with_room_.push_back(in->GetU32());
  }
  if (in->failed()) return Status::Corruption("truncated heap-file snapshot");
  return Status::OK();
}

Result<std::unique_ptr<HeapFile>> HeapFile::OpenSnapshot(BufferPool* pool,
                                                         ByteReader* in) {
  // Peek the record size without consuming: copy the reader is not
  // supported, so parse the header manually into a fresh object.
  if (in->remaining() < 8) {
    return Status::Corruption("truncated heap-file snapshot");
  }
  // The snapshot layout starts [magic u32][record_size u32]; construct with
  // that size, then restore through the normal path.
  uint32_t magic = in->GetU32();
  uint32_t record_size = in->GetU32();
  if (magic != kSnapshotMagic) {
    return Status::Corruption("not a heap-file snapshot");
  }
  auto heap = std::make_unique<HeapFile>(pool, record_size);
  heap->record_count_ = in->GetU64();
  uint32_t page_count = in->GetU32();
  heap->pages_.reserve(page_count);
  for (uint32_t i = 0; i < page_count; ++i) {
    heap->pages_.push_back(in->GetU32());
  }
  uint32_t room_count = in->GetU32();
  heap->pages_with_room_.reserve(room_count);
  for (uint32_t i = 0; i < room_count; ++i) {
    heap->pages_with_room_.push_back(in->GetU32());
  }
  if (in->failed()) return Status::Corruption("truncated heap-file snapshot");
  return heap;
}

Status HeapFile::Scan(
    const std::function<void(Rid, const uint8_t*)>& callback) const {
  for (PageId page_id : pages_) {
    SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(page_id));
    const Page& page = ref.Get();
    const uint8_t* bitmap = page.bytes() + kBitmapOffset;
    for (uint32_t slot = 0; slot < slots_per_page_; ++slot) {
      if (TestBit(bitmap, slot)) {
        callback(MakeRid(page_id, slot),
                 page.bytes() + kHeaderSize + slot * record_size_);
      }
    }
  }
  return Status::OK();
}

}  // namespace sae::storage
