// Copyright (c) saedb authors. Licensed under the MIT license.
//
// HotNodeCache: a thread-safe memo of *parsed* tree nodes for the top K
// levels of a disk-based tree. The buffer-pool ablation shows the upper
// levels of the MB-/XB-trees cache perfectly — but even a pool hit still
// pays page parsing on every traversal. This cache keeps the decoded Node
// structs (digests included) for depths < hot_levels, so steady-state
// queries hash only the leaf frontier.
//
// Invalidation contract (what keeps a cached digest from going stale):
//   * every StoreNode on a mutation path invalidates its page id, and every
//     freed page is invalidated before reuse — precise, along the update
//     path only;
//   * Clear() drops everything (bulk load, snapshot re-attach).
// Mutations hold the owning system's writer lock, so the cache only ever
// sees reader-reader concurrency plus exclusive writers; one internal mutex
// suffices. Entries are handed out as shared_ptr<const NodeT> so a reader
// keeps its node alive even if a capacity eviction races in.

#ifndef SAE_STORAGE_NODE_CACHE_H_
#define SAE_STORAGE_NODE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "storage/page.h"

namespace sae::storage {

/// Counters of one HotNodeCache. Snapshot by value and diff two snapshots
/// to measure the work in between (same pattern as BufferPool::Stats).
struct NodeCacheStats {
  uint64_t hits = 0;           ///< cacheable-depth lookups served from cache
  uint64_t misses = 0;         ///< cacheable-depth lookups that fell through
  uint64_t invalidations = 0;  ///< entries dropped by Invalidate/Clear
  uint64_t evictions = 0;      ///< entries dropped for capacity

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }

  friend NodeCacheStats operator-(NodeCacheStats a, const NodeCacheStats& b) {
    a.hits -= b.hits;
    a.misses -= b.misses;
    a.invalidations -= b.invalidations;
    a.evictions -= b.evictions;
    return a;
  }
  NodeCacheStats& operator+=(const NodeCacheStats& b) {
    hits += b.hits;
    misses += b.misses;
    invalidations += b.invalidations;
    evictions += b.evictions;
    return *this;
  }
};

struct NodeCacheOptions {
  size_t hot_levels = 2;     ///< cache nodes at depth < hot_levels (0 = off)
  size_t max_entries = 1024; ///< capacity backstop (hot sets are tiny)
};

template <typename NodeT>
class HotNodeCache {
 public:
  using Options = NodeCacheOptions;

  explicit HotNodeCache(const Options& options = {}) : options_(options) {}

  bool enabled() const {
    return options_.hot_levels > 0 && options_.max_entries > 0;
  }
  /// Root is depth 0; only the top hot_levels levels are worth memoizing.
  bool Caches(size_t depth) const {
    return enabled() && depth < options_.hot_levels;
  }

  /// nullptr on miss or uncacheable depth.
  std::shared_ptr<const NodeT> Lookup(PageId id, size_t depth) const {
    if (!Caches(depth)) return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(id);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    return it->second;
  }

  /// Takes ownership of `node` and returns a shared holder for the caller's
  /// own use; the cache keeps a reference only for cacheable depths.
  std::shared_ptr<const NodeT> Insert(PageId id, size_t depth, NodeT node) {
    auto holder = std::make_shared<const NodeT>(std::move(node));
    if (!Caches(depth)) return holder;
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.count(id) == 0 && map_.size() >= options_.max_entries) {
      // Any victim works: the hot-level set is far below capacity in
      // practice, and correctness never depends on what is cached.
      map_.erase(map_.begin());
      ++stats_.evictions;
    }
    map_[id] = holder;
    return holder;
  }

  /// Precise invalidation — call for every page a mutation rewrites/frees.
  void Invalidate(PageId id) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.erase(id) > 0) ++stats_.invalidations;
  }

  /// Wholesale invalidation (bulk load, snapshot re-attach).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.invalidations += map_.size();
    map_.clear();
  }

  NodeCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  Options options_;
  mutable std::mutex mu_;
  mutable std::unordered_map<PageId, std::shared_ptr<const NodeT>> map_;
  mutable NodeCacheStats stats_;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_NODE_CACHE_H_
