// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements Record serialization (storage/record.h): the canonical binary
// layout that record digests are computed over.

#include "storage/record.h"

#include <algorithm>\n#include <cstring>

#include "util/codec.h"
#include "util/macros.h"

namespace sae::storage {

RecordCodec::RecordCodec(size_t record_size) : record_size_(record_size) {
  SAE_CHECK(record_size >= kRecordHeaderSize);
}

void RecordCodec::Serialize(const Record& record, uint8_t* out) const {
  SAE_CHECK(record.payload.size() <= payload_size());
  EncodeU64(out, record.id);
  EncodeU32(out + 8, record.key);
  std::memset(out + kRecordHeaderSize, 0, payload_size());
  if (!record.payload.empty()) {
    std::memcpy(out + kRecordHeaderSize, record.payload.data(),
                record.payload.size());
  }
}

std::vector<uint8_t> RecordCodec::Serialize(const Record& record) const {
  std::vector<uint8_t> out(record_size_);
  Serialize(record, out.data());
  return out;
}

Record RecordCodec::Deserialize(const uint8_t* data) const {
  Record r;
  r.id = DecodeU64(data);
  r.key = DecodeU32(data + 8);
  r.payload.assign(data + kRecordHeaderSize, data + record_size_);
  return r;
}

Record RecordCodec::MakeRecord(RecordId id, Key key) const {
  Record r;
  r.id = id;
  r.key = key;
  r.payload.resize(payload_size());
  // Cheap deterministic byte pattern (splitmix-style) keyed by the record id.
  uint64_t x = id * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;
  for (size_t i = 0; i < r.payload.size(); ++i) {
    x ^= x >> 27;
    x *= 0x3c79ac492ba7b653ULL;
    r.payload[i] = static_cast<uint8_t>(x >> 56);
  }
  return r;
}

std::vector<crypto::Digest> DigestRecords(const std::vector<Record>& records,
                                          const RecordCodec& codec,
                                          crypto::HashScheme scheme) {
  std::vector<crypto::Digest> out(records.size());
  if (records.empty()) return out;
  const size_t rs = codec.record_size();
  // Chunked so the serialize buffer stays L2-resident on big loads while
  // still giving the 8-lane hash kernels full batches.
  constexpr size_t kChunk = 1024;
  const size_t chunk = std::min(records.size(), kChunk);
  std::vector<uint8_t> buf(chunk * rs);
  std::vector<crypto::ByteSpan> spans(chunk);
  for (size_t base = 0; base < records.size(); base += kChunk) {
    const size_t n = std::min(kChunk, records.size() - base);
    for (size_t i = 0; i < n; ++i) {
      codec.Serialize(records[base + i], buf.data() + i * rs);
      spans[i] = crypto::ByteSpan{buf.data() + i * rs, rs};
    }
    crypto::ComputeDigests(spans.data(), n, out.data() + base, scheme);
  }
  return out;
}

}  // namespace sae::storage
