// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the snapshot store (storage/snapshot.h): the temp-then-rename
// write protocol, the CRC-validated load with fallback, and keep-N GC.
//
// On-disk snapshot layout (little-endian):
//   [magic u32][version u32][epoch u64][payload_len u64]
//   [payload bytes][crc32 u32 over everything preceding]

#include "storage/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "storage/wal.h"  // Crc32
#include "util/codec.h"

namespace sae::storage {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53414553;  // "SAES"
constexpr uint32_t kSnapshotVersion = 1;
constexpr size_t kSnapshotHeader = 4 + 4 + 8 + 8;
constexpr const char* kTmpName = "snap.tmp";
constexpr const char* kSnapPrefix = "snap-";
constexpr size_t kEpochDigits = 20;  // zero-padded u64 — names sort by epoch

/// Parses "snap-<20 digits>" into the epoch; false for any other name
/// (including the temp file and truncated/garbage names).
bool ParseSnapshotName(const std::string& name, uint64_t* epoch) {
  if (name.size() != std::string(kSnapPrefix).size() + kEpochDigits) {
    return false;
  }
  if (name.compare(0, 5, kSnapPrefix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + uint64_t(name[i] - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

SnapshotStore::SnapshotStore(Vfs* vfs, std::string dir, size_t keep)
    : vfs_(vfs), dir_(std::move(dir)), keep_(keep < 1 ? 1 : keep) {}

std::string SnapshotStore::PathFor(uint64_t epoch) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%020llu", kSnapPrefix,
                static_cast<unsigned long long>(epoch));
  return dir_ + "/" + name;
}

Status SnapshotStore::Write(uint64_t epoch,
                            const std::vector<uint8_t>& payload) {
  SAE_RETURN_NOT_OK(vfs_->MkDir(dir_));

  std::vector<uint8_t> image(kSnapshotHeader + payload.size() + 4);
  EncodeU32(image.data(), kSnapshotMagic);
  EncodeU32(image.data() + 4, kSnapshotVersion);
  EncodeU64(image.data() + 8, epoch);
  EncodeU64(image.data() + 16, uint64_t(payload.size()));
  std::copy(payload.begin(), payload.end(), image.begin() + kSnapshotHeader);
  EncodeU32(image.data() + kSnapshotHeader + payload.size(),
            Crc32(image.data(), kSnapshotHeader + payload.size()));

  // Temp-then-rename: content becomes durable at the Sync, the name at the
  // Rename. A crash before the rename leaves only snap.tmp (ignored by
  // ParseSnapshotName); a crash after it leaves a complete snapshot.
  const std::string tmp = dir_ + "/" + kTmpName;
  {
    SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs_->Open(tmp, true));
    SAE_RETURN_NOT_OK(file->Truncate(0));
    SAE_RETURN_NOT_OK(file->WriteAt(0, image.data(), image.size()));
    SAE_RETURN_NOT_OK(file->Sync());
  }
  SAE_RETURN_NOT_OK(vfs_->Rename(tmp, PathFor(epoch)));

  // GC: drop everything older than the newest keep_ snapshots. Runs after
  // the rename so a crash during GC can only lose already-redundant files.
  SAE_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ListEpochs());
  if (epochs.size() > keep_) {
    for (size_t i = 0; i + keep_ < epochs.size(); ++i) {
      SAE_RETURN_NOT_OK(vfs_->Remove(PathFor(epochs[i])));
    }
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> SnapshotStore::ListEpochs() const {
  std::vector<uint64_t> epochs;
  SAE_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs_->List(dir_));
  for (const std::string& name : names) {
    uint64_t epoch = 0;
    if (ParseSnapshotName(name, &epoch)) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<SnapshotStore::Loaded> SnapshotStore::LoadLatest() const {
  SAE_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ListEpochs());
  // Newest first; any file that fails validation is skipped in favor of
  // the next-newest (the keep >= 2 fallback).
  for (size_t attempt = 0; attempt < epochs.size(); ++attempt) {
    uint64_t epoch = epochs[epochs.size() - 1 - attempt];
    auto file_or = vfs_->Open(PathFor(epoch), false);
    if (!file_or.ok()) {
      if (file_or.status().code() == StatusCode::kNotFound) continue;
      return file_or.status();
    }
    std::unique_ptr<VfsFile> file = std::move(file_or.value());
    SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    if (size < kSnapshotHeader + 4) continue;  // torn
    std::vector<uint8_t> image(size);
    SAE_ASSIGN_OR_RETURN(size_t got, file->ReadAt(0, image.data(), size));
    if (got < size) continue;
    if (DecodeU32(image.data()) != kSnapshotMagic) continue;
    if (DecodeU32(image.data() + 4) != kSnapshotVersion) continue;
    uint64_t header_epoch = DecodeU64(image.data() + 8);
    uint64_t payload_len = DecodeU64(image.data() + 16);
    if (header_epoch != epoch) continue;  // file renamed by hand
    if (kSnapshotHeader + payload_len + 4 != size) continue;
    uint32_t stored_crc = DecodeU32(image.data() + size - 4);
    if (Crc32(image.data(), size - 4) != stored_crc) continue;

    Loaded loaded;
    loaded.epoch = epoch;
    loaded.payload.assign(image.begin() + kSnapshotHeader,
                          image.end() - 4);
    loaded.fell_back = attempt > 0;
    return loaded;
  }
  return Status::NotFound("no valid snapshot in " + dir_);
}

}  // namespace sae::storage
