// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the snapshot store (storage/snapshot.h): the temp-then-rename
// write protocol for full and delta files, the CRC-validated chain walk
// with fallback, and chain-aware keep-N GC.
//
// On-disk full-snapshot layout (little-endian):
//   [magic u32][version u32][epoch u64][payload_len u64]
//   [payload bytes][crc32 u32 over everything preceding]
// Delta layout adds the base epoch:
//   [magic u32][version u32][base u64][epoch u64][payload_len u64]
//   [payload bytes][crc32 u32 over everything preceding]

#include "storage/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "storage/wal.h"  // Crc32
#include "util/codec.h"

namespace sae::storage {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53414553;  // "SAES"
constexpr uint32_t kDeltaMagic = 0x53414544;     // "SAED"
constexpr uint32_t kSnapshotVersion = 1;
constexpr size_t kSnapshotHeader = 4 + 4 + 8 + 8;
constexpr size_t kDeltaHeader = 4 + 4 + 8 + 8 + 8;
constexpr const char* kTmpName = "snap.tmp";
constexpr const char* kSnapPrefix = "snap-";
constexpr const char* kDeltaPrefix = "delta-";
constexpr size_t kEpochDigits = 20;  // zero-padded u64 — names sort by epoch

bool ParseDigits(const std::string& name, size_t pos, size_t count,
                 uint64_t* value) {
  uint64_t out = 0;
  for (size_t i = pos; i < pos + count; ++i) {
    if (i >= name.size() || name[i] < '0' || name[i] > '9') return false;
    out = out * 10 + uint64_t(name[i] - '0');
  }
  *value = out;
  return true;
}

/// Parses "snap-<20 digits>" into the epoch; false for any other name
/// (including the temp file and truncated/garbage names).
bool ParseSnapshotName(const std::string& name, uint64_t* epoch) {
  const size_t prefix = std::string(kSnapPrefix).size();
  if (name.size() != prefix + kEpochDigits) return false;
  if (name.compare(0, prefix, kSnapPrefix) != 0) return false;
  return ParseDigits(name, prefix, kEpochDigits, epoch);
}

/// Parses "delta-<20 digits>-<20 digits>" into (base, epoch).
bool ParseDeltaName(const std::string& name, uint64_t* base,
                    uint64_t* epoch) {
  const size_t prefix = std::string(kDeltaPrefix).size();
  if (name.size() != prefix + kEpochDigits + 1 + kEpochDigits) return false;
  if (name.compare(0, prefix, kDeltaPrefix) != 0) return false;
  if (name[prefix + kEpochDigits] != '-') return false;
  return ParseDigits(name, prefix, kEpochDigits, base) &&
         ParseDigits(name, prefix + kEpochDigits + 1, kEpochDigits, epoch);
}

}  // namespace

SnapshotStore::SnapshotStore(Vfs* vfs, std::string dir, size_t keep)
    : vfs_(vfs), dir_(std::move(dir)), keep_(keep < 1 ? 1 : keep) {}

std::string SnapshotStore::PathFor(uint64_t epoch) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%020llu", kSnapPrefix,
                static_cast<unsigned long long>(epoch));
  return dir_ + "/" + name;
}

std::string SnapshotStore::DeltaPathFor(uint64_t base_epoch,
                                        uint64_t epoch) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020llu-%020llu", kDeltaPrefix,
                static_cast<unsigned long long>(base_epoch),
                static_cast<unsigned long long>(epoch));
  return dir_ + "/" + name;
}

Status SnapshotStore::WriteImage(const std::vector<uint8_t>& image,
                                 const std::string& final_path) {
  // Temp-then-rename: content becomes durable at the Sync, the name at the
  // Rename. A crash before the rename leaves only snap.tmp (ignored by the
  // name parsers); a crash after it leaves a complete file.
  const std::string tmp = dir_ + "/" + kTmpName;
  {
    SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs_->Open(tmp, true));
    SAE_RETURN_NOT_OK(file->Truncate(0));
    SAE_RETURN_NOT_OK(file->WriteAt(0, image.data(), image.size()));
    SAE_RETURN_NOT_OK(file->Sync());
  }
  return vfs_->Rename(tmp, final_path);
}

Status SnapshotStore::Write(uint64_t epoch,
                            const std::vector<uint8_t>& payload) {
  SAE_RETURN_NOT_OK(vfs_->MkDir(dir_));

  std::vector<uint8_t> image(kSnapshotHeader + payload.size() + 4);
  EncodeU32(image.data(), kSnapshotMagic);
  EncodeU32(image.data() + 4, kSnapshotVersion);
  EncodeU64(image.data() + 8, epoch);
  EncodeU64(image.data() + 16, uint64_t(payload.size()));
  std::copy(payload.begin(), payload.end(), image.begin() + kSnapshotHeader);
  EncodeU32(image.data() + kSnapshotHeader + payload.size(),
            Crc32(image.data(), kSnapshotHeader + payload.size()));
  SAE_RETURN_NOT_OK(WriteImage(image, PathFor(epoch)));

  // Chain GC: a new full snapshot completes the previous chain. Keep the
  // newest keep_ fulls and every delta at or above the oldest kept full
  // (those are the kept chains' links); everything below belongs to a
  // retired chain. Runs after the rename so a crash during GC can only
  // lose already-redundant files.
  SAE_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ListEpochs());
  if (epochs.size() > keep_) {
    uint64_t cutoff = epochs[epochs.size() - keep_];
    for (size_t i = 0; i + keep_ < epochs.size(); ++i) {
      SAE_RETURN_NOT_OK(vfs_->Remove(PathFor(epochs[i])));
    }
    SAE_ASSIGN_OR_RETURN(auto links, ListDeltaLinks());
    for (const auto& [base, delta_epoch] : links) {
      if (delta_epoch < cutoff) {
        SAE_RETURN_NOT_OK(vfs_->Remove(DeltaPathFor(base, delta_epoch)));
      }
    }
  }
  return Status::OK();
}

Status SnapshotStore::WriteDelta(uint64_t base_epoch, uint64_t epoch,
                                 const std::vector<uint8_t>& payload) {
  SAE_RETURN_NOT_OK(vfs_->MkDir(dir_));
  std::vector<uint8_t> image(kDeltaHeader + payload.size() + 4);
  EncodeU32(image.data(), kDeltaMagic);
  EncodeU32(image.data() + 4, kSnapshotVersion);
  EncodeU64(image.data() + 8, base_epoch);
  EncodeU64(image.data() + 16, epoch);
  EncodeU64(image.data() + 24, uint64_t(payload.size()));
  std::copy(payload.begin(), payload.end(), image.begin() + kDeltaHeader);
  EncodeU32(image.data() + kDeltaHeader + payload.size(),
            Crc32(image.data(), kDeltaHeader + payload.size()));
  return WriteImage(image, DeltaPathFor(base_epoch, epoch));
}

Result<std::vector<uint64_t>> SnapshotStore::ListEpochs() const {
  std::vector<uint64_t> epochs;
  SAE_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs_->List(dir_));
  for (const std::string& name : names) {
    uint64_t epoch = 0;
    if (ParseSnapshotName(name, &epoch)) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<std::vector<std::pair<uint64_t, uint64_t>>>
SnapshotStore::ListDeltaLinks() const {
  std::vector<std::pair<uint64_t, uint64_t>> links;
  SAE_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs_->List(dir_));
  for (const std::string& name : names) {
    uint64_t base = 0, epoch = 0;
    if (ParseDeltaName(name, &base, &epoch)) links.emplace_back(base, epoch);
  }
  std::sort(links.begin(), links.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return links;
}

Result<SnapshotStore::Loaded> SnapshotStore::LoadLatest() const {
  SAE_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ListEpochs());
  // Newest first; any file that fails validation is skipped in favor of
  // the next-newest (the keep >= 2 fallback).
  for (size_t attempt = 0; attempt < epochs.size(); ++attempt) {
    uint64_t epoch = epochs[epochs.size() - 1 - attempt];
    auto file_or = vfs_->Open(PathFor(epoch), false);
    if (!file_or.ok()) {
      if (file_or.status().code() == StatusCode::kNotFound) continue;
      return file_or.status();
    }
    std::unique_ptr<VfsFile> file = std::move(file_or.value());
    SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    if (size < kSnapshotHeader + 4) continue;  // torn
    std::vector<uint8_t> image(size);
    SAE_ASSIGN_OR_RETURN(size_t got, file->ReadAt(0, image.data(), size));
    if (got < size) continue;
    if (DecodeU32(image.data()) != kSnapshotMagic) continue;
    if (DecodeU32(image.data() + 4) != kSnapshotVersion) continue;
    uint64_t header_epoch = DecodeU64(image.data() + 8);
    uint64_t payload_len = DecodeU64(image.data() + 16);
    if (header_epoch != epoch) continue;  // file renamed by hand
    if (kSnapshotHeader + payload_len + 4 != size) continue;
    uint32_t stored_crc = DecodeU32(image.data() + size - 4);
    if (Crc32(image.data(), size - 4) != stored_crc) continue;

    Loaded loaded;
    loaded.epoch = epoch;
    loaded.payload.assign(image.begin() + kSnapshotHeader, image.end() - 4);
    loaded.fell_back = attempt > 0;
    return loaded;
  }
  return Status::NotFound("no valid snapshot in " + dir_);
}

Result<std::vector<uint8_t>> SnapshotStore::ReadDelta(uint64_t base_epoch,
                                                      uint64_t epoch) const {
  if (base_epoch >= epoch) {
    // A delta must advance the epoch. The writer never produces base >=
    // epoch; a file claiming it (self-link or backward link) is an on-disk
    // adversary or a corrupt name, and accepting it could stall the chain
    // walk on a link that never moves the cursor forward.
    return Status::Corruption("delta does not advance its base epoch");
  }
  SAE_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                       vfs_->Open(DeltaPathFor(base_epoch, epoch), false));
  SAE_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size < kDeltaHeader + 4) {
    return Status::Corruption("delta file is torn");
  }
  std::vector<uint8_t> image(size);
  SAE_ASSIGN_OR_RETURN(size_t got, file->ReadAt(0, image.data(), size));
  if (got < size) return Status::Corruption("delta file is torn");
  if (DecodeU32(image.data()) != kDeltaMagic ||
      DecodeU32(image.data() + 4) != kSnapshotVersion ||
      DecodeU64(image.data() + 8) != base_epoch ||
      DecodeU64(image.data() + 16) != epoch) {
    return Status::Corruption("delta header does not match its name");
  }
  uint64_t payload_len = DecodeU64(image.data() + 24);
  if (kDeltaHeader + payload_len + 4 != size) {
    return Status::Corruption("delta length lies");
  }
  uint32_t stored_crc = DecodeU32(image.data() + size - 4);
  if (Crc32(image.data(), size - 4) != stored_crc) {
    return Status::Corruption("delta checksum mismatch");
  }
  return std::vector<uint8_t>(image.begin() + kDeltaHeader, image.end() - 4);
}

Result<SnapshotStore::LoadedChain> SnapshotStore::LoadChain() const {
  SAE_ASSIGN_OR_RETURN(Loaded base, LoadLatest());
  LoadedChain chain;
  chain.base_epoch = base.epoch;
  chain.base_payload = std::move(base.payload);
  chain.fell_back = base.fell_back;

  SAE_ASSIGN_OR_RETURN(auto links, ListDeltaLinks());
  uint64_t cursor = chain.base_epoch;
  for (;;) {
    // Candidates linking onto the current tail, oldest epoch first — the
    // original chain wrote exactly one; a second can only appear after a
    // fallback re-chained from an older tail, and then only because the
    // first was invalid.
    bool advanced = false;
    bool saw_candidate = false;
    for (const auto& [link_base, link_epoch] : links) {
      // Only links that strictly advance the cursor can extend the chain:
      // a self-link (base == epoch) or backward link would otherwise be
      // re-visited forever. With every accepted step strictly increasing
      // `cursor`, the walk terminates even against adversarial file names.
      if (link_base != cursor || link_epoch <= link_base) continue;
      saw_candidate = true;
      auto payload = ReadDelta(link_base, link_epoch);
      if (!payload.ok()) {
        if (payload.status().code() == StatusCode::kCorruption ||
            payload.status().code() == StatusCode::kNotFound) {
          continue;  // never compose past a bad link; try a sibling
        }
        return payload.status();
      }
      chain.deltas.push_back(
          ChainLink{link_base, link_epoch, std::move(payload.value())});
      cursor = link_epoch;
      advanced = true;
      break;
    }
    if (!advanced) {
      // A candidate existed but none validated: the chain is cut short of
      // what was once written — recovery comes back older, and the client
      // freshness gate surfaces the difference as kStaleEpoch.
      if (saw_candidate) chain.fell_back = true;
      break;
    }
  }
  return chain;
}

}  // namespace sae::storage
