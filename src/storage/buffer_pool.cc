// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the LRU BufferPool (storage/buffer_pool.h) and its logical
// node-access / frame-miss counters — the paper's cost instrumentation.

#include "storage/buffer_pool.h"

#include "util/macros.h"

namespace sae::storage {

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page& BufferPool::PageRef::Mutable() {
  SAE_CHECK(valid());
  pool_->MarkDirty(frame_);
  return pool_->frames_[frame_].page;
}

const Page& BufferPool::PageRef::Get() const {
  SAE_CHECK(valid());
  return pool_->frames_[frame_].page;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  SAE_CHECK(capacity_ >= 4);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i-- > 0;) free_frames_.push_back(i);
}

BufferPool::~BufferPool() { SAE_CHECK_OK(FlushAll()); }

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  SAE_CHECK(f.in_use && f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(frame);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::OutOfRange("all buffer frames pinned");
  }
  size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  if (f.dirty) {
    SAE_RETURN_NOT_OK(store_->Write(f.id, f.page));
  }
  table_.erase(f.id);
  f.in_use = false;
  f.dirty = false;
  ++stats_.evictions;
  return victim;
}

Result<BufferPool::PageRef> BufferPool::Fetch(PageId id) {
  ++stats_.accesses;
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageRef(this, it->second, id);
  }

  ++stats_.misses;
  SAE_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  Status st = store_->Read(id, &f.page);
  if (!st.ok()) {
    free_frames_.push_back(frame);
    return st;
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_use = true;
  f.in_lru = false;
  table_[id] = frame;
  return PageRef(this, frame, id);
}

Result<BufferPool::PageRef> BufferPool::New() {
  ++stats_.accesses;
  ++stats_.allocations;
  SAE_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  SAE_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  f.page.Zero();
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_use = true;
  f.in_lru = false;
  table_[id] = frame;
  return PageRef(this, frame, id);
}

Status BufferPool::Free(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::InvalidArgument("freeing a pinned page");
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.in_use = false;
    f.dirty = false;
    free_frames_.push_back(it->second);
    table_.erase(it);
  }
  return store_->Free(id);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      SAE_RETURN_NOT_OK(store_->Write(f.id, f.page));
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace sae::storage
