// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the LRU BufferPool (storage/buffer_pool.h) and its logical
// node-access / frame-miss counters — the paper's cost instrumentation.
// One mutex guards all frame bookkeeping; counters are atomic and also
// mirrored into per-thread slots so workers can attribute accesses to the
// query they are running without touching shared mutable state.

#include "storage/buffer_pool.h"

#include "util/macros.h"

namespace sae::storage {

namespace {

// Per-(thread, pool) counters, keyed by pool address. Entries of destroyed
// pools are never erased; callers only consume snapshot *deltas*, so a
// stale base value from a recycled address cancels out.
thread_local std::unordered_map<const void*, BufferPool::Stats>
    t_pool_stats;

}  // namespace

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page& BufferPool::PageRef::Mutable() {
  SAE_CHECK(valid());
  pool_->MarkDirty(frame_);
  return pool_->frames_[frame_].page;
}

const Page& BufferPool::PageRef::Get() const {
  SAE_CHECK(valid());
  return pool_->frames_[frame_].page;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  SAE_CHECK(capacity_ >= 4);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i-- > 0;) free_frames_.push_back(i);
}

BufferPool::~BufferPool() { SAE_CHECK_OK(FlushAll()); }

void BufferPool::CountAccess(bool miss) {
  accesses_.fetch_add(1, std::memory_order_relaxed);
  Stats& tls = t_pool_stats[this];
  ++tls.accesses;
  if (miss) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++tls.misses;
  }
}

void BufferPool::CountEviction() {
  evictions_.fetch_add(1, std::memory_order_relaxed);
  ++t_pool_stats[this].evictions;
}

void BufferPool::CountAllocation() {
  allocations_.fetch_add(1, std::memory_order_relaxed);
  ++t_pool_stats[this].allocations;
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.accesses = accesses_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  return s;
}

BufferPool::Stats BufferPool::ThreadStats() const {
  auto it = t_pool_stats.find(this);
  return it == t_pool_stats.end() ? Stats{} : it->second;
}

void BufferPool::ResetStats() {
  accesses_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  allocations_.store(0, std::memory_order_relaxed);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  SAE_CHECK(f.in_use && f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(frame);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Result<size_t> BufferPool::GrabFrame(bool* evicted) {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::OutOfRange("all buffer frames pinned");
  }
  size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  if (f.dirty) {
    SAE_RETURN_NOT_OK(store_->Write(f.id, f.page));
  }
  table_.erase(f.id);
  f.in_use = false;
  f.dirty = false;
  *evicted = true;
  return victim;
}

Result<BufferPool::PageRef> BufferPool::Fetch(PageId id) {
  bool miss = false;
  bool evicted = false;
  Result<PageRef> result = [&]() -> Result<PageRef> {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(id);
    if (it != table_.end()) {
      Frame& f = frames_[it->second];
      if (f.pin_count == 0 && f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
      ++f.pin_count;
      return PageRef(this, it->second, id);
    }

    miss = true;
    SAE_ASSIGN_OR_RETURN(size_t frame, GrabFrame(&evicted));
    Frame& f = frames_[frame];
    Status st = store_->Read(id, &f.page);
    if (!st.ok()) {
      free_frames_.push_back(frame);
      return st;
    }
    f.id = id;
    f.pin_count = 1;
    f.dirty = false;
    f.in_use = true;
    f.in_lru = false;
    table_[id] = frame;
    return PageRef(this, frame, id);
  }();
  CountAccess(miss);
  if (evicted) CountEviction();
  return result;
}

Result<BufferPool::PageRef> BufferPool::New() {
  bool evicted = false;
  Result<PageRef> result = [&]() -> Result<PageRef> {
    std::lock_guard<std::mutex> lock(mu_);
    SAE_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
    SAE_ASSIGN_OR_RETURN(size_t frame, GrabFrame(&evicted));
    Frame& f = frames_[frame];
    f.page.Zero();
    f.id = id;
    f.pin_count = 1;
    f.dirty = true;
    f.in_use = true;
    f.in_lru = false;
    table_[id] = frame;
    return PageRef(this, frame, id);
  }();
  CountAccess(/*miss=*/false);
  CountAllocation();
  if (evicted) CountEviction();
  return result;
}

Status BufferPool::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::InvalidArgument("freeing a pinned page");
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.in_use = false;
    f.dirty = false;
    free_frames_.push_back(it->second);
    table_.erase(it);
  }
  return store_->Free(id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      SAE_RETURN_NOT_OK(store_->Write(f.id, f.page));
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace sae::storage
