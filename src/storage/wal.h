// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Write-ahead log: the durability commit point of the update pipeline.
// Every Insert/Delete appends one checksummed, length-prefixed record —
// carrying the post-update epoch — and syncs BEFORE the in-memory auth
// state mutates; an update whose record is durable is recoverable, one
// whose record is torn never happened.
//
// On-disk record layout (little-endian):
//   [payload_len u32][crc32 u32 over payload][payload bytes]
//
// Recovery scans from offset 0 and stops at the first record that is torn
// (file ends mid-record), has a lying length prefix (> kMaxWalPayload or
// past EOF) or fails its checksum — everything before that point replays,
// everything after is discarded (ReadLog reports the cut so Open can
// truncate it). A corrupted record therefore never crashes recovery and
// never causes over-replay: the log's valid prefix is exactly what
// re-applies.

#ifndef SAE_STORAGE_WAL_H_
#define SAE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/vfs.h"
#include "util/status.h"

namespace sae::storage {

/// Per-record header: length prefix + checksum.
inline constexpr size_t kWalRecordHeader = 8;

/// Upper bound on one record's payload. A lying length prefix above this is
/// rejected before any allocation.
inline constexpr uint32_t kMaxWalPayload = 1u << 20;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the WAL and snapshot
/// integrity checksum. Not cryptographic: it detects torn writes and media
/// corruption; authenticity comes from the verification layer above.
uint32_t Crc32(const uint8_t* data, size_t len);

/// The scanned content of a log file: the records of the valid prefix, the
/// byte offset where validity ends, and whether garbage followed it.
struct WalContents {
  std::vector<std::vector<uint8_t>> records;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Scans `path` (missing file = empty log). Never fails on corrupt bytes —
/// corruption just ends the valid prefix; only genuine I/O errors surface.
Result<WalContents> ReadLog(Vfs* vfs, const std::string& path);

/// Append handle over the log file. Open() scans the existing content,
/// truncates any torn tail (so later appends land on a valid prefix), and
/// positions at the end. One instance per log; callers serialize (the
/// owning system appends under its writer lock).
class WriteAheadLog {
 public:
  /// Opens or creates the log. `contents`, when non-null, receives the
  /// valid prefix found on disk (the recovery tail to replay).
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      Vfs* vfs, const std::string& path, WalContents* contents = nullptr);

  /// Appends one record and syncs it durable (one sync point). On any
  /// failure the in-memory end offset is NOT advanced, so a later append
  /// overwrites the torn bytes.
  Status Append(const uint8_t* payload, size_t len);
  Status Append(const std::vector<uint8_t>& payload) {
    return Append(payload.data(), payload.size());
  }

  /// Empties the log (after a snapshot made its records redundant) and
  /// syncs (one sync point).
  Status Reset();

  /// Rolls the log back to `offset` (a record boundary from before an
  /// append) and syncs (one sync point). Used to retract an appended
  /// record whose in-memory apply failed.
  Status TruncateTo(uint64_t offset);

  /// Bytes of valid, durable log — the replay cost a crash right now
  /// would incur.
  uint64_t size_bytes() const { return end_; }

 private:
  WriteAheadLog(std::unique_ptr<VfsFile> file, uint64_t end)
      : file_(std::move(file)), end_(end) {}

  std::unique_ptr<VfsFile> file_;
  uint64_t end_;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_WAL_H_
