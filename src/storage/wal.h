// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Write-ahead log: the durability commit point of the update pipeline.
// Every Insert/Delete stages one checksummed, length-prefixed record —
// carrying the post-update epoch — and the record is synced durable BEFORE
// the in-memory auth state mutates; an update whose record is durable is
// recoverable, one whose record is torn never happened.
//
// The log is a sequence of segment files `wal-<seq020>` in one directory.
// Records append to the ACTIVE (highest-seq) segment; `Rotate()` seals it
// at a checkpoint capture, so segments the checkpoint made redundant can be
// dropped as whole files (`DropSegmentsThrough`) once the checkpoint is
// durable — never while a crash could still need them.
//
// Group commit splits the old append-and-sync into two halves:
//   Stage(payload)  -> seq   buffered write, volatile; callers serialize
//                            (the owning system's writer lock)
//   Commit(seq)               returns once every record up to `seq` is
//                            durable; concurrent committers elect ONE
//                            leader whose single fsync covers the whole
//                            group, the rest just wait
// Append() = Stage + Commit inline (the non-group path; byte- and
// barrier-identical to the PR 9 single-file log per record).
//
// On-disk record layout (little-endian), unchanged from PR 9:
//   [payload_len u32][crc32 u32 over payload][payload bytes]
//
// Recovery scans segments in sequence order from offset 0 and stops at the
// first record that is torn (file ends mid-record), has a lying length
// prefix (> kMaxWalPayload or past EOF) or fails its checksum — everything
// before that point replays; the torn tail is truncated and any LATER
// segment is dropped (a valid record can never legitimately follow a torn
// one). A corrupted record therefore never crashes recovery and never
// causes over-replay: the log's valid prefix is exactly what re-applies.

#ifndef SAE_STORAGE_WAL_H_
#define SAE_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/vfs.h"
#include "util/status.h"

namespace sae::storage {

/// Per-record header: length prefix + checksum.
inline constexpr size_t kWalRecordHeader = 8;

/// Upper bound on one record's payload. A lying length prefix above this is
/// rejected before any allocation.
inline constexpr uint32_t kMaxWalPayload = 1u << 20;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the WAL and snapshot
/// integrity checksum. Not cryptographic: it detects torn writes and media
/// corruption; authenticity comes from the verification layer above.
uint32_t Crc32(const uint8_t* data, size_t len);

/// The scanned content of a log file: the records of the valid prefix, the
/// byte offset where validity ends, and whether garbage followed it.
struct WalContents {
  std::vector<std::vector<uint8_t>> records;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Scans one segment file at `path` (missing file = empty log). Never fails
/// on corrupt bytes — corruption just ends the valid prefix; only genuine
/// I/O errors surface.
Result<WalContents> ReadLog(Vfs* vfs, const std::string& path);

/// Parses "wal-<20 digits>" into the segment sequence number; false for
/// any other name.
bool ParseWalSegmentName(const std::string& name, uint64_t* seq);

/// Segment file name for `seq` (zero-padded, sorts by sequence).
std::string WalSegmentName(uint64_t seq);

/// Handle over one directory's segmented log. Open() scans the existing
/// segments in order, truncates any torn tail (so later appends land on a
/// valid prefix), and positions at the end of the highest segment. One
/// instance per log; stagers serialize (the owning system stages under its
/// writer lock) while any number of threads may Commit concurrently.
class WriteAheadLog {
 public:
  /// Opens or creates the log under `dir`. `contents`, when non-null,
  /// receives the valid record prefix found across all segments (the
  /// recovery tail to replay).
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      Vfs* vfs, const std::string& dir, WalContents* contents = nullptr);

  /// Buffers one record into the active segment (volatile until a Commit
  /// or Rotate covers it) and returns its commit sequence number. On any
  /// failure the in-memory end offset is NOT advanced, so a later stage
  /// overwrites the torn bytes. Callers serialize.
  Result<uint64_t> Stage(const uint8_t* payload, size_t len);
  Result<uint64_t> Stage(const std::vector<uint8_t>& payload) {
    return Stage(payload.data(), payload.size());
  }

  /// Returns once every record with sequence <= `seq` is durable. The group
  /// sequencer: the first committer to find undurable records becomes the
  /// leader and issues one fsync for everything staged so far (waiting up
  /// to `max_delay_us` for stragglers to stage first); everyone covered by
  /// that fsync just waits. A failed fsync wakes all waiters, each of whom
  /// retries as its own leader and surfaces its own error — after a real
  /// crash every retry fails, so no committer ever reports durable falsely.
  Status Commit(uint64_t seq, uint32_t max_delay_us = 0);

  /// Stage + Commit inline: one record, one sync point — the non-group
  /// write path.
  Status Append(const uint8_t* payload, size_t len);
  Status Append(const std::vector<uint8_t>& payload) {
    return Append(payload.data(), payload.size());
  }

  /// Retracts the most recently staged record (its in-memory apply
  /// failed) and syncs the shortened segment (one sync point). Only valid
  /// when nothing staged after it — the non-group pipeline's undo.
  Status UndoLastStaged();

  /// Seals the active segment at a checkpoint capture and returns its
  /// sequence number; the next Stage opens segment seq+1. Syncs the sealed
  /// segment first if it holds staged-but-undurable records (callers
  /// normally rotate at a quiescent point, making this a no-op — no
  /// barrier). Excludes concurrent Stage (both run under the owning
  /// system's writer lock).
  Result<uint64_t> Rotate();

  /// Removes every sealed segment with sequence <= `seq` — called once the
  /// checkpoint that made them redundant is durable, never before.
  Status DropSegmentsThrough(uint64_t seq);

  /// Cuts the log after record number `keep` (0-based count) of the prefix
  /// Open() scanned: truncates the segment holding that record and removes
  /// every later segment. Recovery uses this to drop crc-valid records
  /// that fail to decode or do not chain. Only valid before any new Stage.
  Status TruncateAfterRecord(size_t keep);

  /// Bytes of valid log across all live segments — the replay cost a
  /// crash right now would incur (staged-but-unsynced bytes included).
  uint64_t size_bytes() const;

  /// Write-path counters since Open (for DurabilityStats).
  struct Stats {
    uint64_t staged_records = 0;  ///< records staged (or appended)
    uint64_t staged_bytes = 0;    ///< payload+header bytes staged
    uint64_t syncs = 0;           ///< fsyncs issued by Commit/Append/Rotate
    uint64_t synced_records = 0;  ///< records covered by those fsyncs —
                                  ///< synced_records / syncs = group size
  };
  Stats stats() const;

 private:
  WriteAheadLog(Vfs* vfs, std::string dir) : vfs_(vfs), dir_(std::move(dir)) {}

  std::string SegmentPath(uint64_t seq) const;
  /// Opens/creates the active segment file if not already open.
  Status EnsureActiveOpenLocked();

  Vfs* vfs_;
  std::string dir_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t active_seq_ = 1;
  std::shared_ptr<VfsFile> active_file_;  // shared: a leader's in-flight
                                          // sync survives a Rotate swap
  uint64_t end_ = 0;            // valid end offset in the active segment
  uint64_t prev_end_ = 0;       // end before the last Stage (for undo)
  std::map<uint64_t, uint64_t> sealed_bytes_;  // seq -> size of sealed segs
  uint64_t staged_count_ = 0;   // records staged, cumulative
  uint64_t durable_count_ = 0;  // records known durable
  bool sync_in_flight_ = false;
  Stats stats_;

  // Per-record cut points of the prefix Open() scanned (segment seq, end
  // offset after the record) — consumed by TruncateAfterRecord.
  struct RecordPos {
    uint64_t segment = 0;
    uint64_t end_offset = 0;
  };
  std::vector<RecordPos> open_record_pos_;
  uint64_t open_first_segment_ = 1;
};

}  // namespace sae::storage

#endif  // SAE_STORAGE_WAL_H_
