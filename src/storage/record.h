// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The outsourced record and its canonical binary representation.
//
// Paper §IV: each record has a 4-byte integer search key in [0, 10^7] plus
// additional attributes, 500 bytes in total. Digests (SAE's t.h, the
// MB-tree's leaf digests) are computed "on the binary representation of the
// record", so serialization must be canonical: id (8B LE) || key (4B LE) ||
// payload (record_size - 12 bytes).

#ifndef SAE_STORAGE_RECORD_H_
#define SAE_STORAGE_RECORD_H_

#include <cstdint>
#include <vector>

#include "crypto/digest.h"
#include "util/status.h"

namespace sae::storage {

using RecordId = uint64_t;  // application-level unique id (DO-assigned)
using Key = uint32_t;       // query-attribute value

/// The paper's experimental record size.
inline constexpr size_t kDefaultRecordSize = 500;

/// Minimum serialized size (id + key, no payload).
inline constexpr size_t kRecordHeaderSize = 12;

/// A relational record: unique id, query-attribute key and opaque payload
/// standing in for the remaining attributes.
struct Record {
  RecordId id = 0;
  Key key = 0;
  std::vector<uint8_t> payload;

  friend bool operator==(const Record& a, const Record& b) {
    return a.id == b.id && a.key == b.key && a.payload == b.payload;
  }
};

/// Serializes/deserializes records at a fixed total size.
class RecordCodec {
 public:
  explicit RecordCodec(size_t record_size = kDefaultRecordSize);

  size_t record_size() const { return record_size_; }
  size_t payload_size() const { return record_size_ - kRecordHeaderSize; }

  /// Writes exactly record_size() bytes. Payload shorter than payload_size()
  /// is zero-padded; longer payloads are a programming error.
  void Serialize(const Record& record, uint8_t* out) const;

  std::vector<uint8_t> Serialize(const Record& record) const;

  /// Parses record_size() bytes.
  Record Deserialize(const uint8_t* data) const;

  /// Deterministic payload derived from the record id, so that the DO, SP,
  /// TE and tests all reconstruct identical record bytes without shipping
  /// payloads around.
  Record MakeRecord(RecordId id, Key key) const;

 private:
  size_t record_size_;
};

/// out[i] = H(serialize(records[i])) for every record, digested in batches
/// through crypto::ComputeDigests so the multi-buffer hash kernels see up to
/// 8 records per pass. Serialization happens into a chunk-sized contiguous
/// scratch buffer (cache-resident), not one allocation per record. This is
/// the shared hot loop of TE/DO dataset loads and client witness re-hashing.
std::vector<crypto::Digest> DigestRecords(const std::vector<Record>& records,
                                          const RecordCodec& codec,
                                          crypto::HashScheme scheme);

}  // namespace sae::storage

#endif  // SAE_STORAGE_RECORD_H_
