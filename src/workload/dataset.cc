// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the UNF/SKW dataset generators (workload/dataset.h).

#include "workload/dataset.h"

#include <algorithm>

#include "storage/record.h"
#include "util/random.h"
#include "util/zipf.h"

namespace sae::workload {

std::vector<storage::Record> GenerateDataset(const DatasetSpec& spec) {
  storage::RecordCodec codec(spec.record_size);
  std::vector<storage::Record> records;
  records.reserve(spec.cardinality);

  if (spec.distribution == Distribution::kUniform) {
    Rng rng(spec.seed);
    for (size_t i = 0; i < spec.cardinality; ++i) {
      uint32_t key = uint32_t(rng.NextRange(0, spec.domain_max));
      records.push_back(codec.MakeRecord(storage::RecordId(i + 1), key));
    }
  } else {
    SkewedKeyGenerator gen(spec.domain_max, spec.zipf_theta, spec.zipf_buckets,
                           spec.seed);
    for (size_t i = 0; i < spec.cardinality; ++i) {
      records.push_back(
          codec.MakeRecord(storage::RecordId(i + 1), gen.Next()));
    }
  }

  std::sort(records.begin(), records.end(),
            [](const storage::Record& a, const storage::Record& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  return records;
}

}  // namespace sae::workload
