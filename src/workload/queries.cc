// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the fixed-extent uniform range-query workload
// (workload/queries.h).

#include "workload/queries.h"

#include "util/macros.h"
#include "util/random.h"

namespace sae::workload {

std::vector<RangeQuery> GenerateQueries(const QueryWorkloadSpec& spec) {
  SAE_CHECK(spec.extent_fraction > 0.0 && spec.extent_fraction <= 1.0);
  uint64_t domain = uint64_t(spec.domain_max) + 1;
  uint32_t extent = uint32_t(double(domain) * spec.extent_fraction);
  if (extent == 0) extent = 1;

  Rng rng(spec.seed);
  std::vector<RangeQuery> queries;
  queries.reserve(spec.count);
  for (size_t i = 0; i < spec.count; ++i) {
    uint32_t lo = uint32_t(rng.NextRange(0, spec.domain_max - extent));
    queries.push_back(RangeQuery{lo, lo + extent});
  }
  return queries;
}

std::vector<RangeQuery> GenerateCrossShardQueries(
    const QueryWorkloadSpec& spec, const std::vector<storage::Key>& fences) {
  if (fences.empty()) return GenerateQueries(spec);
  SAE_CHECK(spec.extent_fraction > 0.0 && spec.extent_fraction <= 1.0);
  uint64_t domain = uint64_t(spec.domain_max) + 1;
  uint32_t extent = uint32_t(double(domain) * spec.extent_fraction);
  if (extent < 2) extent = 2;  // a 1-key range cannot straddle a fence

  Rng rng(spec.seed);
  std::vector<RangeQuery> queries;
  queries.reserve(spec.count);
  for (size_t i = 0; i < spec.count; ++i) {
    storage::Key fence = fences[i % fences.size()];
    // Place the range so the fence falls strictly inside it: the low end
    // sits 1..extent-1 keys below the fence (clamped at the domain edge).
    uint32_t below = 1 + uint32_t(rng.NextBounded(extent - 1));
    uint32_t lo = fence > below ? fence - below : 0;
    queries.push_back(RangeQuery{lo, lo + extent});
  }
  return queries;
}

}  // namespace sae::workload
