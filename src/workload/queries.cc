// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the fixed-extent uniform range-query workload
// (workload/queries.h).

#include "workload/queries.h"

#include <algorithm>

#include "util/macros.h"
#include "util/random.h"
#include "util/zipf.h"

namespace sae::workload {

std::vector<RangeQuery> GenerateQueries(const QueryWorkloadSpec& spec) {
  SAE_CHECK(spec.extent_fraction > 0.0 && spec.extent_fraction <= 1.0);
  uint64_t domain = uint64_t(spec.domain_max) + 1;
  uint32_t extent = uint32_t(double(domain) * spec.extent_fraction);
  if (extent == 0) extent = 1;

  Rng rng(spec.seed);
  std::vector<RangeQuery> queries;
  queries.reserve(spec.count);
  for (size_t i = 0; i < spec.count; ++i) {
    uint32_t lo = uint32_t(rng.NextRange(0, spec.domain_max - extent));
    queries.push_back(RangeQuery{lo, lo + extent});
  }
  return queries;
}

std::vector<RangeQuery> GenerateCrossShardQueries(
    const QueryWorkloadSpec& spec, const std::vector<storage::Key>& fences) {
  if (fences.empty()) return GenerateQueries(spec);
  SAE_CHECK(spec.extent_fraction > 0.0 && spec.extent_fraction <= 1.0);
  uint64_t domain = uint64_t(spec.domain_max) + 1;
  uint32_t extent = uint32_t(double(domain) * spec.extent_fraction);
  if (extent < 2) extent = 2;  // a 1-key range cannot straddle a fence

  Rng rng(spec.seed);
  std::vector<RangeQuery> queries;
  queries.reserve(spec.count);
  for (size_t i = 0; i < spec.count; ++i) {
    storage::Key fence = fences[i % fences.size()];
    // Place the range so the fence falls strictly inside it: the low end
    // sits 1..extent-1 keys below the fence (clamped at the domain edge).
    uint32_t below = 1 + uint32_t(rng.NextBounded(extent - 1));
    uint32_t lo = fence > below ? fence - below : 0;
    queries.push_back(RangeQuery{lo, lo + extent});
  }
  return queries;
}

std::vector<dbms::QueryRequest> GenerateOperatorMix(
    const OperatorMixSpec& spec) {
  // Default mix: scan-only (the paper's workload shape).
  std::vector<std::pair<dbms::QueryOp, double>> mix = spec.mix;
  if (mix.empty()) mix.push_back({dbms::QueryOp::kScan, 1.0});
  double total_weight = 0.0;
  for (const auto& [op, weight] : mix) {
    SAE_CHECK(weight >= 0.0);
    total_weight += weight;
  }
  SAE_CHECK(total_weight > 0.0);

  std::vector<double> extents = spec.extent_fractions;
  if (extents.empty()) extents.push_back(0.005);
  for (double extent : extents) {
    SAE_CHECK(extent > 0.0 && extent <= 1.0);
  }

  uint64_t domain = uint64_t(spec.domain_max) + 1;
  Rng rng(spec.seed);
  // Placement generator: uniform, or the SKW dataset's bucketed Zipf so
  // hot queries cluster at the popular low end of the domain. Bucket count
  // clamps to the domain so tiny test domains stay valid.
  uint64_t buckets =
      std::min<uint64_t>(spec.zipf_buckets, uint64_t(spec.domain_max) + 1);
  SkewedKeyGenerator skewed(spec.domain_max, spec.zipf_theta, buckets,
                            spec.seed ^ 0x5AE0u);

  std::vector<dbms::QueryRequest> requests;
  requests.reserve(spec.count);
  for (size_t i = 0; i < spec.count; ++i) {
    // Operator: weighted draw from the mix.
    double pick = rng.NextDouble() * total_weight;
    dbms::QueryOp op = mix.back().first;
    for (const auto& [candidate, weight] : mix) {
      if (pick < weight) {
        op = candidate;
        break;
      }
      pick -= weight;
    }

    // Extent: the selectivity sweep, round-robin so every point of the
    // sweep is hit evenly regardless of the operator draw. A fraction of
    // 1.0 rounds to domain_max + 1; clamp so lo_max below never wraps.
    uint32_t extent = uint32_t(double(domain) * extents[i % extents.size()]);
    if (extent == 0) extent = 1;
    if (extent > spec.domain_max) extent = spec.domain_max;
    if (op == dbms::QueryOp::kPoint) extent = 0;

    // Placement: low end uniform or Zipf-skewed, clamped so [lo, lo+extent]
    // stays inside the domain.
    uint32_t lo_max = spec.domain_max - extent;
    uint32_t lo = spec.zipf_theta > 0.0
                      ? std::min(skewed.Next(), lo_max)
                      : uint32_t(rng.NextRange(0, lo_max));

    switch (op) {
      case dbms::QueryOp::kPoint:
        requests.push_back(dbms::QueryRequest::Point(lo));
        break;
      case dbms::QueryOp::kScan:
        requests.push_back(dbms::QueryRequest::Scan(lo, lo + extent));
        break;
      case dbms::QueryOp::kCount:
        requests.push_back(dbms::QueryRequest::Count(lo, lo + extent));
        break;
      case dbms::QueryOp::kSum:
        requests.push_back(dbms::QueryRequest::Sum(lo, lo + extent));
        break;
      case dbms::QueryOp::kMin:
        requests.push_back(dbms::QueryRequest::Min(lo, lo + extent));
        break;
      case dbms::QueryOp::kMax:
        requests.push_back(dbms::QueryRequest::Max(lo, lo + extent));
        break;
      case dbms::QueryOp::kTopK:
        requests.push_back(
            dbms::QueryRequest::TopK(lo, lo + extent, spec.topk_limit));
        break;
    }
  }
  return requests;
}

}  // namespace sae::workload
