// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The paper's experimental datasets (§IV): n records of 500 bytes, search
// keys 4-byte integers in [0, 10^7]; UNF draws keys uniformly, SKW from a
// Zipf distribution with skew 0.8 (~77% of the keys in 20% of the domain).

#ifndef SAE_WORKLOAD_DATASET_H_
#define SAE_WORKLOAD_DATASET_H_

#include <cstdint>
#include <vector>

#include "storage/record.h"

namespace sae::workload {

inline constexpr uint32_t kDefaultDomainMax = 10'000'000;

enum class Distribution {
  kUniform,  ///< the paper's UNF
  kSkewed,   ///< the paper's SKW (Zipf, theta = 0.8)
};

struct DatasetSpec {
  size_t cardinality = 100'000;
  Distribution distribution = Distribution::kUniform;
  uint32_t domain_max = kDefaultDomainMax;
  double zipf_theta = 0.8;
  uint64_t zipf_buckets = 1000;
  size_t record_size = storage::kDefaultRecordSize;
  uint64_t seed = 42;
};

/// Generates the dataset; record ids are 1..n, payloads deterministic from
/// the id (see RecordCodec::MakeRecord). Records are returned sorted by key
/// so they can be bulk loaded directly.
std::vector<storage::Record> GenerateDataset(const DatasetSpec& spec);

}  // namespace sae::workload

#endif  // SAE_WORKLOAD_DATASET_H_
