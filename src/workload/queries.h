// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Query workloads. The paper's §IV workload is uniformly placed range
// queries with a fixed extent of 0.5% of the key domain (every experiment
// averages 100 of them); the operator-mix generator extends it to the
// verified plan layer — weighted scan/point/aggregate/top-k mixes, a
// selectivity sweep, and optional Zipf-skewed range placement.

#ifndef SAE_WORKLOAD_QUERIES_H_
#define SAE_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "dbms/query.h"
#include "storage/record.h"
#include "workload/dataset.h"

namespace sae::workload {

struct RangeQuery {
  storage::Key lo;
  storage::Key hi;
};

struct QueryWorkloadSpec {
  size_t count = 100;
  double extent_fraction = 0.005;  // 0.5% of the domain
  uint32_t domain_max = kDefaultDomainMax;
  uint64_t seed = 7;
};

/// Uniformly placed fixed-extent range queries over the domain.
std::vector<RangeQuery> GenerateQueries(const QueryWorkloadSpec& spec);

/// Fence-straddling variant for sharded deployments: every query is
/// centred (with jitter) on one of the interior fence keys, so each one
/// spans at least two shards and the multi-shard fan-out, boundary
/// clipping, and composite verification paths are always exercised. With
/// no fences it degrades to GenerateQueries. Drives the shard-boundary
/// tests and the shard-axis benches.
std::vector<RangeQuery> GenerateCrossShardQueries(
    const QueryWorkloadSpec& spec, const std::vector<storage::Key>& fences);

/// Operator-mix workload over the verified plan layer.
struct OperatorMixSpec {
  size_t count = 100;
  uint32_t domain_max = kDefaultDomainMax;
  uint64_t seed = 7;
  /// Weighted operator mix (weights need not sum to 1; all non-negative,
  /// at least one positive). Empty = scan-only, the paper's workload.
  std::vector<std::pair<dbms::QueryOp, double>> mix;
  /// Selectivity sweep: each query draws its extent fraction round-robin
  /// from this list, so one batch covers every sweep point evenly. Empty =
  /// the paper's fixed 0.5%. Ignored by point queries (extent 0).
  std::vector<double> extent_fractions;
  /// Zipf skew for range *placement* (0 = uniform): query low ends cluster
  /// at the popular (low) end of the domain like the SKW dataset's keys,
  /// modelling hot-spot read traffic.
  double zipf_theta = 0.0;
  uint64_t zipf_buckets = 1000;
  /// Result-cardinality cap stamped into kTopK requests.
  uint32_t topk_limit = 10;
};

/// Generates `count` plan-layer requests: operator drawn from the weighted
/// mix, extent from the selectivity sweep, placement uniform or
/// Zipf-skewed. Deterministic in the seed. Drives the operator axis of
/// bench_throughput and the operator test suites.
std::vector<dbms::QueryRequest> GenerateOperatorMix(
    const OperatorMixSpec& spec);

}  // namespace sae::workload

#endif  // SAE_WORKLOAD_QUERIES_H_
