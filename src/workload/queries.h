// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Query workload (paper §IV): uniformly placed range queries with a fixed
// extent of 0.5% of the key domain; every experiment averages 100 of them.

#ifndef SAE_WORKLOAD_QUERIES_H_
#define SAE_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "workload/dataset.h"

namespace sae::workload {

struct RangeQuery {
  storage::Key lo;
  storage::Key hi;
};

struct QueryWorkloadSpec {
  size_t count = 100;
  double extent_fraction = 0.005;  // 0.5% of the domain
  uint32_t domain_max = kDefaultDomainMax;
  uint64_t seed = 7;
};

/// Uniformly placed fixed-extent range queries over the domain.
std::vector<RangeQuery> GenerateQueries(const QueryWorkloadSpec& spec);

/// Fence-straddling variant for sharded deployments: every query is
/// centred (with jitter) on one of the interior fence keys, so each one
/// spans at least two shards and the multi-shard fan-out, boundary
/// clipping, and composite verification paths are always exercised. With
/// no fences it degrades to GenerateQueries. Drives the shard-boundary
/// tests and the shard-axis benches.
std::vector<RangeQuery> GenerateCrossShardQueries(
    const QueryWorkloadSpec& spec, const std::vector<storage::Key>& fences);

}  // namespace sae::workload

#endif  // SAE_WORKLOAD_QUERIES_H_
