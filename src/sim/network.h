// Copyright (c) saedb authors. Licensed under the MIT license.
//
// A simple latency/bandwidth network model used by the response-time bench.
// The paper argues SAE lowers the client's *response time* — the interval
// between query transmission and result verification — because the SP and
// TE paths run in parallel (§II footnote 1) and the VT is tiny; this model
// makes that claim measurable.

#ifndef SAE_SIM_NETWORK_H_
#define SAE_SIM_NETWORK_H_

#include <algorithm>
#include <cstddef>

namespace sae::sim {

/// One-way link with fixed latency and finite bandwidth.
struct NetworkModel {
  double latency_ms = 20.0;       ///< one-way propagation delay
  double bandwidth_mbps = 8.0;    ///< 8 Mbit/s ~ 2008-era broadband

  /// Time to deliver `bytes` over the link.
  double TransferMs(size_t bytes) const {
    return latency_ms + double(bytes) * 8.0 / (bandwidth_mbps * 1000.0);
  }
};

/// Client-observed response time for SAE: the query goes to the SP and the
/// TE simultaneously; the client verifies once both replies arrived.
inline double SaeResponseMs(const NetworkModel& net, double sp_proc_ms,
                            double te_proc_ms, size_t result_bytes,
                            size_t vt_bytes, size_t query_bytes,
                            double verify_ms) {
  double sp_path = net.TransferMs(query_bytes) + sp_proc_ms +
                   net.TransferMs(result_bytes);
  double te_path = net.TransferMs(query_bytes) + te_proc_ms +
                   net.TransferMs(vt_bytes);
  return std::max(sp_path, te_path) + verify_ms;
}

/// Client-observed response time for TOM: a single SP round trip carrying
/// result + VO.
inline double TomResponseMs(const NetworkModel& net, double sp_proc_ms,
                            size_t result_bytes, size_t vo_bytes,
                            size_t query_bytes, double verify_ms) {
  return net.TransferMs(query_bytes) + sp_proc_ms +
         net.TransferMs(result_bytes + vo_bytes) + verify_ms;
}

}  // namespace sae::sim

#endif  // SAE_SIM_NETWORK_H_
