// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Header-only definitions live in channel.h; this TU anchors the target.

#include "sim/channel.h"
