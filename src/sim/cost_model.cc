// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Header-only definitions live in cost_model.h; this TU anchors the target.

#include "sim/cost_model.h"
