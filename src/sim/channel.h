// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Byte-metered message channels between the outsourcing entities. Every
// protocol message is serialized before "transmission", so the meter reports
// genuine wire sizes — the quantity Fig. 5 plots.
//
// Concurrency: the global meters are atomic, so any number of concurrent
// queries may Send() on a shared channel. Per-query cost accounting goes
// through a Session — a private view whose counters only the owning query
// touches — so concurrent queries can each read back their own traffic
// without racing on (or resetting) the shared totals.

#ifndef SAE_SIM_CHANNEL_H_
#define SAE_SIM_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sae::sim {

/// Unidirectional metered channel.
class Channel {
 public:
  /// A per-query (or per-client) view over a shared channel. Sends are
  /// metered into both the channel's global counters and this session's
  /// private ones; `bytes()`/`messages()` report only this session's
  /// traffic. Not itself shareable across threads — open one per query.
  class Session {
   public:
    void Send(const std::vector<uint8_t>& bytes) { SendBytes(bytes.size()); }

    void SendBytes(size_t n) {
      channel_->SendBytes(n);
      bytes_ += n;
      ++messages_;
    }

    uint64_t bytes() const { return bytes_; }
    uint64_t messages() const { return messages_; }
    const Channel& channel() const { return *channel_; }

   private:
    friend class Channel;
    explicit Session(Channel* channel) : channel_(channel) {}

    Channel* channel_;
    uint64_t bytes_ = 0;
    uint64_t messages_ = 0;
  };

  explicit Channel(std::string name) : name_(std::move(name)) {}

  /// "Transmits" a serialized message, accumulating its size. Thread-safe.
  void Send(const std::vector<uint8_t>& bytes) { SendBytes(bytes.size()); }

  /// Meters an out-of-band payload given only its size. Thread-safe.
  void SendBytes(size_t n) {
    total_bytes_.fetch_add(n, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Opens a session view for one query's traffic.
  Session OpenSession() { return Session(this); }

  const std::string& name() const { return name_; }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }

  /// Zeroes the global meters. Do not call while other threads send.
  void Reset() {
    total_bytes_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> messages_{0};
};

}  // namespace sae::sim

#endif  // SAE_SIM_CHANNEL_H_
