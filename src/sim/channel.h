// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Byte-metered message channels between the outsourcing entities. Every
// protocol message is serialized before "transmission", so the meter reports
// genuine wire sizes — the quantity Fig. 5 plots.

#ifndef SAE_SIM_CHANNEL_H_
#define SAE_SIM_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sae::sim {

/// Unidirectional metered channel.
class Channel {
 public:
  explicit Channel(std::string name) : name_(std::move(name)) {}

  /// "Transmits" a serialized message, accumulating its size.
  void Send(const std::vector<uint8_t>& bytes) {
    total_bytes_ += bytes.size();
    ++messages_;
  }

  /// Meters an out-of-band payload given only its size.
  void SendBytes(size_t n) {
    total_bytes_ += n;
    ++messages_;
  }

  const std::string& name() const { return name_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t messages() const { return messages_; }

  void Reset() {
    total_bytes_ = 0;
    messages_ = 0;
  }

 private:
  std::string name_;
  uint64_t total_bytes_ = 0;
  uint64_t messages_ = 0;
};

}  // namespace sae::sim

#endif  // SAE_SIM_CHANNEL_H_
