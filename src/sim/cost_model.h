// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The paper's processing-cost model: "we charge 10 milli-seconds for each
// node access" (§IV). Wall-clock CPU time (hashing, XOR, signatures) is
// measured separately with Stopwatch and added where the paper does.

#ifndef SAE_SIM_COST_MODEL_H_
#define SAE_SIM_COST_MODEL_H_

#include <chrono>
#include <cstdint>

namespace sae::sim {

struct CostModel {
  double ms_per_node_access = 10.0;

  double AccessCostMs(uint64_t node_accesses) const {
    return double(node_accesses) * ms_per_node_access;
  }
};

/// Monotonic wall-clock stopwatch reporting milliseconds.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sae::sim

#endif  // SAE_SIM_COST_MODEL_H_
