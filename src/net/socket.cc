// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the POSIX socket helpers (net/socket.h).

#include "net/socket.h"

#include "util/macros.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sae::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + strerror(errno));
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<int> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd.release();
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<int> ConnectTcp(const Endpoint& endpoint) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + endpoint.host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("connect");
  }
  SAE_RETURN_NOT_OK(SetNoDelay(fd.get()));
  return fd.release();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status SendAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += size_t(n);
  }
  return Status::OK();
}

Status SendFrame(int fd, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> framed = EncodeFrame(payload);
  return SendAll(fd, framed.data(), framed.size());
}

Result<std::vector<uint8_t>> RecvFrame(int fd, FrameDecoder* decoder) {
  std::vector<uint8_t> frame;
  if (decoder->Next(&frame)) return frame;
  uint8_t buf[16 * 1024];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::IoError("connection closed mid-frame");
    if (!decoder->Feed(buf, size_t(n))) {
      return Status::Corruption("frame stream poisoned: " + decoder->error());
    }
    if (decoder->Next(&frame)) return frame;
  }
}

}  // namespace sae::net
