// Copyright (c) saedb authors. Licensed under the MIT license.
//
// TCP server wrappers exposing the three parties behind frame endpoints.
// Every frame payload is one of the golden-pinned wire messages, unchanged:
// the payload's leading tag byte (core/messages.cc) doubles as the method
// discriminator, so the bytes a client puts on the socket are exactly the
// bytes the in-process protocol would have produced — the golden pins gate
// the network path for free.
//
// Request -> response per party:
//   SP  (SAE):  QueryRequest(0x09) -> QueryAnswer(0x0A)
//   TE  (SAE):  QueryRequest(0x09) -> Vt(0x03)
//   SP  (TOM):  QueryRequest(0x09) -> QueryAnswer(0x0A), VO  (two frames)
//   load/update (DO -> SP/TE): Records(0x01), EpochNotice(0x06),
//     Delete(0x05), Signature(0x04, TOM) -> control ack
//
// A few *control* ops live outside the pinned tag space (0xF0+): epoch
// discovery (the client's freshness reference), clean shutdown, and the
// adversary hook that makes a server ship a tampered plan so networked
// clients can prove they reject it.

#ifndef SAE_NET_SERVER_H_
#define SAE_NET_SERVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/data_owner.h"
#include "core/service_provider.h"
#include "core/tom.h"
#include "core/trusted_entity.h"
#include "net/event_loop.h"
#include "util/status.h"

namespace sae::net {

/// Net-layer control tags. The pinned messages own 0x01..0x0A (and the
/// sigchain VO 0xC5); control frames start at 0xF0 so the two spaces can
/// never collide.
inline constexpr uint8_t kCtlGetEpoch = 0xF0;   ///< -> EpochNotice payload
inline constexpr uint8_t kCtlShutdown = 0xF1;   ///< -> ack, server stops
inline constexpr uint8_t kCtlPoisonQuery = 0xF2;  ///< + QueryRequest bytes
inline constexpr uint8_t kCtlAck = 0xFD;        ///< empty success response
inline constexpr uint8_t kCtlError = 0xFE;      ///< + utf-8 error message

/// Builds the 1-byte control request / ack payloads.
std::vector<uint8_t> ControlFrame(uint8_t tag);
/// kCtlPoisonQuery + the pinned QueryRequest message.
std::vector<uint8_t> PoisonQueryFrame(const dbms::QueryRequest& request);
/// kCtlError + message text.
std::vector<uint8_t> ErrorFrame(const Status& status);
/// Decodes an error frame ("" when the payload is not one).
std::string DecodeErrorFrame(const std::vector<uint8_t>& payload);

/// SAE service provider behind TCP. Not thread-safe to mutate while
/// running; the event loop serializes request handling.
class SpServer {
 public:
  SpServer(core::ServiceProvider* sp, FrameServerOptions options = {});
  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }
  const FrameServer& frame_server() const { return server_; }

 private:
  bool Handle(std::vector<uint8_t> request,
              std::vector<std::vector<uint8_t>>* responses);

  core::ServiceProvider* sp_;
  bool loaded_ = false;  ///< first Records frame = dataset, later = inserts
  FrameServer server_;
};

/// SAE trusted entity behind TCP.
class TeServer {
 public:
  TeServer(core::TrustedEntity* te, FrameServerOptions options = {});
  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }
  const FrameServer& frame_server() const { return server_; }

 private:
  bool Handle(std::vector<uint8_t> request,
              std::vector<std::vector<uint8_t>>* responses);

  core::TrustedEntity* te_;
  bool loaded_ = false;  ///< first Records frame = dataset, later = inserts
  FrameServer server_;
};

/// TOM service provider behind TCP (answers are two frames: QueryAnswer
/// then the MB-tree VO).
class TomSpServer {
 public:
  TomSpServer(core::TomServiceProvider* sp, FrameServerOptions options = {});
  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }
  const FrameServer& frame_server() const { return server_; }

 private:
  bool Handle(std::vector<uint8_t> request,
              std::vector<std::vector<uint8_t>>* responses);

  core::TomServiceProvider* sp_;
  bool loaded_ = false;
  /// TOM's load/update protocol pairs data frames with the Signature frame
  /// that commits them (the DO signs every change); buffered in between.
  std::vector<storage::Record> pending_records_;
  bool has_pending_records_ = false;
  storage::RecordId pending_delete_ = 0;
  bool has_pending_delete_ = false;
  FrameServer server_;
};

/// The data owner's tiny epoch endpoint: clients ask it for the published
/// epoch (their freshness reference — the DO is the only party a client
/// trusts for this in SAE). `epoch_fn` reads whatever the owner publishes.
class OwnerServer {
 public:
  OwnerServer(std::function<uint64_t()> epoch_fn,
              FrameServerOptions options = {});
  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }

 private:
  bool Handle(std::vector<uint8_t> request,
              std::vector<std::vector<uint8_t>>* responses);

  std::function<uint64_t()> epoch_fn_;
  FrameServer server_;
};

}  // namespace sae::net

#endif  // SAE_NET_SERVER_H_
