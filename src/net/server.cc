// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the party servers (net/server.h): tag-dispatched handlers over
// the pinned wire messages plus the 0xF0+ control ops.

#include "net/server.h"

#include "core/messages.h"
#include "mbtree/vo.h"

namespace sae::net {

using storage::Record;
using storage::RecordCodec;

namespace {

// Pinned message tags (core/messages.cc keeps these private; the values are
// part of the golden-pinned encodings, so they are as stable as wire bytes
// can be).
constexpr uint8_t kTagRecords = 0x01;
constexpr uint8_t kTagSignature = 0x04;
constexpr uint8_t kTagDelete = 0x05;
constexpr uint8_t kTagEpochNotice = 0x06;
constexpr uint8_t kTagQueryRequest = 0x09;

// The adversary hook's tamper seed: deterministic so a test can predict
// which witness byte the poisoned plan flips.
constexpr uint64_t kPoisonSeed = 42;

}  // namespace

std::vector<uint8_t> ControlFrame(uint8_t tag) { return {tag}; }

std::vector<uint8_t> PoisonQueryFrame(const dbms::QueryRequest& request) {
  std::vector<uint8_t> payload = {kCtlPoisonQuery};
  std::vector<uint8_t> req = core::SerializeQueryRequest(request);
  payload.insert(payload.end(), req.begin(), req.end());
  return payload;
}

std::vector<uint8_t> ErrorFrame(const Status& status) {
  std::vector<uint8_t> payload = {kCtlError};
  const std::string& msg = status.message();
  payload.insert(payload.end(), msg.begin(), msg.end());
  return payload;
}

std::string DecodeErrorFrame(const std::vector<uint8_t>& payload) {
  if (payload.empty() || payload[0] != kCtlError) return "";
  return std::string(payload.begin() + 1, payload.end());
}

// --- SAE service provider -------------------------------------------------------

SpServer::SpServer(core::ServiceProvider* sp, FrameServerOptions options)
    : sp_(sp),
      server_(options, [this](std::vector<uint8_t> request,
                              std::vector<std::vector<uint8_t>>* responses) {
        return Handle(std::move(request), responses);
      }) {}

bool SpServer::Handle(std::vector<uint8_t> request,
                      std::vector<std::vector<uint8_t>>* responses) {
  const RecordCodec& codec = sp_->table().codec();
  if (request.empty()) {
    responses->push_back(ErrorFrame(Status::Corruption("empty frame")));
    return false;
  }
  switch (request[0]) {
    case kTagQueryRequest: {
      auto req = core::DeserializeQueryRequest(request);
      if (!req.ok()) {
        responses->push_back(ErrorFrame(req.status()));
        return false;
      }
      auto plan = sp_->ExecutePlan(req.value());
      if (!plan.ok()) {
        responses->push_back(ErrorFrame(plan.status()));
        return false;
      }
      const auto& result = plan.value();
      responses->push_back(core::SerializeQueryAnswer(
          result.answer, result.witness, sp_->epoch(), codec));
      return false;
    }
    case kTagRecords: {
      auto records = core::DeserializeRecords(request, codec);
      if (!records.ok()) {
        responses->push_back(ErrorFrame(records.status()));
        return false;
      }
      Status st;
      if (!loaded_) {
        st = sp_->LoadDataset(records.value());
        loaded_ = st.ok();
      } else {
        for (const Record& record : records.value()) {
          st = sp_->InsertRecord(record);
          if (!st.ok()) break;
        }
      }
      responses->push_back(st.ok() ? ControlFrame(kCtlAck) : ErrorFrame(st));
      return false;
    }
    case kTagEpochNotice: {
      auto epoch = core::DeserializeEpochNotice(request);
      if (!epoch.ok()) {
        responses->push_back(ErrorFrame(epoch.status()));
        return false;
      }
      sp_->SetEpoch(epoch.value());
      responses->push_back(ControlFrame(kCtlAck));
      return false;
    }
    case kTagDelete: {
      auto del = core::DeserializeDelete(request);
      if (!del.ok()) {
        responses->push_back(ErrorFrame(del.status()));
        return false;
      }
      Status st = sp_->DeleteRecord(del.value().first);
      responses->push_back(st.ok() ? ControlFrame(kCtlAck) : ErrorFrame(st));
      return false;
    }
    case kCtlGetEpoch:
      responses->push_back(core::SerializeEpochNotice(sp_->epoch()));
      return false;
    case kCtlPoisonQuery: {
      std::vector<uint8_t> inner(request.begin() + 1, request.end());
      auto req = core::DeserializeQueryRequest(inner);
      if (!req.ok()) {
        responses->push_back(ErrorFrame(req.status()));
        return false;
      }
      auto plan = sp_->ExecutePoisonedPlan(req.value(), kPoisonSeed);
      if (!plan.ok()) {
        responses->push_back(ErrorFrame(plan.status()));
        return false;
      }
      const auto& result = plan.value();
      responses->push_back(core::SerializeQueryAnswer(
          result.answer, result.witness, sp_->epoch(), codec));
      return false;
    }
    case kCtlShutdown:
      responses->push_back(ControlFrame(kCtlAck));
      return true;
    default:
      responses->push_back(
          ErrorFrame(Status::Corruption("unknown message tag")));
      return false;
  }
}

// --- SAE trusted entity ---------------------------------------------------------

TeServer::TeServer(core::TrustedEntity* te, FrameServerOptions options)
    : te_(te),
      server_(options, [this](std::vector<uint8_t> request,
                              std::vector<std::vector<uint8_t>>* responses) {
        return Handle(std::move(request), responses);
      }) {}

bool TeServer::Handle(std::vector<uint8_t> request,
                      std::vector<std::vector<uint8_t>>* responses) {
  if (request.empty()) {
    responses->push_back(ErrorFrame(Status::Corruption("empty frame")));
    return false;
  }
  switch (request[0]) {
    case kTagQueryRequest: {
      auto req = core::DeserializeQueryRequest(request);
      if (!req.ok()) {
        responses->push_back(ErrorFrame(req.status()));
        return false;
      }
      auto vt = te_->GenerateVt(req.value());
      if (!vt.ok()) {
        responses->push_back(ErrorFrame(vt.status()));
        return false;
      }
      responses->push_back(core::SerializeVt(vt.value()));
      return false;
    }
    case kTagRecords: {
      auto records = core::DeserializeRecords(request, te_->codec());
      if (!records.ok()) {
        responses->push_back(ErrorFrame(records.status()));
        return false;
      }
      Status st;
      if (!loaded_) {
        st = te_->LoadDataset(records.value());
        loaded_ = st.ok();
      } else {
        for (const Record& record : records.value()) {
          st = te_->InsertRecord(record);
          if (!st.ok()) break;
        }
      }
      responses->push_back(st.ok() ? ControlFrame(kCtlAck) : ErrorFrame(st));
      return false;
    }
    case kTagEpochNotice: {
      auto epoch = core::DeserializeEpochNotice(request);
      if (!epoch.ok()) {
        responses->push_back(ErrorFrame(epoch.status()));
        return false;
      }
      te_->SetEpoch(epoch.value());
      responses->push_back(ControlFrame(kCtlAck));
      return false;
    }
    case kTagDelete: {
      auto del = core::DeserializeDelete(request);
      if (!del.ok()) {
        responses->push_back(ErrorFrame(del.status()));
        return false;
      }
      Status st =
          te_->DeleteRecord(del.value().second, del.value().first);
      responses->push_back(st.ok() ? ControlFrame(kCtlAck) : ErrorFrame(st));
      return false;
    }
    case kCtlGetEpoch:
      responses->push_back(core::SerializeEpochNotice(te_->epoch()));
      return false;
    case kCtlShutdown:
      responses->push_back(ControlFrame(kCtlAck));
      return true;
    default:
      responses->push_back(
          ErrorFrame(Status::Corruption("unknown message tag")));
      return false;
  }
}

// --- TOM service provider -------------------------------------------------------

TomSpServer::TomSpServer(core::TomServiceProvider* sp,
                         FrameServerOptions options)
    : sp_(sp),
      server_(options, [this](std::vector<uint8_t> request,
                              std::vector<std::vector<uint8_t>>* responses) {
        return Handle(std::move(request), responses);
      }) {}

bool TomSpServer::Handle(std::vector<uint8_t> request,
                         std::vector<std::vector<uint8_t>>* responses) {
  const RecordCodec& codec = sp_->codec();
  if (request.empty()) {
    responses->push_back(ErrorFrame(Status::Corruption("empty frame")));
    return false;
  }
  switch (request[0]) {
    case kTagQueryRequest: {
      auto req = core::DeserializeQueryRequest(request);
      if (!req.ok()) {
        responses->push_back(ErrorFrame(req.status()));
        return false;
      }
      auto plan = sp_->ExecutePlan(req.value());
      if (!plan.ok()) {
        responses->push_back(ErrorFrame(plan.status()));
        return false;
      }
      const auto& result = plan.value();
      // Two frames, exactly the two in-process sends: answer then VO.
      responses->push_back(core::SerializeQueryAnswer(
          result.answer, result.witness, sp_->epoch(), codec));
      responses->push_back(result.vo.Serialize());
      return false;
    }
    case kTagRecords: {
      // The TOM load/update protocol pairs data with the DO's signature:
      // records (or a delete) are buffered until the Signature frame
      // commits them with its epoch.
      auto records = core::DeserializeRecords(request, codec);
      if (!records.ok()) {
        responses->push_back(ErrorFrame(records.status()));
        return false;
      }
      pending_records_ = std::move(records).ValueOrDie();
      has_pending_records_ = true;
      responses->push_back(ControlFrame(kCtlAck));
      return false;
    }
    case kTagDelete: {
      auto del = core::DeserializeDelete(request);
      if (!del.ok()) {
        responses->push_back(ErrorFrame(del.status()));
        return false;
      }
      pending_delete_ = del.value().first;
      has_pending_delete_ = true;
      responses->push_back(ControlFrame(kCtlAck));
      return false;
    }
    case kTagSignature: {
      auto sig = core::DeserializeSignature(request);
      if (!sig.ok()) {
        responses->push_back(ErrorFrame(sig.status()));
        return false;
      }
      auto [signature, epoch] = std::move(sig).ValueOrDie();
      Status st;
      if (has_pending_records_ && !loaded_) {
        st = sp_->LoadDataset(pending_records_, std::move(signature), epoch);
        loaded_ = st.ok();
      } else if (has_pending_records_) {
        for (const Record& record : pending_records_) {
          st = sp_->ApplyInsert(record, signature, epoch);
          if (!st.ok()) break;
        }
      } else if (has_pending_delete_) {
        st = sp_->ApplyDelete(pending_delete_, std::move(signature), epoch);
      } else {
        sp_->SetSignature(std::move(signature), epoch);
      }
      pending_records_.clear();
      has_pending_records_ = false;
      has_pending_delete_ = false;
      responses->push_back(st.ok() ? ControlFrame(kCtlAck) : ErrorFrame(st));
      return false;
    }
    case kCtlGetEpoch:
      responses->push_back(core::SerializeEpochNotice(sp_->epoch()));
      return false;
    case kCtlPoisonQuery: {
      std::vector<uint8_t> inner(request.begin() + 1, request.end());
      auto req = core::DeserializeQueryRequest(inner);
      if (!req.ok()) {
        responses->push_back(ErrorFrame(req.status()));
        return false;
      }
      auto plan = sp_->ExecutePoisonedPlan(req.value(), kPoisonSeed);
      if (!plan.ok()) {
        responses->push_back(ErrorFrame(plan.status()));
        return false;
      }
      const auto& result = plan.value();
      responses->push_back(core::SerializeQueryAnswer(
          result.answer, result.witness, sp_->epoch(), codec));
      responses->push_back(result.vo.Serialize());
      return false;
    }
    case kCtlShutdown:
      responses->push_back(ControlFrame(kCtlAck));
      return true;
    default:
      responses->push_back(
          ErrorFrame(Status::Corruption("unknown message tag")));
      return false;
  }
}

// --- data owner epoch endpoint --------------------------------------------------

OwnerServer::OwnerServer(std::function<uint64_t()> epoch_fn,
                         FrameServerOptions options)
    : epoch_fn_(std::move(epoch_fn)),
      server_(options, [this](std::vector<uint8_t> request,
                              std::vector<std::vector<uint8_t>>* responses) {
        return Handle(std::move(request), responses);
      }) {}

bool OwnerServer::Handle(std::vector<uint8_t> request,
                         std::vector<std::vector<uint8_t>>* responses) {
  if (request.empty()) {
    responses->push_back(ErrorFrame(Status::Corruption("empty frame")));
    return false;
  }
  switch (request[0]) {
    case kCtlGetEpoch:
      responses->push_back(core::SerializeEpochNotice(epoch_fn_()));
      return false;
    case kCtlShutdown:
      responses->push_back(ControlFrame(kCtlAck));
      return true;
    default:
      responses->push_back(
          ErrorFrame(Status::Corruption("unknown message tag")));
      return false;
  }
}

}  // namespace sae::net
