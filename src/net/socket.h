// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Thin POSIX socket helpers shared by the event-loop server and the pooled
// blocking client transport: RAII fd ownership, listen/connect on loopback
// or any interface, and blocking send/receive of whole frames.

#ifndef SAE_NET_SOCKET_H_
#define SAE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/status.h"

namespace sae::net {

/// Owning file descriptor; closes on destruction, movable, non-copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// A TCP endpoint; loopback by default — the serving tier's deployment unit
/// is "four parties on one host" until someone points these at real hosts.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Opens a listening TCP socket on `port` (0 picks an ephemeral port) bound
/// to all interfaces, with SO_REUSEADDR. Returns the fd.
Result<int> ListenTcp(uint16_t port, int backlog = 511);

/// The locally bound port of a listening socket (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// Blocking connect; on success the socket has TCP_NODELAY set (every frame
/// here is a complete request or response — Nagle only adds latency).
Result<int> ConnectTcp(const Endpoint& endpoint);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);

/// Blocking loop until all `len` bytes are written (handles short writes).
Status SendAll(int fd, const uint8_t* data, size_t len);

/// Sends one frame (header + payload) blocking.
Status SendFrame(int fd, const std::vector<uint8_t>& payload);

/// Blocking read of the next complete frame through `decoder` (which holds
/// any bytes of the following frame that arrived early). Error on EOF,
/// socket error, or a poisoned stream (oversized declared length).
Result<std::vector<uint8_t>> RecvFrame(int fd, FrameDecoder* decoder);

}  // namespace sae::net

#endif  // SAE_NET_SOCKET_H_
