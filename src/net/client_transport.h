// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Client side of the serving tier: a pooled blocking transport plus
// networked counterparts of the in-process Client/TomClient call shapes.
//
// The transport keeps a pool of connected sockets per endpoint; a query
// leases one socket per party, writes the request frames, then reads the
// responses — so the SAE client's SP and TE round trips overlap exactly as
// in the paper's parallel fan-out (Fig. 2), with plain blocking sockets.
// Every answer that reaches the caller has already passed the full
// client-side verification (XOR/VO check, freshness gates, answer
// recomputation); a tampered or stale response surfaces as the
// corresponding Status, never as data.

#ifndef SAE_NET_CLIENT_TRANSPORT_H_
#define SAE_NET_CLIENT_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/client.h"
#include "core/epoch.h"
#include "core/tom.h"
#include "crypto/rsa.h"
#include "dbms/query.h"
#include "net/socket.h"
#include "storage/record.h"
#include "util/status.h"

namespace sae::net {

using storage::Record;
using storage::RecordCodec;

/// A pool of blocking connections to one endpoint. Acquire() hands out a
/// leased socket (reusing an idle one or dialing a fresh one); the lease
/// returns it to the pool on destruction unless an I/O error marked it
/// broken. Thread-safe; many threads can hold leases concurrently.
class ClientTransport {
 public:
  // Special members are out of line: Lease::Conn is complete in the .cc only.
  explicit ClientTransport(Endpoint endpoint, size_t max_idle = 64);
  ~ClientTransport();

  ClientTransport(const ClientTransport&) = delete;
  ClientTransport& operator=(const ClientTransport&) = delete;

  class Lease {
   public:
    Lease();
    ~Lease();
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return conn_ != nullptr; }

    /// Writes one frame (blocking). An error poisons the lease.
    Status Send(const std::vector<uint8_t>& payload);

    /// Reads the next complete frame (blocking). An error poisons the lease.
    Result<std::vector<uint8_t>> Recv();

   private:
    friend class ClientTransport;
    struct Conn;
    Lease(ClientTransport* owner, std::unique_ptr<Conn> conn);

    ClientTransport* owner_ = nullptr;
    std::unique_ptr<Conn> conn_;
    bool broken_ = false;
  };

  /// Leases a pooled connection, dialing a new one when the pool is empty.
  Result<Lease> Acquire();

  /// One request -> one response round trip on a pooled connection. The
  /// response may be an error frame (kCtlError) — see ExpectAck/CheckFrame.
  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& payload);

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  void Release(std::unique_ptr<Lease::Conn> conn, bool broken);

  Endpoint endpoint_;
  size_t max_idle_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Lease::Conn>> idle_;
};

/// Rejects error frames: OK for any non-error payload, the carried message
/// as a Status otherwise.
Status CheckFrame(const std::vector<uint8_t>& payload);

/// For control/update ops: OK iff the payload is the 1-byte ack.
Status ExpectAck(const std::vector<uint8_t>& payload);

/// Sends one frame and requires an ack back — the DO's shipping primitive
/// for Records / EpochNotice / Delete / Signature frames.
Status CallExpectAck(ClientTransport* transport,
                     const std::vector<uint8_t>& payload);

/// Asks a party's control endpoint for its current epoch.
Result<uint64_t> FetchEpoch(ClientTransport* transport);

/// Sends the shutdown control op and waits for the ack.
Status ShutdownServer(ClientTransport* transport);

/// A fully verified SAE answer as the networked client returns it.
struct NetVerifiedAnswer {
  dbms::QueryAnswer answer;
  std::vector<Record> witness;
  core::VerificationToken vt;
  uint64_t claimed_epoch = 0;    ///< the SP's stamp on the answer
  uint64_t published_epoch = 0;  ///< the freshness reference used
};

struct NetSaeClientOptions {
  Endpoint sp;
  Endpoint te;
  /// The DO's epoch endpoint — the client's freshness reference. Leave the
  /// port 0 for owner-less set-ups; the (trusted) TE token's epoch then
  /// serves as the reference and the freshness gate degrades to the
  /// SP-vs-TE comparison.
  Endpoint owner;
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
};

/// The SAE client over TCP: same call shape as core::Client, with the
/// paper's parallel SP+TE fan-out per query.
class NetSaeClient {
 public:
  explicit NetSaeClient(const NetSaeClientOptions& options);

  /// Executes `request` against SP and TE in parallel and runs the full
  /// client check (core::Client::VerifyAnswer). Only verified answers are
  /// returned; tampering/staleness comes back as the failing Status.
  Result<NetVerifiedAnswer> Query(const dbms::QueryRequest& request);

  /// Asks the SP for a *poisoned* plan (adversary hook) and verifies it
  /// like Query — so callers can assert the networked path rejects it.
  Result<NetVerifiedAnswer> QueryPoisoned(const dbms::QueryRequest& request);

  /// The published epoch from the owner endpoint (or the TE when no owner
  /// is configured).
  Result<uint64_t> PublishedEpoch();

  ClientTransport& sp() { return sp_; }
  ClientTransport& te() { return te_; }

 private:
  Result<NetVerifiedAnswer> RunQuery(const dbms::QueryRequest& request,
                                     bool poisoned);

  NetSaeClientOptions options_;
  RecordCodec codec_;
  ClientTransport sp_;
  ClientTransport te_;
  std::unique_ptr<ClientTransport> owner_;  ///< null when not configured
};

/// A fully verified TOM answer.
struct NetTomVerifiedAnswer {
  dbms::QueryAnswer answer;
  std::vector<Record> witness;
  uint64_t vo_epoch = 0;
};

struct NetTomClientOptions {
  Endpoint sp;
  Endpoint owner;  ///< port 0: skip the current-epoch freshness reference
  crypto::RsaPublicKey owner_key;
  size_t record_size = storage::kDefaultRecordSize;
  crypto::HashScheme scheme = crypto::HashScheme::kSha1;
};

/// The TOM client over TCP: one SP round trip returning two frames (answer,
/// VO), verified with core::TomClient::VerifyAnswer.
class NetTomClient {
 public:
  explicit NetTomClient(const NetTomClientOptions& options);

  Result<NetTomVerifiedAnswer> Query(const dbms::QueryRequest& request);
  Result<NetTomVerifiedAnswer> QueryPoisoned(const dbms::QueryRequest& request);

  Result<uint64_t> PublishedEpoch();

  ClientTransport& sp() { return sp_; }

 private:
  Result<NetTomVerifiedAnswer> RunQuery(const dbms::QueryRequest& request,
                                        bool poisoned);

  NetTomClientOptions options_;
  RecordCodec codec_;
  ClientTransport sp_;
  std::unique_ptr<ClientTransport> owner_;
};

}  // namespace sae::net

#endif  // SAE_NET_CLIENT_TRANSPORT_H_
