// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the length-prefixed frame codec (net/frame.h).

#include "net/frame.h"

#include "util/codec.h"

namespace sae::net {

void AppendFrame(std::vector<uint8_t>* out, const uint8_t* payload,
                 size_t len) {
  uint8_t header[kFrameHeaderBytes];
  EncodeU32(header, uint32_t(len));
  out->insert(out->end(), header, header + kFrameHeaderBytes);
  out->insert(out->end(), payload, payload + len);
}

std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(&out, payload.data(), payload.size());
  return out;
}

bool FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (failed_) return false;
  size_t pos = 0;
  while (pos < len) {
    if (!in_payload_) {
      // Accumulate the 4-byte header, then validate the declared length
      // BEFORE reserving a single payload byte.
      size_t take = kFrameHeaderBytes - header_len_;
      if (take > len - pos) take = len - pos;
      std::memcpy(header_ + header_len_, data + pos, take);
      header_len_ += take;
      pos += take;
      if (header_len_ < kFrameHeaderBytes) return true;  // header still open
      uint32_t declared = DecodeU32(header_);
      if (declared > max_payload_) {
        failed_ = true;
        error_ = "frame length " + std::to_string(declared) +
                 " exceeds max payload " + std::to_string(max_payload_);
        return false;
      }
      header_len_ = 0;
      in_payload_ = true;
      payload_target_ = declared;
      payload_.clear();
      payload_.reserve(declared);
      continue;
    }
    size_t take = payload_target_ - payload_.size();
    if (take > len - pos) take = len - pos;
    payload_.insert(payload_.end(), data + pos, data + pos + take);
    pos += take;
    if (payload_.size() == payload_target_) {
      ready_.push_back(std::move(payload_));
      payload_ = {};
      in_payload_ = false;
      payload_target_ = 0;
    }
  }
  return true;
}

bool FrameDecoder::Next(std::vector<uint8_t>* frame) {
  if (ready_.empty()) return false;
  *frame = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return true;
}

}  // namespace sae::net
