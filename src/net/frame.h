// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Length-prefixed framing for the TCP serving tier. A frame is a u32
// little-endian payload length followed by exactly that many payload bytes;
// the payload is one of the golden-pinned wire messages (core/messages.h,
// sigchain VO) byte-for-byte, so nothing about the in-process serializations
// changes when they cross a socket.
//
// The decoder is incremental: feed it whatever a nonblocking read returned
// (a frame split across ten reads, or ten frames in one read, both work) and
// pop complete frames as they close. A declared length beyond the configured
// maximum poisons the stream *at header-parse time* — before any payload
// buffer is allocated — which is the up-front guard a hostile length prefix
// must hit (ByteReader's own bounds check only fires after the payload has
// been accepted as a message).

#ifndef SAE_NET_FRAME_H_
#define SAE_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sae::net {

/// Frame header: u32 LE payload length.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Default ceiling on a single frame's payload. Generous enough for a full
/// dataset shipment at bench scale, small enough that a lying length field
/// can never commit the peer to a multi-gigabyte allocation.
inline constexpr size_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Appends one frame (header + payload) to `out`.
void AppendFrame(std::vector<uint8_t>* out, const uint8_t* payload,
                 size_t len);

/// One frame as a fresh buffer.
std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload);

/// Incremental frame parser for one connection's byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consumes `len` stream bytes. Returns false once the stream is poisoned
  /// (oversized declared length); the connection should be dropped — every
  /// later Feed/Next keeps failing, nothing gets buffered.
  bool Feed(const uint8_t* data, size_t len);

  /// Moves the next complete frame payload into `*frame`; false when no
  /// complete frame is buffered (or the stream is poisoned).
  bool Next(std::vector<uint8_t>* frame);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Stream bytes consumed by the frame currently in flight (its header +
  /// partial payload; popped frames excluded). Bounded by max_payload +
  /// header even under hostile input.
  size_t buffered() const {
    return header_len_ + (in_payload_ ? kFrameHeaderBytes : 0) +
           payload_.size();
  }

 private:
  size_t max_payload_;
  bool failed_ = false;
  std::string error_;

  // Header accumulator (partial reads may split even the 4-byte prefix).
  uint8_t header_[kFrameHeaderBytes] = {0, 0, 0, 0};
  size_t header_len_ = 0;

  // Payload accumulator; sized only after the declared length passes the
  // max_payload_ guard.
  bool in_payload_ = false;
  size_t payload_target_ = 0;
  std::vector<uint8_t> payload_;

  // Frames that closed but have not been popped yet.
  std::vector<std::vector<uint8_t>> ready_;
};

}  // namespace sae::net

#endif  // SAE_NET_FRAME_H_
