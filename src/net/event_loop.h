// Copyright (c) saedb authors. Licensed under the MIT license.
//
// A small epoll-based frame server: one event-loop thread per server,
// nonblocking sockets, per-connection read/write buffers that tolerate
// partial reads and short writes. Each complete request frame is handed to
// the handler, which appends zero or more response frame payloads; the
// responses are queued on the connection and flushed as the socket drains
// (EPOLLOUT is armed only while a write is pending).
//
// One loop thread serializes all handler executions for a server, which is
// exactly the concurrency contract the wrapped parties already have (their
// query paths are thread-safe, their update paths assume a single writer) —
// and on the paper's topology each party is its own process anyway, so SP
// and TE still execute in parallel from the client's point of view.

#ifndef SAE_NET_EVENT_LOOP_H_
#define SAE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"

namespace sae::net {

/// Handles one request frame. `responses` receives the response payloads
/// (each becomes one frame, in order). Return true to stop the whole server
/// after the responses flush — the shutdown control op uses this.
using FrameHandler = std::function<bool(
    std::vector<uint8_t> request, std::vector<std::vector<uint8_t>>* responses)>;

struct FrameServerOptions {
  uint16_t port = 0;  ///< 0 picks an ephemeral port (see FrameServer::port)
  size_t max_payload = kMaxFramePayload;
  int max_events = 256;  ///< epoll_wait batch size
};

/// A TCP server speaking the length-prefixed frame protocol.
class FrameServer {
 public:
  FrameServer(FrameServerOptions options, FrameHandler handler);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens and spawns the event-loop thread.
  Status Start();

  /// The bound port (valid after Start; resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// Signals the loop to exit and joins it; idempotent. Open connections
  /// are closed without flushing.
  void Stop();

  /// True until Stop (or a handler-requested shutdown) completes.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Loop-lifetime counters, readable from any thread.
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for protocol violations (poisoned frame streams —
  /// e.g. a lying length prefix); the guard the fuzzer exercises.
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    UniqueFd fd;
    FrameDecoder decoder;
    std::vector<uint8_t> out;  ///< encoded frames awaiting the socket
    size_t out_pos = 0;        ///< flushed prefix of `out`
    bool writable_armed = false;

    explicit Conn(int raw_fd, size_t max_payload)
        : fd(raw_fd), decoder(max_payload) {}
  };

  void Loop();
  void AcceptAll();
  /// Reads until EAGAIN; dispatches complete frames. False = drop the conn.
  bool HandleReadable(Conn* conn);
  /// Flushes what the socket accepts; arms/disarms EPOLLOUT. False = drop.
  bool HandleWritable(Conn* conn);
  void CloseConn(int fd);
  Status UpdateEpoll(Conn* conn);

  FrameServerOptions options_;
  FrameHandler handler_;
  UniqueFd listen_fd_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;  ///< eventfd: Stop() pokes the loop out of epoll_wait
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool stop_after_flush_ = false;  ///< loop-thread only
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace sae::net

#endif  // SAE_NET_EVENT_LOOP_H_
