// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the epoll frame server (net/event_loop.h).

#include "net/event_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/macros.h"

namespace sae::net {

FrameServer::FrameServer(FrameServerOptions options, FrameHandler handler)
    : options_(options), handler_(std::move(handler)) {}

FrameServer::~FrameServer() { Stop(); }

Status FrameServer::Start() {
  SAE_ASSIGN_OR_RETURN(int lfd, ListenTcp(options_.port));
  listen_fd_ = UniqueFd(lfd);
  SAE_RETURN_NOT_OK(SetNonBlocking(lfd));
  SAE_ASSIGN_OR_RETURN(port_, LocalPort(lfd));

  epoll_fd_ = UniqueFd(::epoll_create1(0));
  if (!epoll_fd_.valid()) return Status::IoError("epoll_create1 failed");
  wake_fd_ = UniqueFd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_fd_.valid()) return Status::IoError("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = lfd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, lfd, &ev) != 0) {
    return Status::IoError("epoll_ctl(listen) failed");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    return Status::IoError("epoll_ctl(wake) failed");
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void FrameServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_.valid()) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void FrameServer::Loop() {
  std::vector<epoll_event> events(size_t(options_.max_events));
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (stop_after_flush_) {
      // Shutdown requested by a handler: exit once every queued response
      // byte is on the wire (the ack the requester is waiting for).
      bool pending = false;
      for (auto& [fd, conn] : conns_) {
        if (conn->out_pos < conn->out.size()) {
          pending = true;
          break;
        }
      }
      if (!pending) break;
    }
    int n = ::epoll_wait(epoll_fd_.get(), events.data(), options_.max_events,
                         -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == wake_fd_.get()) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_.get(), &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_.get()) {
        AcceptAll();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      bool keep = true;
      if (mask & (EPOLLHUP | EPOLLERR)) keep = false;
      if (keep && (mask & EPOLLIN)) keep = HandleReadable(conn);
      if (keep && (mask & EPOLLOUT)) keep = HandleWritable(conn);
      if (!keep) CloseConn(fd);
    }
  }
  conns_.clear();
  running_.store(false, std::memory_order_release);
}

void FrameServer::AcceptAll() {
  for (;;) {
    int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained. Anything else: leave it for the next wakeup.
      return;
    }
    if (!SetNonBlocking(fd).ok() || !SetNoDelay(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>(fd, options_.max_payload);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn's UniqueFd closes it
    }
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FrameServer::HandleReadable(Conn* conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) return false;  // peer closed
    if (!conn->decoder.Feed(buf, size_t(n))) {
      // Poisoned stream (lying length prefix): drop the connection without
      // ever having allocated the declared payload.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (size_t(n) < sizeof(buf)) break;  // likely drained
  }
  std::vector<uint8_t> request;
  while (conn->decoder.Next(&request)) {
    std::vector<std::vector<uint8_t>> responses;
    bool stop = handler_(std::move(request), &responses);
    for (const auto& payload : responses) {
      AppendFrame(&conn->out, payload.data(), payload.size());
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    if (stop) stop_after_flush_ = true;
  }
  return HandleWritable(conn);
}

bool FrameServer::HandleWritable(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    ssize_t n = ::send(conn->fd.get(), conn->out.data() + conn->out_pos,
                       conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn->out_pos += size_t(n);
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > (1u << 20)) {
    // Compact a long-flushed prefix so slow readers don't pin memory.
    conn->out.erase(conn->out.begin(),
                    conn->out.begin() + ptrdiff_t(conn->out_pos));
    conn->out_pos = 0;
  }
  bool want_write = !conn->out.empty();
  if (want_write != conn->writable_armed) {
    conn->writable_armed = want_write;
    if (!UpdateEpoll(conn).ok()) return false;
  }
  return true;
}

Status FrameServer::UpdateEpoll(Conn* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->writable_armed ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) != 0) {
    return Status::IoError("epoll_ctl(mod) failed");
  }
  return Status::OK();
}

void FrameServer::CloseConn(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(fd);  // UniqueFd closes the socket
}

}  // namespace sae::net
