// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the pooled transport and networked clients
// (net/client_transport.h).

#include "net/client_transport.h"

#include <utility>

#include "core/messages.h"
#include "mbtree/vo.h"
#include "net/server.h"
#include "util/macros.h"

namespace sae::net {

struct ClientTransport::Lease::Conn {
  UniqueFd fd;
  FrameDecoder decoder;

  explicit Conn(int raw_fd) : fd(raw_fd) {}
};

ClientTransport::ClientTransport(Endpoint endpoint, size_t max_idle)
    : endpoint_(std::move(endpoint)), max_idle_(max_idle) {}

ClientTransport::~ClientTransport() = default;

ClientTransport::Lease::Lease() = default;

ClientTransport::Lease::Lease(ClientTransport* owner,
                              std::unique_ptr<Conn> conn)
    : owner_(owner), conn_(std::move(conn)) {}

ClientTransport::Lease::Lease(Lease&& other) noexcept
    : owner_(other.owner_), conn_(std::move(other.conn_)),
      broken_(other.broken_) {
  other.owner_ = nullptr;
}

ClientTransport::Lease::~Lease() {
  if (owner_ != nullptr && conn_ != nullptr) {
    owner_->Release(std::move(conn_), broken_);
  }
}

ClientTransport::Lease& ClientTransport::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    if (owner_ != nullptr && conn_ != nullptr) {
      owner_->Release(std::move(conn_), broken_);
    }
    owner_ = other.owner_;
    conn_ = std::move(other.conn_);
    broken_ = other.broken_;
    other.owner_ = nullptr;
  }
  return *this;
}

Status ClientTransport::Lease::Send(const std::vector<uint8_t>& payload) {
  if (conn_ == nullptr) return Status::InvalidArgument("empty lease");
  Status st = SendFrame(conn_->fd.get(), payload);
  if (!st.ok()) broken_ = true;
  return st;
}

Result<std::vector<uint8_t>> ClientTransport::Lease::Recv() {
  if (conn_ == nullptr) return Status::InvalidArgument("empty lease");
  auto frame = RecvFrame(conn_->fd.get(), &conn_->decoder);
  if (!frame.ok()) broken_ = true;
  return frame;
}

Result<ClientTransport::Lease> ClientTransport::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<Lease::Conn> conn = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(conn));
    }
  }
  SAE_ASSIGN_OR_RETURN(int fd, ConnectTcp(endpoint_));
  return Lease(this, std::make_unique<Lease::Conn>(fd));
}

Result<std::vector<uint8_t>> ClientTransport::Call(
    const std::vector<uint8_t>& payload) {
  SAE_ASSIGN_OR_RETURN(Lease lease, Acquire());
  SAE_RETURN_NOT_OK(lease.Send(payload));
  return lease.Recv();
}

void ClientTransport::Release(std::unique_ptr<Lease::Conn> conn, bool broken) {
  if (broken) return;  // UniqueFd closes the dead socket
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < max_idle_) idle_.push_back(std::move(conn));
}

Status CheckFrame(const std::vector<uint8_t>& payload) {
  if (!payload.empty() && payload[0] == kCtlError) {
    std::string msg = DecodeErrorFrame(payload);
    return Status::IoError("server error: " + msg);
  }
  return Status::OK();
}

Status ExpectAck(const std::vector<uint8_t>& payload) {
  SAE_RETURN_NOT_OK(CheckFrame(payload));
  if (payload.size() != 1 || payload[0] != kCtlAck) {
    return Status::Corruption("expected ack frame");
  }
  return Status::OK();
}

Status CallExpectAck(ClientTransport* transport,
                     const std::vector<uint8_t>& payload) {
  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                       transport->Call(payload));
  return ExpectAck(response);
}

Result<uint64_t> FetchEpoch(ClientTransport* transport) {
  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                       transport->Call(ControlFrame(kCtlGetEpoch)));
  SAE_RETURN_NOT_OK(CheckFrame(response));
  return core::DeserializeEpochNotice(response);
}

Status ShutdownServer(ClientTransport* transport) {
  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                       transport->Call(ControlFrame(kCtlShutdown)));
  return ExpectAck(response);
}

// --- SAE client -----------------------------------------------------------------

NetSaeClient::NetSaeClient(const NetSaeClientOptions& options)
    : options_(options),
      codec_(options.record_size),
      sp_(options.sp),
      te_(options.te) {
  if (options.owner.port != 0) {
    owner_ = std::make_unique<ClientTransport>(options.owner);
  }
}

Result<uint64_t> NetSaeClient::PublishedEpoch() {
  if (owner_ != nullptr) return FetchEpoch(owner_.get());
  return FetchEpoch(&te_);
}

Result<NetVerifiedAnswer> NetSaeClient::Query(
    const dbms::QueryRequest& request) {
  return RunQuery(request, /*poisoned=*/false);
}

Result<NetVerifiedAnswer> NetSaeClient::QueryPoisoned(
    const dbms::QueryRequest& request) {
  return RunQuery(request, /*poisoned=*/true);
}

Result<NetVerifiedAnswer> NetSaeClient::RunQuery(
    const dbms::QueryRequest& request, bool poisoned) {
  // Lease one socket per party, write all requests, then read all
  // responses: the SP and TE (and owner) round trips overlap on the wire —
  // the paper's parallel fan-out with plain blocking sockets.
  SAE_ASSIGN_OR_RETURN(ClientTransport::Lease sp_lease, sp_.Acquire());
  SAE_ASSIGN_OR_RETURN(ClientTransport::Lease te_lease, te_.Acquire());
  ClientTransport::Lease owner_lease;
  if (owner_ != nullptr) {
    SAE_ASSIGN_OR_RETURN(owner_lease, owner_->Acquire());
  }

  std::vector<uint8_t> sp_request =
      poisoned ? PoisonQueryFrame(request)
               : core::SerializeQueryRequest(request);
  SAE_RETURN_NOT_OK(sp_lease.Send(sp_request));
  SAE_RETURN_NOT_OK(te_lease.Send(core::SerializeQueryRequest(request)));
  if (owner_lease.valid()) {
    SAE_RETURN_NOT_OK(owner_lease.Send(ControlFrame(kCtlGetEpoch)));
  }

  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> answer_bytes, sp_lease.Recv());
  SAE_RETURN_NOT_OK(CheckFrame(answer_bytes));
  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> vt_bytes, te_lease.Recv());
  SAE_RETURN_NOT_OK(CheckFrame(vt_bytes));

  SAE_ASSIGN_OR_RETURN(core::QueryAnswerMessage message,
                       core::DeserializeQueryAnswer(answer_bytes, codec_));
  SAE_ASSIGN_OR_RETURN(core::VerificationToken vt,
                       core::DeserializeVt(vt_bytes));

  uint64_t published = vt.epoch;
  if (owner_lease.valid()) {
    SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> epoch_bytes,
                         owner_lease.Recv());
    SAE_RETURN_NOT_OK(CheckFrame(epoch_bytes));
    SAE_ASSIGN_OR_RETURN(published,
                         core::DeserializeEpochNotice(epoch_bytes));
  }

  SAE_RETURN_NOT_OK(core::Client::VerifyAnswer(
      request, message.answer, message.witness, vt, message.epoch, published,
      codec_, options_.scheme));

  NetVerifiedAnswer verified;
  verified.answer = std::move(message.answer);
  verified.witness = std::move(message.witness);
  verified.vt = vt;
  verified.claimed_epoch = message.epoch;
  verified.published_epoch = published;
  return verified;
}

// --- TOM client -----------------------------------------------------------------

NetTomClient::NetTomClient(const NetTomClientOptions& options)
    : options_(options), codec_(options.record_size), sp_(options.sp) {
  if (options.owner.port != 0) {
    owner_ = std::make_unique<ClientTransport>(options.owner);
  }
}

Result<uint64_t> NetTomClient::PublishedEpoch() {
  if (owner_ != nullptr) return FetchEpoch(owner_.get());
  return FetchEpoch(&sp_);
}

Result<NetTomVerifiedAnswer> NetTomClient::Query(
    const dbms::QueryRequest& request) {
  return RunQuery(request, /*poisoned=*/false);
}

Result<NetTomVerifiedAnswer> NetTomClient::QueryPoisoned(
    const dbms::QueryRequest& request) {
  return RunQuery(request, /*poisoned=*/true);
}

Result<NetTomVerifiedAnswer> NetTomClient::RunQuery(
    const dbms::QueryRequest& request, bool poisoned) {
  SAE_ASSIGN_OR_RETURN(ClientTransport::Lease sp_lease, sp_.Acquire());
  ClientTransport::Lease owner_lease;
  if (owner_ != nullptr) {
    SAE_ASSIGN_OR_RETURN(owner_lease, owner_->Acquire());
  }

  std::vector<uint8_t> sp_request =
      poisoned ? PoisonQueryFrame(request)
               : core::SerializeQueryRequest(request);
  SAE_RETURN_NOT_OK(sp_lease.Send(sp_request));
  if (owner_lease.valid()) {
    SAE_RETURN_NOT_OK(owner_lease.Send(ControlFrame(kCtlGetEpoch)));
  }

  // The TOM SP answers with two frames: the answer shipment then the VO.
  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> answer_bytes, sp_lease.Recv());
  SAE_RETURN_NOT_OK(CheckFrame(answer_bytes));
  SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> vo_bytes, sp_lease.Recv());
  SAE_RETURN_NOT_OK(CheckFrame(vo_bytes));

  SAE_ASSIGN_OR_RETURN(core::QueryAnswerMessage message,
                       core::DeserializeQueryAnswer(answer_bytes, codec_));
  SAE_ASSIGN_OR_RETURN(mbtree::VerificationObject vo,
                       mbtree::VerificationObject::Deserialize(vo_bytes));

  uint64_t current_epoch = 0;  // 0 disables the freshness reference
  if (owner_lease.valid()) {
    SAE_ASSIGN_OR_RETURN(std::vector<uint8_t> epoch_bytes,
                         owner_lease.Recv());
    SAE_RETURN_NOT_OK(CheckFrame(epoch_bytes));
    SAE_ASSIGN_OR_RETURN(current_epoch,
                         core::DeserializeEpochNotice(epoch_bytes));
  }

  SAE_RETURN_NOT_OK(core::TomClient::VerifyAnswer(
      request, message.answer, message.witness, vo, options_.owner_key,
      codec_, options_.scheme, current_epoch));

  NetTomVerifiedAnswer verified;
  verified.answer = std::move(message.answer);
  verified.witness = std::move(message.witness);
  verified.vo_epoch = vo.epoch;
  return verified;
}

}  // namespace sae::net
