// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Disk-based B+-tree over (Key, Rid) pairs with duplicate-key support —
// the *conventional* index the SP uses in SAE (paper §II: "query processing
// is as fast as in conventional database systems").
//
// Node format (4096-byte pages):
//   header  : [magic u32][is_leaf u8][pad u8][count u16][next u32][rsvd u32]
//   leaf    : count x (key u32, rid u64)                       -> 12 B/entry
//   internal: child0 u32, then count x (key u32, child u32)    ->  8 B/entry
//
// With 4096-byte pages this yields fanouts of 340 (leaf) and 509+1
// (internal); the MB-tree's digest-per-entry layout is what shrinks *its*
// fanout, producing the Fig. 6 SP-cost gap.

#ifndef SAE_BTREE_BPLUS_TREE_H_
#define SAE_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/codec.h"
#include "util/status.h"

namespace sae::btree {

using storage::BufferPool;
using storage::Key;
using storage::PageId;
using storage::Rid;

/// A key->rid posting.
struct BTreeEntry {
  Key key;
  Rid rid;

  friend bool operator==(const BTreeEntry& a, const BTreeEntry& b) {
    return a.key == b.key && a.rid == b.rid;
  }
};

/// Tuning knobs; defaults derive from the page size. Tests shrink the
/// fanouts to force deep trees on small datasets.
struct BPlusTreeOptions {
  /// Max entries per leaf (0 = derive from page size).
  size_t max_leaf_entries = 0;
  /// Max keys per internal node (0 = derive from page size).
  size_t max_internal_keys = 0;
};

/// Disk-based B+-tree. Const methods (RangeSearch, Contains, Validate) are
/// safe to call from many threads over a thread-safe BufferPool; mutations
/// (single-writer model) require exclusive access to the tree.
class BPlusTree {
 public:
  /// Creates an empty tree rooted at a fresh leaf page.
  static Result<std::unique_ptr<BPlusTree>> Create(
      BufferPool* pool, const BPlusTreeOptions& options = {});

  /// Inserts a posting; duplicates (same key, different rid) are allowed,
  /// and re-inserting an identical (key, rid) pair is an error.
  Status Insert(Key key, Rid rid);

  /// Removes the posting (key, rid); NotFound if absent.
  Status Delete(Key key, Rid rid);

  /// Appends all postings with lo <= key <= hi to `out` in key order.
  Status RangeSearch(Key lo, Key hi, std::vector<BTreeEntry>* out) const;

  /// True iff the exact posting exists.
  Result<bool> Contains(Key key, Rid rid) const;

  /// Bottom-up bulk load from key-sorted postings into an empty tree.
  /// `fill` in (0, 1] controls leaf/internal occupancy.
  Status BulkLoad(const std::vector<BTreeEntry>& sorted, double fill = 1.0);

  size_t size() const { return entry_count_; }
  size_t node_count() const { return node_count_; }
  size_t height() const { return height_; }
  PageId root() const { return root_; }
  size_t SizeBytes() const { return node_count_ * storage::kPageSize; }

  size_t max_leaf_entries() const { return max_leaf_; }
  size_t max_internal_keys() const { return max_internal_; }

  /// Exhaustively checks structural invariants (ordering, occupancy, uniform
  /// leaf depth, leaf-chain consistency). Test hook; O(n).
  Status Validate() const;

  /// Serializes the tree's volatile metadata (root, counts, fanouts) so the
  /// tree can be re-attached to its page store after a restart. Pages are
  /// already durable in the store; this captures only what lives in memory.
  void WriteSnapshot(ByteWriter* out) const;

  /// Re-attaches a tree persisted with WriteSnapshot to `pool` (which must
  /// wrap the same page store).
  static Result<std::unique_ptr<BPlusTree>> OpenSnapshot(BufferPool* pool,
                                                         ByteReader* in);

 private:
  // In-memory image of one node; (de)serialized from/to its page.
  struct Node {
    bool is_leaf = true;
    std::vector<Key> keys;
    std::vector<Rid> rids;        // leaf: parallel to keys
    std::vector<PageId> children; // internal: keys.size() + 1
    PageId next = storage::kInvalidPageId;  // leaf chain
  };

  BPlusTree(BufferPool* pool, size_t max_leaf, size_t max_internal)
      : pool_(pool), max_leaf_(max_leaf), max_internal_(max_internal) {}

  Result<Node> LoadNode(PageId id) const;
  Status StoreNode(PageId id, const Node& node);
  Result<PageId> NewNode(const Node& node);

  struct SplitResult {
    Key separator;
    PageId right_page;
  };

  // Inserts into the subtree at `page`; sets `split` if the node split.
  Status InsertRec(PageId page, Key key, Rid rid,
                   std::optional<SplitResult>* split);

  // Deletes from the subtree at `page`; sets *underflow when the node fell
  // below its minimum occupancy.
  Status DeleteRec(PageId page, Key key, Rid rid, bool* underflow);

  // Resolves an underflowing child `child_idx` of internal node `parent`
  // (already loaded/mutable); may free pages and mutate parent.
  Status FixUnderflow(Node* parent, size_t child_idx);

  size_t MinOccupancy(const Node& node) const;

  Status ValidateRec(PageId page, size_t depth, std::optional<Key> lo,
                     std::optional<Key> hi, size_t* leaf_depth,
                     size_t* entries, size_t* nodes,
                     std::vector<PageId>* leaves_in_order) const;

  BufferPool* pool_;
  size_t max_leaf_;
  size_t max_internal_;
  PageId root_ = storage::kInvalidPageId;
  size_t entry_count_ = 0;
  size_t node_count_ = 0;
  size_t height_ = 1;
};

}  // namespace sae::btree

#endif  // SAE_BTREE_BPLUS_TREE_H_
