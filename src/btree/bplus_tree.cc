// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the conventional disk B+-tree (btree/bplus_tree.h): search,
// insert with splits, delete with borrow/merge, bulk load, and range scans
// over (key, rid) pairs with duplicate support.

#include "btree/bplus_tree.h"

#include <algorithm>

#include "util/codec.h"
#include "util/macros.h"

namespace sae::btree {

namespace {

constexpr uint32_t kMagic = 0x4254524Eu;  // "BTRN"
constexpr size_t kHeaderSize = 16;
constexpr size_t kLeafEntrySize = 12;      // key u32 + rid u64
constexpr size_t kInternalEntrySize = 8;   // key u32 + child u32

size_t DefaultMaxLeaf() {
  return (storage::kPageSize - kHeaderSize) / kLeafEntrySize;  // 340
}
size_t DefaultMaxInternal() {
  // child0 consumes 4 bytes before the (key, child) pairs.
  return (storage::kPageSize - kHeaderSize - 4) / kInternalEntrySize;  // 509
}

// Splits `total` items into near-equal chunks aiming at `target` items per
// chunk while honoring the hard occupancy bounds [min_size, hard_cap].
// A single (possibly slim) chunk is returned when total <= min_size — that
// chunk becomes the root. Used by bulk load so no node over- or underflows.
std::vector<size_t> PlanChunks(size_t total, size_t target, size_t hard_cap,
                               size_t min_size) {
  SAE_CHECK(min_size >= 1 && min_size <= hard_cap && target >= 1);
  if (total <= min_size) return {total};
  size_t n = (total + target - 1) / target;
  if (n == 0) n = 1;
  while (n > 1 && total / n < min_size) --n;
  while ((total + n - 1) / n > hard_cap) ++n;
  SAE_CHECK(n >= 1 && total / n >= std::min(min_size, total));
  std::vector<size_t> sizes(n, total / n);
  for (size_t i = 0; i < total % n; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(
    BufferPool* pool, const BPlusTreeOptions& options) {
  size_t max_leaf =
      options.max_leaf_entries ? options.max_leaf_entries : DefaultMaxLeaf();
  size_t max_internal = options.max_internal_keys ? options.max_internal_keys
                                                  : DefaultMaxInternal();
  SAE_CHECK(max_leaf >= 2 && max_leaf <= DefaultMaxLeaf());
  SAE_CHECK(max_internal >= 2 && max_internal <= DefaultMaxInternal());

  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(pool, max_leaf, max_internal));
  Node root;
  root.is_leaf = true;
  SAE_ASSIGN_OR_RETURN(tree->root_, tree->NewNode(root));
  return tree;
}

Result<BPlusTree::Node> BPlusTree::LoadNode(PageId id) const {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(id));
  const uint8_t* p = ref.Get().bytes();
  if (DecodeU32(p) != kMagic) {
    return Status::Corruption("bad btree node magic");
  }
  Node node;
  node.is_leaf = p[4] != 0;
  uint16_t count = DecodeU16(p + 6);
  node.next = DecodeU32(p + 8);
  const uint8_t* body = p + kHeaderSize;
  if (node.is_leaf) {
    node.keys.reserve(count);
    node.rids.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      node.keys.push_back(DecodeU32(body + i * kLeafEntrySize));
      node.rids.push_back(DecodeU64(body + i * kLeafEntrySize + 4));
    }
  } else {
    node.children.reserve(count + 1);
    node.children.push_back(DecodeU32(body));
    const uint8_t* pairs = body + 4;
    node.keys.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      node.keys.push_back(DecodeU32(pairs + i * kInternalEntrySize));
      node.children.push_back(DecodeU32(pairs + i * kInternalEntrySize + 4));
    }
  }
  return node;
}

Status BPlusTree::StoreNode(PageId id, const Node& node) {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(id));
  storage::Page& page = ref.Mutable();
  page.Zero();
  uint8_t* p = page.bytes();
  EncodeU32(p, kMagic);
  p[4] = node.is_leaf ? 1 : 0;
  EncodeU16(p + 6, uint16_t(node.keys.size()));
  EncodeU32(p + 8, node.next);
  uint8_t* body = p + kHeaderSize;
  if (node.is_leaf) {
    SAE_CHECK(node.keys.size() == node.rids.size());
    SAE_CHECK(node.keys.size() <= DefaultMaxLeaf());
    for (size_t i = 0; i < node.keys.size(); ++i) {
      EncodeU32(body + i * kLeafEntrySize, node.keys[i]);
      EncodeU64(body + i * kLeafEntrySize + 4, node.rids[i]);
    }
  } else {
    SAE_CHECK(node.children.size() == node.keys.size() + 1);
    SAE_CHECK(node.keys.size() <= DefaultMaxInternal());
    EncodeU32(body, node.children[0]);
    uint8_t* pairs = body + 4;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      EncodeU32(pairs + i * kInternalEntrySize, node.keys[i]);
      EncodeU32(pairs + i * kInternalEntrySize + 4, node.children[i + 1]);
    }
  }
  return Status::OK();
}

Result<PageId> BPlusTree::NewNode(const Node& node) {
  SAE_ASSIGN_OR_RETURN(auto ref, pool_->New());
  PageId id = ref.id();
  ref.Release();
  SAE_RETURN_NOT_OK(StoreNode(id, node));
  ++node_count_;
  return id;
}

size_t BPlusTree::MinOccupancy(const Node& node) const {
  return node.is_leaf ? max_leaf_ / 2 : max_internal_ / 2;
}

Status BPlusTree::Insert(Key key, Rid rid) {
  SAE_ASSIGN_OR_RETURN(bool exists, Contains(key, rid));
  if (exists) {
    return Status::AlreadyExists("posting already present");
  }
  std::optional<SplitResult> split;
  SAE_RETURN_NOT_OK(InsertRec(root_, key, rid, &split));
  if (split.has_value()) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.keys.push_back(split->separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(split->right_page);
    SAE_ASSIGN_OR_RETURN(root_, NewNode(new_root));
    ++height_;
  }
  ++entry_count_;
  return Status::OK();
}

Status BPlusTree::InsertRec(PageId page, Key key, Rid rid,
                            std::optional<SplitResult>* split) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  split->reset();

  if (node.is_leaf) {
    size_t pos = std::upper_bound(node.keys.begin(), node.keys.end(), key) -
                 node.keys.begin();
    node.keys.insert(node.keys.begin() + pos, key);
    node.rids.insert(node.rids.begin() + pos, rid);

    if (node.keys.size() > max_leaf_) {
      size_t mid = node.keys.size() / 2;
      Node right;
      right.is_leaf = true;
      right.keys.assign(node.keys.begin() + mid, node.keys.end());
      right.rids.assign(node.rids.begin() + mid, node.rids.end());
      right.next = node.next;
      node.keys.resize(mid);
      node.rids.resize(mid);
      SAE_ASSIGN_OR_RETURN(PageId right_page, NewNode(right));
      node.next = right_page;
      *split = SplitResult{right.keys.front(), right_page};
    }
    return StoreNode(page, node);
  }

  size_t idx = std::upper_bound(node.keys.begin(), node.keys.end(), key) -
               node.keys.begin();
  std::optional<SplitResult> child_split;
  SAE_RETURN_NOT_OK(InsertRec(node.children[idx], key, rid, &child_split));
  if (!child_split.has_value()) return Status::OK();

  node.keys.insert(node.keys.begin() + idx, child_split->separator);
  node.children.insert(node.children.begin() + idx + 1,
                       child_split->right_page);

  if (node.keys.size() > max_internal_) {
    size_t mid = node.keys.size() / 2;
    Key separator = node.keys[mid];
    Node right;
    right.is_leaf = false;
    right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.keys.resize(mid);
    node.children.resize(mid + 1);
    SAE_ASSIGN_OR_RETURN(PageId right_page, NewNode(right));
    *split = SplitResult{separator, right_page};
  }
  return StoreNode(page, node);
}

Status BPlusTree::RangeSearch(Key lo, Key hi,
                              std::vector<BTreeEntry>* out) const {
  if (lo > hi) return Status::InvalidArgument("lo > hi");

  // Descend to the leftmost leaf that may contain `lo`. Duplicate keys can
  // straddle a split boundary, so use lower_bound on separators.
  PageId page = root_;
  for (;;) {
    SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
    if (node.is_leaf) break;
    size_t idx = std::lower_bound(node.keys.begin(), node.keys.end(), lo) -
                 node.keys.begin();
    page = node.children[idx];
  }

  while (page != storage::kInvalidPageId) {
    SAE_ASSIGN_OR_RETURN(Node leaf, LoadNode(page));
    size_t pos = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), lo) -
                 leaf.keys.begin();
    for (; pos < leaf.keys.size(); ++pos) {
      if (leaf.keys[pos] > hi) return Status::OK();
      out->push_back(BTreeEntry{leaf.keys[pos], leaf.rids[pos]});
    }
    page = leaf.next;
  }
  return Status::OK();
}

Result<bool> BPlusTree::Contains(Key key, Rid rid) const {
  PageId page = root_;
  for (;;) {
    SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
    if (node.is_leaf) break;
    size_t idx = std::lower_bound(node.keys.begin(), node.keys.end(), key) -
                 node.keys.begin();
    page = node.children[idx];
  }
  while (page != storage::kInvalidPageId) {
    SAE_ASSIGN_OR_RETURN(Node leaf, LoadNode(page));
    size_t pos = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key) -
                 leaf.keys.begin();
    for (; pos < leaf.keys.size(); ++pos) {
      if (leaf.keys[pos] != key) return false;
      if (leaf.rids[pos] == rid) return true;
    }
    page = leaf.next;  // run of duplicates may continue in the next leaf
    if (page != storage::kInvalidPageId) {
      SAE_ASSIGN_OR_RETURN(Node peek, LoadNode(page));
      if (peek.keys.empty() || peek.keys.front() != key) return false;
    }
  }
  return false;
}

Status BPlusTree::Delete(Key key, Rid rid) {
  bool underflow = false;
  SAE_RETURN_NOT_OK(DeleteRec(root_, key, rid, &underflow));
  if (underflow) {
    SAE_ASSIGN_OR_RETURN(Node root, LoadNode(root_));
    if (!root.is_leaf && root.keys.empty()) {
      PageId old = root_;
      root_ = root.children[0];
      SAE_RETURN_NOT_OK(pool_->Free(old));
      --node_count_;
      --height_;
    }
  }
  --entry_count_;
  return Status::OK();
}

Status BPlusTree::DeleteRec(PageId page, Key key, Rid rid, bool* underflow) {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  *underflow = false;

  if (node.is_leaf) {
    size_t pos = std::lower_bound(node.keys.begin(), node.keys.end(), key) -
                 node.keys.begin();
    for (; pos < node.keys.size() && node.keys[pos] == key; ++pos) {
      if (node.rids[pos] == rid) {
        node.keys.erase(node.keys.begin() + pos);
        node.rids.erase(node.rids.begin() + pos);
        *underflow = node.keys.size() < MinOccupancy(node);
        return StoreNode(page, node);
      }
    }
    return Status::NotFound("posting not found");
  }

  // Duplicate keys may live in any child whose separator range touches
  // `key`; probe candidates left to right.
  size_t first = std::lower_bound(node.keys.begin(), node.keys.end(), key) -
                 node.keys.begin();
  size_t last = std::upper_bound(node.keys.begin(), node.keys.end(), key) -
                node.keys.begin();
  for (size_t idx = first; idx <= last; ++idx) {
    bool child_underflow = false;
    Status st = DeleteRec(node.children[idx], key, rid, &child_underflow);
    if (st.code() == StatusCode::kNotFound) continue;
    SAE_RETURN_NOT_OK(st);
    if (child_underflow) {
      SAE_RETURN_NOT_OK(FixUnderflow(&node, idx));
      *underflow = node.keys.size() < MinOccupancy(node);
      return StoreNode(page, node);
    }
    return Status::OK();
  }
  return Status::NotFound("posting not found");
}

Status BPlusTree::FixUnderflow(Node* parent, size_t child_idx) {
  PageId child_page = parent->children[child_idx];
  SAE_ASSIGN_OR_RETURN(Node child, LoadNode(child_page));

  // Try borrowing from the left sibling.
  if (child_idx > 0) {
    PageId left_page = parent->children[child_idx - 1];
    SAE_ASSIGN_OR_RETURN(Node left, LoadNode(left_page));
    if (left.keys.size() > MinOccupancy(left)) {
      if (child.is_leaf) {
        child.keys.insert(child.keys.begin(), left.keys.back());
        child.rids.insert(child.rids.begin(), left.rids.back());
        left.keys.pop_back();
        left.rids.pop_back();
        parent->keys[child_idx - 1] = child.keys.front();
      } else {
        child.keys.insert(child.keys.begin(), parent->keys[child_idx - 1]);
        child.children.insert(child.children.begin(), left.children.back());
        parent->keys[child_idx - 1] = left.keys.back();
        left.keys.pop_back();
        left.children.pop_back();
      }
      SAE_RETURN_NOT_OK(StoreNode(left_page, left));
      return StoreNode(child_page, child);
    }
  }

  // Try borrowing from the right sibling.
  if (child_idx + 1 < parent->children.size()) {
    PageId right_page = parent->children[child_idx + 1];
    SAE_ASSIGN_OR_RETURN(Node right, LoadNode(right_page));
    if (right.keys.size() > MinOccupancy(right)) {
      if (child.is_leaf) {
        child.keys.push_back(right.keys.front());
        child.rids.push_back(right.rids.front());
        right.keys.erase(right.keys.begin());
        right.rids.erase(right.rids.begin());
        parent->keys[child_idx] = right.keys.front();
      } else {
        child.keys.push_back(parent->keys[child_idx]);
        child.children.push_back(right.children.front());
        parent->keys[child_idx] = right.keys.front();
        right.keys.erase(right.keys.begin());
        right.children.erase(right.children.begin());
      }
      SAE_RETURN_NOT_OK(StoreNode(right_page, right));
      return StoreNode(child_page, child);
    }
  }

  // Merge with a sibling. Prefer absorbing `child` into the left sibling.
  if (child_idx > 0) {
    PageId left_page = parent->children[child_idx - 1];
    SAE_ASSIGN_OR_RETURN(Node left, LoadNode(left_page));
    if (child.is_leaf) {
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.rids.insert(left.rids.end(), child.rids.begin(), child.rids.end());
      left.next = child.next;
    } else {
      left.keys.push_back(parent->keys[child_idx - 1]);
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.children.insert(left.children.end(), child.children.begin(),
                           child.children.end());
    }
    SAE_RETURN_NOT_OK(StoreNode(left_page, left));
    SAE_RETURN_NOT_OK(pool_->Free(child_page));
    --node_count_;
    parent->keys.erase(parent->keys.begin() + child_idx - 1);
    parent->children.erase(parent->children.begin() + child_idx);
    return Status::OK();
  }

  SAE_CHECK(child_idx + 1 < parent->children.size());
  PageId right_page = parent->children[child_idx + 1];
  SAE_ASSIGN_OR_RETURN(Node right, LoadNode(right_page));
  if (child.is_leaf) {
    child.keys.insert(child.keys.end(), right.keys.begin(), right.keys.end());
    child.rids.insert(child.rids.end(), right.rids.begin(), right.rids.end());
    child.next = right.next;
  } else {
    child.keys.push_back(parent->keys[child_idx]);
    child.keys.insert(child.keys.end(), right.keys.begin(), right.keys.end());
    child.children.insert(child.children.end(), right.children.begin(),
                          right.children.end());
  }
  SAE_RETURN_NOT_OK(StoreNode(child_page, child));
  SAE_RETURN_NOT_OK(pool_->Free(right_page));
  --node_count_;
  parent->keys.erase(parent->keys.begin() + child_idx);
  parent->children.erase(parent->children.begin() + child_idx + 1);
  return Status::OK();
}

Status BPlusTree::BulkLoad(const std::vector<BTreeEntry>& sorted,
                           double fill) {
  if (entry_count_ != 0 || node_count_ != 1) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (fill <= 0.0 || fill > 1.0) {
    return Status::InvalidArgument("fill must be in (0, 1]");
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1].key > sorted[i].key) {
      return Status::InvalidArgument("entries not sorted by key");
    }
  }
  if (sorted.empty()) return Status::OK();

  // Reuse the pre-allocated empty root page as the first leaf.
  size_t min_leaf = std::max<size_t>(1, max_leaf_ / 2);
  size_t leaf_target = std::max<size_t>(
      min_leaf, static_cast<size_t>(double(max_leaf_) * fill));
  std::vector<size_t> leaf_sizes =
      PlanChunks(sorted.size(), leaf_target, max_leaf_, min_leaf);

  struct LevelEntry {
    Key first_key;
    PageId page;
  };
  std::vector<LevelEntry> level;
  level.reserve(leaf_sizes.size());

  size_t offset = 0;
  PageId prev_leaf = storage::kInvalidPageId;
  for (size_t li = 0; li < leaf_sizes.size(); ++li) {
    Node leaf;
    leaf.is_leaf = true;
    for (size_t i = 0; i < leaf_sizes[li]; ++i) {
      leaf.keys.push_back(sorted[offset + i].key);
      leaf.rids.push_back(sorted[offset + i].rid);
    }
    offset += leaf_sizes[li];

    PageId page;
    if (li == 0) {
      page = root_;  // recycle the initial empty root page
      SAE_RETURN_NOT_OK(StoreNode(page, leaf));
    } else {
      SAE_ASSIGN_OR_RETURN(page, NewNode(leaf));
    }
    if (prev_leaf != storage::kInvalidPageId) {
      SAE_ASSIGN_OR_RETURN(Node prev, LoadNode(prev_leaf));
      prev.next = page;
      SAE_RETURN_NOT_OK(StoreNode(prev_leaf, prev));
    }
    prev_leaf = page;
    level.push_back(LevelEntry{leaf.keys.front(), page});
  }

  height_ = 1;
  size_t min_children = max_internal_ / 2 + 1;
  size_t target_children = std::max<size_t>(
      min_children,
      static_cast<size_t>(double(max_internal_ + 1) * fill));
  while (level.size() > 1) {
    std::vector<size_t> group_sizes = PlanChunks(
        level.size(), target_children, max_internal_ + 1, min_children);
    std::vector<LevelEntry> next_level;
    next_level.reserve(group_sizes.size());
    size_t pos = 0;
    for (size_t gs : group_sizes) {
      Node internal;
      internal.is_leaf = false;
      internal.children.push_back(level[pos].page);
      for (size_t i = 1; i < gs; ++i) {
        internal.keys.push_back(level[pos + i].first_key);
        internal.children.push_back(level[pos + i].page);
      }
      SAE_ASSIGN_OR_RETURN(PageId page, NewNode(internal));
      next_level.push_back(LevelEntry{level[pos].first_key, page});
      pos += gs;
    }
    level = std::move(next_level);
    ++height_;
  }

  root_ = level.front().page;
  entry_count_ = sorted.size();
  return Status::OK();
}

Status BPlusTree::ValidateRec(PageId page, size_t depth, std::optional<Key> lo,
                              std::optional<Key> hi, size_t* leaf_depth,
                              size_t* entries, size_t* nodes,
                              std::vector<PageId>* leaves_in_order) const {
  SAE_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  ++*nodes;

  for (size_t i = 1; i < node.keys.size(); ++i) {
    if (node.keys[i - 1] > node.keys[i]) {
      return Status::Corruption("keys out of order");
    }
  }
  for (Key k : node.keys) {
    if ((lo && k < *lo) || (hi && k > *hi)) {
      return Status::Corruption("key outside separator bounds");
    }
  }

  if (node.is_leaf) {
    if (node.keys.size() > max_leaf_) {
      return Status::Corruption("leaf overflow");
    }
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    *entries += node.keys.size();
    leaves_in_order->push_back(page);
    return Status::OK();
  }

  if (node.keys.size() > max_internal_) {
    return Status::Corruption("internal overflow");
  }
  if (node.children.size() != node.keys.size() + 1) {
    return Status::Corruption("child/key count mismatch");
  }
  if (page != root_ && node.keys.size() < max_internal_ / 2) {
    return Status::Corruption("internal underflow");
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    std::optional<Key> child_lo = (i == 0) ? lo : std::optional(node.keys[i - 1]);
    std::optional<Key> child_hi =
        (i == node.keys.size()) ? hi : std::optional(node.keys[i]);
    SAE_RETURN_NOT_OK(ValidateRec(node.children[i], depth + 1, child_lo,
                                  child_hi, leaf_depth, entries, nodes,
                                  leaves_in_order));
  }
  return Status::OK();
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x42545353u;  // "BTSS"
}

void BPlusTree::WriteSnapshot(ByteWriter* out) const {
  out->PutU32(kSnapshotMagic);
  out->PutU32(uint32_t(max_leaf_));
  out->PutU32(uint32_t(max_internal_));
  out->PutU32(root_);
  out->PutU64(entry_count_);
  out->PutU64(node_count_);
  out->PutU32(uint32_t(height_));
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::OpenSnapshot(BufferPool* pool,
                                                           ByteReader* in) {
  if (in->GetU32() != kSnapshotMagic) {
    return Status::Corruption("not a B+-tree snapshot");
  }
  size_t max_leaf = in->GetU32();
  size_t max_internal = in->GetU32();
  PageId root = in->GetU32();
  uint64_t entries = in->GetU64();
  uint64_t nodes = in->GetU64();
  size_t height = in->GetU32();
  if (in->failed()) return Status::Corruption("truncated B+-tree snapshot");

  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(pool, max_leaf, max_internal));
  tree->root_ = root;
  tree->entry_count_ = entries;
  tree->node_count_ = nodes;
  tree->height_ = height;
  // Cheap sanity probe: the root page must parse as a node.
  SAE_RETURN_NOT_OK(tree->LoadNode(root).status());
  return tree;
}

Status BPlusTree::Validate() const {
  size_t leaf_depth = 0, entries = 0, nodes = 0;
  std::vector<PageId> leaves;
  SAE_RETURN_NOT_OK(ValidateRec(root_, 1, std::nullopt, std::nullopt,
                                &leaf_depth, &entries, &nodes, &leaves));
  if (entries != entry_count_) {
    return Status::Corruption("entry count mismatch");
  }
  if (nodes != node_count_) {
    return Status::Corruption("node count mismatch");
  }
  if (leaf_depth != height_) {
    return Status::Corruption("height mismatch");
  }
  // The left-to-right leaf order must match the next-pointer chain.
  for (size_t i = 0; i + 1 < leaves.size(); ++i) {
    SAE_ASSIGN_OR_RETURN(Node leaf, LoadNode(leaves[i]));
    if (leaf.next != leaves[i + 1]) {
      return Status::Corruption("broken leaf chain");
    }
  }
  if (!leaves.empty()) {
    SAE_ASSIGN_OR_RETURN(Node last, LoadNode(leaves.back()));
    if (last.next != storage::kInvalidPageId) {
      return Status::Corruption("dangling leaf chain tail");
    }
  }
  return Status::OK();
}

}  // namespace sae::btree
