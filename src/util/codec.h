// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Little-endian fixed-width integer codecs used by every on-page and on-wire
// format in the project. Kept header-only and branch-free; these sit on the
// hot path of node (de)serialization.

#ifndef SAE_UTIL_CODEC_H_
#define SAE_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace sae {

inline void EncodeU16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeU16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

/// Append-only byte sink used to serialize protocol messages; the resulting
/// buffer size is what the simulation meters as network bytes.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, 2); }
  void PutU32(uint32_t v) { PutRaw(&v, 4); }
  void PutU64(uint64_t v) { PutRaw(&v, 8); }
  void PutBytes(const uint8_t* data, size_t len) { PutRaw(data, len); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t len) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + len);
  }

  std::vector<uint8_t> buf_;
};

/// Cursor-based reader matching ByteWriter. Out-of-bounds reads flip a sticky
/// error bit rather than crashing, so corrupt wire data is reported as such.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint8_t GetU8() { return Ok(1) ? data_[pos_++] : 0; }
  uint16_t GetU16() { return GetFixed<uint16_t>(); }
  uint32_t GetU32() { return GetFixed<uint32_t>(); }
  uint64_t GetU64() { return GetFixed<uint64_t>(); }

  bool GetBytes(uint8_t* dst, size_t n) {
    if (!Ok(n)) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  std::string GetString() {
    uint32_t n = GetU32();
    if (!Ok(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return len_ - pos_; }
  bool failed() const { return failed_; }

 private:
  template <typename T>
  T GetFixed() {
    if (!Ok(sizeof(T))) return T{0};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool Ok(size_t need) {
    if (failed_ || pos_ + need > len_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sae

#endif  // SAE_UTIL_CODEC_H_
