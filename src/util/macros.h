// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Assertion macros. SAE_CHECK fires in all build types and is used to guard
// invariants whose violation indicates a programming error (never bad user
// input — fallible operations return Status instead).

#ifndef SAE_UTIL_MACROS_H_
#define SAE_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define SAE_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SAE_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SAE_CHECK_OK(expr)                                                  \
  do {                                                                      \
    const ::sae::Status& _st = (expr);                                      \
    if (!_st.ok()) {                                                        \
      std::fprintf(stderr, "SAE_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, _st.ToString().c_str());                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define SAE_DCHECK(cond) SAE_CHECK(cond)
#else
#define SAE_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

// Propagates a non-OK Status from the current function.
#define SAE_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::sae::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // SAE_UTIL_MACROS_H_
