// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the bucketed Zipf sampler (util/zipf.h) with the Gray et al.
// quantile approximation for the paper's SKW key distribution.

#include "util/zipf.h"

#include <cmath>

#include "util/macros.h"

namespace sae {

namespace {

// Truncated harmonic: sum_{i=1..n} 1/i^theta. O(n) but computed once per
// generator; for the bucketed key generator n is small (~1000).
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  SAE_CHECK(n >= 1);
  SAE_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng* rng) {
  // Gray et al. quantile approximation.
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

SkewedKeyGenerator::SkewedKeyGenerator(uint64_t domain_max, double theta,
                                       uint64_t buckets, uint64_t seed)
    : domain_max_(domain_max),
      buckets_(buckets),
      zipf_(buckets, theta),
      rng_(seed) {
  SAE_CHECK(buckets >= 1 && buckets <= domain_max + 1);
}

uint32_t SkewedKeyGenerator::Next() {
  uint64_t bucket = zipf_.Next(&rng_);
  uint64_t width = (domain_max_ + 1) / buckets_;
  uint64_t lo = bucket * width;
  uint64_t hi = (bucket + 1 == buckets_) ? domain_max_ : lo + width - 1;
  return static_cast<uint32_t>(rng_.NextRange(lo, hi));
}

}  // namespace sae
