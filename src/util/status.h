// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Status / Result<T>: exception-free error handling in the style of
// Arrow/RocksDB. Functions that can fail on bad input or I/O return Status
// (or Result<T> when they also produce a value).

#ifndef SAE_UTIL_STATUS_H_
#define SAE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/macros.h"

namespace sae {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kOutOfRange,
  kVerificationFailure,
  kStaleEpoch,
  kShardEpochSkew,
  kUnimplemented,
};

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status VerificationFailure(std::string msg) {
    return Status(StatusCode::kVerificationFailure, std::move(msg));
  }
  /// Freshness violation: the proof is cryptographically sound but speaks
  /// for an epoch older than the latest one the DO published.
  static Status StaleEpoch(std::string msg) {
    return Status(StatusCode::kStaleEpoch, std::move(msg));
  }
  /// Cross-shard freshness violation: the per-shard proofs of one stitched
  /// answer speak for epochs that cannot have coexisted — some shards are
  /// fresh while others lag their published epoch, so the composite was
  /// assembled from different points in time (a torn snapshot). A uniformly
  /// lagging answer is kStaleEpoch instead.
  static Status ShardEpochSkew(std::string msg) {
    return Status(StatusCode::kShardEpochSkew, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test output.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (SAE_CHECK).
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}        // NOLINT: implicit
  Result(Status status) : var_(std::move(status)) {  // NOLINT: implicit
    SAE_CHECK(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() {
    SAE_CHECK(ok());
    return std::get<T>(var_);
  }
  const T& value() const {
    SAE_CHECK(ok());
    return std::get<T>(var_);
  }

  T ValueOrDie() && {
    SAE_CHECK(ok());
    return std::move(std::get<T>(var_));
  }

 private:
  std::variant<T, Status> var_;
};

/// Folds the per-shard verification verdicts of one stitched multi-shard
/// answer into a composite verdict (shard id, per-shard status):
///   - any non-freshness failure  -> kVerificationFailure naming the shard
///     (the per-shard statuses keep the finer-grained code);
///   - every queried shard stale  -> kStaleEpoch (a uniform replay);
///   - fresh and stale shards mix -> kShardEpochSkew naming the laggards
///     (the answer was stitched from different points in time);
///   - all OK                     -> OK.
/// Freshness classification runs after the failure scan so a shard that is
/// both corrupt and stale is reported as corruption, mirroring the
/// single-shard client's gate ordering in reverse: corruption is the
/// stronger, shard-attributable verdict here.
Status CombineShardStatuses(
    const std::vector<std::pair<size_t, Status>>& per_shard);

}  // namespace sae

#define SAE_INTERNAL_CONCAT_IMPL(a, b) a##b
#define SAE_INTERNAL_CONCAT(a, b) SAE_INTERNAL_CONCAT_IMPL(a, b)

#define SAE_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp.value())

// Assigns the value of a Result expression to `lhs`, propagating errors.
#define SAE_ASSIGN_OR_RETURN(lhs, rexpr) \
  SAE_INTERNAL_ASSIGN_OR_RETURN(SAE_INTERNAL_CONCAT(_res_, __LINE__), lhs, \
                                rexpr)

#endif  // SAE_UTIL_STATUS_H_
