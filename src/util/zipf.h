// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Zipfian sampling for the paper's SKW dataset: search keys generated with
// ZIPF, skewness 0.8, "so that 77% of the search keys are concentrated in
// 20% of the domain" (paper §IV).

#ifndef SAE_UTIL_ZIPF_H_
#define SAE_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace sae {

/// Samples ranks from a Zipf(theta) distribution over {0, ..., n-1}:
/// P(rank = i) proportional to 1 / (i+1)^theta. Uses the Gray et al.
/// (SIGMOD'94) constant-time approximation standard in DB benchmarks.
class ZipfGenerator {
 public:
  /// \param n      number of distinct ranks
  /// \param theta  skew in [0, 1); 0 degenerates to uniform
  ZipfGenerator(uint64_t n, double theta);

  /// Next rank in [0, n); rank 0 is the most popular.
  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// Maps Zipf ranks onto a numeric key domain [0, domain_max] so that popular
/// ranks cluster at the low end of the domain: rank buckets are laid out in
/// rank order, each covering an equal slice of the domain, and a key is drawn
/// uniformly within its bucket. With theta=0.8 and 1000 buckets this puts
/// ~77% of keys into the lowest ~20% of the domain, matching the paper.
class SkewedKeyGenerator {
 public:
  SkewedKeyGenerator(uint64_t domain_max, double theta, uint64_t buckets,
                     uint64_t seed);

  uint32_t Next();

 private:
  uint64_t domain_max_;
  uint64_t buckets_;
  ZipfGenerator zipf_;
  Rng rng_;
};

}  // namespace sae

#endif  // SAE_UTIL_ZIPF_H_
