// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements the xoshiro256** PRNG (util/random.h): splitmix64 seeding,
// NextBounded without modulo bias.

#include "util/random.h"

#include "util/macros.h"

namespace sae {

namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(&seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SAE_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextRange(uint64_t lo, uint64_t hi) {
  SAE_CHECK(lo <= hi);
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace sae
