// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Lowercase hex codec for digests and test golden values; the inverse
// pair HexEncode/HexDecode round-trips arbitrary byte strings.

#ifndef SAE_UTIL_HEX_H_
#define SAE_UTIL_HEX_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sae {

/// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(const uint8_t* data, size_t len);

/// Inverse of HexEncode; returns empty vector on malformed input of odd
/// length or non-hex characters.
std::vector<uint8_t> HexDecode(const std::string& hex);

}  // namespace sae

#endif  // SAE_UTIL_HEX_H_
