// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements Status/Result (util/status.h): status-code names and the
// human-readable ToString used by SAE_CHECK_OK failure messages.

#include "util/status.h"

namespace sae {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kVerificationFailure:
      return "VerificationFailure";
    case StatusCode::kStaleEpoch:
      return "StaleEpoch";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sae
