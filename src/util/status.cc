// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements Status/Result (util/status.h): status-code names and the
// human-readable ToString used by SAE_CHECK_OK failure messages.

#include "util/status.h"

namespace sae {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kVerificationFailure:
      return "VerificationFailure";
    case StatusCode::kStaleEpoch:
      return "StaleEpoch";
    case StatusCode::kShardEpochSkew:
      return "ShardEpochSkew";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

}  // namespace

Status CombineShardStatuses(
    const std::vector<std::pair<size_t, Status>>& per_shard) {
  std::vector<size_t> stale;
  for (const auto& [shard, status] : per_shard) {
    if (status.ok()) continue;
    if (status.code() == StatusCode::kStaleEpoch) {
      stale.push_back(shard);
      continue;
    }
    return Status::VerificationFailure("shard " + std::to_string(shard) +
                                       ": " + status.ToString());
  }
  if (stale.empty()) return Status::OK();
  if (stale.size() == per_shard.size()) {
    return Status::StaleEpoch(
        "every queried shard answered from a stale epoch");
  }
  std::string laggards;
  for (size_t shard : stale) {
    if (!laggards.empty()) laggards += ", ";
    laggards += std::to_string(shard);
  }
  return Status::ShardEpochSkew("shard(s) " + laggards +
                                " lag their published epoch while other "
                                "shards in the same answer are fresh");
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sae
