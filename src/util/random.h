// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Deterministic PRNG (xoshiro256**) used by dataset generators, query
// workloads and property tests. Every consumer takes an explicit seed so
// experiments are reproducible run-to-run.

#ifndef SAE_UTIL_RANDOM_H_
#define SAE_UTIL_RANDOM_H_

#include <cstdint>

namespace sae {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  uint64_t NextRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

 private:
  uint64_t s_[4];
};

}  // namespace sae

#endif  // SAE_UTIL_RANDOM_H_
