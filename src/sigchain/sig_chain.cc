// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Implements signature chaining (sigchain/sig_chain.h): per-record chain
// hashes binding key-order neighbours, RSA-signed by the data owner, with
// range-query proofs and client verification.

#include "sigchain/sig_chain.h"

#include <algorithm>

#include "util/macros.h"
#include "util/random.h"

namespace sae::sigchain {

namespace {

constexpr uint8_t kVoTag = 0xC5;

// EMSA-PKCS1 digest encoding as an integer modulo n — shared by signing
// (via crypto::RsaSignDigest) and condensed verification. Mirrors the
// encoding in crypto/rsa.cc.
crypto::BigInt EncodedMessage(const crypto::Digest& digest,
                              const crypto::RsaPublicKey& key) {
  // Sign a throwaway to reuse the exact EMSA layout would be wasteful;
  // replicate the deterministic prefix here instead.
  static constexpr uint8_t kPrefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                        0x05, 0x2b, 0x0e, 0x03, 0x02,
                                        0x1a, 0x05, 0x00, 0x04, 0x14};
  size_t k = key.ModulusBytes();
  std::vector<uint8_t> em(k, 0xff);
  const size_t t_len = sizeof(kPrefix) + crypto::Digest::kSize;
  SAE_CHECK(k >= t_len + 11);
  em[0] = 0x00;
  em[1] = 0x01;
  em[k - t_len - 1] = 0x00;
  std::memcpy(&em[k - t_len], kPrefix, sizeof(kPrefix));
  std::memcpy(&em[k - crypto::Digest::kSize], digest.bytes.data(),
              crypto::Digest::kSize);
  return crypto::BigInt::FromBytes(em.data(), em.size());
}

}  // namespace

crypto::Digest LowSentinel() {
  crypto::Digest d;
  d.bytes.fill(0x00);
  return d;
}

crypto::Digest HighSentinel() {
  crypto::Digest d;
  d.bytes.fill(0xFF);
  return d;
}

crypto::Digest ChainDigest(const crypto::Digest& prev,
                           const crypto::Digest& cur,
                           const crypto::Digest& next,
                           crypto::HashScheme scheme) {
  crypto::Digest parts[3] = {prev, cur, next};
  return crypto::CombineDigests(parts, 3, scheme);
}

std::vector<crypto::Digest> ChainDigests(
    const std::vector<crypto::Digest>& ds, crypto::HashScheme scheme) {
  if (ds.size() < 3) return {};
  const size_t n = ds.size() - 2;
  std::vector<crypto::ByteSpan> spans(n);
  for (size_t i = 0; i < n; ++i) {
    spans[i] = crypto::ByteSpan{ds[i].bytes.data(), 3 * crypto::Digest::kSize};
  }
  std::vector<crypto::Digest> out(n);
  crypto::ComputeDigests(spans.data(), n, out.data(), scheme);
  return out;
}

crypto::RsaSignature CondenseSignatures(
    const std::vector<crypto::RsaSignature>& sigs,
    const crypto::RsaPublicKey& key) {
  const crypto::Montgomery mont(key.n);
  if (mont.usable()) {
    crypto::Montgomery::Value acc = mont.One();
    for (const auto& sig : sigs) {
      crypto::Montgomery::Value s =
          mont.ToMont(crypto::BigInt::FromBytes(sig.data(), sig.size()));
      mont.MulInPlace(&acc, s);
    }
    return mont.FromMont(acc).ToBytes(key.ModulusBytes());
  }
  crypto::BigInt acc(1);
  for (const auto& sig : sigs) {
    crypto::BigInt s = crypto::BigInt::FromBytes(sig.data(), sig.size());
    acc = crypto::BigInt::Mod(crypto::BigInt::Mul(acc, s), key.n);
  }
  return acc.ToBytes(key.ModulusBytes());
}

Status VerifyCondensed(const crypto::RsaPublicKey& key,
                       const std::vector<crypto::Digest>& chain_digests,
                       const crypto::RsaSignature& condensed) {
  if (condensed.size() != key.ModulusBytes()) {
    return Status::VerificationFailure("condensed signature length");
  }
  crypto::BigInt sigma =
      crypto::BigInt::FromBytes(condensed.data(), condensed.size());
  if (sigma >= key.n) {
    return Status::VerificationFailure("condensed signature out of range");
  }
  crypto::BigInt lhs = crypto::BigInt::ModPow(sigma, key.e, key.n);
  crypto::BigInt rhs(1);
  const crypto::Montgomery mont(key.n);
  if (mont.usable()) {
    crypto::Montgomery::Value acc = mont.One();
    for (const auto& digest : chain_digests) {
      crypto::Montgomery::Value em = mont.ToMont(EncodedMessage(digest, key));
      mont.MulInPlace(&acc, em);
    }
    rhs = mont.FromMont(acc);
  } else {
    for (const auto& digest : chain_digests) {
      rhs = crypto::BigInt::Mod(
          crypto::BigInt::Mul(rhs, EncodedMessage(digest, key)), key.n);
    }
  }
  if (lhs != rhs) {
    return Status::VerificationFailure("condensed signature mismatch");
  }
  return Status::OK();
}

std::vector<uint8_t> SigChainVo::Serialize() const {
  ByteWriter w;
  w.PutU8(kVoTag);
  w.PutU32(uint32_t(left_boundary.size()));
  w.PutBytes(left_boundary.data(), left_boundary.size());
  w.PutU32(uint32_t(right_boundary.size()));
  w.PutBytes(right_boundary.data(), right_boundary.size());
  w.PutBytes(outer_left.bytes.data(), crypto::Digest::kSize);
  w.PutBytes(outer_right.bytes.data(), crypto::Digest::kSize);
  w.PutU16(uint16_t(condensed.size()));
  w.PutBytes(condensed.data(), condensed.size());
  w.PutU64(epoch);
  w.PutU16(uint16_t(epoch_sig.size()));
  w.PutBytes(epoch_sig.data(), epoch_sig.size());
  return w.Release();
}

Result<SigChainVo> SigChainVo::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.GetU8() != kVoTag) {
    return Status::Corruption("not a sig-chain VO");
  }
  SigChainVo vo;
  uint32_t left_len = r.GetU32();
  if (left_len > (1u << 20) || r.remaining() < left_len) {
    return Status::Corruption("sig-chain VO: bad left boundary");
  }
  vo.left_boundary.resize(left_len);
  r.GetBytes(vo.left_boundary.data(), left_len);
  uint32_t right_len = r.GetU32();
  if (right_len > (1u << 20) || r.remaining() < right_len) {
    return Status::Corruption("sig-chain VO: bad right boundary");
  }
  vo.right_boundary.resize(right_len);
  r.GetBytes(vo.right_boundary.data(), right_len);
  r.GetBytes(vo.outer_left.bytes.data(), crypto::Digest::kSize);
  r.GetBytes(vo.outer_right.bytes.data(), crypto::Digest::kSize);
  uint16_t sig_len = r.GetU16();
  vo.condensed.resize(sig_len);
  r.GetBytes(vo.condensed.data(), sig_len);
  vo.epoch = r.GetU64();
  uint16_t epoch_sig_len = r.GetU16();
  if (r.failed()) return Status::Corruption("sig-chain VO truncated");
  vo.epoch_sig.resize(epoch_sig_len);
  r.GetBytes(vo.epoch_sig.data(), epoch_sig_len);
  if (r.failed()) return Status::Corruption("sig-chain VO truncated");
  return vo;
}

crypto::Digest EpochTokenDigest(uint64_t epoch, crypto::HashScheme scheme) {
  // Domain separation: stamp the epoch onto H("sigchain-epoch") so the
  // token can never collide with a chain digest.
  static constexpr char kDomain[] = "sigchain-epoch";
  crypto::Digest base =
      crypto::ComputeDigest(kDomain, sizeof(kDomain) - 1, scheme);
  return crypto::EpochStampedDigest(base, epoch, scheme);
}

// --- owner ---------------------------------------------------------------------

SigChainOwner::SigChainOwner(const Options& options)
    : options_(options), codec_(options.record_size) {
  Rng rng(options_.rsa_seed);
  key_ = crypto::RsaGenerateKey(&rng, options_.rsa_modulus_bits);
}

Result<std::vector<crypto::RsaSignature>> SigChainOwner::SignDataset(
    const std::vector<Record>& sorted) {
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1].key > sorted[i].key) {
      return Status::InvalidArgument("records not sorted by key");
    }
  }
  // Record digests bracketed by the sentinels, then every chain hash in
  // one batched call (the signing below dwarfs it, but at bulk-load scale
  // the chain hashing alone is millions of records).
  std::vector<crypto::Digest> ds;
  ds.reserve(sorted.size() + 2);
  ds.push_back(LowSentinel());
  {
    std::vector<crypto::Digest> digests =
        storage::DigestRecords(sorted, codec_, options_.scheme);
    ds.insert(ds.end(), digests.begin(), digests.end());
  }
  ds.push_back(HighSentinel());
  std::vector<crypto::Digest> chain = ChainDigests(ds, options_.scheme);

  std::vector<crypto::RsaSignature> sigs;
  sigs.reserve(sorted.size());
  for (const crypto::Digest& c : chain) {
    sigs.push_back(crypto::RsaSignDigest(key_, c));
  }
  epoch_ = 1;  // the initial signing publishes epoch 1
  epoch_sig_ =
      crypto::RsaSignDigest(key_, EpochTokenDigest(epoch_, options_.scheme));
  return sigs;
}

uint64_t SigChainOwner::AdvanceEpoch() {
  ++epoch_;
  epoch_sig_ =
      crypto::RsaSignDigest(key_, EpochTokenDigest(epoch_, options_.scheme));
  return epoch_;
}

// --- SP ------------------------------------------------------------------------

SigChainSp::SigChainSp(const Options& options)
    : options_(options),
      codec_(options.record_size),
      index_pool_(&index_store_, options.index_pool_pages),
      heap_pool_(&heap_store_, options.heap_pool_pages),
      table_heap_(&heap_pool_, options.record_size),
      sig_heap_(&heap_pool_, std::max<size_t>(options.signature_bytes, 22)) {
  auto tree = btree::BPlusTree::Create(&index_pool_);
  SAE_CHECK(tree.ok());
  index_ = std::move(tree).ValueOrDie();
}

Status SigChainSp::LoadDataset(
    const std::vector<Record>& sorted,
    const std::vector<crypto::RsaSignature>& signatures,
    const crypto::RsaPublicKey& owner_key) {
  if (sorted.size() != signatures.size()) {
    return Status::InvalidArgument("record/signature count mismatch");
  }
  owner_key_ = owner_key;
  std::vector<uint8_t> scratch(codec_.record_size());
  std::vector<btree::BTreeEntry> postings;
  postings.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    codec_.Serialize(sorted[i], scratch.data());
    SAE_ASSIGN_OR_RETURN(storage::Rid rid, table_heap_.Insert(scratch.data()));
    record_rids_.push_back(rid);
    keys_.push_back(sorted[i].key);
    postings.push_back(btree::BTreeEntry{sorted[i].key, rid});

    if (signatures[i].size() != sig_heap_.record_size()) {
      return Status::InvalidArgument("signature size mismatch");
    }
    SAE_ASSIGN_OR_RETURN(storage::Rid sig_rid,
                         sig_heap_.Insert(signatures[i].data()));
    sig_rids_.push_back(sig_rid);
  }
  return index_->BulkLoad(postings);
}

Result<Record> SigChainSp::RecordAt(size_t ordinal) const {
  std::vector<uint8_t> bytes(codec_.record_size());
  SAE_RETURN_NOT_OK(table_heap_.Get(record_rids_[ordinal], bytes.data()));
  return codec_.Deserialize(bytes.data());
}

Result<crypto::RsaSignature> SigChainSp::SignatureAt(size_t ordinal) const {
  crypto::RsaSignature sig(sig_heap_.record_size());
  SAE_RETURN_NOT_OK(sig_heap_.Get(sig_rids_[ordinal], sig.data()));
  return sig;
}

Result<crypto::Digest> SigChainSp::DigestAt(size_t ordinal) const {
  std::vector<uint8_t> bytes(codec_.record_size());
  SAE_RETURN_NOT_OK(table_heap_.Get(record_rids_[ordinal], bytes.data()));
  return crypto::ComputeDigest(bytes.data(), bytes.size(), options_.scheme);
}

Result<SigChainSp::QueryResponse> SigChainSp::ExecuteRange(Key lo, Key hi) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  QueryResponse response;
  size_t n = keys_.size();

  size_t first = std::lower_bound(keys_.begin(), keys_.end(), lo) -
                 keys_.begin();
  size_t last_plus = std::upper_bound(keys_.begin(), keys_.end(), hi) -
                     keys_.begin();  // one past the last result

  // Result records via the index path (for realistic access accounting).
  std::vector<btree::BTreeEntry> postings;
  SAE_RETURN_NOT_OK(index_->RangeSearch(lo, hi, &postings));
  std::vector<storage::Rid> rids;
  for (const auto& p : postings) rids.push_back(p.rid);
  SAE_RETURN_NOT_OK(
      table_heap_.GetMany(rids, [&](size_t, const uint8_t* data) {
        response.results.push_back(codec_.Deserialize(data));
      }));

  // Signed span: boundaries included when they exist.
  size_t span_begin = first == 0 ? 0 : first - 1;
  size_t span_end = last_plus >= n ? (n == 0 ? 0 : n - 1) : last_plus;

  if (n == 0) {
    response.vo.outer_left = LowSentinel();
    response.vo.outer_right = HighSentinel();
    return response;  // empty table: nothing signed, client sees 0 results
  }

  if (first > 0) {
    SAE_ASSIGN_OR_RETURN(Record b, RecordAt(first - 1));
    response.vo.left_boundary = codec_.Serialize(b);
  }
  if (last_plus < n) {
    SAE_ASSIGN_OR_RETURN(Record b, RecordAt(last_plus));
    response.vo.right_boundary = codec_.Serialize(b);
  }
  if (span_begin == 0) {
    response.vo.outer_left = LowSentinel();
  } else {
    SAE_ASSIGN_OR_RETURN(response.vo.outer_left, DigestAt(span_begin - 1));
  }
  if (span_end + 1 >= n) {
    response.vo.outer_right = HighSentinel();
  } else {
    SAE_ASSIGN_OR_RETURN(response.vo.outer_right, DigestAt(span_end + 1));
  }

  std::vector<crypto::RsaSignature> sigs;
  sigs.reserve(span_end - span_begin + 1);
  for (size_t i = span_begin; i <= span_end; ++i) {
    SAE_ASSIGN_OR_RETURN(crypto::RsaSignature sig, SignatureAt(i));
    sigs.push_back(std::move(sig));
  }
  response.vo.condensed = CondenseSignatures(sigs, owner_key_);
  response.vo.epoch = epoch_;
  response.vo.epoch_sig = epoch_sig_;
  return response;
}

// --- client ----------------------------------------------------------------------

namespace {

// Everything in SigChainClient::Verify except RSA: the freshness epoch
// comparison, range/order/boundary structure, and the chain-digest
// reconstruction. On OK fills `chain` with the signed chain digests (empty
// means an empty table — nothing signed, nothing left to check). Split out
// so VerifyBatch can run the cheap checks per item and amortize the
// big-number work across the batch.
Status CheckStructure(Key lo, Key hi, const std::vector<Record>& results,
                      const SigChainVo& vo, const RecordCodec& codec,
                      crypto::HashScheme scheme,
                      std::vector<crypto::Digest>* chain) {
  chain->clear();

  // 1. Results sorted and in range.
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].key < lo || results[i].key > hi) {
      return Status::VerificationFailure("result outside query range");
    }
    if (i > 0 && results[i - 1].key > results[i].key) {
      return Status::VerificationFailure("results out of key order");
    }
  }

  // 2. Boundary checks.
  bool has_left = !vo.left_boundary.empty();
  bool has_right = !vo.right_boundary.empty();
  if (has_left && vo.left_boundary.size() != codec.record_size()) {
    return Status::VerificationFailure("bad left boundary size");
  }
  if (has_right && vo.right_boundary.size() != codec.record_size()) {
    return Status::VerificationFailure("bad right boundary size");
  }
  if (has_left && codec.Deserialize(vo.left_boundary.data()).key >= lo) {
    return Status::VerificationFailure("left boundary not below range");
  }
  if (has_right && codec.Deserialize(vo.right_boundary.data()).key <= hi) {
    return Status::VerificationFailure("right boundary not above range");
  }
  // When the result touches a table edge the outer digest must be the
  // sentinel — otherwise the SP could truncate the table.
  if (!has_left && vo.outer_left != LowSentinel()) {
    return Status::VerificationFailure("missing left boundary");
  }
  if (!has_right && vo.outer_right != HighSentinel()) {
    return Status::VerificationFailure("missing right boundary");
  }

  // 3. Rebuild the digest sequence outer_left .. outer_right, batching the
  // result re-hash through the multi-buffer hash kernels.
  std::vector<crypto::Digest> result_digests =
      storage::DigestRecords(results, codec, scheme);
  std::vector<crypto::Digest> ds;
  ds.reserve(results.size() + 4);
  ds.push_back(vo.outer_left);
  if (has_left) {
    ds.push_back(crypto::ComputeDigest(vo.left_boundary.data(),
                                       vo.left_boundary.size(), scheme));
  }
  ds.insert(ds.end(), result_digests.begin(), result_digests.end());
  if (has_right) {
    ds.push_back(crypto::ComputeDigest(vo.right_boundary.data(),
                                       vo.right_boundary.size(), scheme));
  }
  ds.push_back(vo.outer_right);

  if (ds.size() < 3) {
    // Empty result at both table edges: an empty table. Nothing signed.
    return results.empty()
               ? Status::OK()
               : Status::VerificationFailure("results from an empty table");
  }

  // 4. Chain hashes for every signed position — one batched hash call over
  // 60-byte windows into the rebuilt sequence.
  *chain = ChainDigests(ds, scheme);
  return Status::OK();
}

// The freshness gate shared by Verify and VerifyBatch: the epoch token must
// speak for the latest published epoch. The RSA token check itself is left
// to the caller (VerifyBatch memoizes it per distinct token).
Status CheckEpochClaim(const SigChainVo& vo, uint64_t current_epoch) {
  if (vo.epoch < current_epoch) {
    return Status::StaleEpoch("sig-chain VO epoch lags the published epoch");
  }
  if (vo.epoch > current_epoch) {
    return Status::VerificationFailure("sig-chain VO claims a future epoch");
  }
  return Status::OK();
}

Status VerifyEpochToken(const crypto::RsaPublicKey& owner_key,
                        const SigChainVo& vo, crypto::HashScheme scheme) {
  Status token_ok = crypto::RsaVerifyDigest(
      owner_key, EpochTokenDigest(vo.epoch, scheme), vo.epoch_sig);
  if (!token_ok.ok()) {
    return Status::VerificationFailure(
        "sig-chain VO epoch token signature invalid");
  }
  return Status::OK();
}

}  // namespace

Status SigChainClient::Verify(Key lo, Key hi,
                              const std::vector<Record>& results,
                              const SigChainVo& vo,
                              const crypto::RsaPublicKey& owner_key,
                              const RecordCodec& codec,
                              crypto::HashScheme scheme,
                              uint64_t current_epoch) {
  // 0. Freshness gate, checked before everything else so a replayed
  // pre-update VO reports as staleness.
  SAE_RETURN_NOT_OK(CheckEpochClaim(vo, current_epoch));
  if (current_epoch > 0) {
    SAE_RETURN_NOT_OK(VerifyEpochToken(owner_key, vo, scheme));
  }
  std::vector<crypto::Digest> chain;
  SAE_RETURN_NOT_OK(
      CheckStructure(lo, hi, results, vo, codec, scheme, &chain));
  if (chain.empty()) return Status::OK();  // empty table: nothing signed
  return VerifyCondensed(owner_key, chain, vo.condensed);
}

Status SigChainClient::VerifyAnswer(const dbms::QueryRequest& request,
                                    const dbms::QueryAnswer& claimed,
                                    const std::vector<Record>& witness,
                                    const SigChainVo& vo,
                                    const crypto::RsaPublicKey& owner_key,
                                    const RecordCodec& codec,
                                    crypto::HashScheme scheme,
                                    uint64_t current_epoch) {
  SAE_RETURN_NOT_OK(Verify(request.lo, request.hi, witness, vo, owner_key,
                           codec, scheme, current_epoch));
  return dbms::CheckAnswer(request, witness, claimed);
}

std::vector<Status> SigChainClient::VerifyBatch(
    const std::vector<BatchItem>& items,
    const crypto::RsaPublicKey& owner_key, const RecordCodec& codec,
    crypto::HashScheme scheme, uint64_t current_epoch, uint64_t rng_seed) {
  std::vector<Status> verdicts(items.size(), Status::OK());

  // Phase 1 — per-item cheap checks. Items that survive queue their chain
  // digests for the amortized big-number phase.
  struct Pending {
    size_t index;
    std::vector<crypto::Digest> chain;
  };
  std::vector<Pending> pending;
  pending.reserve(items.size());
  // Epoch-token memo: one RsaVerifyDigest per distinct token signature
  // (vo.epoch already proven == current_epoch by the claim check, so the
  // signature bytes alone key the memo).
  std::map<crypto::RsaSignature, Status> token_memo;
  for (size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    Status st = CheckEpochClaim(item.vo, current_epoch);
    if (st.ok() && current_epoch > 0) {
      auto memo = token_memo.find(item.vo.epoch_sig);
      if (memo == token_memo.end()) {
        memo = token_memo
                   .emplace(item.vo.epoch_sig,
                            VerifyEpochToken(owner_key, item.vo, scheme))
                   .first;
      }
      st = memo->second;
    }
    std::vector<crypto::Digest> chain;
    if (st.ok()) {
      st = CheckStructure(item.request.lo, item.request.hi, item.witness,
                          item.vo, codec, scheme, &chain);
    }
    if (st.ok()) {
      st = dbms::CheckAnswer(item.request, item.witness, item.claimed);
    }
    if (!st.ok()) {
      verdicts[i] = std::move(st);
    } else if (!chain.empty()) {
      pending.push_back(Pending{i, std::move(chain)});
    }  // empty chain = empty table: nothing signed, verdict stays OK
  }
  if (pending.empty()) return verdicts;

  // Measured crossover (bench_micro_crypto batch-verify sweep): the
  // combined check below pays fixed costs — 2x17 shared squarings plus one
  // public-exponent modexp over the combination — that one or two items
  // cannot reliably amortize (two items measure within noise of per-item).
  // Below the crossover, per-item verification is simply the faster plan,
  // so take it directly (identical verdicts either way).
  constexpr size_t kCombinedCheckMinItems = 3;
  if (pending.size() < kCombinedCheckMinItems) {
    for (const Pending& p : pending) {
      verdicts[p.index] =
          VerifyCondensed(owner_key, p.chain, items[p.index].vo.condensed);
    }
    return verdicts;
  }

  // Phase 2 — randomized combined condensed check: with fresh 16-bit
  // exponents r_i, (prod sigma_i^{r_i})^e == prod M_i^{r_i} (mod n) where
  // M_i is the product of the item's encoded chain messages. One modexp
  // with the public exponent replaces one per item, and the two r_i-power
  // products are computed with shared squarings (Straus interleaving:
  // 16 squarings total + ~8 multiplies per item, instead of a full modexp
  // per item). All products run in one Montgomery context when the modulus
  // admits it — one CIOS multiply each instead of a full division, the
  // same arithmetic ModPow itself uses — with the division fold kept as
  // the fallback (and the SAE_FORCE_SCALAR parity path).
  Rng rng(rng_seed);
  const crypto::Montgomery mont(owner_key.n);
  std::vector<crypto::BigInt> sigmas;
  std::vector<crypto::BigInt> msgs;
  std::vector<crypto::Montgomery::Value> sigmas_m;
  std::vector<crypto::Montgomery::Value> msgs_m;
  std::vector<uint32_t> exps;
  std::vector<Pending> combinable;
  combinable.reserve(pending.size());
  for (Pending& p : pending) {
    const SigChainVo& vo = items[p.index].vo;
    // Malformed signatures fail their own check immediately; folding them
    // in would only poison the combination.
    if (vo.condensed.size() != owner_key.ModulusBytes()) {
      verdicts[p.index] =
          Status::VerificationFailure("condensed signature length");
      continue;
    }
    crypto::BigInt sigma =
        crypto::BigInt::FromBytes(vo.condensed.data(), vo.condensed.size());
    if (sigma >= owner_key.n) {
      verdicts[p.index] =
          Status::VerificationFailure("condensed signature out of range");
      continue;
    }
    if (mont.usable()) {
      crypto::Montgomery::Value msg = mont.One();
      for (const crypto::Digest& digest : p.chain) {
        crypto::Montgomery::Value em =
            mont.ToMont(EncodedMessage(digest, owner_key));
        mont.MulInPlace(&msg, em);
      }
      sigmas_m.push_back(mont.ToMont(sigma));
      msgs_m.push_back(std::move(msg));
    } else {
      crypto::BigInt msg(1);
      for (const crypto::Digest& digest : p.chain) {
        msg = crypto::BigInt::Mod(
            crypto::BigInt::Mul(msg, EncodedMessage(digest, owner_key)),
            owner_key.n);
      }
      sigmas.push_back(std::move(sigma));
      msgs.push_back(std::move(msg));
    }
    exps.push_back(uint32_t(1 + (rng.Next() & 0xFFFF)));
    combinable.push_back(std::move(p));
  }
  if (combinable.empty()) return verdicts;
  auto multi_exp = [&owner_key](const std::vector<crypto::BigInt>& bases,
                                const std::vector<uint32_t>& exponents) {
    crypto::BigInt acc(1);
    for (int bit = 16; bit >= 0; --bit) {  // exponents are <= 2^16
      acc = crypto::BigInt::Mod(crypto::BigInt::Mul(acc, acc), owner_key.n);
      for (size_t i = 0; i < bases.size(); ++i) {
        if ((exponents[i] >> bit) & 1u) {
          acc = crypto::BigInt::Mod(crypto::BigInt::Mul(acc, bases[i]),
                                    owner_key.n);
        }
      }
    }
    return acc;
  };
  auto multi_exp_mont =
      [&mont](const std::vector<crypto::Montgomery::Value>& bases,
              const std::vector<uint32_t>& exponents) {
        crypto::Montgomery::Value acc = mont.One();
        for (int bit = 16; bit >= 0; --bit) {  // exponents are <= 2^16
          mont.MulInPlace(&acc, acc);
          for (size_t i = 0; i < bases.size(); ++i) {
            if ((exponents[i] >> bit) & 1u) {
              mont.MulInPlace(&acc, bases[i]);
            }
          }
        }
        return acc;
      };
  crypto::BigInt combined_sigma = mont.usable()
                                      ? mont.FromMont(multi_exp_mont(sigmas_m, exps))
                                      : multi_exp(sigmas, exps);
  crypto::BigInt combined_msg = mont.usable()
                                    ? mont.FromMont(multi_exp_mont(msgs_m, exps))
                                    : multi_exp(msgs, exps);
  if (crypto::BigInt::ModPow(combined_sigma, owner_key.e, owner_key.n) ==
      combined_msg) {
    return verdicts;  // whole batch accepted by the combined check
  }
  // Phase 3 — the combination failed: re-check each item on its own so the
  // verdicts attribute the exact offenders (identical to unbatched).
  for (const Pending& p : combinable) {
    verdicts[p.index] =
        VerifyCondensed(owner_key, p.chain, items[p.index].vo.condensed);
  }
  return verdicts;
}

Status VerifyComposite(Key lo, Key hi,
                       const std::vector<ShardedChainSlice>& slices,
                       const std::vector<Key>& fences,
                       const crypto::RsaPublicKey& owner_key,
                       const RecordCodec& codec, crypto::HashScheme scheme,
                       const std::vector<uint64_t>& published_epochs,
                       std::vector<std::pair<size_t, Status>>* per_shard) {
  std::vector<storage::KeySlice> cover;
  cover.reserve(slices.size());
  for (const ShardedChainSlice& slice : slices) {
    cover.push_back(storage::KeySlice{slice.shard, slice.lo, slice.hi});
  }
  // Per-shard chain verification against each shard's published epoch,
  // over the shared tiling/fold scaffold (storage::VerifyCompositeSlices).
  return storage::VerifyCompositeSlices(
      fences, lo, hi, cover, published_epochs,
      [&](size_t i, const storage::KeySlice&, uint64_t published) {
        return SigChainClient::Verify(slices[i].lo, slices[i].hi,
                                      slices[i].results, slices[i].vo,
                                      owner_key, codec, scheme, published);
      },
      per_shard);
}

}  // namespace sae::sigchain
