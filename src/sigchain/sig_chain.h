// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Third authentication scheme, from the paper's related work ([8] Pang &
// Tan, ICDE'04 and the DSAC/Condensed-RSA line): *signature chaining*. The
// DO signs, per record, a chain hash binding the record to its key-order
// neighbors:
//
//   c_i = H( d_{i-1} || d_i || d_{i+1} ),   d_i = H(record_i),
//
// with fixed sentinel digests beyond the first/last record. A range result
// is proven by (i) the two boundary records, (ii) the digests of their
// outer neighbors, and (iii) ONE Condensed-RSA signature — the modular
// product of the per-record signatures of everything between the outer
// digests. Soundness comes from the signatures; completeness from the
// chaining (no record can be dropped without breaking a signed chain hash).
//
// Trade-off profile vs the paper's two models: tiny-ish VO like SAE, but
// the SP stores a 128-byte signature per record, every update re-signs
// three chain hashes at the DO, and client verification pays big-number
// arithmetic. bench_ablation_schemes quantifies all three side by side.

#ifndef SAE_SIGCHAIN_SIG_CHAIN_H_
#define SAE_SIGCHAIN_SIG_CHAIN_H_

#include <map>
#include <memory>
#include <vector>

#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "dbms/query.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/key_range.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "btree/bplus_tree.h"
#include "util/codec.h"
#include "util/status.h"

namespace sae::sigchain {

using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

/// Sentinel digests standing in for the neighbors of the first/last record.
crypto::Digest LowSentinel();
crypto::Digest HighSentinel();

/// The chain hash c = H(prev || cur || next) the DO signs per record.
crypto::Digest ChainDigest(const crypto::Digest& prev,
                           const crypto::Digest& cur,
                           const crypto::Digest& next,
                           crypto::HashScheme scheme = crypto::HashScheme::kSha1);

/// Every interior chain hash of a contiguous digest sequence at once:
/// returns out[k-1] = ChainDigest(ds[k-1], ds[k], ds[k+1]) for k in
/// [1, ds.size()-1). Each 60-byte preimage is a window into the sequence
/// itself (Digest is padding-free), so the whole chain is one batched
/// multi-buffer hash call with zero copies. Empty when ds.size() < 3.
std::vector<crypto::Digest> ChainDigests(
    const std::vector<crypto::Digest>& ds,
    crypto::HashScheme scheme = crypto::HashScheme::kSha1);

/// Condensed-RSA: multiplies signatures modulo n so a whole result costs
/// one signature transmission and one exponentiation to verify.
crypto::RsaSignature CondenseSignatures(
    const std::vector<crypto::RsaSignature>& sigs,
    const crypto::RsaPublicKey& key);

/// Verifies a condensed signature over the given chain digests.
Status VerifyCondensed(const crypto::RsaPublicKey& key,
                       const std::vector<crypto::Digest>& chain_digests,
                       const crypto::RsaSignature& condensed);

/// The commitment the DO signs to publish epoch e for the chained dataset:
/// EpochStampedDigest over a fixed domain-separation digest. Per-record
/// chain signatures never change on an epoch bump (re-signing the whole
/// chain per update would be absurd); instead ONE signed epoch token rides
/// in every VO.
///
/// KNOWN LIMITATION (inherent to the scheme, not this implementation):
/// the token authenticates the epoch *number*, not the dataset state —
/// sigchain has no root digest to stamp. It therefore defeats token
/// replay (an old epoch token is rejected as stale), but an SP that
/// attaches the CURRENT token to stale results with their still-valid old
/// chain signatures passes; full freshness would require revoking or
/// re-binding the per-record signatures (the DSAC line's known update
/// weakness, quantified in bench_ablation_schemes). TOM avoids this by
/// signing H(root || epoch); SAE by the trusted TE stamping live state.
crypto::Digest EpochTokenDigest(
    uint64_t epoch, crypto::HashScheme scheme = crypto::HashScheme::kSha1);

/// The verification object of the signature-chaining scheme.
struct SigChainVo {
  /// Boundary records enclosing the result (empty vector = result touches
  /// that end of the table).
  std::vector<uint8_t> left_boundary;
  std::vector<uint8_t> right_boundary;
  /// Digests of the records just *outside* the boundaries (sentinels at the
  /// table edges).
  crypto::Digest outer_left;
  crypto::Digest outer_right;
  /// Condensed signature over every chain hash from the left boundary to
  /// the right boundary inclusive.
  crypto::RsaSignature condensed;
  /// Freshness: the epoch this answer speaks for plus the DO's signature
  /// over EpochTokenDigest(epoch).
  uint64_t epoch = 0;
  crypto::RsaSignature epoch_sig;

  std::vector<uint8_t> Serialize() const;
  static Result<SigChainVo> Deserialize(const std::vector<uint8_t>& bytes);
};

/// DO side: signs the chained dataset and maintains it under updates.
class SigChainOwner {
 public:
  struct Options {
    size_t record_size = storage::kDefaultRecordSize;
    crypto::HashScheme scheme = crypto::HashScheme::kSha1;
    size_t rsa_modulus_bits = 1024;
    uint64_t rsa_seed = 0xD5AC;
  };

  explicit SigChainOwner(const Options& options);

  /// Signs the (key-sorted) dataset; returns per-record signatures in the
  /// same order. Publishes epoch 1 (see epoch()/epoch_signature()).
  Result<std::vector<crypto::RsaSignature>> SignDataset(
      const std::vector<Record>& sorted);

  crypto::RsaPublicKey public_key() const { return key_.PublicKey(); }

  /// Freshness publication: the current epoch and the DO's signature over
  /// its token. AdvanceEpoch models an update's re-publication (one extra
  /// RSA signature per update on top of the three chain re-signs).
  uint64_t epoch() const { return epoch_; }
  const crypto::RsaSignature& epoch_signature() const { return epoch_sig_; }
  uint64_t AdvanceEpoch();

  /// Per-update cost marker: chain re-signing touches the record and both
  /// neighbors, i.e. three signatures per insert/delete (plus the epoch
  /// token).
  static constexpr int kSignaturesPerUpdate = 3;

 private:
  Options options_;
  RecordCodec codec_;
  crypto::RsaPrivateKey key_;
  uint64_t epoch_ = 0;
  crypto::RsaSignature epoch_sig_;
};

/// SP side: conventional table plus a per-record signature store.
class SigChainSp {
 public:
  struct Options {
    size_t record_size = storage::kDefaultRecordSize;
    crypto::HashScheme scheme = crypto::HashScheme::kSha1;
    size_t signature_bytes = 128;  // RSA-1024
    size_t index_pool_pages = 1024;
    size_t heap_pool_pages = 1024;
  };

  explicit SigChainSp(const Options& options);

  /// Ingests the key-sorted dataset plus the DO's signatures (parallel
  /// arrays) and the DO's public key (needed to condense).
  Status LoadDataset(const std::vector<Record>& sorted,
                     const std::vector<crypto::RsaSignature>& signatures,
                     const crypto::RsaPublicKey& owner_key);

  struct QueryResponse {
    std::vector<Record> results;
    SigChainVo vo;
  };

  Result<QueryResponse> ExecuteRange(Key lo, Key hi);

  /// Installs the DO's published epoch + token signature; ExecuteRange
  /// stamps them into every VO. Static set-ups that never call this stay
  /// at epoch 0 with an empty token.
  void SetEpoch(uint64_t epoch, crypto::RsaSignature epoch_sig) {
    epoch_ = epoch;
    epoch_sig_ = std::move(epoch_sig);
  }
  uint64_t epoch() const { return epoch_; }

  size_t StorageBytes() const {
    return table_heap_.SizeBytes() + sig_heap_.SizeBytes() +
           index_->SizeBytes();
  }
  size_t SignatureStorageBytes() const { return sig_heap_.SizeBytes(); }

  storage::BufferPool::Stats index_pool_stats() const {
    return index_pool_.stats();
  }
  storage::BufferPool::Stats heap_pool_stats() const {
    return heap_pool_.stats();
  }
  void ResetStats() {
    index_pool_.ResetStats();
    heap_pool_.ResetStats();
  }

 private:
  // The i-th record of the sorted dataset, fetched by ordinal position.
  Result<Record> RecordAt(size_t ordinal) const;
  Result<crypto::RsaSignature> SignatureAt(size_t ordinal) const;
  Result<crypto::Digest> DigestAt(size_t ordinal) const;

  Options options_;
  RecordCodec codec_;
  storage::InMemoryPageStore index_store_;
  storage::InMemoryPageStore heap_store_;
  storage::BufferPool index_pool_;
  storage::BufferPool heap_pool_;
  storage::HeapFile table_heap_;
  storage::HeapFile sig_heap_;
  std::unique_ptr<btree::BPlusTree> index_;
  // Ordinal position (key order) -> physical locations. The static scheme
  // keeps the sorted order fixed; updates are the scheme's known weak spot.
  std::vector<storage::Rid> record_rids_;
  std::vector<storage::Rid> sig_rids_;
  std::vector<Key> keys_;  // sorted keys for ordinal binary search
  crypto::RsaPublicKey owner_key_;
  uint64_t epoch_ = 0;
  crypto::RsaSignature epoch_sig_;
};

/// One shard's slice of a sharded signature-chain deployment: the clipped
/// sub-range it owns, its records, and its own chain VO (each shard is an
/// independently chained dataset with its own sentinels and epoch token).
struct ShardedChainSlice {
  uint32_t shard = 0;
  Key lo = 0;
  Key hi = 0;
  std::vector<Record> results;
  SigChainVo vo;
};

/// Composite verification for a range stitched from several chain shards
/// (the sigchain analog of mbtree::VerifyComposite): the slices must tile
/// [lo, hi] along the trusted fences (storage::VerifyKeyCover — fence-key
/// completeness), each slice verifies against its own chain and its
/// shard's published epoch, and the per-shard verdicts fold via
/// sae::CombineShardStatuses (uniformly stale -> kStaleEpoch, mixed
/// fresh/stale -> kShardEpochSkew, corruption -> kVerificationFailure
/// naming the shard; reported per slice through `per_shard`). The scheme's
/// known freshness limitation (see EpochTokenDigest) applies per shard,
/// unchanged.
Status VerifyComposite(Key lo, Key hi,
                       const std::vector<ShardedChainSlice>& slices,
                       const std::vector<Key>& fences,
                       const crypto::RsaPublicKey& owner_key,
                       const RecordCodec& codec, crypto::HashScheme scheme,
                       const std::vector<uint64_t>& published_epochs,
                       std::vector<std::pair<size_t, Status>>* per_shard =
                           nullptr);

/// Client side verification.
class SigChainClient {
 public:
  /// Verifies `results` for [lo, hi] against the VO and the DO's key.
  /// Freshness first: the VO's epoch must equal `current_epoch` (lagging ->
  /// kStaleEpoch) and its token signature must verify; then the chain and
  /// condensed-signature checks.
  static Status Verify(Key lo, Key hi, const std::vector<Record>& results,
                       const SigChainVo& vo,
                       const crypto::RsaPublicKey& owner_key,
                       const RecordCodec& codec,
                       crypto::HashScheme scheme = crypto::HashScheme::kSha1,
                       uint64_t current_epoch = 0);

  /// Operator-typed verification: the chain/condensed-signature check above
  /// authenticates the *witness* (the full range record set), then the
  /// derived answer is recomputed from it and compared with the SP's claim
  /// (dbms::CheckAnswer) — the same proof-carrying aggregate contract as
  /// SAE's Client::VerifyAnswer and TOM's TomClient::VerifyAnswer. The
  /// scheme's documented freshness limitation is unchanged.
  static Status VerifyAnswer(const dbms::QueryRequest& request,
                             const dbms::QueryAnswer& claimed,
                             const std::vector<Record>& witness,
                             const SigChainVo& vo,
                             const crypto::RsaPublicKey& owner_key,
                             const RecordCodec& codec,
                             crypto::HashScheme scheme = crypto::HashScheme::kSha1,
                             uint64_t current_epoch = 0);

  /// One query of a batch: the request, the SP's claimed answer, and the
  /// witness + VO backing it.
  struct BatchItem {
    dbms::QueryRequest request;
    dbms::QueryAnswer claimed;
    std::vector<Record> witness;
    SigChainVo vo;
  };

  /// Batch verification with amortized big-number work; per-item verdicts
  /// are IDENTICAL to calling VerifyAnswer on each item. Two modexp
  /// amortizations:
  ///
  ///  1. The epoch-token signature is verified once per distinct
  ///     (epoch, token signature) instead of once per item — in the common
  ///     case a whole batch shares one published token.
  ///  2. The condensed-signature checks of all structurally-sound items are
  ///     folded into ONE public-exponent modexp via a randomized linear
  ///     combination (small-exponent batch verification, Bellare-Garay-
  ///     Rabin): with fresh 16-bit exponents r_i drawn from `rng_seed`,
  ///     check (prod sigma_i^{r_i})^e == prod M_i^{r_i} (mod n). A passing
  ///     combined check accepts the whole batch (soundness error <= 2^-16
  ///     per batch, the standard small-exponent bound); a failing one falls
  ///     back to per-item VerifyCondensed so every verdict attributes the
  ///     exact offender — an adversary can therefore never *improve* its
  ///     odds beyond the 2^-16 combination slack, and honest batches cost
  ///     one public-exponent modexp instead of N.
  static std::vector<Status> VerifyBatch(
      const std::vector<BatchItem>& items,
      const crypto::RsaPublicKey& owner_key, const RecordCodec& codec,
      crypto::HashScheme scheme = crypto::HashScheme::kSha1,
      uint64_t current_epoch = 0, uint64_t rng_seed = 0xBA7C4);
};

}  // namespace sae::sigchain

#endif  // SAE_SIGCHAIN_SIG_CHAIN_H_
