// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Micro benchmarks for the three index structures (google-benchmark):
// range search, VT generation, VO construction and point updates, with
// node-access counters reported alongside wall time.

#include <benchmark/benchmark.h>

#include <memory>

#include "btree/bplus_tree.h"
#include "mbtree/mb_tree.h"
#include "storage/page_store.h"
#include "util/random.h"
#include "xbtree/xb_tree.h"

namespace {

using namespace sae;
using storage::BufferPool;
using storage::InMemoryPageStore;

constexpr size_t kTreeSize = 100'000;
constexpr uint32_t kDomain = 10'000'000;
constexpr uint32_t kExtent = kDomain / 200;  // 0.5%

crypto::Digest DigestFor(uint64_t id) {
  return crypto::ComputeDigest(&id, sizeof(id));
}

// --- B+-tree -------------------------------------------------------------------

struct BTreeBundle {
  InMemoryPageStore store;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<btree::BPlusTree> tree;
};

BTreeBundle* SharedBTree() {
  static BTreeBundle* bundle = [] {
    auto* b = new BTreeBundle;
    b->pool = std::make_unique<BufferPool>(&b->store, 4096);
    b->tree = btree::BPlusTree::Create(b->pool.get()).ValueOrDie();
    std::vector<btree::BTreeEntry> entries;
    Rng rng(1);
    entries.reserve(kTreeSize);
    for (uint64_t id = 1; id <= kTreeSize; ++id) {
      entries.push_back(
          btree::BTreeEntry{uint32_t(rng.NextBounded(kDomain)), id});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    SAE_CHECK_OK(b->tree->BulkLoad(entries));
    return b;
  }();
  return bundle;
}

void BM_BPlusTree_RangeSearch(benchmark::State& state) {
  auto* b = SharedBTree();
  Rng rng(2);
  uint64_t accesses = 0, queries = 0;
  for (auto _ : state) {
    uint32_t lo = uint32_t(rng.NextBounded(kDomain - kExtent));
    std::vector<btree::BTreeEntry> out;
    b->pool->ResetStats();
    SAE_CHECK_OK(b->tree->RangeSearch(lo, lo + kExtent, &out));
    accesses += b->pool->stats().accesses;
    ++queries;
    benchmark::DoNotOptimize(out);
  }
  state.counters["node_accesses"] =
      benchmark::Counter(double(accesses) / double(queries));
}
BENCHMARK(BM_BPlusTree_RangeSearch);

// --- MB-tree -------------------------------------------------------------------

struct MbBundle {
  InMemoryPageStore store;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<mbtree::MbTree> tree;
};

MbBundle* SharedMbTree() {
  static MbBundle* bundle = [] {
    auto* b = new MbBundle;
    b->pool = std::make_unique<BufferPool>(&b->store, 4096);
    b->tree = mbtree::MbTree::Create(b->pool.get()).ValueOrDie();
    std::vector<mbtree::MbEntry> entries;
    Rng rng(1);
    entries.reserve(kTreeSize);
    for (uint64_t id = 1; id <= kTreeSize; ++id) {
      entries.push_back(mbtree::MbEntry{uint32_t(rng.NextBounded(kDomain)),
                                        id, DigestFor(id)});
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    SAE_CHECK_OK(b->tree->BulkLoad(entries));
    return b;
  }();
  return bundle;
}

void BM_MbTree_BuildVo(benchmark::State& state) {
  auto* b = SharedMbTree();
  Rng rng(3);
  std::vector<uint8_t> fake_record(500, 0x11);
  auto fetch = [&](storage::Rid) -> Result<std::vector<uint8_t>> {
    return fake_record;
  };
  uint64_t accesses = 0, queries = 0, vo_bytes = 0;
  for (auto _ : state) {
    uint32_t lo = uint32_t(rng.NextBounded(kDomain - kExtent));
    b->pool->ResetStats();
    auto vo = b->tree->BuildVo(lo, lo + kExtent, fetch);
    SAE_CHECK(vo.ok());
    accesses += b->pool->stats().accesses;
    vo_bytes += vo.value().Serialize().size();
    ++queries;
  }
  state.counters["node_accesses"] =
      benchmark::Counter(double(accesses) / double(queries));
  state.counters["vo_bytes"] =
      benchmark::Counter(double(vo_bytes) / double(queries));
}
BENCHMARK(BM_MbTree_BuildVo);

void BM_MbTree_Insert(benchmark::State& state) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4096);
  auto tree = mbtree::MbTree::Create(&pool).ValueOrDie();
  Rng rng(4);
  uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    SAE_CHECK_OK(tree->Insert(mbtree::MbEntry{
        uint32_t(rng.NextBounded(kDomain)), id, DigestFor(id)}));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MbTree_Insert);

// --- XB-tree -------------------------------------------------------------------

struct XbBundle {
  InMemoryPageStore store;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<xbtree::XbTree> tree;
};

XbBundle* SharedXbTree() {
  static XbBundle* bundle = [] {
    auto* b = new XbBundle;
    b->pool = std::make_unique<BufferPool>(&b->store, 4096);
    b->tree = xbtree::XbTree::Create(b->pool.get()).ValueOrDie();
    std::vector<xbtree::XbTuple> tuples;
    Rng rng(1);
    tuples.reserve(kTreeSize);
    for (uint64_t id = 1; id <= kTreeSize; ++id) {
      tuples.push_back(xbtree::XbTuple{uint32_t(rng.NextBounded(kDomain)), id,
                                       DigestFor(id)});
    }
    std::sort(tuples.begin(), tuples.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    SAE_CHECK_OK(b->tree->BulkLoad(tuples));
    return b;
  }();
  return bundle;
}

void BM_XbTree_GenerateVT(benchmark::State& state) {
  auto* b = SharedXbTree();
  Rng rng(5);
  uint64_t accesses = 0, queries = 0;
  for (auto _ : state) {
    uint32_t lo = uint32_t(rng.NextBounded(kDomain - kExtent));
    b->pool->ResetStats();
    auto vt = b->tree->GenerateVT(lo, lo + kExtent);
    SAE_CHECK(vt.ok());
    accesses += b->pool->stats().accesses;
    ++queries;
    benchmark::DoNotOptimize(vt);
  }
  state.counters["node_accesses"] =
      benchmark::Counter(double(accesses) / double(queries));
}
BENCHMARK(BM_XbTree_GenerateVT);

void BM_XbTree_Insert(benchmark::State& state) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4096);
  auto tree = xbtree::XbTree::Create(&pool).ValueOrDie();
  Rng rng(6);
  uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    SAE_CHECK_OK(
        tree->Insert(uint32_t(rng.NextBounded(kDomain)), id, DigestFor(id)));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_XbTree_Insert);

}  // namespace
