// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Response time (paper §IV conclusion): "the above enable the client to
// experience a lower response time (i.e., interval between query
// transmission and result verification)". Models one-way latency + finite
// bandwidth; SAE's SP and TE paths run in parallel (paper footnote 1),
// while TOM ships the VO on the single SP path.

#include "fig_common.h"
#include "sim/network.h"

using namespace sae;
using namespace sae::bench;

int main() {
  PrintHeader(
      "Response time (ms) vs n — 20ms one-way latency, 8 Mbit/s link",
      "# dist        n    SAE(resp)    TOM(resp)   saving%");

  sim::CostModel cost;
  sim::NetworkModel net;
  auto queries = MakeQueries();
  storage::RecordCodec codec(kRecordSize);

  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kSkewed}) {
    for (size_t n : Cardinalities()) {
      auto dataset = MakeDataset(dist, n);
      double nq = double(queries.size());
      double sae_total = 0, tom_total = 0;

      {
        auto sp = BuildSaeSp(dataset);
        auto te = BuildTe(dataset);
        for (const auto& q : queries) {
          auto idx0 = sp->index_pool_stats();
          auto heap0 = sp->heap_pool_stats();
          auto te0 = te->pool_stats();
          auto results = sp->ExecuteRange(q.lo, q.hi);
          SAE_CHECK(results.ok());
          auto vt = te->GenerateVt(q.lo, q.hi);
          SAE_CHECK(vt.ok());

          double sp_ms =
              cost.AccessCostMs((sp->index_pool_stats() - idx0).accesses +
                                (sp->heap_pool_stats() - heap0).accesses);
          double te_ms = cost.AccessCostMs((te->pool_stats() - te0).accesses);
          size_t result_bytes =
              core::SerializeRecords(results.value(), codec).size();

          sim::Stopwatch watch;
          SAE_CHECK(core::Client::VerifyResult(results.value(), vt.value(),
                                               codec)
                        .ok());
          double verify_ms = watch.ElapsedMs();
          sae_total += sim::SaeResponseMs(net, sp_ms, te_ms, result_bytes,
                                          21, 9, verify_ms);
        }
      }

      {
        TomSpBundle tom = BuildTomSp(dataset);
        for (const auto& q : queries) {
          auto idx0 = tom.sp->index_pool_stats();
          auto heap0 = tom.sp->heap_pool_stats();
          auto response = tom.sp->ExecuteRange(q.lo, q.hi);
          SAE_CHECK(response.ok());
          double sp_ms =
              cost.AccessCostMs((tom.sp->index_pool_stats() - idx0).accesses +
                                (tom.sp->heap_pool_stats() - heap0).accesses);
          size_t result_bytes =
              core::SerializeRecords(response.value().results, codec).size();
          size_t vo_bytes = response.value().vo.Serialize().size();

          sim::Stopwatch watch;
          SAE_CHECK(core::TomClient::Verify(q.lo, q.hi,
                                            response.value().results,
                                            response.value().vo,
                                            tom.public_key, codec)
                        .ok());
          double verify_ms = watch.ElapsedMs();
          tom_total += sim::TomResponseMs(net, sp_ms, result_bytes, vo_bytes,
                                          9, verify_ms);
        }
      }

      double sae_ms = sae_total / nq;
      double tom_ms = tom_total / nq;
      std::printf("%6s %10zu %12.1f %12.1f %9.1f\n", DistName(dist), n,
                  sae_ms, tom_ms, 100.0 * (tom_ms - sae_ms) / tom_ms);
      std::fflush(stdout);
    }
  }
  return 0;
}
