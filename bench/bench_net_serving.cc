// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Networked serving-tier load generator: drives many concurrent SAE
// clients — each a pair of sockets running the paper's parallel SP+TE
// fan-out — against real TCP servers, verifies every single answer, and
// reports sustained q/s with p50/p99/p999 latency.
//
// Each load thread runs an epoll engine over its share of the logical
// clients, so a thousand-plus concurrent connections don't need a
// thousand threads: a client writes its QueryRequest to SP and TE
// back-to-back (the round trips overlap on the wire), waits for both
// responses, runs the full client-side check (core::Client::VerifyAnswer),
// records the latency, and immediately issues its next query.
//
// Env knobs:
//   SAE_NET_CLIENTS      logical clients (2 sockets each; default 512)
//   SAE_NET_THREADS      load-generator threads (default 4)
//   SAE_NET_DURATION_MS  measured window per run (default 2000)
//   SAE_NET_RECORDS      dataset cardinality (default 10000)
//   SAE_BENCH_JSON       output file (default BENCH_net.json)
//
// A malicious-SP probe runs after the load phase: the client asks the SP
// for a poisoned plan and must reject it — the run fails otherwise.

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/messages.h"
#include "core/service_provider.h"
#include "core/trusted_entity.h"
#include "dbms/query.h"
#include "net/client_transport.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/macros.h"
#include "util/random.h"

using namespace sae;

namespace {

constexpr size_t kRecordSize = 64;

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? size_t(v) : fallback;
}

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// One direction of a logical client: a nonblocking socket plus its frame
// decoder and pending-write buffer.
struct ConnState {
  net::UniqueFd fd;
  net::FrameDecoder decoder;
  std::vector<uint8_t> out;
  size_t out_pos = 0;
  bool write_armed = false;
};

struct ClientState {
  ConnState sp;
  ConnState te;
  dbms::QueryRequest request;
  std::vector<uint8_t> answer_bytes;
  std::vector<uint8_t> vt_bytes;
  bool have_answer = false;
  bool have_vt = false;
  Clock::time_point issued;
};

struct ThreadResult {
  std::vector<double> latencies_ms;
  uint64_t completed = 0;
  uint64_t verify_failures = 0;
  uint64_t io_failures = 0;
};

dbms::QueryRequest RandomRequest(Rng* rng, uint32_t max_key) {
  uint32_t extent = std::max<uint32_t>(max_key / 200, 10);
  uint32_t lo = uint32_t(rng->NextBounded(max_key - extent));
  uint32_t hi = lo + extent;
  switch (rng->NextBounded(7)) {
    case 0: return dbms::QueryRequest::Scan(lo, hi);
    case 1: return dbms::QueryRequest::Point(lo);
    case 2: return dbms::QueryRequest::Count(lo, hi);
    case 3: return dbms::QueryRequest::Sum(lo, hi);
    case 4: return dbms::QueryRequest::Min(lo, hi);
    case 5: return dbms::QueryRequest::Max(lo, hi);
    default: return dbms::QueryRequest::TopK(lo, hi, 5);
  }
}

// The epoll engine driving `n_clients` closed-loop clients for
// `duration_ms`. Returns per-query latencies and failure counts.
class LoadEngine {
 public:
  LoadEngine(uint16_t sp_port, uint16_t te_port, size_t n_clients,
             uint64_t published_epoch, uint64_t seed)
      : sp_port_(sp_port), te_port_(te_port), codec_(kRecordSize),
        published_epoch_(published_epoch), rng_(seed) {
    clients_.resize(n_clients);
  }

  ThreadResult Run(double duration_ms, uint32_t max_key) {
    ThreadResult result;
    epoll_fd_ = net::UniqueFd(::epoll_create1(0));
    SAE_CHECK(epoll_fd_.valid());
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (!Connect(i)) {
        result.io_failures++;
        return result;  // a bench box that can't connect is fatal anyway
      }
    }
    max_key_ = max_key;
    Clock::time_point start = Clock::now();
    for (size_t i = 0; i < clients_.size(); ++i) IssueQuery(i, &result);

    std::vector<epoll_event> events(256);
    while (MsSince(start) < duration_ms) {
      int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                           int(events.size()), 50);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int e = 0; e < n; ++e) {
        size_t idx = size_t(events[e].data.u64 >> 1);
        bool is_te = (events[e].data.u64 & 1) != 0;
        ClientState& client = clients_[idx];
        ConnState& conn = is_te ? client.te : client.sp;
        if (events[e].events & (EPOLLHUP | EPOLLERR)) {
          result.io_failures++;
          continue;
        }
        if (events[e].events & EPOLLOUT) Flush(&conn, idx, is_te);
        if (events[e].events & EPOLLIN) {
          if (!Drain(&conn, idx, is_te, &result)) result.io_failures++;
        }
      }
    }
    result.latencies_ms = std::move(latencies_);
    return result;
  }

 private:
  bool Connect(size_t idx) {
    auto sp_fd = net::ConnectTcp({.port = sp_port_});
    auto te_fd = net::ConnectTcp({.port = te_port_});
    if (!sp_fd.ok() || !te_fd.ok()) return false;
    clients_[idx].sp.fd = net::UniqueFd(sp_fd.value());
    clients_[idx].te.fd = net::UniqueFd(te_fd.value());
    if (!net::SetNonBlocking(clients_[idx].sp.fd.get()).ok()) return false;
    if (!net::SetNonBlocking(clients_[idx].te.fd.get()).ok()) return false;
    return Arm(idx, /*is_te=*/false, /*add=*/true) &&
           Arm(idx, /*is_te=*/true, /*add=*/true);
  }

  bool Arm(size_t idx, bool is_te, bool add) {
    ConnState& conn = is_te ? clients_[idx].te : clients_[idx].sp;
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.write_armed ? EPOLLOUT : 0u);
    ev.data.u64 = (uint64_t(idx) << 1) | (is_te ? 1u : 0u);
    return ::epoll_ctl(epoll_fd_.get(), add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD,
                       conn.fd.get(), &ev) == 0;
  }

  void IssueQuery(size_t idx, ThreadResult* result) {
    ClientState& client = clients_[idx];
    client.request = RandomRequest(&rng_, max_key_);
    client.have_answer = client.have_vt = false;
    client.answer_bytes.clear();
    client.vt_bytes.clear();
    client.issued = Clock::now();
    std::vector<uint8_t> request_bytes =
        core::SerializeQueryRequest(client.request);
    net::AppendFrame(&client.sp.out, request_bytes.data(),
                     request_bytes.size());
    net::AppendFrame(&client.te.out, request_bytes.data(),
                     request_bytes.size());
    Flush(&client.sp, idx, /*is_te=*/false);
    Flush(&client.te, idx, /*is_te=*/true);
    (void)result;
  }

  void Flush(ConnState* conn, size_t idx, bool is_te) {
    while (conn->out_pos < conn->out.size()) {
      ssize_t n = ::send(conn->fd.get(), conn->out.data() + conn->out_pos,
                         conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: wait for EPOLLOUT
      }
      conn->out_pos += size_t(n);
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
    }
    bool want_write = !conn->out.empty();
    if (want_write != conn->write_armed) {
      conn->write_armed = want_write;
      Arm(idx, is_te, /*add=*/false);
    }
  }

  bool Drain(ConnState* conn, size_t idx, bool is_te, ThreadResult* result) {
    uint8_t buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      if (n == 0) return false;
      if (!conn->decoder.Feed(buf, size_t(n))) return false;
      if (size_t(n) < sizeof(buf)) break;
    }
    std::vector<uint8_t> frame;
    while (conn->decoder.Next(&frame)) {
      ClientState& client = clients_[idx];
      if (is_te) {
        client.vt_bytes = std::move(frame);
        client.have_vt = true;
      } else {
        client.answer_bytes = std::move(frame);
        client.have_answer = true;
      }
      if (client.have_answer && client.have_vt) {
        Complete(idx, result);
        IssueQuery(idx, result);
      }
    }
    return true;
  }

  void Complete(size_t idx, ThreadResult* result) {
    ClientState& client = clients_[idx];
    double latency = MsSince(client.issued);
    auto message = core::DeserializeQueryAnswer(client.answer_bytes, codec_);
    auto vt = core::DeserializeVt(client.vt_bytes);
    if (!message.ok() || !vt.ok()) {
      result->verify_failures++;
      return;
    }
    Status verdict = core::Client::VerifyAnswer(
        client.request, message.value().answer, message.value().witness,
        vt.value(), message.value().epoch, published_epoch_, codec_);
    if (!verdict.ok()) {
      result->verify_failures++;
      return;
    }
    result->completed++;
    latencies_.push_back(latency);
  }

  uint16_t sp_port_;
  uint16_t te_port_;
  storage::RecordCodec codec_;
  uint64_t published_epoch_;
  Rng rng_;
  uint32_t max_key_ = 0;
  net::UniqueFd epoll_fd_;
  std::vector<ClientState> clients_;
  std::vector<double> latencies_;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t at = size_t(p * double(sorted->size() - 1));
  return (*sorted)[at];
}

}  // namespace

int main() {
  size_t n_clients = EnvSize("SAE_NET_CLIENTS", 512);
  size_t n_threads = EnvSize("SAE_NET_THREADS", 4);
  size_t duration_ms = EnvSize("SAE_NET_DURATION_MS", 2000);
  size_t n_records = EnvSize("SAE_NET_RECORDS", 10'000);
  if (n_threads > n_clients) n_threads = n_clients;

  // Build and load the parties in process, then put them behind TCP.
  storage::RecordCodec codec(kRecordSize);
  std::vector<storage::Record> dataset;
  dataset.reserve(n_records);
  for (uint64_t id = 1; id <= n_records; ++id) {
    dataset.push_back(codec.MakeRecord(id, uint32_t(id)));
  }
  core::ServiceProvider sp(
      core::ServiceProviderOptions{.record_size = kRecordSize});
  core::TrustedEntity te(
      core::TrustedEntityOptions{.record_size = kRecordSize});
  SAE_CHECK_OK(sp.LoadDataset(dataset));
  SAE_CHECK_OK(te.LoadDataset(dataset));
  sp.SetEpoch(1);
  te.SetEpoch(1);

  net::SpServer sp_server(&sp);
  net::TeServer te_server(&te);
  net::OwnerServer owner_server([] { return uint64_t(1); });
  SAE_CHECK_OK(sp_server.Start());
  SAE_CHECK_OK(te_server.Start());
  SAE_CHECK_OK(owner_server.Start());

  std::printf(
      "# networked SAE serving: %zu clients (%zu connections), %zu load "
      "threads, %zu records, %zu ms window\n",
      n_clients, 2 * n_clients, n_threads, n_records, duration_ms);

  // Fetch the published epoch over the wire once — it is constant during
  // the load window (no updates run concurrently).
  net::ClientTransport owner_link({.port = owner_server.port()});
  auto published = net::FetchEpoch(&owner_link);
  SAE_CHECK(published.ok());

  std::vector<ThreadResult> results(n_threads);
  std::vector<std::thread> threads;
  Clock::time_point t0 = Clock::now();
  for (size_t t = 0; t < n_threads; ++t) {
    size_t share = n_clients / n_threads + (t < n_clients % n_threads);
    threads.emplace_back([&, t, share] {
      LoadEngine engine(sp_server.port(), te_server.port(), share,
                        published.value(), /*seed=*/0x5AE'0000 + t);
      results[t] = engine.Run(double(duration_ms), uint32_t(n_records));
    });
  }
  for (auto& thread : threads) thread.join();
  double wall_ms = MsSince(t0);

  std::vector<double> latencies;
  uint64_t completed = 0, verify_failures = 0, io_failures = 0;
  for (const ThreadResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    completed += r.completed;
    verify_failures += r.verify_failures;
    io_failures += r.io_failures;
  }
  std::sort(latencies.begin(), latencies.end());
  double qps = completed / (wall_ms / 1000.0);
  double p50 = Percentile(&latencies, 0.50);
  double p99 = Percentile(&latencies, 0.99);
  double p999 = Percentile(&latencies, 0.999);

  std::printf("# completed %llu queries in %.0f ms (all verified)\n",
              (unsigned long long)completed, wall_ms);
  std::printf("%10s %12s %10s %10s %10s\n", "q/s", "verified", "p50(ms)",
              "p99(ms)", "p999(ms)");
  std::printf("%10.0f %12llu %10.3f %10.3f %10.3f\n", qps,
              (unsigned long long)completed, p50, p99, p999);
  SAE_CHECK(verify_failures == 0);
  SAE_CHECK(io_failures == 0);

  // Malicious-SP probe: the networked client must reject a poisoned plan.
  net::NetSaeClient probe(net::NetSaeClientOptions{
      .sp = {.port = sp_server.port()},
      .te = {.port = te_server.port()},
      .owner = {.port = owner_server.port()},
      .record_size = kRecordSize});
  auto poisoned =
      probe.QueryPoisoned(dbms::QueryRequest::Scan(1, uint32_t(n_records)));
  SAE_CHECK(!poisoned.ok());
  SAE_CHECK(poisoned.status().code() == StatusCode::kVerificationFailure);
  std::printf("# malicious-SP probe: rejected (%s)\n",
              poisoned.status().ToString().c_str());

  uint64_t accepted = sp_server.frame_server().connections_accepted() +
                      te_server.frame_server().connections_accepted();

  const char* json_path = std::getenv("SAE_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_net.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"net_serving\",\n"
                 "  \"clients\": %zu,\n"
                 "  \"connections\": %llu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"records\": %zu,\n"
                 "  \"duration_ms\": %.0f,\n"
                 "  \"qps\": %.1f,\n"
                 "  \"completed\": %llu,\n"
                 "  \"verify_failures\": %llu,\n"
                 "  \"p50_ms\": %.3f,\n"
                 "  \"p99_ms\": %.3f,\n"
                 "  \"p999_ms\": %.3f,\n"
                 "  \"poisoned_rejected\": true\n"
                 "}\n",
                 n_clients, (unsigned long long)accepted, n_threads,
                 n_records, wall_ms, qps, (unsigned long long)completed,
                 (unsigned long long)verify_failures, p50, p99, p999);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  }

  sp_server.Stop();
  te_server.Stop();
  owner_server.Stop();
  return 0;
}
