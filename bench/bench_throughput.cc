// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Query throughput under multi-client load: queries/sec for SAE vs TOM as
// the QueryEngine's worker-thread count grows, over the UNF workload. This
// is the paper's headline claim under concurrency — the SP executes "as
// fast as in conventional database systems", so a batch of independent
// range queries should scale with workers while every result still
// verifies. The single-thread mean response time (wall-clock per query,
// engine overhead included) is printed alongside for reference.
//
// Unlike the figure benches this measures real wall time, not the 10 ms
// node-access model: it is the concurrency of the read path (buffer pools,
// trees, verification) that is under test, not simulated disk latency.

#include <thread>

#include "core/query_engine.h"
#include "core/sharded_system.h"
#include "fig_common.h"
#include "workload/queries.h"

using namespace sae;
using namespace sae::bench;

namespace {

constexpr size_t kBatchReps = 4;  // the 100-query workload, repeated

std::vector<core::BatchQuery> MakeEngineBatch() {
  std::vector<core::BatchQuery> batch;
  auto queries = MakeQueries();
  batch.reserve(queries.size() * kBatchReps);
  for (size_t rep = 0; rep < kBatchReps; ++rep) {
    for (const auto& q : queries) {
      batch.push_back(core::BatchQuery{q.lo, q.hi, core::AttackMode::kNone});
    }
  }
  return batch;
}

template <typename System>
void RunSweep(const char* model, System* system,
              const std::vector<core::BatchQuery>& batch) {
  double single_thread_qps = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    core::QueryEngine engine(core::QueryEngineOptions{threads});
    // Warm the pools (and the workers' thread-local counters) once so the
    // timed run measures steady-state serving, then time the batch.
    auto warm = engine.Run(system, batch);
    SAE_CHECK(warm.stats.accepted == batch.size());
    auto run = engine.Run(system, batch);
    SAE_CHECK(run.stats.accepted == batch.size());

    double qps = run.stats.QueriesPerSecond();
    if (threads == 1) single_thread_qps = qps;
    std::printf("%6s %8zu %10.0f %9.2fx %13.3f\n", model, threads, qps,
                qps / single_thread_qps,
                run.stats.wall_ms / double(run.stats.queries));
    std::fflush(stdout);
  }
}

// Shard-count axis: the same batch against a sharded SAE deployment as the
// shard count sweeps (engine workers fixed at 4). Shards multiply
// independent buffer pools and locks, so cross-shard batches spread over
// them; single-shard queries pay no sharding tax, and multi-shard queries
// pay one slice per crossed fence (visible as slightly higher node-access
// totals, printed for reference).
void RunShardSweep(const std::vector<storage::Record>& dataset,
                   const std::vector<core::BatchQuery>& batch) {
  std::printf("\n# Sharded SAE: q/s vs shard count (engine workers = 4)\n");
  std::printf("# shards        q/s   mean-resp(ms)   node-accesses\n");
  for (size_t shards : ShardCounts()) {
    core::ShardedSaeSystem::Options options;
    options.base.record_size = kRecordSize;
    core::ShardedSaeSystem system(
        core::ShardRouter::Balanced(dataset, shards), options);
    SAE_CHECK_OK(system.Load(dataset));
    core::QueryEngine engine(core::QueryEngineOptions{4});
    auto warm = engine.RunBatch(&system, batch);
    SAE_CHECK(warm.stats.accepted == batch.size());
    auto run = engine.RunBatch(&system, batch);
    SAE_CHECK(run.stats.accepted == batch.size());
    std::printf("%8zu %10.0f %15.3f %15llu\n", system.num_shards(),
                run.stats.QueriesPerSecond(),
                run.stats.wall_ms / double(run.stats.queries),
                (unsigned long long)(run.stats.total.sp_index_accesses +
                                     run.stats.total.sp_heap_accesses +
                                     run.stats.total.te_accesses));
    std::fflush(stdout);
  }
}

// Operator-class axis: q/s per verified-plan operator over SAE and TOM
// (engine workers fixed at 4). Every operator executes the same underlying
// range scan and ships the same witness; the per-class deltas are the
// derived-answer work (top-k ranking, aggregate recomputation at the
// client) and, for point queries, the tiny witness. All answers verify.
template <typename System>
void RunOperatorSweep(const char* model, System* system) {
  using sae::dbms::QueryOp;
  for (QueryOp op :
       {QueryOp::kScan, QueryOp::kPoint, QueryOp::kCount, QueryOp::kSum,
        QueryOp::kMin, QueryOp::kMax, QueryOp::kTopK}) {
    workload::OperatorMixSpec spec;
    spec.count = kQueriesPerPoint * kBatchReps;
    spec.domain_max = kDomainMax;
    spec.mix = {{op, 1.0}};
    spec.topk_limit = 10;
    std::vector<core::BatchQuery> batch;
    for (const auto& request : workload::GenerateOperatorMix(spec)) {
      batch.push_back(core::BatchQuery{request});
    }
    core::QueryEngine engine(core::QueryEngineOptions{4});
    auto warm = engine.RunBatch(system, batch);
    SAE_CHECK(warm.stats.accepted == batch.size());
    auto run = engine.RunBatch(system, batch);
    SAE_CHECK(run.stats.accepted == batch.size());
    std::printf("%6s %8s %10.0f %15.3f %15zu\n", model,
                sae::dbms::QueryOpName(op), run.stats.QueriesPerSecond(),
                run.stats.wall_ms / double(run.stats.queries),
                run.stats.total.result_bytes / run.stats.queries);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Throughput (queries/sec, wall clock) vs engine worker threads — UNF",
      "# model  threads        q/s   speedup  mean-resp(ms)");
  // Speedup is bounded by the cores the host exposes; on a 1-core box the
  // sweep degenerates to a flat line by construction.
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  size_t n = size_t(100'000 * BenchScale());
  if (n < 1000) n = 1000;
  auto dataset = MakeDataset(workload::Distribution::kUniform, n);
  auto batch = MakeEngineBatch();

  {
    core::SaeSystem::Options options;
    options.record_size = kRecordSize;
    core::SaeSystem sae(options);
    SAE_CHECK_OK(sae.Load(dataset));
    RunSweep("SAE", &sae, batch);

    std::printf("\n# Operator-class throughput (engine workers = 4)\n");
    std::printf("# model       op        q/s   mean-resp(ms)   result-B/qry\n");
    RunOperatorSweep("SAE", &sae);
  }
  {
    core::TomSystem::Options options;
    options.record_size = kRecordSize;
    core::TomSystem tom(options);
    SAE_CHECK_OK(tom.Load(dataset));
    RunSweep("TOM", &tom, batch);
    RunOperatorSweep("TOM", &tom);
  }

  std::printf("# speedup is relative to the 1-thread run of the same "
              "model; batch = %zu queries\n",
              batch.size());

  RunShardSweep(dataset, batch);
  return 0;
}
