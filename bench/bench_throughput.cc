// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Query throughput under multi-client load: queries/sec for SAE vs TOM as
// the QueryEngine's worker-thread count grows, over the UNF workload. This
// is the paper's headline claim under concurrency — the SP executes "as
// fast as in conventional database systems", so a batch of independent
// range queries should scale with workers while every result still
// verifies. The single-thread mean response time (wall-clock per query,
// engine overhead included) is printed alongside for reference.
//
// Unlike the figure benches this measures real wall time, not the 10 ms
// node-access model: it is the concurrency of the read path (buffer pools,
// trees, verification) that is under test, not simulated disk latency.

#include <chrono>
#include <string>
#include <thread>

#include "core/query_engine.h"
#include "core/sharded_system.h"
#include "crypto/backend.h"
#include "fig_common.h"
#include "sigchain/sig_chain.h"
#include "workload/queries.h"

using namespace sae;
using namespace sae::bench;

namespace {

constexpr size_t kBatchReps = 4;  // the 100-query workload, repeated

std::vector<core::BatchQuery> MakeEngineBatch() {
  std::vector<core::BatchQuery> batch;
  auto queries = MakeQueries();
  batch.reserve(queries.size() * kBatchReps);
  for (size_t rep = 0; rep < kBatchReps; ++rep) {
    for (const auto& q : queries) {
      batch.push_back(core::BatchQuery{q.lo, q.hi, core::AttackMode::kNone});
    }
  }
  return batch;
}

template <typename System>
void RunSweep(const char* model, System* system,
              const std::vector<core::BatchQuery>& batch) {
  double single_thread_qps = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    core::QueryEngine engine(core::QueryEngineOptions{threads});
    // Warm the pools (and the workers' thread-local counters) once so the
    // timed run measures steady-state serving, then time the batch.
    auto warm = engine.Run(system, batch);
    SAE_CHECK(warm.stats.accepted == batch.size());
    auto run = engine.Run(system, batch);
    SAE_CHECK(run.stats.accepted == batch.size());

    double qps = run.stats.QueriesPerSecond();
    if (threads == 1) single_thread_qps = qps;
    std::printf("%6s %8zu %10.0f %9.2fx %13.3f\n", model, threads, qps,
                qps / single_thread_qps,
                run.stats.wall_ms / double(run.stats.queries));
    std::fflush(stdout);
  }
}

// Shard-count axis: the same batch against a sharded SAE deployment as the
// shard count sweeps (engine workers fixed at 4). Shards multiply
// independent buffer pools and locks, so cross-shard batches spread over
// them; single-shard queries pay no sharding tax, and multi-shard queries
// pay one slice per crossed fence (visible as slightly higher node-access
// totals, printed for reference).
void RunShardSweep(const std::vector<storage::Record>& dataset,
                   const std::vector<core::BatchQuery>& batch) {
  std::printf("\n# Sharded SAE: q/s vs shard count (engine workers = 4)\n");
  std::printf("# shards        q/s   mean-resp(ms)   node-accesses\n");
  for (size_t shards : ShardCounts()) {
    core::ShardedSaeSystem::Options options;
    options.base.record_size = kRecordSize;
    core::ShardedSaeSystem system(
        core::ShardRouter::Balanced(dataset, shards), options);
    SAE_CHECK_OK(system.Load(dataset));
    core::QueryEngine engine(core::QueryEngineOptions{4});
    auto warm = engine.RunBatch(&system, batch);
    SAE_CHECK(warm.stats.accepted == batch.size());
    auto run = engine.RunBatch(&system, batch);
    SAE_CHECK(run.stats.accepted == batch.size());
    std::printf("%8zu %10.0f %15.3f %15llu\n", system.num_shards(),
                run.stats.QueriesPerSecond(),
                run.stats.wall_ms / double(run.stats.queries),
                (unsigned long long)(run.stats.total.sp_index_accesses +
                                     run.stats.total.sp_heap_accesses +
                                     run.stats.total.te_accesses));
    std::fflush(stdout);
  }
}

// Operator-class axis: q/s per verified-plan operator over SAE and TOM
// (engine workers fixed at 4). Every operator executes the same underlying
// range scan and ships the same witness; the per-class deltas are the
// derived-answer work (top-k ranking, aggregate recomputation at the
// client) and, for point queries, the tiny witness. All answers verify.
template <typename System>
void RunOperatorSweep(const char* model, System* system) {
  using sae::dbms::QueryOp;
  for (QueryOp op :
       {QueryOp::kScan, QueryOp::kPoint, QueryOp::kCount, QueryOp::kSum,
        QueryOp::kMin, QueryOp::kMax, QueryOp::kTopK}) {
    workload::OperatorMixSpec spec;
    spec.count = kQueriesPerPoint * kBatchReps;
    spec.domain_max = kDomainMax;
    spec.mix = {{op, 1.0}};
    spec.topk_limit = 10;
    std::vector<core::BatchQuery> batch;
    for (const auto& request : workload::GenerateOperatorMix(spec)) {
      batch.push_back(core::BatchQuery{request});
    }
    core::QueryEngine engine(core::QueryEngineOptions{4});
    auto warm = engine.RunBatch(system, batch);
    SAE_CHECK(warm.stats.accepted == batch.size());
    auto run = engine.RunBatch(system, batch);
    SAE_CHECK(run.stats.accepted == batch.size());
    std::printf("%6s %8s %10.0f %15.3f %15zu\n", model,
                sae::dbms::QueryOpName(op), run.stats.QueriesPerSecond(),
                run.stats.wall_ms / double(run.stats.queries),
                run.stats.total.result_bytes / run.stats.queries);
    std::fflush(stdout);
  }
}

// --- cached vs uncached: 95/5 read-heavy mixed workload ----------------------
//
// The verified-path caches (hot-level node memos, epoch-keyed answer
// caches) target exactly this shape: a hot set of repeated verified
// queries with occasional updates bumping the epoch. Both systems replay
// the identical schedule; the uncached control must reach the identical
// per-query verdicts and result counts — that is the cache-parity gate CI
// enforces (a disagreement exits nonzero).

double Ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

struct MixedRun {
  double wall_ms = 0;               // full schedule, inserts included
  uint64_t queries = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  double per_op_ms[7] = {};         // query-only time per operator class
  uint64_t per_op_queries[7] = {};
  std::vector<int> codes;           // per-query verification code
  std::vector<size_t> result_counts;

  double Qps() const { return queries / (wall_ms / 1000.0); }
};

std::vector<dbms::QueryRequest> HotRequests() {
  using dbms::QueryRequest;
  // One narrow range per operator class (0.05% of the domain), fixed seed:
  // the hot set a read-heavy client hammers between updates.
  Rng rng(0xCA11ED);
  constexpr uint32_t kExtent = kDomainMax / 2000;
  auto lo = [&rng] { return uint32_t(rng.NextBounded(kDomainMax - kExtent)); };
  uint32_t a = lo();
  std::vector<dbms::QueryRequest> pool;
  pool.push_back(QueryRequest::Scan(a, a + kExtent));
  pool.push_back(QueryRequest::Point(lo()));
  a = lo();
  pool.push_back(QueryRequest::Count(a, a + kExtent));
  a = lo();
  pool.push_back(QueryRequest::Sum(a, a + kExtent));
  a = lo();
  pool.push_back(QueryRequest::Min(a, a + kExtent));
  a = lo();
  pool.push_back(QueryRequest::Max(a, a + kExtent));
  a = lo();
  pool.push_back(QueryRequest::TopK(a, a + kExtent, 10));
  return pool;
}

size_t OpIndex(dbms::QueryOp op) { return size_t(op); }

template <typename System>
MixedRun RunMixedSchedule(System* system, size_t ops) {
  using clock = std::chrono::steady_clock;
  std::vector<dbms::QueryRequest> pool = HotRequests();
  storage::RecordCodec codec(kRecordSize);
  MixedRun run;
  uint64_t state = 0x95'05;  // the 95/5 schedule seed, shared by design
  auto start = clock::now();
  for (size_t i = 0; i < ops; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    if ((state >> 33) % 100 < 5) {
      SAE_CHECK_OK(system->Insert(codec.MakeRecord(
          5'000'000 + i, uint32_t((state >> 7) % kDomainMax))));
      continue;
    }
    const dbms::QueryRequest& request = pool[(state >> 33) % pool.size()];
    auto q0 = clock::now();
    auto outcome = system->ExecuteQuery(request);
    auto q1 = clock::now();
    SAE_CHECK_OK(outcome.status());
    ++run.queries;
    size_t op = OpIndex(request.op);
    run.per_op_ms[op] += Ms(q1 - q0);
    ++run.per_op_queries[op];
    outcome.value().verification.ok() ? ++run.accepted : ++run.rejected;
    run.codes.push_back(int(outcome.value().verification.code()));
    run.result_counts.push_back(outcome.value().results.size());
  }
  run.wall_ms = Ms(clock::now() - start);
  return run;
}

std::string HitRatesJson(const core::SaeCacheStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"sp_answer\": %.3f, \"te_vt\": %.3f, \"te_digest\": %.3f}",
                stats.sp_answer.HitRate(), stats.te_vt.HitRate(),
                stats.te_digest.HitRate());
  return buf;
}

std::string HitRatesJson(const core::TomCacheStats& stats) {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "{\"sp_answer\": %.3f, \"sp_digest\": %.3f, \"owner_digest\": %.3f}",
      stats.sp_answer.HitRate(), stats.sp_digest.HitRate(),
      stats.owner_digest.HitRate());
  return buf;
}

// Appends one model's section to the JSON body; returns false on a parity
// violation (cached and uncached runs disagreeing on any verdict or result
// count — the one thing a correct cache can never do).
template <typename System>
bool RunCachedComparison(const char* model, System* cached, System* uncached,
                         std::string* json) {
  constexpr size_t kOps = 2000;
  MixedRun on = RunMixedSchedule(cached, kOps);
  MixedRun off = RunMixedSchedule(uncached, kOps);
  std::string hit_rates = HitRatesJson(cached->cache_stats());

  bool parity = on.codes == off.codes && on.result_counts == off.result_counts;
  std::printf("%6s %10.0f %12.0f %9.2fx %10llu %10llu %s\n", model, on.Qps(),
              off.Qps(), on.Qps() / off.Qps(),
              (unsigned long long)on.accepted,
              (unsigned long long)on.rejected, parity ? "ok" : "MISMATCH");
  if (!parity) {
    std::fprintf(stderr,
                 "PARITY FAILURE (%s): cached and uncached runs disagree "
                 "(accepted %llu vs %llu, rejected %llu vs %llu)\n",
                 model, (unsigned long long)on.accepted,
                 (unsigned long long)off.accepted,
                 (unsigned long long)on.rejected,
                 (unsigned long long)off.rejected);
  }

  char buf[256];
  *json += "    {\"model\": \"";
  *json += model;
  std::snprintf(buf, sizeof(buf),
                "\", \"qps_cached\": %.1f, \"qps_uncached\": %.1f, "
                "\"speedup\": %.3f, \"accepted\": %llu, \"rejected\": %llu, "
                "\"parity_ok\": %s,\n",
                on.Qps(), off.Qps(), on.Qps() / off.Qps(),
                (unsigned long long)on.accepted,
                (unsigned long long)on.rejected, parity ? "true" : "false");
  *json += buf;
  *json += "     \"cache_hit_rates\": " + hit_rates + ",\n";
  *json += "     \"operator_qps\": {";
  for (size_t op = 0; op < 7; ++op) {
    if (on.per_op_queries[op] == 0) continue;
    double qps_on = on.per_op_queries[op] / (on.per_op_ms[op] / 1000.0);
    double qps_off = off.per_op_queries[op] / (off.per_op_ms[op] / 1000.0);
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\": {\"cached\": %.1f, \"uncached\": %.1f}",
                  op == 0 ? "" : ", ",
                  dbms::QueryOpName(dbms::QueryOp(op)), qps_on, qps_off);
    *json += buf;
  }
  *json += "}}";
  return parity;
}

// --- sig-chain batch verification --------------------------------------------
//
// VerifyBatch amortizes the epoch-token RSA check across the batch and
// replaces the per-item condensed modexp with one combined check (shared-
// squaring multi-exponentiation). Verdict-identical to per-item
// VerifyAnswer; the speedup is what this section measures.

double RunBatchVerifyBench(std::string* json) {
  using clock = std::chrono::steady_clock;
  constexpr size_t kRecords = 600;
  constexpr size_t kItems = 48;

  sigchain::SigChainOwner::Options owner_options;
  owner_options.record_size = kRecordSize;
  sigchain::SigChainOwner owner(owner_options);
  sigchain::SigChainSp::Options sp_options;
  sp_options.record_size = kRecordSize;
  sigchain::SigChainSp sp(sp_options);
  storage::RecordCodec codec(kRecordSize);

  std::vector<storage::Record> records;
  for (uint64_t id = 1; id <= kRecords; ++id) {
    records.push_back(codec.MakeRecord(id, uint32_t(id * 100)));
  }
  auto sigs = owner.SignDataset(records);
  SAE_CHECK_OK(sigs.status());
  SAE_CHECK_OK(sp.LoadDataset(records, sigs.value(), owner.public_key()));
  sp.SetEpoch(owner.epoch(), owner.epoch_signature());

  std::vector<sigchain::SigChainClient::BatchItem> items;
  Rng rng(0xBA7C4);
  for (size_t i = 0; i < kItems; ++i) {
    uint32_t lo = uint32_t(rng.NextBounded(kRecords * 100));
    uint32_t hi = lo + 2000;
    auto response = sp.ExecuteRange(lo, hi);
    SAE_CHECK_OK(response.status());
    sigchain::SigChainClient::BatchItem item;
    item.request = dbms::QueryRequest::Scan(lo, hi);
    item.claimed = dbms::EvaluateAnswer(item.request, response.value().results);
    item.witness = std::move(response.value().results);
    item.vo = std::move(response.value().vo);
    items.push_back(std::move(item));
  }

  auto t0 = clock::now();
  for (const auto& item : items) {
    SAE_CHECK_OK(sigchain::SigChainClient::VerifyAnswer(
        item.request, item.claimed, item.witness, item.vo,
        owner.public_key(), codec, crypto::HashScheme::kSha1, owner.epoch()));
  }
  auto t1 = clock::now();
  auto verdicts = sigchain::SigChainClient::VerifyBatch(
      items, owner.public_key(), codec, crypto::HashScheme::kSha1,
      owner.epoch());
  auto t2 = clock::now();
  for (const Status& verdict : verdicts) SAE_CHECK_OK(verdict);

  double per_item_ms = Ms(t1 - t0);
  double batch_ms = Ms(t2 - t1);
  double speedup = per_item_ms / batch_ms;
  std::printf("\n# Sig-chain batch verification (%zu items, RSA-%zu)\n",
              kItems, owner_options.rsa_modulus_bits);
  std::printf("# per-item: %.1f ms   batched: %.1f ms   speedup: %.2fx\n",
              per_item_ms, batch_ms, speedup);

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"batch_verify\": {\"items\": %zu, \"per_item_ms\": %.2f, "
                "\"batch_ms\": %.2f, \"speedup\": %.3f}",
                kItems, per_item_ms, batch_ms, speedup);
  *json += buf;
  return speedup;
}

}  // namespace

int main() {
  PrintHeader(
      "Throughput (queries/sec, wall clock) vs engine worker threads — UNF",
      "# model  threads        q/s   speedup  mean-resp(ms)");
  // Speedup is bounded by the cores the host exposes; on a 1-core box the
  // sweep degenerates to a flat line by construction.
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  size_t n = size_t(100'000 * BenchScale());
  if (n < 1000) n = 1000;
  auto dataset = MakeDataset(workload::Distribution::kUniform, n);
  auto batch = MakeEngineBatch();

  {
    core::SaeSystem::Options options;
    options.record_size = kRecordSize;
    core::SaeSystem sae(options);
    SAE_CHECK_OK(sae.Load(dataset));
    RunSweep("SAE", &sae, batch);

    std::printf("\n# Operator-class throughput (engine workers = 4)\n");
    std::printf("# model       op        q/s   mean-resp(ms)   result-B/qry\n");
    RunOperatorSweep("SAE", &sae);
  }
  {
    core::TomSystem::Options options;
    options.record_size = kRecordSize;
    core::TomSystem tom(options);
    SAE_CHECK_OK(tom.Load(dataset));
    RunSweep("TOM", &tom, batch);
    RunOperatorSweep("TOM", &tom);
  }

  std::printf("# speedup is relative to the 1-thread run of the same "
              "model; batch = %zu queries\n",
              batch.size());

  RunShardSweep(dataset, batch);

  // --- cached vs uncached + batch verify, with BENCH_throughput.json ---------
  std::string json;
  bool parity_ok = true;
  std::printf("\n# Cached vs uncached: 95/5 read-heavy mixed workload "
              "(hot set of 7 verified queries + epoch-bumping inserts)\n");
  std::printf("# model   q/s-on     q/s-off   speedup   accepted   rejected "
              "parity\n");
  json += "  \"read_heavy_95_5\": [\n";
  {
    core::SaeSystem::Options options;
    options.record_size = kRecordSize;
    core::SaeSystem cached(options);
    core::SaeSystem uncached(core::SaeSystem::Options(options).DisableCaches());
    SAE_CHECK_OK(cached.Load(dataset));
    SAE_CHECK_OK(uncached.Load(dataset));
    parity_ok = RunCachedComparison("SAE", &cached, &uncached, &json);
  }
  json += ",\n";
  {
    core::TomSystem::Options options;
    options.record_size = kRecordSize;
    core::TomSystem cached(options);
    core::TomSystem uncached(core::TomSystem::Options(options).DisableCaches());
    SAE_CHECK_OK(cached.Load(dataset));
    SAE_CHECK_OK(uncached.Load(dataset));
    parity_ok = RunCachedComparison("TOM", &cached, &uncached, &json) &&
                parity_ok;
  }
  json += "\n  ],\n";

  RunBatchVerifyBench(&json);
  json += "\n";

  const char* json_path = std::getenv("SAE_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_throughput.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    const crypto::Backend& backend = crypto::Backend::Instance();
    std::fprintf(f, "{\n  \"bench\": \"throughput\", \"scale\": %.3f,\n",
                 BenchScale());
    std::fprintf(f, "  \"hash_kernel\": \"%s\", \"modexp_kernel\": \"%s\",\n",
                 backend.hash_kernel(), backend.modexp_kernel());
    std::fputs(json.c_str(), f);
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("\n# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }

  if (!parity_ok) {
    std::fprintf(stderr, "cache parity gate FAILED\n");
    return 1;
  }
  return 0;
}
