// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Durability bench: what crash safety costs and what recovery costs.
// Three sections, all over a storage::FaultFs (an in-memory Vfs), so the
// numbers isolate the durability PROTOCOL — WAL encode + checksum + sync
// ordering, snapshot serialization — from the host device's fsync
// latency, and stay deterministic across CI runners:
//
//   1. wal_overhead — a 90/10 query/update schedule on the SAE system,
//      durability off vs on; the ratio is the write-path tax of
//      sync-before-apply.
//   2. recovery    — Recover() wall time as a function of the WAL tail
//      length replayed (snapshot cadence disabled past the baseline).
//   3. cadence     — the snapshot_interval trade: update throughput
//      (checkpoint I/O amortized over updates) against the recovery time
//      the resulting WAL tail costs.
//
// Emits BENCH_durability.json (BenchJson) for
// scripts/check_perf_regression.py; SAE_BENCH_SCALE scales the op counts.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fig_common.h"
#include "storage/fault_fs.h"

namespace sae::bench {
namespace {

using core::SaeSystem;
using storage::FaultFs;

constexpr uint32_t kExtent = uint32_t(kDomainMax * kQueryExtent);

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SaeSystem::Options Options(FaultFs* fs, uint64_t snapshot_interval) {
  SaeSystem::Options options;
  options.record_size = kRecordSize;
  if (fs != nullptr) {
    options.durability.enabled = true;
    options.durability.dir = "/db";
    options.durability.vfs = fs;
    options.durability.snapshot_interval = snapshot_interval;
  }
  return options;
}

/// Runs `ops` operations, every 10th an insert (the paper's read-mostly
/// serving mix), and returns ops/second. Queries verify end to end, so
/// both configurations pay the identical read-path cost and the delta is
/// purely the write path.
double RunMixedSchedule(SaeSystem* system, size_t ops, uint64_t* next_id) {
  const storage::RecordCodec& codec = system->codec();
  // Warm the caches and the lazily built query paths before the clock
  // starts, so the off/on delta is the write path and not first-touch cost.
  for (int i = 0; i < 20; ++i) {
    uint32_t lo = uint32_t(i) * (kDomainMax / 32);
    auto outcome = system->Query(lo, lo + kExtent);
    SAE_CHECK_OK(outcome.status());
  }
  Rng rng(0xD0BE5);
  double start = NowMs();
  for (size_t i = 0; i < ops; ++i) {
    if (i % 10 == 9) {
      uint32_t key = uint32_t(rng.Next() % kDomainMax);
      SAE_CHECK_OK(system->Insert(codec.MakeRecord((*next_id)++, key)));
    } else {
      uint32_t lo = uint32_t(rng.Next() % (kDomainMax - kExtent));
      auto outcome = system->Query(lo, lo + kExtent);
      SAE_CHECK_OK(outcome.status());
      SAE_CHECK_OK(outcome.value().verification);
    }
  }
  double elapsed_ms = NowMs() - start;
  return elapsed_ms > 0 ? double(ops) * 1000.0 / elapsed_ms : 0.0;
}

}  // namespace
}  // namespace sae::bench

int main() {
  using namespace sae;
  using namespace sae::bench;

  double scale = BenchScale();
  const size_t n = size_t(20'000 * scale) < 2000 ? 2000
                                                 : size_t(20'000 * scale);
  const size_t mixed_ops = size_t(2'000 * scale) < 200
                               ? 200
                               : size_t(2'000 * scale);
  auto records = MakeDataset(workload::Distribution::kUniform, n);

  BenchJson json("durability");
  PrintHeader("durability: WAL overhead, recovery time, cadence trade",
              "# section config metric");

  // --- 1. WAL overhead on the 90/10 mix -----------------------------------
  {
    uint64_t next_id = n + 1;
    SaeSystem volatile_system(Options(nullptr, 0));
    SAE_CHECK_OK(volatile_system.Load(records));
    double off_ops = RunMixedSchedule(&volatile_system, mixed_ops, &next_id);

    FaultFs fs;
    next_id = n + 1;
    SaeSystem durable_system(Options(&fs, 64));
    SAE_CHECK_OK(durable_system.Load(records));
    double on_ops = RunMixedSchedule(&durable_system, mixed_ops, &next_id);

    double overhead_pct =
        on_ops > 0 ? (off_ops / on_ops - 1.0) * 100.0 : 0.0;
    std::printf("wal_overhead durability=off  %10.0f ops/s\n", off_ops);
    std::printf("wal_overhead durability=on   %10.0f ops/s  (+%.1f%% cost)\n",
                on_ops, overhead_pct);
    json.Row({{"section", "wal_overhead"}, {"config", "durability_off"}},
             {{"ops_per_sec", off_ops}});
    json.Row({{"section", "wal_overhead"}, {"config", "durability_on"}},
             {{"ops_per_sec", on_ops}});
  }

  // --- 2. recovery time vs WAL tail length --------------------------------
  // snapshot_interval=0: only the baseline snapshot exists, so recovery
  // replays exactly `tail` records.
  for (size_t tail : {size_t(0), size_t(64), size_t(256), size_t(1024)}) {
    FaultFs fs;
    uint64_t next_id = n + 1;
    {
      SaeSystem system(Options(&fs, 0));
      SAE_CHECK_OK(system.Load(records));
      const storage::RecordCodec& codec = system.codec();
      for (size_t i = 0; i < tail; ++i) {
        SAE_CHECK_OK(system.Insert(
            codec.MakeRecord(next_id++, uint32_t(i % kDomainMax))));
      }
    }
    fs.DropVolatile();
    double start = NowMs();
    auto recovered = SaeSystem::Recover(Options(&fs, 0));
    double recovery_ms = NowMs() - start;
    SAE_CHECK_OK(recovered.status());
    SAE_CHECK(recovered.value()->epoch() == 1 + tail);
    std::printf("recovery tail=%-5zu %8.2f ms\n", tail, recovery_ms);
    json.Row({{"section", "recovery"},
              {"wal_records", std::to_string(tail)}},
             {{"recovery_ms", recovery_ms}});
  }

  // --- 3. snapshot cadence sweep ------------------------------------------
  // Smaller intervals checkpoint more (slower updates) but leave a shorter
  // WAL tail (faster recovery); the sweep quantifies both ends.
  const size_t cadence_updates =
      size_t(512 * scale) < 128 ? 128 : size_t(512 * scale);
  for (uint64_t interval : {uint64_t(4), uint64_t(16), uint64_t(64),
                            uint64_t(256)}) {
    FaultFs fs;
    uint64_t next_id = n + 1;
    double update_ops;
    {
      SaeSystem system(Options(&fs, interval));
      SAE_CHECK_OK(system.Load(records));
      const storage::RecordCodec& codec = system.codec();
      double start = NowMs();
      for (size_t i = 0; i < cadence_updates; ++i) {
        SAE_CHECK_OK(system.Insert(
            codec.MakeRecord(next_id++, uint32_t(i % kDomainMax))));
      }
      double elapsed_ms = NowMs() - start;
      update_ops = elapsed_ms > 0
                       ? double(cadence_updates) * 1000.0 / elapsed_ms
                       : 0.0;
    }
    fs.DropVolatile();
    double start = NowMs();
    auto recovered = SaeSystem::Recover(Options(&fs, interval));
    double recovery_ms = NowMs() - start;
    SAE_CHECK_OK(recovered.status());
    SAE_CHECK(recovered.value()->epoch() == 1 + cadence_updates);
    std::printf("cadence interval=%-4llu %10.0f updates/s  recovery %.2f ms\n",
                (unsigned long long)interval, update_ops, recovery_ms);
    json.Row({{"section", "cadence"},
              {"snapshot_interval", std::to_string(interval)}},
             {{"update_ops_per_sec", update_ops},
              {"recovery_ms", recovery_ms}});
  }

  return json.Write();
}
