// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Durability bench: what crash safety costs and what recovery costs.
// Three sections, all over a storage::FaultFs (an in-memory Vfs), so the
// numbers isolate the durability PROTOCOL — WAL encode + checksum + sync
// ordering, snapshot serialization — from the host device's fsync
// latency, and stay deterministic across CI runners:
//
//   1. wal_overhead — a 90/10 query/update schedule on the SAE system,
//      durability off vs on; the ratio is the write-path tax of
//      sync-before-apply.
//   2. recovery    — Recover() wall time as a function of the WAL tail
//      length replayed (snapshot cadence disabled past the baseline).
//   3. cadence     — the snapshot_interval trade, swept in BOTH write-path
//      modes (legacy full snapshots vs delta chains + background
//      checkpointing): update throughput against the recovery time the
//      resulting WAL tail costs, plus bytes written per checkpoint.
//   4. checkpoint_scaling — per-checkpoint bytes as a function of dataset
//      size: full snapshots scale with the record count, delta links scale
//      with the CHANGE count (the tentpole O(changes) claim).
//   5. group_commit — concurrent writers against a simulated fsync cost
//      (FaultFs::SetSyncLatency): updates/s and p99 commit latency with
//      the WAL group-commit sequencer on vs off.
//
// Emits BENCH_durability.json (BenchJson) for
// scripts/check_perf_regression.py; SAE_BENCH_SCALE scales the op counts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fig_common.h"
#include "storage/fault_fs.h"

namespace sae::bench {
namespace {

using core::SaeSystem;
using storage::FaultFs;

constexpr uint32_t kExtent = uint32_t(kDomainMax * kQueryExtent);

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SaeSystem::Options Options(FaultFs* fs, uint64_t snapshot_interval,
                           bool legacy = false) {
  SaeSystem::Options options;
  options.record_size = kRecordSize;
  if (fs != nullptr) {
    options.durability.enabled = true;
    options.durability.dir = "/db";
    options.durability.vfs = fs;
    options.durability.snapshot_interval = snapshot_interval;
    if (legacy) {  // the pre-delta write path: full snapshots, inline,
                   // one fsync per committer
      options.durability.delta_snapshots = false;
      options.durability.wal_group_commit = false;
      options.durability.background_checkpoint = false;
    }
  }
  return options;
}

void PrintDurabilityStats(const core::DurabilityStats& stats,
                          const char* tag) {
  std::printf(
      "stats %-22s wal %llu recs / %llu syncs (%.1f recs/sync, %.1f KiB)  "
      "ckpts %llu full + %llu delta (chain %llu)  ckpt bytes %.1f KiB total, "
      "last %.1f KiB in %.2f ms\n",
      tag, (unsigned long long)stats.wal_records,
      (unsigned long long)stats.wal_syncs, stats.avg_group_records,
      double(stats.wal_bytes) / 1024.0,
      (unsigned long long)stats.checkpoints_full,
      (unsigned long long)stats.checkpoints_delta,
      (unsigned long long)stats.delta_chain_length,
      double(stats.checkpoint_bytes_total) / 1024.0,
      double(stats.last_checkpoint_bytes) / 1024.0, stats.last_checkpoint_ms);
}

/// Runs `ops` operations, every 10th an insert (the paper's read-mostly
/// serving mix), and returns ops/second. Queries verify end to end, so
/// both configurations pay the identical read-path cost and the delta is
/// purely the write path.
double RunMixedSchedule(SaeSystem* system, size_t ops, uint64_t* next_id) {
  const storage::RecordCodec& codec = system->codec();
  // Warm the caches and the lazily built query paths before the clock
  // starts, so the off/on delta is the write path and not first-touch cost.
  for (int i = 0; i < 20; ++i) {
    uint32_t lo = uint32_t(i) * (kDomainMax / 32);
    auto outcome = system->Query(lo, lo + kExtent);
    SAE_CHECK_OK(outcome.status());
  }
  Rng rng(0xD0BE5);
  double start = NowMs();
  for (size_t i = 0; i < ops; ++i) {
    if (i % 10 == 9) {
      uint32_t key = uint32_t(rng.Next() % kDomainMax);
      SAE_CHECK_OK(system->Insert(codec.MakeRecord((*next_id)++, key)));
    } else {
      uint32_t lo = uint32_t(rng.Next() % (kDomainMax - kExtent));
      auto outcome = system->Query(lo, lo + kExtent);
      SAE_CHECK_OK(outcome.status());
      SAE_CHECK_OK(outcome.value().verification);
    }
  }
  double elapsed_ms = NowMs() - start;
  return elapsed_ms > 0 ? double(ops) * 1000.0 / elapsed_ms : 0.0;
}

}  // namespace
}  // namespace sae::bench

int main() {
  using namespace sae;
  using namespace sae::bench;

  double scale = BenchScale();
  const size_t n = size_t(20'000 * scale) < 2000 ? 2000
                                                 : size_t(20'000 * scale);
  const size_t mixed_ops = size_t(2'000 * scale) < 200
                               ? 200
                               : size_t(2'000 * scale);
  auto records = MakeDataset(workload::Distribution::kUniform, n);

  BenchJson json("durability");
  PrintHeader("durability: WAL overhead, recovery time, cadence trade",
              "# section config metric");

  // --- 1. WAL overhead on the 90/10 mix -----------------------------------
  {
    uint64_t next_id = n + 1;
    SaeSystem volatile_system(Options(nullptr, 0));
    SAE_CHECK_OK(volatile_system.Load(records));
    double off_ops = RunMixedSchedule(&volatile_system, mixed_ops, &next_id);

    FaultFs fs;
    next_id = n + 1;
    SaeSystem durable_system(Options(&fs, 64));
    SAE_CHECK_OK(durable_system.Load(records));
    double on_ops = RunMixedSchedule(&durable_system, mixed_ops, &next_id);

    double overhead_pct =
        on_ops > 0 ? (off_ops / on_ops - 1.0) * 100.0 : 0.0;
    std::printf("wal_overhead durability=off  %10.0f ops/s\n", off_ops);
    std::printf("wal_overhead durability=on   %10.0f ops/s  (+%.1f%% cost)\n",
                on_ops, overhead_pct);
    json.Row({{"section", "wal_overhead"}, {"config", "durability_off"}},
             {{"ops_per_sec", off_ops}});
    json.Row({{"section", "wal_overhead"}, {"config", "durability_on"}},
             {{"ops_per_sec", on_ops}});
  }

  // --- 2. recovery time vs WAL tail length --------------------------------
  // snapshot_interval=0: only the baseline snapshot exists, so recovery
  // replays exactly `tail` records.
  for (size_t tail : {size_t(0), size_t(64), size_t(256), size_t(1024)}) {
    FaultFs fs;
    uint64_t next_id = n + 1;
    {
      SaeSystem system(Options(&fs, 0));
      SAE_CHECK_OK(system.Load(records));
      const storage::RecordCodec& codec = system.codec();
      for (size_t i = 0; i < tail; ++i) {
        SAE_CHECK_OK(system.Insert(
            codec.MakeRecord(next_id++, uint32_t(i % kDomainMax))));
      }
    }
    fs.DropVolatile();
    double start = NowMs();
    auto recovered = SaeSystem::Recover(Options(&fs, 0));
    double recovery_ms = NowMs() - start;
    SAE_CHECK_OK(recovered.status());
    SAE_CHECK(recovered.value()->epoch() == 1 + tail);
    std::printf("recovery tail=%-5zu %8.2f ms\n", tail, recovery_ms);
    json.Row({{"section", "recovery"},
              {"wal_records", std::to_string(tail)}},
             {{"recovery_ms", recovery_ms}});
  }

  // --- 3. snapshot cadence sweep, full vs delta ---------------------------
  // Smaller intervals checkpoint more (slower updates) but leave a shorter
  // WAL tail (faster recovery); the sweep quantifies both ends, in the
  // legacy full-snapshot mode and the delta-chain mode. The legacy mode
  // pays an O(dataset) serialization every interval updates; the delta mode
  // pays O(interval) — the per-update cost stops depending on n.
  const size_t cadence_updates =
      size_t(512 * scale) < 128 ? 128 : size_t(512 * scale);
  double full_ops_64 = 0, delta_ops_64 = 0;
  for (bool legacy : {true, false}) {
    const char* mode = legacy ? "full" : "delta";
    for (uint64_t interval : {uint64_t(4), uint64_t(16), uint64_t(64),
                              uint64_t(256)}) {
      FaultFs fs;
      uint64_t next_id = n + 1;
      double update_ops;
      double bytes_per_checkpoint = 0;
      {
        SaeSystem system(Options(&fs, interval, legacy));
        SAE_CHECK_OK(system.Load(records));
        // The Load baseline is a full snapshot in either mode; subtract it
        // so the metric is the steady-state checkpoint size.
        core::DurabilityStats baseline = system.durability_stats();
        const storage::RecordCodec& codec = system.codec();
        double start = NowMs();
        for (size_t i = 0; i < cadence_updates; ++i) {
          SAE_CHECK_OK(system.Insert(
              codec.MakeRecord(next_id++, uint32_t(i % kDomainMax))));
        }
        // Drain inside the clock: steady-state throughput must pay for
        // the background checkpoints it queued.
        SAE_CHECK_OK(system.WaitForCheckpoints());
        double elapsed_ms = NowMs() - start;
        update_ops = elapsed_ms > 0
                         ? double(cadence_updates) * 1000.0 / elapsed_ms
                         : 0.0;
        core::DurabilityStats stats = system.durability_stats();
        uint64_t checkpoints = stats.checkpoints_full +
                               stats.checkpoints_delta -
                               baseline.checkpoints_full -
                               baseline.checkpoints_delta;
        if (checkpoints > 0) {
          bytes_per_checkpoint =
              double(stats.checkpoint_bytes_total -
                     baseline.checkpoint_bytes_total) /
              double(checkpoints);
        }
      }
      fs.DropVolatile();
      double start = NowMs();
      auto recovered = SaeSystem::Recover(Options(&fs, interval, legacy));
      double recovery_ms = NowMs() - start;
      SAE_CHECK_OK(recovered.status());
      SAE_CHECK(recovered.value()->epoch() == 1 + cadence_updates);
      if (interval == 64) {
        (legacy ? full_ops_64 : delta_ops_64) = update_ops;
      }
      std::printf(
          "cadence mode=%-5s interval=%-4llu %10.0f updates/s  "
          "recovery %6.2f ms  %8.1f KiB/ckpt\n",
          mode, (unsigned long long)interval, update_ops, recovery_ms,
          bytes_per_checkpoint / 1024.0);
      json.Row({{"section", "cadence"},
                {"mode", mode},
                {"snapshot_interval", std::to_string(interval)}},
               {{"update_ops_per_sec", update_ops},
                {"recovery_ms", recovery_ms},
                {"bytes_per_checkpoint", bytes_per_checkpoint}});
    }
  }
  if (full_ops_64 > 0) {
    std::printf("cadence interval=64 delta/full speedup: %.2fx\n",
                delta_ops_64 / full_ops_64);
    json.Row({{"section", "cadence_ratio"}, {"snapshot_interval", "64"}},
             {{"delta_vs_full_speedup", delta_ops_64 / full_ops_64}});
  }

  // --- 4. per-checkpoint bytes vs dataset size ----------------------------
  // The O(changes) claim: at a fixed cadence, a full snapshot grows with
  // the record count while a delta link stays flat.
  for (bool legacy : {true, false}) {
    const char* mode = legacy ? "full" : "delta";
    for (size_t dataset : {n / 4, n}) {
      auto sized = MakeDataset(workload::Distribution::kUniform, dataset);
      FaultFs fs;
      SaeSystem system(Options(&fs, 64, legacy));
      SAE_CHECK_OK(system.Load(sized));
      const storage::RecordCodec& codec = system.codec();
      uint64_t next_id = dataset + 1;
      for (size_t i = 0; i < 128; ++i) {
        SAE_CHECK_OK(system.Insert(
            codec.MakeRecord(next_id++, uint32_t(i % kDomainMax))));
      }
      SAE_CHECK_OK(system.WaitForCheckpoints());
      core::DurabilityStats stats = system.durability_stats();
      std::printf("checkpoint_scaling mode=%-5s n=%-6zu last ckpt %8.1f KiB\n",
                  mode, dataset, double(stats.last_checkpoint_bytes) / 1024.0);
      json.Row({{"section", "checkpoint_scaling"},
                {"mode", mode},
                {"dataset", std::to_string(dataset)}},
               {{"bytes_per_checkpoint", double(stats.last_checkpoint_bytes)}});
    }
  }

  // --- 5. WAL group commit under concurrent writers -----------------------
  // A simulated 200us fsync makes the sequencer visible: with group commit
  // off every committer pays its own barrier serially; with it on,
  // concurrent committers share the leader's. Single-writer runs bound the
  // no-contention overhead of the sequencer itself.
  constexpr uint32_t kSyncLatencyUs = 200;
  const size_t per_thread =
      size_t(128 * scale) < 32 ? 32 : size_t(128 * scale);
  for (bool group : {false, true}) {
    for (size_t threads : {size_t(1), size_t(4), size_t(8)}) {
      FaultFs fs;
      fs.SetSyncLatency(kSyncLatencyUs);
      SaeSystem::Options options = Options(&fs, 64, /*legacy=*/false);
      options.durability.wal_group_commit = group;
      SaeSystem system(options);
      SAE_CHECK_OK(system.Load(records));
      const storage::RecordCodec& codec = system.codec();

      std::vector<std::vector<double>> latencies(threads);
      double start = NowMs();
      std::vector<std::thread> writers;
      for (size_t t = 0; t < threads; ++t) {
        writers.emplace_back([&, t] {
          latencies[t].reserve(per_thread);
          for (size_t i = 0; i < per_thread; ++i) {
            uint64_t id = n + 1 + t * per_thread + i;
            uint32_t key = uint32_t((id * 2654435761u) % kDomainMax);
            double op_start = NowMs();
            SAE_CHECK_OK(system.Insert(codec.MakeRecord(id, key)));
            latencies[t].push_back(NowMs() - op_start);
          }
        });
      }
      for (auto& w : writers) w.join();
      SAE_CHECK_OK(system.WaitForCheckpoints());
      double elapsed_ms = NowMs() - start;

      std::vector<double> all;
      for (auto& per : latencies) {
        all.insert(all.end(), per.begin(), per.end());
      }
      std::sort(all.begin(), all.end());
      double p99 = all[size_t(double(all.size() - 1) * 0.99)];
      double updates_per_sec =
          elapsed_ms > 0 ? double(all.size()) * 1000.0 / elapsed_ms : 0.0;
      std::printf(
          "group_commit group=%-3s threads=%zu %10.0f updates/s  "
          "p99 %6.3f ms\n",
          group ? "on" : "off", threads, updates_per_sec, p99);
      json.Row({{"section", "group_commit"},
                {"group", group ? "on" : "off"},
                {"threads", std::to_string(threads)}},
               {{"updates_per_sec", updates_per_sec},
                {"p99_commit_ms", p99}});
      if (group && threads == 8) {
        PrintDurabilityStats(system.durability_stats(),
                             "group_commit t=8");
      }
    }
  }

  return json.Write();
}
