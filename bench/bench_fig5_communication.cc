// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Figure 5: communication overhead (authentication traffic only) vs dataset
// cardinality n, for UNF and SKW. Series: TE->Client bytes in SAE (the VT)
// and SP->Client bytes in TOM (the VO), averaged over 100 queries of extent
// 0.5% of the domain. The paper reports a flat 20 bytes for SAE versus a VO
// 2-3 orders of magnitude larger.

#include "fig_common.h"

using namespace sae;
using namespace sae::bench;

int main() {
  PrintHeader("Figure 5: communication overhead (bytes/query) vs n",
              "# dist        n   TE-Client(SAE)   SP-Client(TOM)     ratio");

  BenchJson json("fig5_communication");
  auto queries = MakeQueries();
  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kSkewed}) {
    for (size_t n : Cardinalities()) {
      auto dataset = MakeDataset(dist, n);

      // SAE side: the token is constant-size; measure it anyway.
      uint64_t sae_bytes = 0;
      {
        auto te = BuildTe(dataset);
        for (const auto& q : queries) {
          auto vt = te->GenerateVt(q.lo, q.hi);
          SAE_CHECK(vt.ok());
          sae_bytes += core::SerializeVt(vt.value()).size();
        }
      }

      // TOM side: serialize the VO of every query.
      uint64_t tom_bytes = 0;
      {
        TomSpBundle tom = BuildTomSp(dataset);
        for (const auto& q : queries) {
          auto response = tom.sp->ExecuteRange(q.lo, q.hi);
          SAE_CHECK(response.ok());
          tom_bytes += response.value().vo.Serialize().size();
        }
      }

      double sae_avg = double(sae_bytes) / double(queries.size());
      double tom_avg = double(tom_bytes) / double(queries.size());
      std::printf("%6s %10zu %16.0f %16.0f %9.1fx\n", DistName(dist), n,
                  sae_avg, tom_avg, tom_avg / sae_avg);
      std::fflush(stdout);
      json.Row({{"dist", DistName(dist)}, {"n", std::to_string(n)}},
               {{"sae_vt_bytes", sae_avg}, {"tom_vo_bytes", tom_avg}});
    }
  }
  return json.Write();
}
