// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Micro benchmarks for the crypto substrate, self-contained (no external
// benchmark dependency): every primitive is timed twice, once pinned to the
// scalar reference path (Backend::set_force_scalar) and once under whatever
// accelerated kernel the CPU dispatched (SHA-NI / AVX2 multi-buffer /
// Montgomery-CRT RSA), and the per-primitive speedup is reported. These are
// the primitives behind Figs. 6 and 7: record digests at the paper's
// 500-byte record size, XOR folding, Merkle combination, modexp and RSA
// sign/verify.
//
// SAE_BENCH_JSON (env, default BENCH_crypto.json) names the output file.
// SAE_BENCH_SCALE scales the per-measurement time budget.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "crypto/backend.h"
#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "util/macros.h"
#include "util/random.h"

using namespace sae;

namespace {

volatile uint8_t g_sink;  // defeats dead-code elimination across runs

void Consume(const crypto::Digest& d) { g_sink ^= d.bytes[0]; }
void Consume(const std::vector<uint8_t>& v) {
  g_sink ^= v.empty() ? 0 : v[0];
}
void Consume(const crypto::BigInt& b) { g_sink ^= uint8_t(b.BitLength()); }

double MsBudget() {
  const char* env = std::getenv("SAE_BENCH_SCALE");
  double scale = env != nullptr ? std::atof(env) : 1.0;
  if (scale <= 0.0) scale = 1.0;
  double ms = 200.0 * scale;
  return ms < 20.0 ? 20.0 : ms;
}

// Runs `fn` repeatedly for ~the time budget and returns ops/sec: a short
// calibration pass sizes the batch, then timed batches accumulate.
double MeasureOpsPerSec(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  auto ms = [](clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  // Calibrate: grow the batch until one batch costs >= 5 ms.
  size_t batch = 1;
  for (;;) {
    auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) fn();
    double elapsed = ms(clock::now() - t0);
    if (elapsed >= 5.0 || batch >= (size_t(1) << 24)) break;
    batch *= 4;
  }
  const double budget = MsBudget();
  size_t ops = 0;
  double elapsed = 0.0;
  while (elapsed < budget) {
    auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) fn();
    elapsed += ms(clock::now() - t0);
    ops += batch;
  }
  return ops / (elapsed / 1000.0);
}

struct Row {
  std::string name;
  size_t bytes_per_op = 0;  // 0 when bytes/sec is meaningless
  double scalar_ops = 0.0;
  double accel_ops = 0.0;
};

// Times `fn` under both dispatch modes. The scalar run truly exercises the
// reference path: force_scalar gates every kernel (hash, Montgomery, CRT).
Row Bench(const char* name, size_t bytes_per_op,
          const std::function<void()>& fn) {
  crypto::Backend& backend = crypto::Backend::Instance();
  Row row;
  row.name = name;
  row.bytes_per_op = bytes_per_op;
  backend.set_force_scalar(true);
  row.scalar_ops = MeasureOpsPerSec(fn);
  backend.set_force_scalar(false);
  row.accel_ops = MeasureOpsPerSec(fn);
  return row;
}

}  // namespace

int main() {
  crypto::Backend& backend = crypto::Backend::Instance();
  const bool env_forced = backend.force_scalar();
  std::printf("# Crypto micro benches: scalar vs accelerated dispatch\n");
  std::printf("# hash kernel: %s   modexp kernel: %s%s\n",
              backend.hash_kernel(), backend.modexp_kernel(),
              env_forced ? "   (SAE_FORCE_SCALAR set: both runs scalar)"
                         : "");
  std::printf("%-28s %14s %14s %9s %12s\n", "# primitive", "scalar-ops/s",
              "accel-ops/s", "speedup", "accel-MB/s");

  std::vector<Row> rows;

  std::vector<uint8_t> record(500, 0xAB);
  rows.push_back(Bench("sha1_500B", record.size(), [&] {
    Consume(crypto::ComputeDigest(record.data(), record.size(),
                                  crypto::HashScheme::kSha1));
  }));
  rows.push_back(Bench("sha256_500B", record.size(), [&] {
    Consume(crypto::ComputeDigest(record.data(), record.size(),
                                  crypto::HashScheme::kSha256Trunc));
  }));

  std::vector<uint8_t> big(64 * 1024, 0x5A);
  rows.push_back(Bench("sha1_64KiB", big.size(), [&] {
    Consume(crypto::ComputeDigest(big.data(), big.size(),
                                  crypto::HashScheme::kSha1));
  }));

  // Batched record digesting: the DigestRecords/HashMany shape — 1024
  // records of 500 bytes per call, where the multi-buffer kernels apply.
  constexpr size_t kBatch = 1024;
  std::vector<uint8_t> records(kBatch * 500);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i] = uint8_t(i * 131 + 7);
  }
  std::vector<crypto::ByteSpan> spans;
  for (size_t i = 0; i < kBatch; ++i) {
    spans.push_back(crypto::ByteSpan{records.data() + i * 500, 500});
  }
  std::vector<crypto::Digest> outs(kBatch);
  for (auto scheme :
       {crypto::HashScheme::kSha1, crypto::HashScheme::kSha256Trunc}) {
    const char* name = scheme == crypto::HashScheme::kSha1
                           ? "hash_many_sha1_1Kx500B"
                           : "hash_many_sha256t_1Kx500B";
    Row row = Bench(name, kBatch * 500, [&] {
      crypto::ComputeDigests(spans.data(), spans.size(), outs.data(), scheme);
      Consume(outs[0]);
    });
    rows.push_back(row);
  }

  // One MB-tree node digest (127-entry fanout): a single contiguous hash
  // over the child-digest array, so it rides the single-stream kernel.
  std::vector<crypto::Digest> children(127);
  for (size_t i = 0; i < children.size(); ++i) {
    children[i] = crypto::ComputeDigest(&i, sizeof(i));
  }
  rows.push_back(Bench("combine_digests_127", 127 * crypto::Digest::kSize,
                       [&] {
                         Consume(crypto::CombineDigests(children.data(),
                                                        children.size()));
                       }));

  // XOR folding a 5000-record result: pure Digest algebra, no dispatch —
  // included so regressions in the fold itself stay visible.
  std::vector<crypto::Digest> digests(5000);
  for (size_t i = 0; i < digests.size(); ++i) {
    digests[i] = crypto::ComputeDigest(&i, sizeof(i));
  }
  rows.push_back(Bench("digest_xor_fold_5000", 0, [&] {
    crypto::Digest acc;
    for (const auto& d : digests) acc ^= d;
    Consume(acc);
  }));

  // RSA-1024: sign (CRT + Montgomery vs scalar square-and-multiply) and
  // verify (e = 65537, Montgomery vs scalar).
  Rng rng(0xBEEF);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&rng, 1024);
  crypto::Digest root = crypto::ComputeDigest("root", 4);
  crypto::RsaSignature sig = crypto::RsaSignDigest(key, root);
  rows.push_back(Bench("rsa1024_sign", 0,
                       [&] { Consume(crypto::RsaSignDigest(key, root)); }));
  rows.push_back(Bench("rsa1024_verify", 0, [&] {
    Status st = crypto::RsaVerifyDigest(key.PublicKey(), root, sig);
    g_sink ^= uint8_t(st.ok());
  }));

  // Bare 1024-bit modexp with a full-width exponent — the Montgomery
  // ladder itself, free of PKCS#1 framing and CRT splitting.
  crypto::BigInt base = crypto::BigInt::FromBytes(sig.data(), sig.size());
  rows.push_back(Bench("modexp_1024", 0, [&] {
    Consume(crypto::BigInt::ModPow(base, key.d, key.n));
  }));

  std::string json;
  char buf[256];
  for (const Row& row : rows) {
    double speedup = row.accel_ops / row.scalar_ops;
    double mbps = row.bytes_per_op != 0
                      ? row.accel_ops * double(row.bytes_per_op) / 1e6
                      : 0.0;
    std::printf("%-28s %14.0f %14.0f %8.2fx %12.1f\n", row.name.c_str(),
                row.scalar_ops, row.accel_ops, speedup, mbps);
    std::fflush(stdout);
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"scalar_ops_per_sec\": %.1f, "
                  "\"accel_ops_per_sec\": %.1f, \"speedup\": %.3f, "
                  "\"bytes_per_op\": %zu}",
                  row.name.c_str(), row.scalar_ops, row.accel_ops, speedup,
                  row.bytes_per_op);
    if (!json.empty()) json += ",\n";
    json += buf;
  }

  const char* json_path = std::getenv("SAE_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_crypto.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_crypto\",\n"
                 "  \"hash_kernel\": \"%s\", \"modexp_kernel\": \"%s\",\n"
                 "  \"primitives\": [\n%s\n  ]\n}\n",
                 backend.hash_kernel(), backend.modexp_kernel(),
                 json.c_str());
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }
  return 0;
}
