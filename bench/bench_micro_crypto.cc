// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Micro benchmarks for the crypto substrate, self-contained (no external
// benchmark dependency): every primitive is timed twice, once pinned to the
// scalar reference path (Backend::set_force_scalar) and once under whatever
// accelerated kernel the CPU dispatched (SHA-NI / AVX2 multi-buffer /
// Montgomery-CRT RSA), and the per-primitive speedup is reported. These are
// the primitives behind Figs. 6 and 7: record digests at the paper's
// 500-byte record size, XOR folding, Merkle combination, modexp and RSA
// sign/verify.
//
// SAE_BENCH_JSON (env, default BENCH_crypto.json) names the output file.
// SAE_BENCH_SCALE scales the per-measurement time budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "crypto/backend.h"
#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "dbms/query.h"
#include "sigchain/sig_chain.h"
#include "util/macros.h"
#include "util/random.h"

using namespace sae;

namespace {

volatile uint8_t g_sink;  // defeats dead-code elimination across runs

void Consume(const crypto::Digest& d) { g_sink ^= d.bytes[0]; }
void Consume(const std::vector<uint8_t>& v) {
  g_sink ^= v.empty() ? 0 : v[0];
}
void Consume(const crypto::BigInt& b) { g_sink ^= uint8_t(b.BitLength()); }

double MsBudget() {
  const char* env = std::getenv("SAE_BENCH_SCALE");
  double scale = env != nullptr ? std::atof(env) : 1.0;
  if (scale <= 0.0) scale = 1.0;
  double ms = 200.0 * scale;
  return ms < 20.0 ? 20.0 : ms;
}

// Runs `fn` repeatedly for ~the time budget and returns ops/sec: a short
// calibration pass sizes the batch, then timed batches accumulate.
double MeasureOpsPerSec(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  auto ms = [](clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  // Calibrate: grow the batch until one batch costs >= 5 ms.
  size_t batch = 1;
  for (;;) {
    auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) fn();
    double elapsed = ms(clock::now() - t0);
    if (elapsed >= 5.0 || batch >= (size_t(1) << 24)) break;
    batch *= 4;
  }
  const double budget = MsBudget();
  size_t ops = 0;
  double elapsed = 0.0;
  while (elapsed < budget) {
    auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) fn();
    elapsed += ms(clock::now() - t0);
    ops += batch;
  }
  return ops / (elapsed / 1000.0);
}

// Measures two plans in alternating time slices and returns their ops/sec
// as {a, b}. Frequency scaling and noisy neighbors hit adjacent slices
// almost identically, so the *ratio* stays honest even when absolute
// numbers drift — which separately-timed windows cannot guarantee.
std::pair<double, double> MeasurePairedOpsPerSec(
    const std::function<void()>& a, const std::function<void()>& b) {
  using clock = std::chrono::steady_clock;
  auto ms = [](clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  // Calibrate on the first plan: grow the slice until it costs >= 2 ms.
  size_t batch = 1;
  for (;;) {
    auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) a();
    double elapsed = ms(clock::now() - t0);
    if (elapsed >= 2.0 || batch >= (size_t(1) << 24)) break;
    batch *= 4;
  }
  b();  // warm the second plan's caches before its first timed slice
  // Ratios need many slice pairs to average out scheduler interrupts on a
  // small host, so the pair gets a floor budget even at smoke scale.
  const double budget = std::max(2.0 * MsBudget(), 150.0);
  size_t ops_a = 0;
  size_t ops_b = 0;
  double elapsed_a = 0.0;
  double elapsed_b = 0.0;
  bool a_first = true;
  while (elapsed_a + elapsed_b < budget) {
    const std::function<void()>& first = a_first ? a : b;
    const std::function<void()>& second = a_first ? b : a;
    auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) first();
    auto t1 = clock::now();
    for (size_t i = 0; i < batch; ++i) second();
    auto t2 = clock::now();
    (a_first ? elapsed_a : elapsed_b) += ms(t1 - t0);
    (a_first ? elapsed_b : elapsed_a) += ms(t2 - t1);
    ops_a += batch;
    ops_b += batch;
    a_first = !a_first;  // alternate order so ramp trends cancel
  }
  return {ops_a / (elapsed_a / 1000.0), ops_b / (elapsed_b / 1000.0)};
}

struct Row {
  std::string name;
  size_t bytes_per_op = 0;  // 0 when bytes/sec is meaningless
  double scalar_ops = 0.0;
  double accel_ops = 0.0;
};

// Times `fn` under both dispatch modes. The scalar run truly exercises the
// reference path: force_scalar gates every kernel (hash, Montgomery, CRT).
Row Bench(const char* name, size_t bytes_per_op,
          const std::function<void()>& fn) {
  crypto::Backend& backend = crypto::Backend::Instance();
  Row row;
  row.name = name;
  row.bytes_per_op = bytes_per_op;
  backend.set_force_scalar(true);
  row.scalar_ops = MeasureOpsPerSec(fn);
  backend.set_force_scalar(false);
  row.accel_ops = MeasureOpsPerSec(fn);
  return row;
}

}  // namespace

int main() {
  crypto::Backend& backend = crypto::Backend::Instance();
  const bool env_forced = backend.force_scalar();
  std::printf("# Crypto micro benches: scalar vs accelerated dispatch\n");
  std::printf("# hash kernel: %s   modexp kernel: %s%s\n",
              backend.hash_kernel(), backend.modexp_kernel(),
              env_forced ? "   (SAE_FORCE_SCALAR set: both runs scalar)"
                         : "");
  std::printf("%-28s %14s %14s %9s %12s\n", "# primitive", "scalar-ops/s",
              "accel-ops/s", "speedup", "accel-MB/s");

  std::vector<Row> rows;

  std::vector<uint8_t> record(500, 0xAB);
  rows.push_back(Bench("sha1_500B", record.size(), [&] {
    Consume(crypto::ComputeDigest(record.data(), record.size(),
                                  crypto::HashScheme::kSha1));
  }));
  rows.push_back(Bench("sha256_500B", record.size(), [&] {
    Consume(crypto::ComputeDigest(record.data(), record.size(),
                                  crypto::HashScheme::kSha256Trunc));
  }));

  std::vector<uint8_t> big(64 * 1024, 0x5A);
  rows.push_back(Bench("sha1_64KiB", big.size(), [&] {
    Consume(crypto::ComputeDigest(big.data(), big.size(),
                                  crypto::HashScheme::kSha1));
  }));

  // Batched record digesting: the DigestRecords/HashMany shape — 1024
  // records of 500 bytes per call, where the multi-buffer kernels apply.
  constexpr size_t kBatch = 1024;
  std::vector<uint8_t> records(kBatch * 500);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i] = uint8_t(i * 131 + 7);
  }
  std::vector<crypto::ByteSpan> spans;
  for (size_t i = 0; i < kBatch; ++i) {
    spans.push_back(crypto::ByteSpan{records.data() + i * 500, 500});
  }
  std::vector<crypto::Digest> outs(kBatch);
  for (auto scheme :
       {crypto::HashScheme::kSha1, crypto::HashScheme::kSha256Trunc}) {
    const char* name = scheme == crypto::HashScheme::kSha1
                           ? "hash_many_sha1_1Kx500B"
                           : "hash_many_sha256t_1Kx500B";
    Row row = Bench(name, kBatch * 500, [&] {
      crypto::ComputeDigests(spans.data(), spans.size(), outs.data(), scheme);
      Consume(outs[0]);
    });
    rows.push_back(row);
  }

  // One MB-tree node digest (127-entry fanout): a single contiguous hash
  // over the child-digest array, so it rides the single-stream kernel.
  std::vector<crypto::Digest> children(127);
  for (size_t i = 0; i < children.size(); ++i) {
    children[i] = crypto::ComputeDigest(&i, sizeof(i));
  }
  rows.push_back(Bench("combine_digests_127", 127 * crypto::Digest::kSize,
                       [&] {
                         Consume(crypto::CombineDigests(children.data(),
                                                        children.size()));
                       }));

  // XOR folding a 5000-record result: pure Digest algebra, no dispatch —
  // included so regressions in the fold itself stay visible.
  std::vector<crypto::Digest> digests(5000);
  for (size_t i = 0; i < digests.size(); ++i) {
    digests[i] = crypto::ComputeDigest(&i, sizeof(i));
  }
  rows.push_back(Bench("digest_xor_fold_5000", 0, [&] {
    crypto::Digest acc;
    for (const auto& d : digests) acc ^= d;
    Consume(acc);
  }));

  // RSA-1024: sign (CRT + Montgomery vs scalar square-and-multiply) and
  // verify (e = 65537, Montgomery vs scalar).
  Rng rng(0xBEEF);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&rng, 1024);
  crypto::Digest root = crypto::ComputeDigest("root", 4);
  crypto::RsaSignature sig = crypto::RsaSignDigest(key, root);
  rows.push_back(Bench("rsa1024_sign", 0,
                       [&] { Consume(crypto::RsaSignDigest(key, root)); }));
  rows.push_back(Bench("rsa1024_verify", 0, [&] {
    Status st = crypto::RsaVerifyDigest(key.PublicKey(), root, sig);
    g_sink ^= uint8_t(st.ok());
  }));

  // Bare 1024-bit modexp with a full-width exponent — the Montgomery
  // ladder itself, free of PKCS#1 framing and CRT splitting.
  crypto::BigInt base = crypto::BigInt::FromBytes(sig.data(), sig.size());
  rows.push_back(Bench("modexp_1024", 0, [&] {
    Consume(crypto::BigInt::ModPow(base, key.d, key.n));
  }));

  // Condensed-RSA batch verification sweep: VerifyBatch vs the per-item
  // VerifyAnswer loop on the same items, under the accelerated dispatch.
  // The contract this pins: batched is never slower at ANY size — the
  // combined randomized check runs its products in one Montgomery context,
  // and a crossover guard takes the per-item plan for lone items.
  backend.set_force_scalar(false);
  sigchain::SigChainOwner::Options owner_opts;
  owner_opts.record_size = 64;
  owner_opts.rsa_modulus_bits = 1024;
  sigchain::SigChainSp::Options sp_opts;
  sp_opts.record_size = 64;
  sp_opts.signature_bytes = 128;  // matches 1024-bit RSA
  sigchain::SigChainOwner owner(owner_opts);
  sigchain::SigChainSp sp(sp_opts);
  storage::RecordCodec codec(64);
  std::vector<storage::Record> dataset;
  for (uint64_t id = 1; id <= 2000; ++id) {
    dataset.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  auto dataset_sigs = owner.SignDataset(dataset);
  SAE_CHECK(dataset_sigs.ok());
  SAE_CHECK(
      sp.LoadDataset(dataset, dataset_sigs.value(), owner.public_key()).ok());
  sp.SetEpoch(owner.epoch(), owner.epoch_signature());
  auto make_item = [&](uint32_t lo, uint32_t hi) {
    auto response = std::move(sp.ExecuteRange(lo, hi)).ValueOrDie();
    sigchain::SigChainClient::BatchItem item;
    item.request = dbms::QueryRequest::Scan(lo, hi);
    item.claimed = dbms::EvaluateAnswer(item.request, response.results);
    item.witness = std::move(response.results);
    item.vo = std::move(response.vo);
    return item;
  };
  std::string batch_json;
  std::printf("%-28s %14s %14s %9s\n", "# batch_verify (items)",
              "per-item/s", "batched/s", "ratio");
  for (size_t n : {size_t(1), size_t(2), size_t(4), size_t(8), size_t(16),
                   size_t(32)}) {
    std::vector<sigchain::SigChainClient::BatchItem> items;
    for (size_t i = 0; i < n; ++i) {
      uint32_t lo = uint32_t(100 + 37 * i);
      items.push_back(make_item(lo, lo + 190));  // ~20 records per item
    }
    auto run_per_item = [&] {
      for (const auto& item : items) {
        Status st = sigchain::SigChainClient::VerifyAnswer(
            item.request, item.claimed, item.witness, item.vo,
            owner.public_key(), codec, crypto::HashScheme::kSha1,
            owner.epoch());
        g_sink ^= uint8_t(st.ok());
      }
    };
    uint64_t seed = 1;
    auto run_batched = [&] {
      auto verdicts = sigchain::SigChainClient::VerifyBatch(
          items, owner.public_key(), codec, crypto::HashScheme::kSha1,
          owner.epoch(), seed++);
      g_sink ^= uint8_t(verdicts[0].ok());
    };
    auto [per_item, batched] =
        MeasurePairedOpsPerSec(run_per_item, run_batched);
    per_item *= double(n);
    batched *= double(n);
    double ratio = batched / per_item;
    std::printf("%-28zu %14.0f %14.0f %8.2fx\n", n, per_item, batched, ratio);
    std::fflush(stdout);
    char bbuf[192];
    std::snprintf(bbuf, sizeof(bbuf),
                  "    {\"batch\": %zu, \"per_item_items_per_sec\": %.1f, "
                  "\"batched_items_per_sec\": %.1f, \"ratio\": %.3f}",
                  n, per_item, batched, ratio);
    if (!batch_json.empty()) batch_json += ",\n";
    batch_json += bbuf;
  }

  std::string json;
  char buf[256];
  for (const Row& row : rows) {
    double speedup = row.accel_ops / row.scalar_ops;
    double mbps = row.bytes_per_op != 0
                      ? row.accel_ops * double(row.bytes_per_op) / 1e6
                      : 0.0;
    std::printf("%-28s %14.0f %14.0f %8.2fx %12.1f\n", row.name.c_str(),
                row.scalar_ops, row.accel_ops, speedup, mbps);
    std::fflush(stdout);
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"scalar_ops_per_sec\": %.1f, "
                  "\"accel_ops_per_sec\": %.1f, \"speedup\": %.3f, "
                  "\"bytes_per_op\": %zu}",
                  row.name.c_str(), row.scalar_ops, row.accel_ops, speedup,
                  row.bytes_per_op);
    if (!json.empty()) json += ",\n";
    json += buf;
  }

  const char* json_path = std::getenv("SAE_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_crypto.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_crypto\",\n"
                 "  \"hash_kernel\": \"%s\", \"modexp_kernel\": \"%s\",\n"
                 "  \"primitives\": [\n%s\n  ],\n"
                 "  \"batch_verify\": [\n%s\n  ]\n}\n",
                 backend.hash_kernel(), backend.modexp_kernel(),
                 json.c_str(), batch_json.c_str());
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }
  return 0;
}
