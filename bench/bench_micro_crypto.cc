// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Micro benchmarks for the crypto substrate (google-benchmark): digest
// throughput at the paper's 500-byte record size, XOR folding, Merkle
// combination, and RSA sign/verify — the primitives behind Figs. 6 and 7.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/random.h"

namespace {

using namespace sae;

void BM_Sha1_500B(benchmark::State& state) {
  std::vector<uint8_t> record(500, 0xAB);
  for (auto _ : state) {
    auto d = crypto::Sha1::Hash(record.data(), record.size());
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 500);
}
BENCHMARK(BM_Sha1_500B);

void BM_Sha256_500B(benchmark::State& state) {
  std::vector<uint8_t> record(500, 0xAB);
  for (auto _ : state) {
    auto d = crypto::Sha256::Hash(record.data(), record.size());
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 500);
}
BENCHMARK(BM_Sha256_500B);

void BM_Sha1_Throughput64K(benchmark::State& state) {
  std::vector<uint8_t> buf(64 * 1024, 0x5A);
  for (auto _ : state) {
    auto d = crypto::Sha1::Hash(buf.data(), buf.size());
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(buf.size()));
}
BENCHMARK(BM_Sha1_Throughput64K);

void BM_DigestXorFold(benchmark::State& state) {
  // XOR-folding a 5000-record result — the SAE client's per-query work
  // minus the hashing itself.
  std::vector<crypto::Digest> digests(5000);
  for (size_t i = 0; i < digests.size(); ++i) {
    digests[i] = crypto::ComputeDigest(&i, sizeof(i));
  }
  for (auto _ : state) {
    crypto::Digest acc;
    for (const auto& d : digests) acc ^= d;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 5000);
}
BENCHMARK(BM_DigestXorFold);

void BM_CombineDigests_Fanout127(benchmark::State& state) {
  // One MB-tree node digest (127-entry leaf).
  std::vector<crypto::Digest> digests(127);
  for (size_t i = 0; i < digests.size(); ++i) {
    digests[i] = crypto::ComputeDigest(&i, sizeof(i));
  }
  for (auto _ : state) {
    auto d = crypto::CombineDigests(digests.data(), digests.size());
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CombineDigests_Fanout127);

class RsaFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!key) {
      Rng rng(0xBEEF);
      key = std::make_unique<crypto::RsaPrivateKey>(
          crypto::RsaGenerateKey(&rng, 1024));
      digest = crypto::ComputeDigest("root", 4);
      signature = crypto::RsaSignDigest(*key, digest);
    }
  }
  static std::unique_ptr<crypto::RsaPrivateKey> key;
  static crypto::Digest digest;
  static crypto::RsaSignature signature;
};

std::unique_ptr<crypto::RsaPrivateKey> RsaFixture::key;
crypto::Digest RsaFixture::digest;
crypto::RsaSignature RsaFixture::signature;

BENCHMARK_F(RsaFixture, Sign1024)(benchmark::State& state) {
  for (auto _ : state) {
    auto sig = crypto::RsaSignDigest(*key, digest);
    benchmark::DoNotOptimize(sig);
  }
}

BENCHMARK_F(RsaFixture, Verify1024)(benchmark::State& state) {
  for (auto _ : state) {
    auto st = crypto::RsaVerifyDigest(key->PublicKey(), digest, signature);
    benchmark::DoNotOptimize(st);
  }
}

}  // namespace
