// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Three-way scheme comparison: SAE (this paper) vs TOM (MB-tree VOs) vs the
// signature-chaining / Condensed-RSA baseline from the paper's related work
// ([8] Pang & Tan; Mykletun et al.). One table, one workload, four metrics:
// authentication bytes per query, SP index cost, extra SP storage, and
// client verification time.

#include "fig_common.h"
#include "sigchain/sig_chain.h"

using namespace sae;
using namespace sae::bench;

int main() {
  // 20K keeps the signature-chaining DO's n RSA signings (~3.8 ms each)
  // within a minute; the scheme trade-offs are scale-independent.
  size_t n = size_t(20'000 * BenchScale());
  if (n < 1000) n = 1000;
  std::printf("# Scheme comparison at n=%zu (UNF), %zu queries, extent "
              "0.5%%\n",
              n, kQueriesPerPoint);
  std::printf("# %-22s %14s %14s %14s %14s\n", "scheme", "auth B/query",
              "SPidx ms", "extra SP MB", "verify ms");

  auto dataset = MakeDataset(workload::Distribution::kUniform, n);
  auto queries = MakeQueries();
  storage::RecordCodec codec(kRecordSize);
  sim::CostModel cost;
  double nq = double(queries.size());

  // --- SAE ---
  {
    auto sp = BuildSaeSp(dataset);
    auto te = BuildTe(dataset);
    uint64_t auth = 0;
    double verify_ms = 0;
    auto idx0 = sp->index_pool_stats();
    for (const auto& q : queries) {
      auto results = sp->ExecuteRange(q.lo, q.hi).ValueOrDie();
      auto vt = te->GenerateVt(q.lo, q.hi).ValueOrDie();
      auth += core::SerializeVt(vt).size();
      sim::Stopwatch watch;
      SAE_CHECK(core::Client::VerifyResult(results, vt, codec).ok());
      verify_ms += watch.ElapsedMs();
    }
    uint64_t idx = (sp->index_pool_stats() - idx0).accesses;
    std::printf("  %-22s %14.0f %14.1f %14.2f %14.2f\n", "SAE (this paper)",
                double(auth) / nq, cost.AccessCostMs(idx) / nq,
                (sp->IndexStorageBytes() + te->StorageBytes()) / 1048576.0,
                verify_ms / nq);
    std::fflush(stdout);
  }

  // --- TOM ---
  {
    TomSpBundle tom = BuildTomSp(dataset);
    uint64_t auth = 0;
    double verify_ms = 0;
    auto idx0 = tom.sp->index_pool_stats();
    for (const auto& q : queries) {
      auto response = tom.sp->ExecuteRange(q.lo, q.hi).ValueOrDie();
      auth += response.vo.Serialize().size();
      sim::Stopwatch watch;
      SAE_CHECK(core::TomClient::Verify(q.lo, q.hi, response.results,
                                        response.vo, tom.public_key, codec)
                    .ok());
      verify_ms += watch.ElapsedMs();
    }
    uint64_t idx = (tom.sp->index_pool_stats() - idx0).accesses;
    std::printf("  %-22s %14.0f %14.1f %14.2f %14.2f\n", "TOM (MB-tree VO)",
                double(auth) / nq, cost.AccessCostMs(idx) / nq,
                tom.sp->IndexStorageBytes() / 1048576.0, verify_ms / nq);
    std::fflush(stdout);
  }

  // --- signature chaining / Condensed-RSA ---
  {
    sigchain::SigChainOwner::Options owner_options;
    owner_options.record_size = kRecordSize;
    sigchain::SigChainOwner owner(owner_options);
    auto sigs = owner.SignDataset(dataset).ValueOrDie();

    sigchain::SigChainSp::Options sp_options;
    sp_options.record_size = kRecordSize;
    sigchain::SigChainSp sp(sp_options);
    SAE_CHECK_OK(sp.LoadDataset(dataset, sigs, owner.public_key()));

    uint64_t auth = 0;
    double verify_ms = 0;
    auto idx0 = sp.index_pool_stats();
    for (const auto& q : queries) {
      auto response = sp.ExecuteRange(q.lo, q.hi).ValueOrDie();
      auth += response.vo.Serialize().size();
      sim::Stopwatch watch;
      SAE_CHECK(sigchain::SigChainClient::Verify(q.lo, q.hi,
                                                 response.results,
                                                 response.vo,
                                                 owner.public_key(), codec)
                    .ok());
      verify_ms += watch.ElapsedMs();
    }
    uint64_t idx = (sp.index_pool_stats() - idx0).accesses;
    std::printf("  %-22s %14.0f %14.1f %14.2f %14.2f\n",
                "SigChain (Condensed)", double(auth) / nq,
                cost.AccessCostMs(idx) / nq,
                sp.SignatureStorageBytes() / 1048576.0, verify_ms / nq);
  }

  std::printf("#\n# SAE: constant 29-byte token, no SP-side auth storage "
              "beyond a plain index.\n");
  std::printf("# SigChain: small VO but 128 B/record signatures and "
              "3 RSA signings per update.\n");
  std::printf("# TOM: mid-size VO, digest-bloated index, DO mirrors the "
              "whole ADS.\n");
  return 0;
}
