// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Ablation: update cost (paper §III claims O(log n) XB-tree maintenance).
// Measures node accesses per insert/delete for the TE's XB-tree and for the
// TOM ADS (MB-tree at the SP; the DO pays the same again, plus an RSA
// signature per update — SAE needs no signing at all).
//
// Second section: mixed read/write workloads (90/10 and 50/50 query/update)
// through the QueryEngine's RunMixed against the reader-writer systems —
// queries take the shared lock, updates the unique lock, all interleaving
// on one system. Reports q/s plus mean/max update latency per model.

#include "core/query_engine.h"
#include "core/sharded_system.h"
#include "fig_common.h"
#include "util/random.h"

using namespace sae;
using namespace sae::bench;

namespace {

// One shuffled 90/10 or 50/50 op mix over a loaded system's key domain.
std::vector<core::BatchOp> MakeMixedOps(size_t total, double update_frac,
                                        uint64_t seed) {
  storage::RecordCodec codec(kRecordSize);
  Rng rng(seed);
  std::vector<core::BatchOp> ops;
  ops.reserve(total);
  size_t updates = size_t(double(total) * update_frac);
  for (size_t i = 0; i < total; ++i) {
    bool is_update = i * updates / total != (i + 1) * updates / total;
    if (is_update) {
      ops.push_back(core::BatchOp::MakeInsert(codec.MakeRecord(
          50'000'000 + seed * 1'000'000 + i,
          uint32_t(rng.NextBounded(kDomainMax)))));
    } else {
      uint32_t lo = uint32_t(rng.NextBounded(kDomainMax));
      uint32_t extent = uint32_t(double(kDomainMax) * kQueryExtent);
      ops.push_back(core::BatchOp::MakeQuery(lo, lo + extent));
    }
  }
  return ops;
}

void RunMixedSection() {
  std::printf("\n# Mixed read/write workload (QueryEngine::RunMixed, "
              "%zu ops, 4 workers)\n",
              size_t(2000));
  std::printf("# model  mix        q/s     upd/s   upd.mean.ms  upd.max.ms  "
              "accepted\n");

  size_t n = size_t(50'000 * BenchScale());
  if (n < 2000) n = 2000;
  auto dataset = MakeDataset(workload::Distribution::kUniform, n);
  constexpr size_t kOps = 2000;

  for (double update_frac : {0.10, 0.50}) {
    const char* mix = update_frac == 0.10 ? "90/10" : "50/50";
    storage::RecordCodec codec(kRecordSize);
    {
      core::SaeSystem::Options options;
      options.record_size = kRecordSize;
      core::SaeSystem system(options);
      SAE_CHECK_OK(system.Load(dataset));
      // Warm-up update: the first write stages the replay-adversary
      // snapshot (one O(n) scan); keep it out of the measured mix.
      SAE_CHECK_OK(system.Insert(codec.MakeRecord(99'999'999, 0)));
      core::QueryEngine engine(core::QueryEngine::Options{4});
      core::MixedStats stats = engine.RunMixed(
          &system, MakeMixedOps(kOps, update_frac, 1));
      std::printf("SAE     %-8s %8.0f %8.0f %12.3f %11.3f %9zu\n", mix,
                  stats.QueriesPerSecond(),
                  stats.wall_ms > 0
                      ? double(stats.updates) * 1000.0 / stats.wall_ms
                      : 0.0,
                  stats.MeanUpdateLatencyMs(), stats.max_update_latency_ms,
                  stats.accepted);
    }
    {
      core::TomSystem::Options options;
      options.record_size = kRecordSize;
      core::TomSystem system(options);
      SAE_CHECK_OK(system.Load(dataset));
      SAE_CHECK_OK(system.Insert(codec.MakeRecord(99'999'999, 0)));
      core::QueryEngine engine(core::QueryEngine::Options{4});
      core::MixedStats stats = engine.RunMixed(
          &system, MakeMixedOps(kOps, update_frac, 2));
      std::printf("TOM     %-8s %8.0f %8.0f %12.3f %11.3f %9zu\n", mix,
                  stats.QueriesPerSecond(),
                  stats.wall_ms > 0
                      ? double(stats.updates) * 1000.0 / stats.wall_ms
                      : 0.0,
                  stats.MeanUpdateLatencyMs(), stats.max_update_latency_ms,
                  stats.accepted);
    }
    std::fflush(stdout);
  }
}

// Shard-count axis for the write path: the same 50/50 mixed schedule
// against a sharded SAE deployment as the shard count sweeps. Unsharded,
// every update serializes on one writer lock; sharded, an update locks
// only the shard owning its key, so writers to different shards commit in
// parallel and mean update latency is what shrinks (q/s moves less — the
// read path was already concurrent).
void RunShardedMixedSection() {
  std::printf("\n# Sharded SAE, 50/50 mixed workload vs shard count "
              "(RunMixed, %zu ops, 4 workers)\n",
              size_t(2000));
  std::printf("# shards      q/s     upd/s   upd.mean.ms  upd.max.ms  "
              "accepted\n");

  size_t n = size_t(50'000 * BenchScale());
  if (n < 2000) n = 2000;
  auto dataset = MakeDataset(workload::Distribution::kUniform, n);
  storage::RecordCodec codec(kRecordSize);
  constexpr size_t kOps = 2000;

  for (size_t shards : ShardCounts()) {
    core::ShardedSaeSystem::Options options;
    options.base.record_size = kRecordSize;
    core::ShardedSaeSystem system(
        core::ShardRouter::Balanced(dataset, shards), options);
    SAE_CHECK_OK(system.Load(dataset));
    // Warm-up update per shard: the first write to each shard stages its
    // replay-adversary snapshot (an O(shard size) scan); keep that out of
    // the measured mix, as the unsharded section does.
    for (size_t s = 0; s < system.num_shards(); ++s) {
      SAE_CHECK_OK(system.Insert(codec.MakeRecord(
          90'000'000 + s, uint32_t(system.router().shard_lo(s)))));
    }
    core::QueryEngine engine(core::QueryEngine::Options{4});
    core::MixedStats stats =
        engine.RunMixedBatch(&system, MakeMixedOps(kOps, 0.50, 3));
    std::printf("%8zu %8.0f %9.0f %12.3f %11.3f %9zu\n", system.num_shards(),
                stats.QueriesPerSecond(),
                stats.wall_ms > 0
                    ? double(stats.updates) * 1000.0 / stats.wall_ms
                    : 0.0,
                stats.MeanUpdateLatencyMs(), stats.max_update_latency_ms,
                stats.accepted);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("# Ablation: update cost (node accesses per operation)\n");
  std::printf("#        n   XB.ins   XB.del   MB.ins   MB.del\n");

  storage::RecordCodec codec(kRecordSize);
  constexpr size_t kOps = 500;

  for (size_t base : {20'000, 50'000, 100'000, 200'000}) {
    size_t n = size_t(double(base) * BenchScale());
    if (n < 2000) n = 2000;
    auto dataset = MakeDataset(workload::Distribution::kUniform, n);

    // --- XB-tree (TE) ---
    auto te = BuildTe(dataset);
    Rng rng(1);
    std::vector<storage::Record> fresh;
    for (size_t i = 0; i < kOps; ++i) {
      fresh.push_back(codec.MakeRecord(
          10'000'000 + i, uint32_t(rng.NextBounded(kDomainMax))));
    }
    auto te0 = te->pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(te->InsertRecord(r));
    double xb_ins =
        double((te->pool_stats() - te0).accesses) / double(kOps);
    te0 = te->pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(te->DeleteRecord(r.key, r.id));
    double xb_del = double((te->pool_stats() - te0).accesses) / double(kOps);

    // --- MB-tree (TOM SP mirror; the DO repeats this and re-signs) ---
    TomSpBundle tom = BuildTomSp(dataset, 512);
    auto idx0 = tom.sp->index_pool_stats();
    auto heap0 = tom.sp->heap_pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(tom.sp->ApplyInsert(r, {}, 0));
    double mb_ins = double((tom.sp->index_pool_stats() - idx0).accesses +
                           (tom.sp->heap_pool_stats() - heap0).accesses) /
                    double(kOps);
    idx0 = tom.sp->index_pool_stats();
    heap0 = tom.sp->heap_pool_stats();
    for (const auto& r : fresh) {
      SAE_CHECK_OK(tom.sp->ApplyDelete(r.id, {}, 0));
    }
    double mb_del = double((tom.sp->index_pool_stats() - idx0).accesses +
                           (tom.sp->heap_pool_stats() - heap0).accesses) /
                    double(kOps);

    std::printf("%10zu %8.1f %8.1f %8.1f %8.1f\n", n, xb_ins, xb_del, mb_ins,
                mb_del);
    std::fflush(stdout);
  }

  RunMixedSection();
  RunShardedMixedSection();
  return 0;
}
