// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Ablation: update cost (paper §III claims O(log n) XB-tree maintenance).
// Measures node accesses per insert/delete for the TE's XB-tree and for the
// TOM ADS (MB-tree at the SP; the DO pays the same again, plus an RSA
// signature per update — SAE needs no signing at all).

#include "fig_common.h"

using namespace sae;
using namespace sae::bench;

int main() {
  std::printf("# Ablation: update cost (node accesses per operation)\n");
  std::printf("#        n   XB.ins   XB.del   MB.ins   MB.del\n");

  storage::RecordCodec codec(kRecordSize);
  constexpr size_t kOps = 500;

  for (size_t base : {20'000, 50'000, 100'000, 200'000}) {
    size_t n = size_t(double(base) * BenchScale());
    if (n < 2000) n = 2000;
    auto dataset = MakeDataset(workload::Distribution::kUniform, n);

    // --- XB-tree (TE) ---
    auto te = BuildTe(dataset);
    Rng rng(1);
    std::vector<storage::Record> fresh;
    for (size_t i = 0; i < kOps; ++i) {
      fresh.push_back(codec.MakeRecord(
          10'000'000 + i, uint32_t(rng.NextBounded(kDomainMax))));
    }
    auto te0 = te->pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(te->InsertRecord(r));
    double xb_ins =
        double((te->pool_stats() - te0).accesses) / double(kOps);
    te0 = te->pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(te->DeleteRecord(r.key, r.id));
    double xb_del = double((te->pool_stats() - te0).accesses) / double(kOps);

    // --- MB-tree (TOM SP mirror; the DO repeats this and re-signs) ---
    TomSpBundle tom = BuildTomSp(dataset, 512);
    auto idx0 = tom.sp->index_pool_stats();
    auto heap0 = tom.sp->heap_pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(tom.sp->ApplyInsert(r, {}));
    double mb_ins = double((tom.sp->index_pool_stats() - idx0).accesses +
                           (tom.sp->heap_pool_stats() - heap0).accesses) /
                    double(kOps);
    idx0 = tom.sp->index_pool_stats();
    heap0 = tom.sp->heap_pool_stats();
    for (const auto& r : fresh) SAE_CHECK_OK(tom.sp->ApplyDelete(r.id, {}));
    double mb_del = double((tom.sp->index_pool_stats() - idx0).accesses +
                           (tom.sp->heap_pool_stats() - heap0).accesses) /
                    double(kOps);

    std::printf("%10zu %8.1f %8.1f %8.1f %8.1f\n", n, xb_ins, xb_del, mb_ins,
                mb_del);
    std::fflush(stdout);
  }
  return 0;
}
