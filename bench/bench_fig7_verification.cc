// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Figure 7: client-side verification time (ms, wall clock) vs dataset
// cardinality n, for UNF and SKW. In SAE the client hashes every result
// record and XORs; in TOM it also replays the VO to rebuild the signed root
// digest and checks the RSA signature. Both are linear in the result size;
// SKW is cheaper because the average result is smaller.

#include "fig_common.h"

using namespace sae;
using namespace sae::bench;

int main() {
  PrintHeader("Figure 7: verification time (ms) vs n",
              "# dist        n  Client(SAE)  Client(TOM)  avg|RS|");

  BenchJson json("fig7_verification");
  storage::RecordCodec codec(kRecordSize);
  auto queries = MakeQueries();
  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kSkewed}) {
    for (size_t n : Cardinalities()) {
      auto dataset = MakeDataset(dist, n);
      double nq = double(queries.size());
      size_t total_results = 0;

      double sae_ms = 0;
      {
        auto sp = BuildSaeSp(dataset);
        auto te = BuildTe(dataset);
        for (const auto& q : queries) {
          auto results = sp->ExecuteRange(q.lo, q.hi);
          SAE_CHECK(results.ok());
          auto vt = te->GenerateVt(q.lo, q.hi);
          SAE_CHECK(vt.ok());
          total_results += results.value().size();

          sim::Stopwatch watch;
          Status st = core::Client::VerifyResult(results.value(), vt.value(),
                                                 codec);
          sae_ms += watch.ElapsedMs();
          SAE_CHECK(st.ok());
        }
      }

      double tom_ms = 0;
      {
        TomSpBundle tom = BuildTomSp(dataset);
        for (const auto& q : queries) {
          auto response = tom.sp->ExecuteRange(q.lo, q.hi);
          SAE_CHECK(response.ok());

          sim::Stopwatch watch;
          Status st = core::TomClient::Verify(
              q.lo, q.hi, response.value().results, response.value().vo,
              tom.public_key, codec);
          tom_ms += watch.ElapsedMs();
          SAE_CHECK(st.ok());
        }
      }

      std::printf("%6s %10zu %12.3f %12.3f %8.0f\n", DistName(dist), n,
                  sae_ms / nq, tom_ms / nq, double(total_results) / nq);
      std::fflush(stdout);
      json.Row({{"dist", DistName(dist)}, {"n", std::to_string(n)}},
               {{"sae_verify_ms", sae_ms / nq},
                {"tom_verify_ms", tom_ms / nq}});
    }
  }
  return json.Write();
}
