// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Ablation: buffer-pool capacity vs page-store reads. The paper charges a
// flat 10 ms per node access; this ablation quantifies how far an LRU cache
// would bend that cost in practice: with a pool large enough to hold the
// index's upper levels, repeated queries only miss on leaves and dataset
// pages.

#include "fig_common.h"

using namespace sae;
using namespace sae::bench;

int main() {
  std::printf("# Ablation: SP buffer-pool capacity vs misses (SAE B+-tree)\n");
  std::printf("# n=100K (scaled), 100 queries, extent 0.5%%\n");
  std::printf("# pool_pages    accesses      misses   miss_rate\n");

  size_t n = size_t(100'000 * BenchScale());
  if (n < 1000) n = 1000;
  auto dataset = MakeDataset(workload::Distribution::kUniform, n);
  auto queries = MakeQueries();

  for (size_t pool_pages : {16, 64, 256, 1024, 4096, 16384}) {
    core::ServiceProvider::Options options;
    options.record_size = kRecordSize;
    options.index_pool_pages = pool_pages;
    options.heap_pool_pages = pool_pages;
    core::ServiceProvider sp(options);
    SAE_CHECK_OK(sp.LoadDataset(dataset));

    auto idx0 = sp.index_pool_stats();
    auto heap0 = sp.heap_pool_stats();
    for (const auto& q : queries) {
      SAE_CHECK(sp.ExecuteRange(q.lo, q.hi).ok());
    }
    auto idx = sp.index_pool_stats() - idx0;
    auto heap = sp.heap_pool_stats() - heap0;
    uint64_t accesses = idx.accesses + heap.accesses;
    uint64_t misses = idx.misses + heap.misses;
    std::printf("%12zu %11llu %11llu %10.1f%%\n", pool_pages,
                (unsigned long long)accesses, (unsigned long long)misses,
                100.0 * double(misses) / double(accesses));
    std::fflush(stdout);
  }
  return 0;
}
