// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Figure 8: storage cost (MB) vs dataset cardinality n, for UNF and SKW.
// Series: SP(TOM) = dataset file + MB-tree; SP(SAE) = dataset file +
// B+-tree; TE(SAE) = XB-tree (nodes + duplicate pages). The paper reports
// near-identical SP footprints (dominated by the dataset) and a tiny TE.

#include "fig_common.h"

using namespace sae;
using namespace sae::bench;

int main() {
  PrintHeader("Figure 8: storage cost (MB) vs n",
              "# dist        n     SP(TOM)     SP(SAE)     TE(SAE)  "
              "TOMidx  SAEidx");

  BenchJson json("fig8_storage");
  constexpr double kMb = 1048576.0;
  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kSkewed}) {
    for (size_t n : Cardinalities()) {
      auto dataset = MakeDataset(dist, n);

      double sae_sp_mb, sae_idx_mb, te_mb;
      {
        auto sp = BuildSaeSp(dataset);
        auto te = BuildTe(dataset);
        sae_sp_mb = sp->StorageBytes() / kMb;
        sae_idx_mb = sp->IndexStorageBytes() / kMb;
        te_mb = te->StorageBytes() / kMb;
      }

      double tom_sp_mb, tom_idx_mb;
      {
        TomSpBundle tom = BuildTomSp(dataset);
        tom_sp_mb = tom.sp->StorageBytes() / kMb;
        tom_idx_mb = tom.sp->IndexStorageBytes() / kMb;
      }

      std::printf("%6s %10zu %11.1f %11.1f %11.2f %7.1f %7.1f\n",
                  DistName(dist), n, tom_sp_mb, sae_sp_mb, te_mb, tom_idx_mb,
                  sae_idx_mb);
      std::fflush(stdout);
      json.Row({{"dist", DistName(dist)}, {"n", std::to_string(n)}},
               {{"tom_sp_mb", tom_sp_mb},
                {"sae_sp_mb", sae_sp_mb},
                {"te_mb", te_mb}});
    }
  }
  return json.Write();
}
