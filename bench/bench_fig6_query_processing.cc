// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Figure 6: query processing time (ms) vs dataset cardinality n, for UNF and
// SKW. Series: SP(TOM), SP(SAE) and TE(SAE), charging the paper's
// 10 ms per node access.
//
// The paper does not state which page accesses the 10 ms charge covers (see
// docs/ARCHITECTURE.md §5.1). Both accountings are printed:
//   * index-only — index node accesses (the component that differs between
//     the B+-tree and the lower-fanout MB-tree);
//   * total      — index nodes plus dataset-file pages (the dataset term is
//     identical in both models and compresses the gap).
// The paper's reported 24-39% SP reduction falls between the two.

#include "fig_common.h"

using namespace sae;
using namespace sae::bench;

int main() {
  PrintHeader(
      "Figure 6: query processing time (ms, 10ms/node access) vs n",
      "# dist        n  SP(TOM)idx  SP(SAE)idx   red%  SP(TOM)tot  "
      "SP(SAE)tot   red%     TE(SAE)");

  BenchJson json("fig6_query_processing");
  sim::CostModel cost;
  auto queries = MakeQueries();
  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kSkewed}) {
    for (size_t n : Cardinalities()) {
      auto dataset = MakeDataset(dist, n);
      double nq = double(queries.size());

      uint64_t sae_idx = 0, sae_heap = 0, te_acc = 0;
      {
        auto sp = BuildSaeSp(dataset);
        auto te = BuildTe(dataset);
        auto idx0 = sp->index_pool_stats();
        auto heap0 = sp->heap_pool_stats();
        auto te0 = te->pool_stats();
        for (const auto& q : queries) {
          SAE_CHECK(sp->ExecuteRange(q.lo, q.hi).ok());
          SAE_CHECK(te->GenerateVt(q.lo, q.hi).ok());
        }
        sae_idx = (sp->index_pool_stats() - idx0).accesses;
        sae_heap = (sp->heap_pool_stats() - heap0).accesses;
        te_acc = (te->pool_stats() - te0).accesses;
      }

      uint64_t tom_idx = 0, tom_heap = 0;
      {
        TomSpBundle tom = BuildTomSp(dataset);
        auto idx0 = tom.sp->index_pool_stats();
        auto heap0 = tom.sp->heap_pool_stats();
        for (const auto& q : queries) {
          SAE_CHECK(tom.sp->ExecuteRange(q.lo, q.hi).ok());
        }
        tom_idx = (tom.sp->index_pool_stats() - idx0).accesses;
        tom_heap = (tom.sp->heap_pool_stats() - heap0).accesses;
      }

      double tom_idx_ms = cost.AccessCostMs(tom_idx) / nq;
      double sae_idx_ms = cost.AccessCostMs(sae_idx) / nq;
      double tom_tot_ms = cost.AccessCostMs(tom_idx + tom_heap) / nq;
      double sae_tot_ms = cost.AccessCostMs(sae_idx + sae_heap) / nq;
      double te_ms = cost.AccessCostMs(te_acc) / nq;
      std::printf(
          "%6s %10zu %11.1f %11.1f %6.1f %11.1f %11.1f %6.1f %11.2f\n",
          DistName(dist), n, tom_idx_ms, sae_idx_ms,
          100.0 * (tom_idx_ms - sae_idx_ms) / tom_idx_ms, tom_tot_ms,
          sae_tot_ms, 100.0 * (tom_tot_ms - sae_tot_ms) / tom_tot_ms, te_ms);
      std::fflush(stdout);
      json.Row({{"dist", DistName(dist)}, {"n", std::to_string(n)}},
               {{"sp_tom_idx_ms", tom_idx_ms},
                {"sp_sae_idx_ms", sae_idx_ms},
                {"sp_tom_total_ms", tom_tot_ms},
                {"sp_sae_total_ms", sae_tot_ms},
                {"te_sae_ms", te_ms}});
    }
  }
  return json.Write();
}
