// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Shared harness for the figure benches. Each bench sweeps the paper's
// configuration — n in {100K, 250K, 500K, 750K, 1M}, UNF and SKW key
// distributions, 100 uniform queries of extent 0.5% of the domain, 500-byte
// records, 4096-byte pages, 10 ms per node access — and prints the series
// the corresponding figure plots.
//
// SAE_BENCH_SCALE (env, default 1.0) scales the cardinalities for quick
// runs, e.g. SAE_BENCH_SCALE=0.1 sweeps 10K..100K.

#ifndef SAE_BENCH_FIG_COMMON_H_
#define SAE_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <initializer_list>
#include <utility>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/messages.h"
#include "core/system.h"
#include "core/tom.h"
#include "sim/cost_model.h"
#include "util/macros.h"
#include "workload/dataset.h"
#include "workload/queries.h"

namespace sae::bench {

inline constexpr size_t kRecordSize = 500;
inline constexpr uint32_t kDomainMax = 10'000'000;
inline constexpr size_t kQueriesPerPoint = 100;
inline constexpr double kQueryExtent = 0.005;

inline double BenchScale() {
  const char* env = std::getenv("SAE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline std::vector<size_t> Cardinalities() {
  double scale = BenchScale();
  std::vector<size_t> out;
  for (size_t base : {100'000, 250'000, 500'000, 750'000, 1'000'000}) {
    size_t n = size_t(double(base) * scale);
    out.push_back(n < 1000 ? 1000 : n);
  }
  return out;
}

inline const char* DistName(workload::Distribution dist) {
  return dist == workload::Distribution::kUniform ? "UNF" : "SKW";
}

/// Machine-readable sidecar for the figure benches: collects labeled rows
/// and writes them as JSON to SAE_BENCH_JSON (default BENCH_<name>.json),
/// so scripts/check_perf_regression.py can gate the figure metrics, not
/// just the throughput bench. The gate keys rows on their label fields and
/// infers metric direction from the name (qps/ops/speedup up, ms/mb/bytes
/// down), so keep those conventions when naming metrics.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Row(std::initializer_list<std::pair<const char*, std::string>> labels,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    std::string row = "    {";
    bool first = true;
    for (const auto& [key, value] : labels) {
      if (!first) row += ", ";
      row += '"';
      row += key;
      row += "\": \"";
      row += value;
      row += '"';
      first = false;
    }
    char buf[64];
    for (const auto& [key, value] : metrics) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      if (!first) row += ", ";
      row += '"';
      row += key;
      row += "\": ";
      row += buf;
      first = false;
    }
    row += '}';
    rows_.push_back(std::move(row));
  }

  /// Main-compatible exit code: 0 on success, 1 when the file can't open.
  int Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* env = std::getenv("SAE_BENCH_JSON")) path = env;
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"scale\": %.4f,\n"
                 "  \"rows\": [\n",
                 name_.c_str(), BenchScale());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    return 0;
  }

 private:
  std::string name_;
  std::vector<std::string> rows_;
};

inline std::vector<storage::Record> MakeDataset(workload::Distribution dist,
                                                size_t n) {
  workload::DatasetSpec spec;
  spec.cardinality = n;
  spec.distribution = dist;
  spec.domain_max = kDomainMax;
  spec.record_size = kRecordSize;
  spec.seed = 42;
  return workload::GenerateDataset(spec);
}

/// Shard counts swept by the sharded sections of bench_throughput and
/// bench_ablation_updates. Override with SAE_BENCH_SHARDS, a
/// comma-separated list, e.g. SAE_BENCH_SHARDS=1,4,16.
inline std::vector<size_t> ShardCounts() {
  const char* env = std::getenv("SAE_BENCH_SHARDS");
  if (env == nullptr) return {1, 2, 4, 8};
  std::vector<size_t> counts;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    long value = std::strtol(p, &end, 10);
    if (end == p) break;
    if (value > 0) counts.push_back(size_t(value));
    p = *end == ',' ? end + 1 : end;
  }
  return counts.empty() ? std::vector<size_t>{1, 2, 4, 8} : counts;
}

inline std::vector<workload::RangeQuery> MakeQueries() {
  workload::QueryWorkloadSpec spec;
  spec.count = kQueriesPerPoint;
  spec.extent_fraction = kQueryExtent;
  spec.domain_max = kDomainMax;
  spec.seed = 7;
  return workload::GenerateQueries(spec);
}

// --- direct-entity builders ---------------------------------------------------
// The figure benches wire entities directly (no DataOwner master copy) to
// keep the peak memory of the 1M-record points manageable.

inline std::unique_ptr<core::ServiceProvider> BuildSaeSp(
    const std::vector<storage::Record>& sorted) {
  core::ServiceProvider::Options options;
  options.record_size = kRecordSize;
  auto sp = std::make_unique<core::ServiceProvider>(options);
  SAE_CHECK_OK(sp->LoadDataset(sorted));
  return sp;
}

inline std::unique_ptr<core::TrustedEntity> BuildTe(
    const std::vector<storage::Record>& sorted) {
  core::TrustedEntity::Options options;
  options.record_size = kRecordSize;
  auto te = std::make_unique<core::TrustedEntity>(options);
  SAE_CHECK_OK(te->LoadDataset(sorted));
  return te;
}

// Builds the TOM SP; the root signature is produced by a bench-local key
// over the SP's own root digest (the DO-side ADS build is elided — it is
// identical work and is not part of any figure's measured quantity).
struct TomSpBundle {
  std::unique_ptr<core::TomServiceProvider> sp;
  crypto::RsaPublicKey public_key;
};

inline TomSpBundle BuildTomSp(const std::vector<storage::Record>& sorted,
                              size_t rsa_bits = 1024) {
  core::TomServiceProvider::Options options;
  options.record_size = kRecordSize;
  auto sp = std::make_unique<core::TomServiceProvider>(options);
  SAE_CHECK_OK(sp->LoadDataset(sorted, {}));

  Rng rng(0x5AE2009);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&rng, rsa_bits);
  // Static bench set-up: the epoch stays at 0 and the signature covers the
  // epoch-stamped root commitment for that epoch.
  crypto::RsaSignature sig = crypto::RsaSignDigest(
      key, crypto::EpochStampedDigest(sp->ads().root_digest(), 0));
  // Re-install the dataset signature (LoadDataset consumed an empty one).
  TomSpBundle bundle{std::move(sp), key.PublicKey()};
  // ApplyInsert/ApplyDelete would normally refresh it; here we reload by
  // rebuilding the response path's signature directly.
  bundle.sp->SetSignature(std::move(sig), 0);
  return bundle;
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("# %s\n", title);
  std::printf("# record=%zuB page=4096B queries=%zu extent=%.1f%% "
              "scale=%.2f\n",
              kRecordSize, kQueriesPerPoint, kQueryExtent * 100,
              BenchScale());
  std::printf("%s\n", columns);
}

}  // namespace sae::bench

#endif  // SAE_BENCH_FIG_COMMON_H_
