// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Side-by-side comparison of SAE and TOM on one dataset: a miniature version
// of the paper's whole evaluation (Figs. 5-8) on laptop-friendly scale.
//
//   $ ./examples/outsourcing_comparison [cardinality]

#include <cstdio>
#include <cstdlib>

#include "core/system.h"
#include "sim/cost_model.h"
#include "workload/dataset.h"
#include "workload/queries.h"

using namespace sae;

int main(int argc, char** argv) {
  size_t n = argc > 1 ? size_t(std::atoll(argv[1])) : 20000;
  constexpr size_t kRecSize = 500;
  constexpr uint32_t kDomain = 10'000'000;

  workload::DatasetSpec spec;
  spec.cardinality = n;
  spec.record_size = kRecSize;
  spec.domain_max = kDomain;
  auto records = workload::GenerateDataset(spec);
  std::printf("dataset: %zu records x %zu bytes, uniform keys in [0, 10^7]\n\n",
              n, kRecSize);

  core::SaeSystem::Options sae_options;
  sae_options.record_size = kRecSize;
  core::SaeSystem sae_system(sae_options);
  if (!sae_system.Load(records).ok()) return 1;

  core::TomSystem::Options tom_options;
  tom_options.record_size = kRecSize;
  core::TomSystem tom_system(tom_options);
  if (!tom_system.Load(records).ok()) return 1;

  workload::QueryWorkloadSpec qspec;
  qspec.count = 50;
  qspec.extent_fraction = 0.005;
  qspec.domain_max = kDomain;
  auto queries = workload::GenerateQueries(qspec);

  sim::CostModel cost;  // the paper's 10 ms / node access
  double sae_sp_ms = 0, sae_te_ms = 0, tom_sp_ms = 0;
  double sae_client_ms = 0, tom_client_ms = 0;
  uint64_t sae_auth_bytes = 0, tom_auth_bytes = 0;
  size_t results = 0;

  for (const auto& q : queries) {
    auto sae = sae_system.Query(q.lo, q.hi).value();
    auto tom = tom_system.Query(q.lo, q.hi).value();
    if (!sae.verification.ok() || !tom.verification.ok()) {
      std::fprintf(stderr, "verification failed unexpectedly\n");
      return 1;
    }
    results += sae.results.size();
    sae_sp_ms += cost.AccessCostMs(sae.costs.sp_index_accesses +
                                   sae.costs.sp_heap_accesses);
    sae_te_ms += cost.AccessCostMs(sae.costs.te_accesses);
    tom_sp_ms += cost.AccessCostMs(tom.costs.sp_index_accesses +
                                   tom.costs.sp_heap_accesses);
    sae_client_ms += sae.costs.client_verify_ms;
    tom_client_ms += tom.costs.client_verify_ms;
    sae_auth_bytes += sae.costs.auth_bytes;
    tom_auth_bytes += tom.costs.auth_bytes;
  }
  double nq = double(queries.size());

  std::printf("averages over %zu range queries (extent 0.5%% of domain, "
              "avg %.0f results):\n\n",
              queries.size(), double(results) / nq);
  std::printf("%-34s %14s %14s\n", "metric", "SAE", "TOM");
  std::printf("%-34s %14s %14s\n", "------", "---", "---");
  std::printf("%-34s %14.1f %14.1f\n", "SP processing [ms, 10ms/access]",
              sae_sp_ms / nq, tom_sp_ms / nq);
  std::printf("%-34s %14.1f %14s\n", "TE processing [ms, 10ms/access]",
              sae_te_ms / nq, "-");
  std::printf("%-34s %14.0f %14.0f\n", "auth traffic [bytes/query]",
              double(sae_auth_bytes) / nq, double(tom_auth_bytes) / nq);
  std::printf("%-34s %14.3f %14.3f\n", "client verification [ms]",
              sae_client_ms / nq, tom_client_ms / nq);
  std::printf("%-34s %14.1f %14.1f\n", "SP storage [MB]",
              sae_system.sp().StorageBytes() / 1048576.0,
              tom_system.sp().StorageBytes() / 1048576.0);
  std::printf("%-34s %14.2f %14s\n", "TE storage [MB]",
              sae_system.te().StorageBytes() / 1048576.0, "-");
  std::printf("%-34s %14s %14.1f\n", "DO-side ADS [MB]", "-",
              tom_system.owner().AdsStorageBytes() / 1048576.0);

  std::printf("\nSAE wins on every metric the paper reports; the TE's cost "
              "is negligible.\n");
  return 0;
}
