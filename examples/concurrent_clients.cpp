// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Concurrent multi-client demo, in two acts.
//
// Act 1: several simulated clients hammer one SAE deployment through the
// batched QueryEngine. Client #2's traffic passes through a compromised SP
// that tampers with every result — the other clients' queries are
// untouched, and verification must sort the two groups apart even though
// all queries execute interleaved on the same worker pool against the
// same shared SP and TE.
//
// Act 2: the same load against a four-shard deployment
// (core::ShardedSaeSystem) with ONE compromised shard. Queries whose range
// never touches the bad shard keep verifying; queries that do touch it are
// rejected with a verdict that names the guilty shard — the honest shards'
// slices verify individually, so a single bad machine cannot poison the
// rest of the fleet.
//
//   $ ./examples/example_concurrent_clients

#include <cstdio>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "core/sharded_system.h"
#include "workload/dataset.h"
#include "workload/queries.h"

using namespace sae;
using core::AttackMode;
using core::BatchQuery;
using core::QueryEngine;
using core::SaeSystem;
using core::ShardAttack;
using core::ShardedSaeSystem;
using core::ShardRouter;

namespace {

// Act 2: a four-shard deployment with one malicious shard. Returns true
// when every verdict matches the attack placement.
bool RunShardedAct(const std::vector<storage::Record>& dataset,
                   const std::vector<workload::RangeQuery>& ranges,
                   size_t record_size) {
  constexpr size_t kShards = 4;
  constexpr size_t kBadShard = 2;

  ShardedSaeSystem::Options options;
  options.base.record_size = record_size;
  ShardRouter router = ShardRouter::Balanced(dataset, kShards);
  ShardedSaeSystem system(router, options);
  if (!system.Load(dataset).ok()) {
    std::fprintf(stderr, "sharded load failed\n");
    return false;
  }
  std::printf("\n--- Act 2: %zu-shard deployment, shard %zu compromised "
              "---\n",
              system.num_shards(), kBadShard);
  std::printf("fences:");
  for (auto fence : router.fences()) std::printf(" %u", fence);
  std::printf("  (shard %zu owns [%u, %u])\n\n", kBadShard,
              router.shard_lo(kBadShard), router.shard_hi(kBadShard));

  size_t touched = 0, spared = 0, misverdicts = 0;
  for (const auto& range : ranges) {
    auto outcome = system.Query(
        range.lo, range.hi,
        ShardAttack::At(kBadShard, AttackMode::kTamperPayload));
    if (!outcome.ok()) {
      ++misverdicts;
      continue;
    }
    bool touches_bad_shard = false;
    for (const auto& slice : outcome.value().slices) {
      if (slice.shard == kBadShard) touches_bad_shard = true;
    }
    const Status& verdict = outcome.value().verification;
    if (touches_bad_shard) {
      ++touched;
      // The composite verdict must fail AND name the guilty shard; the
      // honest slices must have verified individually.
      bool attributed =
          !verdict.ok() && verdict.message().find(std::to_string(
                               kBadShard)) != std::string::npos;
      for (const auto& slice : outcome.value().slices) {
        if (slice.shard != kBadShard &&
            !slice.outcome.verification.ok()) {
          attributed = false;  // an honest shard was poisoned
        }
      }
      if (!attributed) ++misverdicts;
    } else {
      ++spared;
      if (!verdict.ok()) ++misverdicts;
    }
  }
  std::printf("%zu queries touched shard %zu: rejected, verdict names the "
              "shard, honest slices stayed verified\n",
              touched, kBadShard);
  std::printf("%zu queries never touched it: all accepted\n", spared);
  std::printf("%s\n", misverdicts == 0
                          ? "OK: one bad shard cannot poison the fleet."
                          : "ERROR: sharded verdicts do not match the "
                            "attack placement!");
  return misverdicts == 0 && touched > 0 && spared > 0;
}

}  // namespace

int main() {
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 25;
  constexpr size_t kMaliciousClient = 2;  // this client's SP path is evil
  constexpr size_t kWorkers = 4;

  // One outsourced dataset, shared by every client.
  workload::DatasetSpec spec;
  spec.cardinality = 20'000;
  spec.record_size = 256;
  auto dataset = workload::GenerateDataset(spec);

  SaeSystem::Options options;
  options.record_size = spec.record_size;
  SaeSystem system(options);
  if (!system.Load(dataset).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("SAE deployment loaded: %zu records, %zu clients x %zu "
              "queries, %zu engine workers\n\n",
              dataset.size(), kClients, kQueriesPerClient, kWorkers);

  // Each client contributes its own slice of the batch; the malicious
  // client's queries carry an attack that mutates the SP's answer.
  workload::QueryWorkloadSpec query_spec;
  query_spec.count = kClients * kQueriesPerClient;
  query_spec.domain_max = spec.domain_max;
  auto ranges = workload::GenerateQueries(query_spec);

  std::vector<BatchQuery> batch;
  batch.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    size_t client = i / kQueriesPerClient;
    AttackMode attack = client == kMaliciousClient
                            ? AttackMode::kTamperPayload
                            : AttackMode::kNone;
    batch.push_back(BatchQuery{ranges[i].lo, ranges[i].hi, attack});
  }

  QueryEngine engine(QueryEngine::Options{kWorkers});
  QueryEngine::SaeBatch run = engine.Run(&system, batch);

  std::printf("%8s %10s %10s %10s   verdict\n", "client", "queries",
              "accepted", "rejected");
  for (size_t client = 0; client < kClients; ++client) {
    size_t accepted = 0, rejected = 0;
    for (size_t i = client * kQueriesPerClient;
         i < (client + 1) * kQueriesPerClient; ++i) {
      if (run.outcomes[i].ok() &&
          run.outcomes[i].value().verification.ok()) {
        ++accepted;
      } else {
        ++rejected;
      }
    }
    std::printf("%8zu %10zu %10zu %10zu   %s\n", client, kQueriesPerClient,
                accepted, rejected,
                rejected == 0 ? "SP honest — results accepted"
                              : "SP COMPROMISED — every result rejected");
  }

  std::printf("\nengine: %zu queries in %.1f ms -> %.0f queries/sec\n",
              run.stats.queries, run.stats.wall_ms,
              run.stats.QueriesPerSecond());
  std::printf("aggregated costs: %llu SP index + %llu SP heap + %llu TE "
              "node accesses, %zu auth bytes\n",
              (unsigned long long)run.stats.total.sp_index_accesses,
              (unsigned long long)run.stats.total.sp_heap_accesses,
              (unsigned long long)run.stats.total.te_accesses,
              run.stats.total.auth_bytes);

  bool sorted_correctly =
      run.stats.rejected == kQueriesPerClient &&
      run.stats.accepted == (kClients - 1) * kQueriesPerClient;
  std::printf("%s\n", sorted_correctly
                          ? "OK: only the compromised client's results "
                            "were rejected."
                          : "ERROR: verdicts do not match the attack "
                            "placement!");

  bool sharded_ok = RunShardedAct(dataset, ranges, spec.record_size);
  return sorted_correctly && sharded_ok ? 0 : 1;
}
