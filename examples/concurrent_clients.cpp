// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Concurrent multi-client demo: several simulated clients hammer one SAE
// deployment through the batched QueryEngine. Client #2's traffic passes
// through a compromised SP that tampers with every result — the other
// clients' queries are untouched, and verification must sort the two
// groups apart even though all queries execute interleaved on the same
// worker pool against the same shared SP and TE.
//
//   $ ./examples/example_concurrent_clients

#include <cstdio>
#include <vector>

#include "core/query_engine.h"
#include "workload/dataset.h"
#include "workload/queries.h"

using namespace sae;
using core::AttackMode;
using core::BatchQuery;
using core::QueryEngine;
using core::SaeSystem;

int main() {
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 25;
  constexpr size_t kMaliciousClient = 2;  // this client's SP path is evil
  constexpr size_t kWorkers = 4;

  // One outsourced dataset, shared by every client.
  workload::DatasetSpec spec;
  spec.cardinality = 20'000;
  spec.record_size = 256;
  auto dataset = workload::GenerateDataset(spec);

  SaeSystem::Options options;
  options.record_size = spec.record_size;
  SaeSystem system(options);
  if (!system.Load(dataset).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("SAE deployment loaded: %zu records, %zu clients x %zu "
              "queries, %zu engine workers\n\n",
              dataset.size(), kClients, kQueriesPerClient, kWorkers);

  // Each client contributes its own slice of the batch; the malicious
  // client's queries carry an attack that mutates the SP's answer.
  workload::QueryWorkloadSpec query_spec;
  query_spec.count = kClients * kQueriesPerClient;
  query_spec.domain_max = spec.domain_max;
  auto ranges = workload::GenerateQueries(query_spec);

  std::vector<BatchQuery> batch;
  batch.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    size_t client = i / kQueriesPerClient;
    AttackMode attack = client == kMaliciousClient
                            ? AttackMode::kTamperPayload
                            : AttackMode::kNone;
    batch.push_back(BatchQuery{ranges[i].lo, ranges[i].hi, attack});
  }

  QueryEngine engine(QueryEngine::Options{kWorkers});
  QueryEngine::SaeBatch run = engine.Run(&system, batch);

  std::printf("%8s %10s %10s %10s   verdict\n", "client", "queries",
              "accepted", "rejected");
  for (size_t client = 0; client < kClients; ++client) {
    size_t accepted = 0, rejected = 0;
    for (size_t i = client * kQueriesPerClient;
         i < (client + 1) * kQueriesPerClient; ++i) {
      if (run.outcomes[i].ok() &&
          run.outcomes[i].value().verification.ok()) {
        ++accepted;
      } else {
        ++rejected;
      }
    }
    std::printf("%8zu %10zu %10zu %10zu   %s\n", client, kQueriesPerClient,
                accepted, rejected,
                rejected == 0 ? "SP honest — results accepted"
                              : "SP COMPROMISED — every result rejected");
  }

  std::printf("\nengine: %zu queries in %.1f ms -> %.0f queries/sec\n",
              run.stats.queries, run.stats.wall_ms,
              run.stats.QueriesPerSecond());
  std::printf("aggregated costs: %llu SP index + %llu SP heap + %llu TE "
              "node accesses, %zu auth bytes\n",
              (unsigned long long)run.stats.total.sp_index_accesses,
              (unsigned long long)run.stats.total.sp_heap_accesses,
              (unsigned long long)run.stats.total.te_accesses,
              run.stats.total.auth_bytes);

  bool sorted_correctly =
      run.stats.rejected == kQueriesPerClient &&
      run.stats.accepted == (kClients - 1) * kQueriesPerClient;
  std::printf("%s\n", sorted_correctly
                          ? "OK: only the compromised client's results "
                            "were rejected."
                          : "ERROR: verdicts do not match the attack "
                            "placement!");
  return sorted_correctly ? 0 : 1;
}
