// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The paper's §II motivating scenario: a consumer-electronics shop
// outsources its digital-camera catalog (id, manufacturer, model, price),
// clients run price-range queries, and the catalog changes over time.
// The query attribute is `price`; the remaining columns ride in the record
// payload. Demonstrates outsourcing, queries, verification, and updates —
// and, in the final act, the shop's dashboard running verified COUNT/SUM
// aggregate queries with a tampering SP caught red-handed.
//
//   $ ./examples/camera_shop

#include <cstdio>
#include <cstring>
#include <string>

#include "core/system.h"
#include "dbms/query.h"

using sae::core::SaeSystem;
using sae::storage::Record;

namespace {

constexpr size_t kRecordSize = 128;

// Packs "manufacturer|model" into the record payload.
Record MakeCamera(uint64_t id, const std::string& manufacturer,
                  const std::string& model, uint32_t price_cents) {
  Record r;
  r.id = id;
  r.key = price_cents;
  std::string text = manufacturer + "|" + model;
  r.payload.assign(text.begin(), text.end());
  r.payload.resize(kRecordSize - 12, 0);
  return r;
}

std::string CameraName(const Record& r) {
  std::string text(r.payload.begin(), r.payload.end());
  return text.substr(0, text.find('\0'));
}

}  // namespace

int main() {
  SaeSystem::Options options;
  options.record_size = kRecordSize;
  SaeSystem shop(options);

  // The catalog. Prices are in cents — the query attribute.
  std::vector<Record> catalog = {
      MakeCamera(15, "Canon", "SD850 IS", 25000),
      MakeCamera(16, "Canon", "EOS 450D", 69900),
      MakeCamera(17, "Nikon", "D60", 64900),
      MakeCamera(18, "Nikon", "Coolpix P60", 19900),
      MakeCamera(19, "Sony", "DSC-W120", 17900),
      MakeCamera(20, "Sony", "Alpha A200", 59900),
      MakeCamera(21, "Olympus", "FE-340", 15900),
      MakeCamera(22, "Panasonic", "Lumix TZ5", 29900),
      MakeCamera(23, "Pentax", "K200D", 79900),
      MakeCamera(24, "Casio", "EX-Z80", 14900),
  };
  if (!shop.Load(catalog).ok()) return 1;
  std::printf("catalog outsourced: %zu cameras\n\n", catalog.size());

  // "Select all cameras whose price is between 200 and 300 euros."
  auto run_query = [&](uint32_t lo, uint32_t hi) {
    auto outcome = shop.Query(lo, hi);
    std::printf("cameras between %.2f and %.2f euro  (verified: %s)\n",
                lo / 100.0, hi / 100.0,
                outcome.value().verification.ok() ? "yes" : "NO");
    for (const Record& r : outcome.value().results) {
      std::printf("  #%-3llu %-24s %8.2f euro\n",
                  (unsigned long long)r.id, CameraName(r).c_str(),
                  r.key / 100.0);
    }
    std::printf("\n");
  };

  run_query(20000, 30000);

  // The shop discounts the Lumix TZ5: in SAE an update is just "DO tells SP
  // and TE"; no ADS rebuilding, no re-signing.
  std::printf("price drop: Lumix TZ5 299 -> 249 euro\n\n");
  if (!shop.Delete(22).ok()) return 1;
  if (!shop.Insert(MakeCamera(22, "Panasonic", "Lumix TZ5", 24900)).ok()) {
    return 1;
  }

  run_query(20000, 30000);

  // New stock arrives.
  std::printf("new arrival: Fuji FinePix F100fd at 279 euro\n\n");
  if (!shop.Insert(MakeCamera(25, "Fuji", "FinePix F100fd", 27900)).ok()) {
    return 1;
  }

  run_query(20000, 30000);
  run_query(0, 100000000);  // the whole catalog, still verifiable

  // Act 2 — the shop's dashboard: verified aggregates. "How many cameras
  // do we list under 500 euro, and what do they add up to?" The SP ships
  // the authenticated witness along with its claimed COUNT/SUM; the client
  // recomputes both from the witness, so the dashboard numbers carry the
  // same guarantee as the records themselves.
  std::printf("--- dashboard: verified aggregates ---\n\n");
  auto count_req = sae::dbms::QueryRequest::Count(0, 50000);
  auto sum_req = sae::dbms::QueryRequest::Sum(0, 50000);
  auto count = shop.Query(count_req);
  auto sum = shop.Query(sum_req);
  if (!count.ok() || !sum.ok()) return 1;
  std::printf("cameras under 500 euro: COUNT = %llu (verified: %s)\n",
              (unsigned long long)count.value().answer.count,
              count.value().verification.ok() ? "yes" : "NO");
  std::printf("inventory value:        SUM   = %.2f euro (verified: %s)\n\n",
              sum.value().answer.sum / 100.0,
              sum.value().verification.ok() ? "yes" : "NO");

  // A compromised SP now reports a deflated SUM — every witness record it
  // ships is genuine, only the aggregate lies. The client recomputes the
  // SUM from the authenticated witness and rejects the answer.
  auto tampered = shop.Query(sum_req, sae::core::AttackMode::kWrongSum);
  if (!tampered.ok()) return 1;
  std::printf("tampering SP claims SUM = %.2f euro -> client verdict: %s\n",
              tampered.value().answer.sum / 100.0,
              tampered.value().verification.ok() ? "ACCEPTED (BUG!)"
                                                 : "REJECTED");
  std::printf("  (%s)\n", tampered.value().verification.ToString().c_str());
  return tampered.value().verification.ok() ? 1 : 0;
}
