// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Quickstart: outsource a small table under SAE, run an authenticated range
// query, and watch verification succeed — then catch a cheating provider.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/system.h"

using sae::core::AttackMode;
using sae::core::SaeSystem;
using sae::storage::Record;
using sae::storage::RecordCodec;

int main() {
  // 1. The data owner's table: 1,000 records, 4-byte integer search keys.
  SaeSystem::Options options;
  options.record_size = 128;
  SaeSystem system(options);

  RecordCodec codec(options.record_size);
  std::vector<Record> dataset;
  for (uint64_t id = 1; id <= 1000; ++id) {
    dataset.push_back(codec.MakeRecord(id, uint32_t(id * 37 % 10000)));
  }

  // 2. Outsource: the DO ships the dataset to the SP (a conventional DBMS)
  //    and to the TE (which keeps only <id, key, digest> tuples).
  if (!system.Load(dataset).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("outsourced %zu records\n", dataset.size());
  std::printf("  SP storage : %8zu bytes (dataset + B+-tree)\n",
              system.sp().StorageBytes());
  std::printf("  TE storage : %8zu bytes (XB-tree only)\n\n",
              system.te().StorageBytes());

  // 3. An authenticated range query: results come from the SP, the 20-byte
  //    verification token from the TE.
  auto outcome = system.Query(2000, 4000);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("query [2000, 4000]: %zu results\n",
              outcome.value().results.size());
  std::printf("  verification : %s\n",
              outcome.value().verification.ToString().c_str());
  std::printf("  auth traffic : %zu bytes (the VT)\n\n",
              outcome.value().costs.auth_bytes);

  // 4. A malicious SP drops a record; the XOR check catches it.
  auto attacked = system.Query(2000, 4000, AttackMode::kDropOne);
  std::printf("same query with a cheating SP (one record dropped):\n");
  std::printf("  verification : %s\n",
              attacked.value().verification.ToString().c_str());
  return attacked.value().verification.ok() ? 1 : 0;  // must be caught
}
