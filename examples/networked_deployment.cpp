// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The SAE deployment as four real processes on localhost: a data owner, a
// service provider, a trusted entity and a client, talking TCP through the
// serving tier (src/net/) with the golden-pinned wire messages as frame
// payloads.
//
//   $ ./examples/example_networked_deployment            # all four, forked
//   $ ./examples/example_networked_deployment sp 7001    # one party, manual
//
// The walkthrough: the DO ships the dataset to SP and TE (epoch 1), then an
// insert (epoch 2), and serves its published epoch; the client waits for
// epoch 2, runs every verified operator, asks the SP for a *poisoned* plan
// and must reject it, then shuts all parties down. Exit status 0 means
// every check passed in every process.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/messages.h"
#include "core/service_provider.h"
#include "core/trusted_entity.h"
#include "dbms/query.h"
#include "net/client_transport.h"
#include "net/server.h"
#include "util/status.h"

using namespace sae;

namespace {

constexpr size_t kRecordSize = 64;
constexpr size_t kRecords = 500;
constexpr uint32_t kInsertKey = 777;  // off the 10-grid, so uniquely findable

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::vector<storage::Record> MakeDataset() {
  storage::RecordCodec codec(kRecordSize);
  std::vector<storage::Record> out;
  for (uint64_t id = 1; id <= kRecords; ++id) {
    out.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  return out;
}

// Retries an operation until it succeeds or ~5 s pass — parties come up in
// arbitrary order, so first contacts must tolerate a listener that is not
// there yet.
template <typename Fn>
Status Retry(Fn&& fn) {
  Status last = Status::IoError("never attempted");
  for (int attempt = 0; attempt < 100; ++attempt) {
    last = fn();
    if (last.ok()) return last;
    SleepMs(50);
  }
  return last;
}

// --- party processes ------------------------------------------------------------

int RunSp(uint16_t port) {
  core::ServiceProvider sp(
      core::ServiceProviderOptions{.record_size = kRecordSize});
  net::SpServer server(&sp, {.port = port});
  if (!server.Start().ok()) return 1;
  std::printf("[sp]     pid %d serving on port %u\n", getpid(),
              server.port());
  while (server.frame_server().running()) SleepMs(20);
  std::printf("[sp]     served %llu frames, exiting\n",
              (unsigned long long)server.frame_server().frames_served());
  return 0;
}

int RunTe(uint16_t port) {
  core::TrustedEntity te(
      core::TrustedEntityOptions{.record_size = kRecordSize});
  net::TeServer server(&te, {.port = port});
  if (!server.Start().ok()) return 1;
  std::printf("[te]     pid %d serving on port %u\n", getpid(),
              server.port());
  while (server.frame_server().running()) SleepMs(20);
  std::printf("[te]     served %llu frames, exiting\n",
              (unsigned long long)server.frame_server().frames_served());
  return 0;
}

int RunDo(uint16_t owner_port, uint16_t sp_port, uint16_t te_port) {
  storage::RecordCodec codec(kRecordSize);
  std::vector<storage::Record> dataset = MakeDataset();

  net::ClientTransport sp_link({.port = sp_port});
  net::ClientTransport te_link({.port = te_port});

  // Epoch 1: the initial outsourcing — one Records frame + the notice.
  std::vector<uint8_t> records = core::SerializeRecords(dataset, codec);
  std::vector<uint8_t> notice1 = core::SerializeEpochNotice(1);
  if (!Retry([&] { return net::CallExpectAck(&sp_link, records); }).ok())
    return 1;
  if (!Retry([&] { return net::CallExpectAck(&te_link, records); }).ok())
    return 1;
  if (!net::CallExpectAck(&sp_link, notice1).ok()) return 1;
  if (!net::CallExpectAck(&te_link, notice1).ok()) return 1;
  std::printf("[do]     pid %d outsourced %zu records at epoch 1\n",
              getpid(), dataset.size());

  // Epoch 2: one insert, shipped to both parties, then published.
  storage::Record extra = codec.MakeRecord(kRecords + 1, kInsertKey);
  std::vector<uint8_t> insert = core::SerializeRecords({extra}, codec);
  std::vector<uint8_t> notice2 = core::SerializeEpochNotice(2);
  if (!net::CallExpectAck(&sp_link, insert).ok()) return 1;
  if (!net::CallExpectAck(&te_link, insert).ok()) return 1;
  if (!net::CallExpectAck(&sp_link, notice2).ok()) return 1;
  if (!net::CallExpectAck(&te_link, notice2).ok()) return 1;
  std::printf("[do]     inserted key %u, published epoch 2\n", kInsertKey);

  // Serve the published epoch until the client shuts us down.
  net::OwnerServer server([] { return uint64_t(2); }, {.port = owner_port});
  if (!server.Start().ok()) return 1;
  std::printf("[do]     epoch endpoint on port %u\n", server.port());
  // OwnerServer keeps its own FrameServer private; poll via a self-query.
  net::ClientTransport self({.port = server.port()});
  while (true) {
    SleepMs(20);
    auto epoch = net::FetchEpoch(&self);
    if (!epoch.ok()) break;  // server stopped answering: shutdown arrived
  }
  std::printf("[do]     exiting\n");
  return 0;
}

int RunClient(uint16_t sp_port, uint16_t te_port, uint16_t owner_port) {
  net::NetSaeClient client(net::NetSaeClientOptions{
      .sp = {.port = sp_port},
      .te = {.port = te_port},
      .owner = {.port = owner_port},
      .record_size = kRecordSize});

  // Wait until the DO has published epoch 2 (load + insert both applied).
  Status ready = Retry([&] {
    auto epoch = client.PublishedEpoch();
    if (!epoch.ok()) return epoch.status();
    return epoch.value() >= 2
               ? Status::OK()
               : Status::StaleEpoch("owner still at epoch 1");
  });
  if (!ready.ok()) {
    std::printf("[client] owner never reached epoch 2: %s\n",
                ready.ToString().c_str());
    return 1;
  }

  // Every operator, end to end over TCP, every answer verified.
  std::vector<std::pair<const char*, dbms::QueryRequest>> requests = {
      {"scan", dbms::QueryRequest::Scan(100, 2000)},
      {"point", dbms::QueryRequest::Point(kInsertKey)},
      {"count", dbms::QueryRequest::Count(100, 2000)},
      {"sum", dbms::QueryRequest::Sum(100, 2000)},
      {"min", dbms::QueryRequest::Min(100, 2000)},
      {"max", dbms::QueryRequest::Max(100, 2000)},
      {"top-k", dbms::QueryRequest::TopK(100, 2000, 5)},
  };
  for (const auto& [name, request] : requests) {
    auto verified = client.Query(request);
    if (!verified.ok()) {
      std::printf("[client] %s FAILED verification: %s\n", name,
                  verified.status().ToString().c_str());
      return 1;
    }
    std::printf("[client] %-6s verified (witness %zu records, epoch %llu)\n",
                name, verified.value().witness.size(),
                (unsigned long long)verified.value().published_epoch);
  }

  // The inserted record must be visible and verified at epoch 2.
  auto inserted = client.Query(dbms::QueryRequest::Point(kInsertKey));
  if (!inserted.ok() || inserted.value().witness.size() != 1) {
    std::printf("[client] inserted record not served/verified\n");
    return 1;
  }

  // Malicious SP: ask for a poisoned plan — verification must reject it.
  auto poisoned = client.QueryPoisoned(dbms::QueryRequest::Scan(100, 2000));
  if (poisoned.ok() ||
      poisoned.status().code() != StatusCode::kVerificationFailure) {
    std::printf("[client] poisoned plan was NOT rejected!\n");
    return 1;
  }
  std::printf("[client] poisoned plan rejected: %s\n",
              poisoned.status().ToString().c_str());

  // Orderly shutdown of all three serving parties.
  net::ClientTransport owner_link({.port = owner_port});
  if (!net::ShutdownServer(&client.sp()).ok()) return 1;
  if (!net::ShutdownServer(&client.te()).ok()) return 1;
  if (!net::ShutdownServer(&owner_link).ok()) return 1;
  std::printf("[client] all parties shut down; every check passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string role = argc > 1 ? argv[1] : "all";
  auto port_arg = [&](int i, uint16_t fallback) {
    return argc > i ? uint16_t(std::atoi(argv[i])) : fallback;
  };

  if (role == "sp") return RunSp(port_arg(2, 0));
  if (role == "te") return RunTe(port_arg(2, 0));
  if (role == "do")
    return RunDo(port_arg(2, 0), port_arg(3, 0), port_arg(4, 0));
  if (role == "client")
    return RunClient(port_arg(2, 0), port_arg(3, 0), port_arg(4, 0));
  if (role != "all") {
    std::fprintf(stderr,
                 "usage: %s [all | sp PORT | te PORT |"
                 " do OWNER_PORT SP_PORT TE_PORT |"
                 " client SP_PORT TE_PORT OWNER_PORT]\n",
                 argv[0]);
    return 2;
  }

  // Four processes on localhost: fork SP, TE and DO, run the client here.
  // Ports derive from the parent pid so parallel CI jobs don't collide.
  uint16_t base = uint16_t(20000 + (getpid() * 7) % 40000);
  uint16_t sp_port = base, te_port = base + 1, owner_port = base + 2;
  std::printf("launching four-party deployment on ports %u/%u/%u\n", sp_port,
              te_port, owner_port);

  struct Child {
    const char* name;
    pid_t pid;
  };
  std::vector<Child> children;
  auto spawn = [&](const char* name, auto&& fn) {
    std::fflush(stdout);  // don't duplicate buffered parent output into forks
    pid_t pid = fork();
    if (pid == 0) {
      int rc = fn();
      std::fflush(stdout);  // stdout may be a fully-buffered pipe under CI
      _exit(rc);
    }
    children.push_back({name, pid});
  };
  spawn("sp", [&] { return RunSp(sp_port); });
  spawn("te", [&] { return RunTe(te_port); });
  spawn("do", [&] { return RunDo(owner_port, sp_port, te_port); });

  int client_rc = RunClient(sp_port, te_port, owner_port);

  bool all_ok = client_rc == 0;
  for (const Child& child : children) {
    int wstatus = 0;
    waitpid(child.pid, &wstatus, 0);
    bool ok = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    if (!ok) {
      std::printf("party '%s' exited abnormally (status %d)\n", child.name,
                  wstatus);
      all_ok = false;
    }
  }
  std::printf(all_ok ? "networked deployment: ALL CHECKS PASSED\n"
                     : "networked deployment: FAILURES\n");
  return all_ok ? 0 : 1;
}
